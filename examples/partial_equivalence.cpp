// Partial equivalence checking (the paper's ECO / partial-design
// motivation): a circuit with missing blackboxes must be rectified to
// match a golden specification. The blackbox contents are exactly Henkin
// functions of the wires each box observes.
//
// The example generates a PEC instance, synthesizes the blackbox functions
// with Manthan3, cross-checks with HqsLite, and prints the patch.
#include <iostream>

#include "aig/aig.hpp"
#include "baselines/hqs_lite.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "portfolio/runner.hpp"
#include "workloads/workloads.hpp"

int main() {
  manthan::workloads::PecParams params;
  params.num_inputs = 7;
  params.num_outputs = 2;
  params.num_blackboxes = 3;
  params.blackbox_inputs = 3;
  params.circuit_gates = 14;
  params.seed = 2023;
  const manthan::dqbf::DqbfFormula spec = manthan::workloads::gen_pec(params);

  std::cout << "partial-equivalence instance: " << spec.num_universals()
            << " circuit inputs, " << params.num_blackboxes
            << " blackboxes, "
            << spec.num_existentials() - params.num_blackboxes
            << " auxiliary gate variables, "
            << spec.matrix().num_clauses() << " clauses\n";

  // Synthesize patch functions with Manthan3.
  manthan::aig::Aig manager;
  manthan::core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  manthan::core::Manthan3 synthesizer(options);
  const manthan::core::SynthesisResult result =
      synthesizer.synthesize(spec, manager);
  if (result.status != manthan::core::SynthesisStatus::kRealizable) {
    std::cout << "Manthan3 could not rectify the design\n";
    return 1;
  }
  const manthan::dqbf::CertificateResult cert =
      manthan::dqbf::check_certificate(spec, manager, result.vector);
  std::cout << "Manthan3 rectified the design ("
            << result.stats.counterexamples << " counterexamples, "
            << result.stats.repairs << " repairs, "
            << result.stats.unique_defined
            << " blackboxes uniquely defined); certificate "
            << (cert.status == manthan::dqbf::CertificateStatus::kValid
                    ? "VALID"
                    : "INVALID")
            << "\n";

  for (std::size_t j = 0; j < params.num_blackboxes; ++j) {
    const auto support = manager.support(result.vector.functions[j]);
    std::cout << "  patch w" << j << " observes {";
    for (std::size_t k = 0; k < support.size(); ++k) {
      std::cout << (k ? "," : "") << 'x' << support[k];
    }
    std::cout << "}, " << manager.cone_size(result.vector.functions[j])
              << " AND nodes\n";
  }

  // Cross-check with the elimination-based baseline.
  manthan::aig::Aig manager2;
  manthan::baselines::HqsLiteOptions hqs_options;
  hqs_options.time_limit_seconds = 30.0;
  manthan::baselines::HqsLite hqs(hqs_options);
  const manthan::core::SynthesisResult hqs_result =
      hqs.synthesize(spec, manager2);
  std::cout << "HqsLite on the same instance: "
            << manthan::portfolio::status_name(hqs_result.status) << "\n";

  return cert.status == manthan::dqbf::CertificateStatus::kValid ? 0 : 1;
}
