// Portfolio comparison on a small suite: runs all three engines under a
// per-instance budget, prints the per-run table and the headline solved
// counts — a miniature of the paper's full evaluation (see bench/ for the
// figure-by-figure reproduction).
#include <iostream>

#include "portfolio/runner.hpp"
#include "portfolio/tables.hpp"
#include "workloads/workloads.hpp"

int main() {
  manthan::workloads::SuiteParams suite_params;
  suite_params.scale = 1;
  const std::vector<manthan::workloads::Instance> suite =
      manthan::workloads::standard_suite(suite_params);
  std::cout << "running " << suite.size()
            << " instances x 3 engines (budget 2 s each)\n\n";

  manthan::portfolio::RunnerOptions options;
  options.per_instance_seconds = 2.0;
  manthan::portfolio::Runner runner(options);
  const std::vector<manthan::portfolio::RunRecord> records =
      runner.run_suite(suite,
                       {manthan::portfolio::EngineKind::kManthan3,
                        manthan::portfolio::EngineKind::kHqsLite,
                        manthan::portfolio::EngineKind::kPedantLite});

  manthan::portfolio::print_run_records(std::cout, records);
  std::cout << '\n';
  manthan::portfolio::print_solved_counts(
      std::cout, manthan::portfolio::compute_solved_counts(records));
  return 0;
}
