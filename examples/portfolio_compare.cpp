// Portfolio comparison on a small suite: fans all three engines across a
// scheduler thread pool under a per-instance budget, prints the per-run
// table and the headline solved counts — a miniature of the paper's full
// evaluation (see bench/ for the figure-by-figure reproduction) — then
// demonstrates the racing portfolio: all engines launched on one
// instance, first certified result wins, losers cancelled mid-run.
#include <iostream>
#include <thread>

#include "engine/race.hpp"
#include "portfolio/runner.hpp"
#include "portfolio/tables.hpp"
#include "workloads/workloads.hpp"

int main() {
  manthan::workloads::SuiteParams suite_params;
  suite_params.scale = 1;
  const std::vector<manthan::workloads::Instance> suite =
      manthan::workloads::standard_suite(suite_params);
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t workers = hw == 0 ? 1 : hw;
  std::cout << "running " << suite.size()
            << " instances x 3 engines (budget 2 s each, " << workers
            << " workers)\n\n";

  manthan::portfolio::RunnerOptions options;
  options.per_instance_seconds = 2.0;
  manthan::portfolio::Runner runner(options);
  const std::vector<manthan::portfolio::RunRecord> records =
      runner.run_suite(suite,
                       {manthan::portfolio::EngineKind::kManthan3,
                        manthan::portfolio::EngineKind::kHqsLite,
                        manthan::portfolio::EngineKind::kPedantLite},
                       manthan::portfolio::ParallelOptions{workers});

  manthan::portfolio::print_run_records(std::cout, records);
  std::cout << '\n';
  manthan::portfolio::print_solved_counts(
      std::cout, manthan::portfolio::compute_solved_counts(records));

  // --- racing portfolio -----------------------------------------------------
  // A nested-dependency planted instance with strong engine asymmetry:
  // HqsLite eliminates it quickly, the other lanes get cancelled.
  manthan::workloads::PlantedParams params{16, 6, 5, 5, 180, 3};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 12;
  const manthan::dqbf::DqbfFormula formula =
      manthan::workloads::gen_planted(params);

  std::cout << "\nracing all engines on one planted-hard instance:\n";
  manthan::aig::Aig manager;
  manthan::engine::RaceOptions race_options;
  race_options.time_limit_seconds = 60.0;
  const manthan::engine::RaceOutcome outcome =
      manthan::engine::race(formula, manager, race_options);
  for (const manthan::engine::RaceLane& lane : outcome.lanes) {
    std::cout << "  " << manthan::engine::engine_name(lane.engine) << ": "
              << manthan::engine::status_name(lane.status)
              << (lane.winner ? " [winner]" : "")
              << (lane.cancelled ? " [cancelled]" : "") << "  ("
              << lane.seconds << " s)\n";
  }
  std::cout << "race outcome: "
            << manthan::engine::status_name(outcome.status)
            << (outcome.solved() ? " (certified)" : "") << '\n';
  return 0;
}
