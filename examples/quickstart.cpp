// Quickstart: parse a DQBF in DQDIMACS form, synthesize Henkin functions
// with Manthan3, certify them, and print the result.
//
// This is Example 1 from the paper (§5):
//   φ(X,Y) = (x1 ∨ y1) ∧ (y2 ↔ (y1 ∨ ¬x2)) ∧ (y3 ↔ (x2 ∨ x3))
//   H1 = {x1},  H2 = {x1,x2},  H3 = {x2,x3}
#include <iostream>

#include "aig/aig.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqdimacs.hpp"

int main() {
  // Variables 1..3 are x1..x3 (universal), 4..6 are y1..y3.
  // y2 <-> (y1 ∨ ¬x2) and y3 <-> (x2 ∨ x3) in CNF.
  const std::string dqdimacs =
      "c paper example 1\n"
      "p cnf 6 7\n"
      "a 1 2 3 0\n"
      "d 4 1 0\n"
      "d 5 1 2 0\n"
      "d 6 2 3 0\n"
      "1 4 0\n"
      "-5 4 -2 0\n"  // y2 -> (y1 ∨ ¬x2)
      "5 -4 0\n"     // y1 -> y2
      "5 2 0\n"      // ¬x2 -> y2
      "-6 2 3 0\n"   // y3 -> (x2 ∨ x3)
      "6 -2 0\n"     // x2 -> y3
      "6 -3 0\n";    // x3 -> y3

  const manthan::dqbf::DqbfFormula formula =
      manthan::dqbf::parse_dqdimacs_string(dqdimacs);
  std::cout << "parsed DQBF: " << formula.num_universals()
            << " universals, " << formula.num_existentials()
            << " existentials\n";

  manthan::aig::Aig manager;
  manthan::core::Manthan3 synthesizer;
  const manthan::core::SynthesisResult result =
      synthesizer.synthesize(formula, manager);

  if (result.status != manthan::core::SynthesisStatus::kRealizable) {
    std::cout << "synthesis did not produce a vector (status "
              << static_cast<int>(result.status) << ")\n";
    return 1;
  }

  std::cout << "synthesized a Henkin vector: samples="
            << result.stats.samples
            << " counterexamples=" << result.stats.counterexamples
            << " repairs=" << result.stats.repairs << "\n";
  std::cout << "incremental pipeline: cones_encoded="
            << result.stats.cones_encoded
            << " cones_reused=" << result.stats.cones_reused
            << " activations_retired=" << result.stats.activations_retired
            << " verify_vars=" << result.stats.verify_vars
            << " phi_vars=" << result.stats.phi_vars << "\n";
  std::cout << "memory: peak_rss=" << result.stats.peak_rss_bytes / 1024
            << "KiB sample_matrix=" << result.stats.sample_matrix_bytes
            << "B verify_arena=" << result.stats.verify_arena_bytes
            << "B aig_nodes=" << result.stats.aig_nodes << "\n";
  for (std::size_t i = 0; i < result.vector.functions.size(); ++i) {
    const auto support = manager.support(result.vector.functions[i]);
    std::cout << "  y" << i + 1 << " = function of {";
    for (std::size_t k = 0; k < support.size(); ++k) {
      std::cout << (k ? "," : "") << 'x' << support[k] + 1;
    }
    std::cout << "}  (" << manager.cone_size(result.vector.functions[i])
              << " AND nodes)\n";
  }

  const manthan::dqbf::CertificateResult cert =
      manthan::dqbf::check_certificate(formula, manager, result.vector);
  std::cout << "independent certificate check: "
            << (cert.status == manthan::dqbf::CertificateStatus::kValid
                    ? "VALID"
                    : "INVALID")
            << "\n";
  return cert.status == manthan::dqbf::CertificateStatus::kValid ? 0 : 1;
}
