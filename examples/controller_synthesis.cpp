// Partial-observation controller synthesis (a DQBF application the paper
// cites): each control output may only read the state/disturbance bits it
// observes — exactly a Henkin dependency restriction. Full observation is
// realizable; blinding an input usually makes the objective impossible,
// which the engines prove.
#include <iostream>

#include "aig/aig.hpp"
#include "baselines/hqs_lite.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "portfolio/runner.hpp"
#include "workloads/workloads.hpp"

namespace {

void run_variant(bool fully_observable) {
  manthan::workloads::ControllerParams params;
  params.state_bits = 3;
  params.disturbance_bits = 2;
  params.control_bits = 2;
  params.fully_observable = fully_observable;
  params.update_gates = 5;
  params.seed = 7;
  const manthan::dqbf::DqbfFormula game =
      manthan::workloads::gen_controller(params);

  std::cout << (fully_observable ? "[full observation]"
                                 : "[blinded sensors ]")
            << " plant with " << params.state_bits << " state bits, "
            << params.disturbance_bits << " disturbance bits, "
            << params.control_bits << " control outputs\n";

  manthan::aig::Aig manager;
  manthan::core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  manthan::core::Manthan3 synthesizer(options);
  const manthan::core::SynthesisResult result =
      synthesizer.synthesize(game, manager);

  switch (result.status) {
    case manthan::core::SynthesisStatus::kRealizable: {
      const auto cert =
          manthan::dqbf::check_certificate(game, manager, result.vector);
      std::cout << "  controller synthesized; certificate "
                << (cert.status == manthan::dqbf::CertificateStatus::kValid
                        ? "VALID"
                        : "INVALID")
                << "\n";
      for (std::size_t j = 0; j < params.control_bits; ++j) {
        std::cout << "  u" << j << " reads "
                  << manager.support(result.vector.functions[j]).size()
                  << " signals, "
                  << manager.cone_size(result.vector.functions[j])
                  << " AND nodes\n";
      }
      break;
    }
    case manthan::core::SynthesisStatus::kUnrealizable:
      std::cout << "  proven: no controller exists under this "
                   "observation structure\n";
      break;
    default: {
      std::cout << "  Manthan3 gave up ("
                << manthan::portfolio::status_name(result.status)
                << "); asking the elimination engine for a verdict\n";
      manthan::aig::Aig manager2;
      manthan::baselines::HqsLiteOptions hqs_options;
      hqs_options.time_limit_seconds = 30.0;
      manthan::baselines::HqsLite hqs(hqs_options);
      const auto verdict = hqs.synthesize(game, manager2);
      std::cout << "  HqsLite: "
                << manthan::portfolio::status_name(verdict.status) << "\n";
      break;
    }
  }
}

}  // namespace

int main() {
  run_variant(/*fully_observable=*/true);
  run_variant(/*fully_observable=*/false);
  return 0;
}
