// manthan3d — the synthesis service as a long-running daemon.
//
// Watches a queue directory for `*.dqdimacs` request files, routes each
// through one engine::Service (shared scheduler pool, admission policy,
// two-tier result cache), and writes `<name>.result.json` next to every
// answered request: status, engine, cache/race provenance, the canonical
// spec fingerprint, engine counters, and the certified functions as an
// embedded BLIF netlist. Duplicate requests — byte-identical or merely
// isomorphic (renamed variables, shuffled clauses) — are answered from
// the result cache without touching a worker.
//
// SIGINT/SIGTERM flip a cancel token: the current request stops at its
// next engine poll (no result file is written, so the next daemon start
// re-runs it), queued requests stay untouched, and the process exits
// after the service drains. Requests already answered keep their result
// files, so restarts are idempotent.
//
// Usage:
//   manthan3d --queue DIR [options]
//     --queue <dir>       queue directory (required)
//     --workers <n>       scheduler workers (default: hardware)
//     --timeout <s>       per-request budget in seconds (default 60)
//     --seed <n>          service seed (default 42)
//     --once              drain the queue once and exit
//     --poll-ms <n>       sleep between drains (default 200)
//     --max-requests <n>  stop after n requests (0 = unlimited)
//     --no-cache          disable the tier-1 result cache
//     --cache-dir <dir>   persist the tier-1 cache (reloaded at startup,
//                         so a restarted daemon answers repeats warm)
//     --max-attempts <n>  executions per request before quarantine to
//                         failed/ (default 3)
//     --retry-base-ms <n> base of the exponential retry backoff
//     --mem-budget-mb <n> per-request growth-site memory budget (0 = off)
//     --conflict-budget <n>  per-request SAT-conflict budget (0 = off)
//     --faults <spec>     fault-injection schedule (chaos testing; same
//                         grammar as MANTHAN_FAULTS)
//     --stats-json <f>    write service counters to f (rewritten
//                         atomically after every drain cycle, so a killed
//                         daemon leaves fresh counters behind)
//     --trace <f>         Chrome trace, rewritten after every drain
//     --metrics-json <f>  metrics snapshot as JSON, ditto
//     --metrics-prom <f>  Prometheus text exposition, ditto
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "engine/daemon.hpp"
#include "engine/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/fault.hpp"

namespace {

// Signal handler target: cancel() is a relaxed atomic store, safe in a
// handler context.
manthan::util::CancelToken g_stop;

extern "C" void handle_signal(int) { g_stop.cancel(); }

struct CliOptions {
  std::string queue_dir;
  std::size_t workers = 0;
  double timeout = 60.0;
  std::uint64_t seed = 42;
  bool once = false;
  int poll_ms = 200;
  std::size_t max_requests = 0;
  bool use_cache = true;
  std::string cache_dir;
  std::size_t max_attempts = 3;
  double retry_base_ms = 200.0;
  std::uint64_t mem_budget_mb = 0;
  std::uint64_t conflict_budget = 0;
  std::string faults;
  std::string stats_json;
  std::string trace_path;
  std::string metrics_json;
  std::string metrics_prom;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --queue DIR [--workers N] [--timeout S] [--seed N]"
               " [--once] [--poll-ms N] [--max-requests N] [--no-cache]"
               " [--cache-dir D] [--max-attempts N] [--retry-base-ms N]"
               " [--mem-budget-mb N] [--conflict-budget N] [--faults SPEC]"
               " [--stats-json F] [--trace F] [--metrics-json F]"
               " [--metrics-prom F]\n";
  return 2;
}

/// Service counters as JSON, written atomically (temp + rename): a
/// SIGKILL between drains leaves the last complete snapshot, never a
/// torn file.
void write_stats(const std::string& path,
                 const manthan::engine::ServiceStats& stats) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"requests\": " << stats.requests << ",\n";
  out << "  \"completed\": " << stats.completed << ",\n";
  out << "  \"tier1_hits\": " << stats.tier1_hits << ",\n";
  out << "  \"tier1_misses\": " << stats.tier1_misses << ",\n";
  out << "  \"coalesced\": " << stats.coalesced << ",\n";
  out << "  \"races\": " << stats.races << ",\n";
  out << "  \"single_runs\": " << stats.single_runs << ",\n";
  out << "  \"cancelled\": " << stats.cancelled << ",\n";
  out << "  \"cache_entries\": " << stats.cache_entries << ",\n";
  out << "  \"cache_evictions\": " << stats.cache_evictions << ",\n";
  out << "  \"analysis_unique_hits\": " << stats.analysis.unique_hits << ",\n";
  out << "  \"analysis_dependency_hits\": " << stats.analysis.dependency_hits
      << "\n";
  out << "}\n";
  manthan::obs::write_file_atomic(path, out.str());
}

/// Rewrite every requested telemetry file. Called after each drain cycle
/// and once more at shutdown; all writes are temp + rename.
void write_telemetry(const CliOptions& cli,
                     const manthan::engine::Service& service) {
  if (!cli.stats_json.empty()) write_stats(cli.stats_json, service.stats());
  if (!cli.trace_path.empty()) {
    manthan::obs::write_trace_json_atomic(cli.trace_path);
  }
  if (!cli.metrics_json.empty()) {
    manthan::obs::write_file_atomic(
        cli.metrics_json, manthan::obs::Registry::global().to_json());
  }
  if (!cli.metrics_prom.empty()) {
    manthan::obs::write_file_atomic(
        cli.metrics_prom, manthan::obs::Registry::global().to_prometheus());
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--queue") {
      cli.queue_dir = next("--queue");
    } else if (arg == "--workers") {
      cli.workers = std::stoul(next("--workers"));
    } else if (arg == "--timeout") {
      cli.timeout = std::stod(next("--timeout"));
    } else if (arg == "--seed") {
      cli.seed = std::stoull(next("--seed"));
    } else if (arg == "--once") {
      cli.once = true;
    } else if (arg == "--poll-ms") {
      cli.poll_ms = std::stoi(next("--poll-ms"));
    } else if (arg == "--max-requests") {
      cli.max_requests = std::stoul(next("--max-requests"));
    } else if (arg == "--no-cache") {
      cli.use_cache = false;
    } else if (arg == "--cache-dir") {
      cli.cache_dir = next("--cache-dir");
    } else if (arg == "--max-attempts") {
      cli.max_attempts = std::stoul(next("--max-attempts"));
    } else if (arg == "--retry-base-ms") {
      cli.retry_base_ms = std::stod(next("--retry-base-ms"));
    } else if (arg == "--mem-budget-mb") {
      cli.mem_budget_mb = std::stoull(next("--mem-budget-mb"));
    } else if (arg == "--conflict-budget") {
      cli.conflict_budget = std::stoull(next("--conflict-budget"));
    } else if (arg == "--faults") {
      cli.faults = next("--faults");
    } else if (arg == "--stats-json") {
      cli.stats_json = next("--stats-json");
    } else if (arg == "--trace") {
      cli.trace_path = next("--trace");
    } else if (arg == "--metrics-json") {
      cli.metrics_json = next("--metrics-json");
    } else if (arg == "--metrics-prom") {
      cli.metrics_prom = next("--metrics-prom");
    } else {
      return usage(argv[0]);
    }
  }
  if (cli.queue_dir.empty()) return usage(argv[0]);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  if (!cli.trace_path.empty()) manthan::obs::start_tracing();
  if (!cli.faults.empty()) {
    try {
      manthan::util::fault::install(cli.faults);
    } catch (const std::exception& e) {
      std::cerr << "bad --faults spec: " << e.what() << "\n";
      return 2;
    }
  }

  manthan::engine::ServiceOptions service_options;
  service_options.workers = cli.workers;
  service_options.default_time_limit_seconds = cli.timeout;
  service_options.seed = cli.seed;
  service_options.result_cache = cli.use_cache;
  service_options.cache_dir = cli.cache_dir;
  service_options.default_budget.memory_bytes =
      cli.mem_budget_mb * 1024 * 1024;
  service_options.default_budget.conflicts = cli.conflict_budget;
  manthan::engine::Service service(service_options);

  manthan::engine::DaemonOptions daemon_options;
  daemon_options.queue_dir = cli.queue_dir;
  daemon_options.max_requests = cli.max_requests;
  daemon_options.stop = &g_stop;
  daemon_options.use_cache = cli.use_cache;
  daemon_options.max_attempts = cli.max_attempts;
  daemon_options.retry_base_ms = cli.retry_base_ms;

  std::cout << "manthan3d: serving " << cli.queue_dir << " with "
            << service.worker_count() << " workers\n";

  std::size_t total_processed = 0;
  while (!g_stop.cancelled()) {
    const manthan::engine::DrainReport report =
        drain_queue(service, daemon_options);
    total_processed += report.processed;
    // Telemetry files are freshest-complete-state: rewritten after every
    // drain so a killed daemon still leaves usable counters and traces.
    write_telemetry(cli, service);
    for (const auto& record : report.records) {
      const char* outcome =
          record.malformed      ? "malformed"
          : record.cancelled    ? "cancelled"
          : record.quarantined  ? "quarantined"
          : record.deferred     ? "deferred"
          : record.retried      ? "retried"
                                : manthan::engine::status_name(record.status);
      std::cout << record.path << ": " << outcome
                << (record.cache_hit ? " (cached)" : "");
      if (record.attempts > 1) {
        std::cout << " (attempt " << record.attempts << ")";
      }
      std::cout << " in " << record.seconds << "s\n";
    }
    if (cli.once || g_stop.cancelled()) break;
    if (cli.max_requests != 0 && total_processed >= cli.max_requests) break;
    // Sleep in short slices so a signal ends the poll wait promptly.
    for (int waited = 0; waited < cli.poll_ms && !g_stop.cancelled();
         waited += 20) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  service.shutdown();
  const manthan::engine::ServiceStats stats = service.stats();
  write_telemetry(cli, service);
  std::cout << "manthan3d: " << stats.requests << " requests, "
            << stats.tier1_hits << " cache hits, " << stats.races
            << " races; shutting down\n";
  return 0;
}
