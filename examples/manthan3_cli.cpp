// manthan3_cli — command-line Henkin synthesizer.
//
// Reads a DQDIMACS file (or a built-in demo instance with --demo), runs
// the selected engine, certifies the result, and optionally writes the
// synthesized functions as a BLIF or Verilog netlist.
//
// Usage:
//   manthan3_cli [options] [instance.dqdimacs]
//     --engine manthan3|hqs|pedant   engine selection (default manthan3)
//     --timeout <seconds>            per-run budget (default 60)
//     --preprocess                   run HqspreLite first
//     --no-unique                    disable unique-definition extraction
//     --blif <file>                  write functions as BLIF
//     --verilog <file>               write functions as Verilog
//     --seed <n>                     engine seed
//     --demo                         use the paper's worked example
//     --planted <seed>               solve a generated planted instance
//     --trace <file>                 write a Chrome trace of the run
//     --metrics-json <file>          write a metrics snapshot as JSON
//     --metrics-prom <file>          write Prometheus text exposition
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>

#include "aig/aig_io.hpp"
#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqdimacs.hpp"
#include "engine/service.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "portfolio/runner.hpp"
#include "preprocess/hqspre_lite.hpp"
#include "util/simd.hpp"
#include "workloads/workloads.hpp"

namespace {

const char* kDemo =
    "c DATE'23 paper, Example 1\n"
    "p cnf 6 7\n"
    "a 1 2 3 0\n"
    "d 4 1 0\n"
    "d 5 1 2 0\n"
    "d 6 2 3 0\n"
    "1 4 0\n"
    "-5 4 -2 0\n"
    "5 -4 0\n"
    "5 2 0\n"
    "-6 2 3 0\n"
    "6 -2 0\n"
    "6 -3 0\n";

// SIGINT/SIGTERM flip the token; the engines observe it at their next
// deadline poll, return a truncated kTimeout result, and the normal exit
// path still flushes --trace/--metrics-json — an interrupted run reports
// its telemetry instead of vanishing.
manthan::util::CancelToken g_interrupt;

extern "C" void cli_handle_signal(int) { g_interrupt.cancel(); }

struct CliOptions {
  std::string engine = "manthan3";
  double timeout = 60.0;
  bool preprocess = false;
  bool unique = true;
  bool demo = false;
  bool planted = false;
  std::uint64_t planted_seed = 1;
  std::string blif_path;
  std::string verilog_path;
  std::string trace_path;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  std::string input_path;
  std::uint64_t seed = 42;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--engine manthan3|hqs|pedant] [--timeout S]"
               " [--preprocess] [--no-unique] [--blif F] [--verilog F]"
               " [--trace F] [--metrics-json F] [--metrics-prom F]"
               " [--seed N] (--demo | --planted SEED | instance.dqdimacs)\n";
  return 2;
}

/// Flush telemetry to the files requested on the command line. Called on
/// every exit path after the solve so even UNREALIZABLE runs report.
void write_telemetry(const CliOptions& cli) {
  if (!cli.trace_path.empty()) {
    if (manthan::obs::write_trace_json_atomic(cli.trace_path)) {
      std::cout << "wrote " << cli.trace_path << " ("
                << manthan::obs::trace_event_count() << " events)\n";
    } else {
      std::cerr << "cannot write " << cli.trace_path << "\n";
    }
  }
  if (!cli.metrics_json_path.empty()) {
    manthan::obs::write_file_atomic(
        cli.metrics_json_path, manthan::obs::Registry::global().to_json());
    std::cout << "wrote " << cli.metrics_json_path << "\n";
  }
  if (!cli.metrics_prom_path.empty()) {
    manthan::obs::write_file_atomic(
        cli.metrics_prom_path,
        manthan::obs::Registry::global().to_prometheus());
    std::cout << "wrote " << cli.metrics_prom_path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--engine") {
      cli.engine = next("--engine");
    } else if (arg == "--timeout") {
      cli.timeout = std::stod(next("--timeout"));
    } else if (arg == "--preprocess") {
      cli.preprocess = true;
    } else if (arg == "--no-unique") {
      cli.unique = false;
    } else if (arg == "--blif") {
      cli.blif_path = next("--blif");
    } else if (arg == "--verilog") {
      cli.verilog_path = next("--verilog");
    } else if (arg == "--seed") {
      cli.seed = std::stoull(next("--seed"));
    } else if (arg == "--demo") {
      cli.demo = true;
    } else if (arg == "--planted") {
      cli.planted = true;
      cli.planted_seed = std::stoull(next("--planted"));
    } else if (arg == "--trace") {
      cli.trace_path = next("--trace");
    } else if (arg == "--metrics-json") {
      cli.metrics_json_path = next("--metrics-json");
    } else if (arg == "--metrics-prom") {
      cli.metrics_prom_path = next("--metrics-prom");
    } else if (arg == "--help" || arg == "-h") {
      return usage(argv[0]);
    } else if (!arg.empty() && arg[0] != '-') {
      cli.input_path = arg;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return usage(argv[0]);
    }
  }
  if (!cli.demo && !cli.planted && cli.input_path.empty()) {
    return usage(argv[0]);
  }
  if (!cli.trace_path.empty()) manthan::obs::start_tracing();
  // Export the service_* series (zero-valued: the CLI solves in-process)
  // so one scrape config covers the CLI and the daemon alike.
  if (!cli.metrics_json_path.empty() || !cli.metrics_prom_path.empty()) {
    manthan::engine::register_service_metrics();
  }

  // --- load -----------------------------------------------------------
  manthan::dqbf::DqbfFormula original;
  try {
    if (cli.planted) {
      // Same planted-family shape the core micro-benchmarks exercise:
      // nested dependency chains, tree-learnable functions, enough
      // clauses to force several verify/repair rounds.
      manthan::workloads::PlantedParams params;
      params.num_universals = 12;
      params.num_existentials = 6;
      params.dep_size = 4;
      params.function_gates = 6;
      params.num_clauses = 80;
      params.seed = cli.planted_seed;
      params.nested_deps = true;
      params.dep_size_max = 10;
      original = manthan::workloads::gen_planted(params);
    } else if (cli.demo) {
      original = manthan::dqbf::parse_dqdimacs_string(kDemo);
    } else {
      std::ifstream in(cli.input_path);
      if (!in) {
        std::cerr << "cannot open " << cli.input_path << "\n";
        return 2;
      }
      original = manthan::dqbf::parse_dqdimacs(in);
    }
  } catch (const std::exception& e) {
    std::cerr << "parse error: " << e.what() << "\n";
    return 2;
  }
  std::cout << "instance: " << original.num_universals() << " universals, "
            << original.num_existentials() << " existentials, "
            << original.matrix().num_clauses() << " clauses\n";

  // --- preprocess (optional) --------------------------------------------
  manthan::preprocess::PreprocessResult pre;
  const manthan::dqbf::DqbfFormula* to_solve = &original;
  if (cli.preprocess) {
    pre = manthan::preprocess::HqspreLite().run(original);
    if (pre.proven_false) {
      std::cout << "result: UNREALIZABLE (preprocessing)\n";
      return 20;
    }
    std::cout << "preprocessed: " << pre.simplified.matrix().num_clauses()
              << " clauses, " << pre.eliminated.size()
              << " outputs eliminated\n";
    to_solve = &pre.simplified;
  }

  // --- solve -------------------------------------------------------------
  std::signal(SIGINT, cli_handle_signal);
  std::signal(SIGTERM, cli_handle_signal);
  manthan::aig::Aig manager;
  manthan::core::SynthesisResult result;
  if (cli.engine == "manthan3") {
    manthan::core::Manthan3Options options;
    options.time_limit_seconds = cli.timeout;
    options.use_unique_extraction = cli.unique;
    options.seed = cli.seed;
    options.cancel = &g_interrupt;
    result = manthan::core::Manthan3(options).synthesize(*to_solve, manager);
  } else if (cli.engine == "hqs") {
    manthan::baselines::HqsLiteOptions options;
    options.time_limit_seconds = cli.timeout;
    options.cancel = &g_interrupt;
    result = manthan::baselines::HqsLite(options).synthesize(*to_solve,
                                                             manager);
  } else if (cli.engine == "pedant") {
    manthan::baselines::PedantLiteOptions options;
    options.time_limit_seconds = cli.timeout;
    options.cancel = &g_interrupt;
    result =
        manthan::baselines::PedantLite(options).synthesize(*to_solve,
                                                           manager);
  } else {
    std::cerr << "unknown engine " << cli.engine << "\n";
    return usage(argv[0]);
  }
  if (g_interrupt.cancelled()) {
    std::cout << "interrupted: truncated "
              << manthan::portfolio::status_name(result.status)
              << " result after " << result.stats.total_seconds << " s\n";
  }

  std::cout << "engine: " << cli.engine << ", status: "
            << manthan::portfolio::status_name(result.status) << " ("
            << result.stats.total_seconds << " s, "
            << result.stats.counterexamples << " counterexamples, "
            << result.stats.repairs << " repairs)\n";
  if (cli.engine == "manthan3") {
    // Incremental-pipeline accounting: how much encoding work the
    // persistent solvers avoided and reclaimed across the run.
    std::cout << "incremental: " << result.stats.cones_encoded
              << " cones encoded, " << result.stats.cones_reused
              << " reused, " << result.stats.aig_nodes_encoded
              << " AIG nodes Tseitin'd, " << result.stats.activations_retired
              << " activations retired\n"
              << "solvers: verify " << result.stats.verify_vars << " vars / "
              << result.stats.verify_clauses_retired
              << " clauses retired, phi+maxsat " << result.stats.phi_vars
              << " vars / " << result.stats.phi_clauses_retired
              << " clauses retired\n"
              << "reuse: " << result.stats.samples_appended
              << " counterexample samples appended ("
              << result.stats.gk_streamed_samples << " streamed from G_k), "
              << result.stats.refit_rounds << " refit rounds ("
              << result.stats.adaptive_refits << " adaptive) / "
              << result.stats.refit_candidates << " candidates refit\n";
    std::cout << "simd: " << manthan::util::simd::tier_name(
                     manthan::util::simd::active_tier())
              << " data path\n";
    std::cout << "memory: peak RSS "
              << result.stats.peak_rss_bytes / (1024 * 1024) << " MiB, "
              << "sample matrix " << result.stats.sample_matrix_bytes / 1024
              << " KiB, verify arena "
              << result.stats.verify_arena_bytes / 1024
              << " KiB, phi arena " << result.stats.phi_arena_bytes / 1024
              << " KiB, AIG " << result.stats.aig_nodes << " nodes ("
              << result.stats.aig_bytes / 1024 << " KiB)\n";
  }
  write_telemetry(cli);
  if (result.status == manthan::core::SynthesisStatus::kUnrealizable) {
    std::cout << "result: UNREALIZABLE\n";
    return 20;
  }
  if (result.status != manthan::core::SynthesisStatus::kRealizable) {
    return 1;
  }

  // --- reconstruct + certify ----------------------------------------------
  std::vector<manthan::aig::Ref> functions = result.vector.functions;
  if (cli.preprocess) {
    functions = manthan::preprocess::HqspreLite::reconstruct(
        original, pre, functions);
  }
  manthan::dqbf::HenkinVector vector{functions};
  const auto cert =
      manthan::dqbf::check_certificate(original, manager, vector);
  if (cert.status != manthan::dqbf::CertificateStatus::kValid) {
    std::cout << "result: INVALID CERTIFICATE (engine bug!)\n";
    return 1;
  }
  std::cout << "result: REALIZABLE, certificate valid\n";

  // --- export --------------------------------------------------------------
  std::vector<manthan::aig::NamedFunction> named;
  for (std::size_t i = 0; i < functions.size(); ++i) {
    named.push_back({"y" + std::to_string(
                              original.existentials()[i].var + 1),
                     functions[i]});
  }
  if (!cli.blif_path.empty()) {
    std::ofstream out(cli.blif_path);
    manthan::aig::write_blif(out, manager, "henkin_functions", named);
    std::cout << "wrote " << cli.blif_path << "\n";
  }
  if (!cli.verilog_path.empty()) {
    std::ofstream out(cli.verilog_path);
    manthan::aig::write_verilog(out, manager, "henkin_functions", named);
    std::cout << "wrote " << cli.verilog_path << "\n";
  }
  return 10;  // SAT-style exit code for realizable
}
