// Binary decision-tree learning (ID3 with the Gini impurity measure).
//
// Role in the paper: scikit-learn's DecisionTreeClassifier. CandidateHkF
// (Algorithm 2) fits one tree per existential variable: rows are sampled
// models, features are the Henkin dependencies H_i plus admissible Y
// variables, labels are the sampled values of y_i. The candidate function
// is the disjunction of all root-to-leaf paths ending in a leaf labeled 1,
// extracted here directly as an AIG.
//
// Two fitting paths produce bit-identical trees from the same data:
//   * the packed path consumes a cnf::SampleMatrix view directly — split
//     statistics are popcounts over (active & column [& label]) words,
//     with one active-row bitmask per tree node, so a feature scan costs
//     features x words instead of features x samples bit reads; the word
//     loops run through the runtime-dispatched util::simd kernels
//     (scalar/AVX2/AVX-512, all bit-identical);
//   * the row-wise path over std::vector<bool> rows is kept as the
//     differential oracle (and for callers without packed data). Counts,
//     Gini arithmetic, tie-break rotation, and recursion order match the
//     packed path exactly, which the test suite pins.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/sample_matrix.hpp"

namespace manthan::dtree {

struct DtreeOptions {
  /// Maximum tree depth; 0 means unlimited.
  std::size_t max_depth = 0;
  /// Do not split nodes with fewer samples than this.
  std::size_t min_samples_split = 2;
  /// Minimum Gini gain required to accept a split.
  double min_gain = 1e-9;
  /// Stream seed for split tie-breaking: the feature scan at each node is
  /// rotated by splitmix64(seed + depth), so equal-gain splits resolve
  /// differently (but deterministically) per stream. Manthan3 derives one
  /// stream per existential with util::derive_seed, which keeps parallel
  /// candidate learning bit-identical to serial. 0 keeps the natural
  /// feature order.
  std::uint64_t seed = 0;
};

/// A fitted tree. Node 0 is the root; leaves carry the predicted label.
class DecisionTree {
 public:
  struct Node {
    std::int32_t feature = -1;  // -1 for leaves
    std::int32_t lo = -1;       // child for feature == false
    std::int32_t hi = -1;       // child for feature == true
    bool label = false;         // leaf prediction

    bool operator==(const Node& o) const {
      return feature == o.feature && lo == o.lo && hi == o.hi &&
             label == o.label;
    }
  };

  /// Fit from dense boolean rows. `rows[s][f]` is feature f of sample s.
  static DecisionTree fit(const std::vector<std::vector<bool>>& rows,
                          const std::vector<bool>& labels,
                          const DtreeOptions& options = {});

  /// Fit from a bit-packed matrix: feature f of sample s is
  /// data.value(s, feature_vars[f]), its label data.value(s, label_var).
  /// Split counting runs popcount over masked 64-sample words. Produces
  /// exactly the tree the row-wise overload fits on the unpacked data.
  static DecisionTree fit(const cnf::SampleMatrix& data,
                          const std::vector<cnf::Var>& feature_vars,
                          cnf::Var label_var,
                          const DtreeOptions& options = {});

  bool predict(const std::vector<bool>& row) const;

  /// Build the path formula: OR over all root-to-leaf(1) paths of the AND
  /// of edge literals. `feature_refs[f]` supplies the AIG edge for
  /// feature f.
  aig::Ref to_aig(aig::Aig& manager,
                  const std::vector<aig::Ref>& feature_refs) const;

  /// Features actually used by some internal node.
  std::vector<std::int32_t> used_features() const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_leaves() const;
  std::size_t depth() const;
  const std::vector<Node>& nodes() const { return nodes_; }

 private:
  std::int32_t build(const std::vector<std::vector<bool>>& rows,
                     const std::vector<bool>& labels,
                     std::vector<std::uint32_t>& indices, std::size_t depth,
                     const DtreeOptions& options);
  std::int32_t build_packed(const std::vector<const std::uint64_t*>& cols,
                            const std::uint64_t* label, std::size_t words,
                            const util::simd::AlignedVector<std::uint64_t>& active,
                            std::size_t depth, const DtreeOptions& options);
  std::int32_t build_sparse(const std::vector<const std::uint64_t*>& cols,
                            const std::uint64_t* label,
                            const std::vector<std::uint32_t>& indices,
                            std::size_t depth, const DtreeOptions& options);

  std::vector<Node> nodes_;
};

}  // namespace manthan::dtree
