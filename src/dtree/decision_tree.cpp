#include "dtree/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "util/rng.hpp"

namespace manthan::dtree {

namespace {

/// Gini impurity of a (pos, total) split part.
double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

}  // namespace

DecisionTree DecisionTree::fit(const std::vector<std::vector<bool>>& rows,
                               const std::vector<bool>& labels,
                               const DtreeOptions& options) {
  assert(rows.size() == labels.size());
  DecisionTree tree;
  std::vector<std::uint32_t> indices(rows.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<std::uint32_t>(i);
  }
  if (rows.empty()) {
    tree.nodes_.push_back({-1, -1, -1, false});
  } else {
    tree.build(rows, labels, indices, 0, options);
  }
  return tree;
}

std::int32_t DecisionTree::build(const std::vector<std::vector<bool>>& rows,
                                 const std::vector<bool>& labels,
                                 std::vector<std::uint32_t>& indices,
                                 std::size_t depth,
                                 const DtreeOptions& options) {
  const std::size_t total = indices.size();
  std::size_t positives = 0;
  for (const std::uint32_t i : indices) {
    if (labels[i]) ++positives;
  }
  const bool majority = positives * 2 >= total;

  const auto make_leaf = [&](bool label) {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({-1, -1, -1, label});
    return id;
  };

  const bool pure = positives == 0 || positives == total;
  const bool depth_capped =
      options.max_depth != 0 && depth >= options.max_depth;
  if (pure || depth_capped || total < options.min_samples_split) {
    return make_leaf(majority);
  }

  // Choose the feature with the best Gini gain. The scan order is rotated
  // by the stream seed so exact gain ties (strict > keeps the first
  // maximum) break differently per stream.
  const std::size_t num_features = rows[0].size();
  const double parent_impurity = gini(positives, total);
  double best_gain = options.min_gain;
  std::int32_t best_feature = -1;
  const std::size_t start =
      options.seed == 0 || num_features == 0
          ? 0
          : static_cast<std::size_t>(
                util::splitmix64(options.seed + depth) % num_features);
  for (std::size_t step = 0; step < num_features; ++step) {
    const std::size_t f = (start + step) % num_features;
    std::size_t hi_total = 0;
    std::size_t hi_pos = 0;
    for (const std::uint32_t i : indices) {
      if (rows[i][f]) {
        ++hi_total;
        if (labels[i]) ++hi_pos;
      }
    }
    const std::size_t lo_total = total - hi_total;
    const std::size_t lo_pos = positives - hi_pos;
    if (hi_total == 0 || lo_total == 0) continue;  // useless split
    const double weighted =
        (static_cast<double>(hi_total) * gini(hi_pos, hi_total) +
         static_cast<double>(lo_total) * gini(lo_pos, lo_total)) /
        static_cast<double>(total);
    const double gain = parent_impurity - weighted;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = static_cast<std::int32_t>(f);
    }
  }
  if (best_feature < 0) return make_leaf(majority);

  std::vector<std::uint32_t> lo_indices;
  std::vector<std::uint32_t> hi_indices;
  for (const std::uint32_t i : indices) {
    (rows[i][static_cast<std::size_t>(best_feature)] ? hi_indices
                                                     : lo_indices)
        .push_back(i);
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({best_feature, -1, -1, false});
  const std::int32_t lo = build(rows, labels, lo_indices, depth + 1, options);
  const std::int32_t hi = build(rows, labels, hi_indices, depth + 1, options);
  nodes_[static_cast<std::size_t>(id)].lo = lo;
  nodes_[static_cast<std::size_t>(id)].hi = hi;
  return id;
}

bool DecisionTree::predict(const std::vector<bool>& row) const {
  std::int32_t n = 0;
  while (nodes_[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    n = row[static_cast<std::size_t>(node.feature)] ? node.hi : node.lo;
  }
  return nodes_[static_cast<std::size_t>(n)].label;
}

aig::Ref DecisionTree::to_aig(aig::Aig& manager,
                              const std::vector<aig::Ref>& feature_refs) const {
  // Disjunction over all paths from the root to leaves labeled 1
  // (Algorithm 2, lines 7-10).
  std::vector<aig::Ref> paths;
  std::vector<aig::Ref> prefix;
  const std::function<void(std::int32_t)> walk = [&](std::int32_t n) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.feature < 0) {
      if (node.label) paths.push_back(manager.and_all(prefix));
      return;
    }
    const aig::Ref f = feature_refs[static_cast<std::size_t>(node.feature)];
    prefix.push_back(aig::ref_not(f));
    walk(node.lo);
    prefix.back() = f;
    walk(node.hi);
    prefix.pop_back();
  };
  walk(0);
  return manager.or_all(paths);
}

std::vector<std::int32_t> DecisionTree::used_features() const {
  std::vector<std::int32_t> features;
  for (const Node& n : nodes_) {
    if (n.feature >= 0) features.push_back(n.feature);
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());
  return features;
}

std::size_t DecisionTree::num_leaves() const {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    if (n.feature < 0) ++count;
  }
  return count;
}

std::size_t DecisionTree::depth() const {
  // Depth via recursive descent (trees are small).
  const std::function<std::size_t(std::int32_t)> walk =
      [&](std::int32_t n) -> std::size_t {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.feature < 0) return 0;
    return 1 + std::max(walk(node.lo), walk(node.hi));
  };
  return walk(0);
}

}  // namespace manthan::dtree
