#include "dtree/decision_tree.hpp"

#include <algorithm>
#include <cassert>
#include <functional>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace manthan::dtree {

namespace {

/// Gini impurity of a (pos, total) split part.
double gini(std::size_t pos, std::size_t total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / static_cast<double>(total);
  return 2.0 * p * (1.0 - p);
}

// The node-level policy is shared by all three builders (row-wise oracle,
// packed, sparse) through the two helpers below; only the (hi_total,
// hi_pos) counting differs per representation. One implementation of the
// leaf guards and the seed-rotated Gini scan is what keeps the paths
// bit-identical — the invariant the differential suite pins.

/// Whether a node with these statistics stops as a leaf.
bool stop_as_leaf(std::size_t total, std::size_t positives,
                  std::size_t depth, const DtreeOptions& options) {
  const bool pure = positives == 0 || positives == total;
  const bool depth_capped =
      options.max_depth != 0 && depth >= options.max_depth;
  return pure || depth_capped || total < options.min_samples_split;
}

/// Best-Gini-gain feature, or -1 when nothing clears options.min_gain.
/// `count(f, hi_total, hi_pos)` supplies the split statistics of feature
/// f. The scan order is rotated by the stream seed so exact gain ties
/// (strict > keeps the first maximum) break differently per stream.
template <typename CountFn>
std::int32_t choose_split(std::size_t num_features, std::size_t total,
                          std::size_t positives, std::size_t depth,
                          const DtreeOptions& options, CountFn count) {
  const double parent_impurity = gini(positives, total);
  double best_gain = options.min_gain;
  std::int32_t best_feature = -1;
  const std::size_t start =
      options.seed == 0 || num_features == 0
          ? 0
          : static_cast<std::size_t>(
                util::splitmix64(options.seed + depth) % num_features);
  for (std::size_t step = 0; step < num_features; ++step) {
    const std::size_t f = (start + step) % num_features;
    std::size_t hi_total = 0;
    std::size_t hi_pos = 0;
    count(f, hi_total, hi_pos);
    const std::size_t lo_total = total - hi_total;
    const std::size_t lo_pos = positives - hi_pos;
    if (hi_total == 0 || lo_total == 0) continue;  // useless split
    const double weighted =
        (static_cast<double>(hi_total) * gini(hi_pos, hi_total) +
         static_cast<double>(lo_total) * gini(lo_pos, lo_total)) /
        static_cast<double>(total);
    const double gain = parent_impurity - weighted;
    if (gain > best_gain) {
      best_gain = gain;
      best_feature = static_cast<std::int32_t>(f);
    }
  }
  return best_feature;
}

}  // namespace

DecisionTree DecisionTree::fit(const std::vector<std::vector<bool>>& rows,
                               const std::vector<bool>& labels,
                               const DtreeOptions& options) {
  assert(rows.size() == labels.size());
  DecisionTree tree;
  std::vector<std::uint32_t> indices(rows.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = static_cast<std::uint32_t>(i);
  }
  if (rows.empty()) {
    tree.nodes_.push_back({-1, -1, -1, false});
  } else {
    tree.build(rows, labels, indices, 0, options);
  }
  return tree;
}

std::int32_t DecisionTree::build(const std::vector<std::vector<bool>>& rows,
                                 const std::vector<bool>& labels,
                                 std::vector<std::uint32_t>& indices,
                                 std::size_t depth,
                                 const DtreeOptions& options) {
  const std::size_t total = indices.size();
  std::size_t positives = 0;
  for (const std::uint32_t i : indices) {
    if (labels[i]) ++positives;
  }
  const bool majority = positives * 2 >= total;

  const auto make_leaf = [&](bool label) {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({-1, -1, -1, label});
    return id;
  };

  if (stop_as_leaf(total, positives, depth, options)) {
    return make_leaf(majority);
  }

  const std::size_t num_features = rows[0].size();
  const std::int32_t best_feature = choose_split(
      num_features, total, positives, depth, options,
      [&](std::size_t f, std::size_t& hi_total, std::size_t& hi_pos) {
        for (const std::uint32_t i : indices) {
          if (rows[i][f]) {
            ++hi_total;
            if (labels[i]) ++hi_pos;
          }
        }
      });
  if (best_feature < 0) return make_leaf(majority);

  std::vector<std::uint32_t> lo_indices;
  std::vector<std::uint32_t> hi_indices;
  for (const std::uint32_t i : indices) {
    (rows[i][static_cast<std::size_t>(best_feature)] ? hi_indices
                                                     : lo_indices)
        .push_back(i);
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({best_feature, -1, -1, false});
  const std::int32_t lo = build(rows, labels, lo_indices, depth + 1, options);
  const std::int32_t hi = build(rows, labels, hi_indices, depth + 1, options);
  nodes_[static_cast<std::size_t>(id)].lo = lo;
  nodes_[static_cast<std::size_t>(id)].hi = hi;
  return id;
}

DecisionTree DecisionTree::fit(const cnf::SampleMatrix& data,
                               const std::vector<cnf::Var>& feature_vars,
                               cnf::Var label_var,
                               const DtreeOptions& options) {
  DecisionTree tree;
  if (data.empty()) {
    tree.nodes_.push_back({-1, -1, -1, false});
    return tree;
  }
  const std::size_t words = data.num_words();
  std::vector<const std::uint64_t*> cols;
  cols.reserve(feature_vars.size());
  for (const cnf::Var v : feature_vars) cols.push_back(data.column(v));
  // Root active mask: every sample. Column tail bits beyond num_samples()
  // are zero by construction, so child masks (active & col, active & ~col)
  // never resurrect tail bits once the root mask clears them.
  util::simd::AlignedVector<std::uint64_t> active(words, ~0ULL);
  active[words - 1] = data.tail_mask();
  tree.build_packed(cols, data.column(label_var), words, active, 0, options);
  return tree;
}

namespace {

/// Below this active-row count a node's split scan switches from masked
/// popcounts (which always touch every word of every column) to reading
/// the active rows' bits individually: deep trees spend most of their
/// nodes on a few dozen rows spread thinly across the whole matrix, where
/// per-row reads beat per-word popcounts. Pure cost switch — the counts,
/// and therefore the trees, are unchanged.
constexpr std::size_t kSparseRowsPerWord = 2;

}  // namespace

// Mirrors build() decision for decision: the counting lambda feeds the
// shared stop_as_leaf/choose_split policy, and children recurse
// lo-then-hi — so both paths emit the same node array. test_dtree pins
// this.
std::int32_t DecisionTree::build_packed(
    const std::vector<const std::uint64_t*>& cols, const std::uint64_t* label,
    std::size_t words, const util::simd::AlignedVector<std::uint64_t>& active,
    std::size_t depth, const DtreeOptions& options) {
  const util::simd::Kernels& kernels = util::simd::kernels();
  std::size_t total = 0;
  std::size_t positives = 0;
  kernels.count_node(active.data(), label, words, &total, &positives);
  if (total < kSparseRowsPerWord * words) {
    // Sparse node: unpack the mask into row indices once and count by
    // row from here down.
    std::vector<std::uint32_t> indices;
    indices.reserve(total);
    util::simd::collect_set_bits(active.data(), words, indices);
    return build_sparse(cols, label, indices, depth, options);
  }
  const bool majority = positives * 2 >= total;

  const auto make_leaf = [&](bool leaf_label) {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({-1, -1, -1, leaf_label});
    return id;
  };

  if (stop_as_leaf(total, positives, depth, options)) {
    return make_leaf(majority);
  }

  const std::int32_t best_feature = choose_split(
      cols.size(), total, positives, depth, options,
      [&](std::size_t f, std::size_t& hi_total, std::size_t& hi_pos) {
        // popcount(active & col) and popcount(active & col & label): the
        // (hi_total, hi_pos) split statistics of one feature, fused in
        // one pass through the active kernel tier.
        kernels.count_split(active.data(), cols[f], label, words, &hi_total,
                            &hi_pos);
      });
  if (best_feature < 0) return make_leaf(majority);

  const std::uint64_t* best_col =
      cols[static_cast<std::size_t>(best_feature)];
  util::simd::AlignedVector<std::uint64_t> lo_active(words);
  util::simd::AlignedVector<std::uint64_t> hi_active(words);
  kernels.split_masks(active.data(), best_col, hi_active.data(),
                      lo_active.data(), words);
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({best_feature, -1, -1, false});
  const std::int32_t lo =
      build_packed(cols, label, words, lo_active, depth + 1, options);
  const std::int32_t hi =
      build_packed(cols, label, words, hi_active, depth + 1, options);
  nodes_[static_cast<std::size_t>(id)].lo = lo;
  nodes_[static_cast<std::size_t>(id)].hi = hi;
  return id;
}

std::int32_t DecisionTree::build_sparse(
    const std::vector<const std::uint64_t*>& cols, const std::uint64_t* label,
    const std::vector<std::uint32_t>& indices, std::size_t depth,
    const DtreeOptions& options) {
  const auto bit_at = [](const std::uint64_t* col, std::uint32_t s) {
    return (col[s >> 6] >> (s & 63)) & 1u;
  };
  const std::size_t total = indices.size();
  std::size_t positives = 0;
  for (const std::uint32_t s : indices) positives += bit_at(label, s);
  const bool majority = positives * 2 >= total;

  const auto make_leaf = [&](bool leaf_label) {
    const auto id = static_cast<std::int32_t>(nodes_.size());
    nodes_.push_back({-1, -1, -1, leaf_label});
    return id;
  };

  if (stop_as_leaf(total, positives, depth, options)) {
    return make_leaf(majority);
  }

  const std::int32_t best_feature = choose_split(
      cols.size(), total, positives, depth, options,
      [&](std::size_t f, std::size_t& hi_total, std::size_t& hi_pos) {
        const std::uint64_t* col = cols[f];
        for (const std::uint32_t s : indices) {
          if (bit_at(col, s) != 0) {
            ++hi_total;
            hi_pos += bit_at(label, s);
          }
        }
      });
  if (best_feature < 0) return make_leaf(majority);

  const std::uint64_t* best_col =
      cols[static_cast<std::size_t>(best_feature)];
  std::vector<std::uint32_t> lo_indices;
  std::vector<std::uint32_t> hi_indices;
  for (const std::uint32_t s : indices) {
    (bit_at(best_col, s) != 0 ? hi_indices : lo_indices).push_back(s);
  }
  const auto id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back({best_feature, -1, -1, false});
  const std::int32_t lo =
      build_sparse(cols, label, lo_indices, depth + 1, options);
  const std::int32_t hi =
      build_sparse(cols, label, hi_indices, depth + 1, options);
  nodes_[static_cast<std::size_t>(id)].lo = lo;
  nodes_[static_cast<std::size_t>(id)].hi = hi;
  return id;
}

bool DecisionTree::predict(const std::vector<bool>& row) const {
  std::int32_t n = 0;
  while (nodes_[static_cast<std::size_t>(n)].feature >= 0) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    n = row[static_cast<std::size_t>(node.feature)] ? node.hi : node.lo;
  }
  return nodes_[static_cast<std::size_t>(n)].label;
}

aig::Ref DecisionTree::to_aig(aig::Aig& manager,
                              const std::vector<aig::Ref>& feature_refs) const {
  // Disjunction over all paths from the root to leaves labeled 1
  // (Algorithm 2, lines 7-10).
  std::vector<aig::Ref> paths;
  std::vector<aig::Ref> prefix;
  const std::function<void(std::int32_t)> walk = [&](std::int32_t n) {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.feature < 0) {
      if (node.label) paths.push_back(manager.and_all(prefix));
      return;
    }
    const aig::Ref f = feature_refs[static_cast<std::size_t>(node.feature)];
    prefix.push_back(aig::ref_not(f));
    walk(node.lo);
    prefix.back() = f;
    walk(node.hi);
    prefix.pop_back();
  };
  walk(0);
  return manager.or_all(paths);
}

std::vector<std::int32_t> DecisionTree::used_features() const {
  std::vector<std::int32_t> features;
  for (const Node& n : nodes_) {
    if (n.feature >= 0) features.push_back(n.feature);
  }
  std::sort(features.begin(), features.end());
  features.erase(std::unique(features.begin(), features.end()),
                 features.end());
  return features;
}

std::size_t DecisionTree::num_leaves() const {
  std::size_t count = 0;
  for (const Node& n : nodes_) {
    if (n.feature < 0) ++count;
  }
  return count;
}

std::size_t DecisionTree::depth() const {
  // Depth via recursive descent (trees are small).
  const std::function<std::size_t(std::int32_t)> walk =
      [&](std::int32_t n) -> std::size_t {
    const Node& node = nodes_[static_cast<std::size_t>(n)];
    if (node.feature < 0) return 0;
    return 1 + std::max(walk(node.lo), walk(node.hi));
  };
  return walk(0);
}

}  // namespace manthan::dtree
