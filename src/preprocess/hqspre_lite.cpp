#include "preprocess/hqspre_lite.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace manthan::preprocess {

using cnf::Clause;
using cnf::Lit;
using dqbf::Var;

namespace {

/// Normalize a clause: sort, dedupe; returns nullopt for tautologies.
std::optional<Clause> normalize(Clause clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return std::nullopt;
  }
  return clause;
}

}  // namespace

PreprocessResult HqspreLite::run(const dqbf::DqbfFormula& formula) const {
  PreprocessResult result;
  PreprocessStats& stats = result.stats;

  // Working clause set (normalized, deduplicated).
  std::set<Clause> clauses;
  for (const Clause& c : formula.matrix().clauses()) {
    const std::optional<Clause> n = normalize(c);
    if (!n.has_value()) {
      ++stats.tautologies_removed;
      continue;
    }
    clauses.insert(*n);
  }

  // Forced constants for existentials discovered so far.
  std::map<Var, bool> forced;
  // Existentials dropped by pure-literal elimination (value recorded).
  const auto is_existential = [&](Var v) { return formula.is_existential(v); };

  bool changed = true;
  while (changed && !result.proven_false) {
    changed = false;
    ++stats.rounds;

    // --- universal reduction -------------------------------------------
    {
      std::set<Clause> next;
      for (const Clause& c : clauses) {
        Clause reduced;
        for (const Lit l : c) {
          if (!formula.is_universal(l.var())) {
            reduced.push_back(l);
            continue;
          }
          // Keep the universal literal only if some existential in the
          // clause may depend on it.
          bool needed = false;
          for (const Lit other : c) {
            if (!is_existential(other.var())) continue;
            const auto& deps =
                formula.existentials()[formula.existential_index(
                                           other.var())]
                    .deps;
            if (std::binary_search(deps.begin(), deps.end(), l.var())) {
              needed = true;
              break;
            }
          }
          if (needed) {
            reduced.push_back(l);
          } else {
            ++stats.universal_literals_reduced;
            changed = true;
          }
        }
        if (reduced.empty()) {
          // Clause with no admissible literal left: the formula is False.
          result.proven_false = true;
          break;
        }
        next.insert(reduced);
      }
      if (result.proven_false) break;
      clauses = std::move(next);
    }

    // --- existential unit propagation -----------------------------------
    {
      std::optional<Lit> unit;
      for (const Clause& c : clauses) {
        if (c.size() == 1) {
          if (formula.is_universal(c[0].var())) {
            // A universal unit clause is falsified by the opposite value.
            result.proven_false = true;
          } else {
            unit = c[0];
          }
          break;
        }
      }
      if (result.proven_false) break;
      if (unit.has_value()) {
        const Var v = unit->var();
        const bool value = !unit->negated();
        const auto it = forced.find(v);
        if (it != forced.end() && it->second != value) {
          result.proven_false = true;
          break;
        }
        forced[v] = value;
        ++stats.units_propagated;
        changed = true;
        std::set<Clause> next;
        for (const Clause& c : clauses) {
          if (std::binary_search(c.begin(), c.end(), *unit)) continue;
          Clause filtered;
          for (const Lit l : c) {
            if (l != ~*unit) filtered.push_back(l);
          }
          if (filtered.empty()) {
            result.proven_false = true;
            break;
          }
          next.insert(filtered);
        }
        if (result.proven_false) break;
        clauses = std::move(next);
      }
    }

    // --- existential pure literals ---------------------------------------
    {
      // occurrence polarity per existential: 1 = pos seen, 2 = neg seen.
      std::map<Var, int> polarity;
      for (const Clause& c : clauses) {
        for (const Lit l : c) {
          if (!is_existential(l.var())) continue;
          polarity[l.var()] |= l.negated() ? 2 : 1;
        }
      }
      std::optional<Lit> pure;
      for (const auto& [v, mask] : polarity) {
        if (mask == 1) {
          pure = cnf::pos(v);
          break;
        }
        if (mask == 2) {
          pure = cnf::neg(v);
          break;
        }
      }
      if (pure.has_value()) {
        forced[pure->var()] = !pure->negated();
        ++stats.pure_literals_eliminated;
        changed = true;
        std::set<Clause> next;
        for (const Clause& c : clauses) {
          if (!std::binary_search(c.begin(), c.end(), *pure)) {
            next.insert(c);
          }
        }
        clauses = std::move(next);
      }
    }

    // --- subsumption ------------------------------------------------------
    {
      std::set<Clause> next;
      for (const Clause& c : clauses) {
        bool subsumed = false;
        for (const Clause& d : clauses) {
          if (d.size() >= c.size() || d == c) continue;
          if (std::includes(c.begin(), c.end(), d.begin(), d.end())) {
            subsumed = true;
            break;
          }
        }
        if (subsumed) {
          ++stats.clauses_subsumed;
          changed = true;
        } else {
          next.insert(c);
        }
      }
      clauses = std::move(next);
    }
  }

  if (result.proven_false) {
    result.simplified = dqbf::DqbfFormula();
    return result;
  }

  // Rebuild the simplified formula: same quantifier prefix minus the
  // eliminated existentials.
  dqbf::DqbfFormula out;
  for (const Var x : formula.universals()) out.add_universal(x);
  for (const dqbf::Existential& e : formula.existentials()) {
    const auto it = forced.find(e.var);
    if (it != forced.end()) {
      result.eliminated.emplace_back(e.var, it->second);
    } else {
      out.add_existential(e.var, e.deps);
    }
  }
  out.matrix().ensure_vars(formula.matrix().num_vars());
  for (const Clause& c : clauses) out.matrix().add_clause(c);
  result.simplified = std::move(out);
  return result;
}

std::vector<aig::Ref> HqspreLite::reconstruct(
    const dqbf::DqbfFormula& original, const PreprocessResult& result,
    const std::vector<aig::Ref>& simplified_functions) {
  std::map<Var, aig::Ref> function_of;
  const auto& kept = result.simplified.existentials();
  for (std::size_t i = 0; i < kept.size(); ++i) {
    function_of[kept[i].var] = simplified_functions[i];
  }
  for (const auto& [v, value] : result.eliminated) {
    function_of[v] = aig::Aig::constant(value);
  }
  std::vector<aig::Ref> functions;
  functions.reserve(original.existentials().size());
  for (const dqbf::Existential& e : original.existentials()) {
    functions.push_back(function_of.at(e.var));
  }
  return functions;
}

}  // namespace manthan::preprocess
