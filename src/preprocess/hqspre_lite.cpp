#include "preprocess/hqspre_lite.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "sat/simplify.hpp"

namespace manthan::preprocess {

using cnf::Clause;
using cnf::Lit;
using dqbf::Var;

namespace {

/// Normalize a clause: sort, dedupe; returns nullopt for tautologies.
std::optional<Clause> normalize(Clause clause) {
  std::sort(clause.begin(), clause.end());
  clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
  for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
    if (clause[i].var() == clause[i + 1].var()) return std::nullopt;
  }
  return clause;
}

constexpr std::size_t kNoClause = static_cast<std::size_t>(-1);

/// Occurrence-list clause database shared by all passes of one run().
///
/// Clauses are normalized (sorted, duplicate-free) and immutable once
/// stored; every transformation erases the old record and inserts the
/// rewritten one. Occurrence lists are lazily stale: erase() leaves the
/// entries in place and lookups re-check `alive` (and membership, for
/// rewritten clauses). Each clause carries its 64-bit variable
/// abstraction (sat/simplify.hpp) so the subsumption passes screen
/// candidate pairs with one AND+compare instead of a merge scan — this
/// replaces the previous O(n²) std::set sweep.
struct ClauseDb {
  std::vector<Clause> clauses;
  std::vector<std::uint64_t> abst;
  std::vector<char> alive;
  std::vector<std::vector<std::size_t>> occ;  // literal code -> clause ids
  std::set<Clause> dedup;                     // the live clause *set*
  std::size_t live = 0;

  explicit ClauseDb(std::size_t num_vars) : occ(2 * num_vars) {}

  /// Store a normalized clause; returns its id, or kNoClause when an
  /// identical live clause already exists.
  std::size_t insert(Clause c) {
    if (!dedup.insert(c).second) return kNoClause;
    const std::size_t id = clauses.size();
    abst.push_back(sat::clause_abstraction(c));
    alive.push_back(1);
    for (const Lit l : c) {
      const auto code = static_cast<std::size_t>(l.code());
      if (code >= occ.size()) occ.resize(code + 1);
      occ[code].push_back(id);
    }
    clauses.push_back(std::move(c));
    ++live;
    return id;
  }

  void erase(std::size_t id) {
    if (alive[id] == 0) return;
    alive[id] = 0;
    --live;
    dedup.erase(clauses[id]);
  }

  bool contains(std::size_t id, Lit l) const {
    const Clause& c = clauses[id];
    return std::binary_search(c.begin(), c.end(), l);
  }
};

}  // namespace

PreprocessResult HqspreLite::run(const dqbf::DqbfFormula& formula) const {
  PreprocessResult result;
  PreprocessStats& stats = result.stats;

  ClauseDb db(static_cast<std::size_t>(formula.matrix().num_vars()));
  for (const Clause& c : formula.matrix().clauses()) {
    const std::optional<Clause> n = normalize(c);
    if (!n.has_value()) {
      ++stats.tautologies_removed;
      continue;
    }
    db.insert(*n);
  }

  // Forced constants for existentials discovered so far.
  std::map<Var, bool> forced;
  const auto is_existential = [&](Var v) { return formula.is_existential(v); };

  // Record a forced constant, reporting a conflict with an earlier
  // (opposite) decision as proven_false instead of overwriting it.
  const auto force = [&](Var v, bool value) {
    const auto it = forced.find(v);
    if (it != forced.end()) {
      if (it->second != value) result.proven_false = true;
      return false;  // already recorded
    }
    forced.emplace(v, value);
    return true;
  };

  bool changed = true;
  while (changed && !result.proven_false) {
    changed = false;
    ++stats.rounds;

    // --- universal reduction (DQBF-aware, stays local) -------------------
    // A universal literal is deleted when no existential in the clause may
    // depend on its variable; a clause reduced to nothing falsifies the
    // formula.
    {
      const std::size_t end = db.clauses.size();
      for (std::size_t id = 0; id < end && !result.proven_false; ++id) {
        if (db.alive[id] == 0) continue;
        const Clause& c = db.clauses[id];
        Clause reduced;
        reduced.reserve(c.size());
        for (const Lit l : c) {
          if (!formula.is_universal(l.var())) {
            reduced.push_back(l);
            continue;
          }
          bool needed = false;
          for (const Lit other : c) {
            if (!is_existential(other.var())) continue;
            const auto& deps =
                formula.existentials()[formula.existential_index(other.var())]
                    .deps;
            if (std::binary_search(deps.begin(), deps.end(), l.var())) {
              needed = true;
              break;
            }
          }
          if (needed) {
            reduced.push_back(l);
          } else {
            ++stats.universal_literals_reduced;
            changed = true;
          }
        }
        if (reduced.size() == c.size()) continue;
        db.erase(id);
        if (reduced.empty()) {
          result.proven_false = true;
          break;
        }
        db.insert(std::move(reduced));
      }
      if (result.proven_false) break;
    }

    // --- existential unit propagation ------------------------------------
    // All current units seed a queue that is propagated to fixpoint within
    // the round (strengthening a clause to a new unit re-enters the queue).
    {
      std::vector<Lit> queue;
      for (std::size_t id = 0; id < db.clauses.size(); ++id) {
        if (db.alive[id] != 0 && db.clauses[id].size() == 1) {
          queue.push_back(db.clauses[id][0]);
        }
      }
      for (std::size_t qi = 0; qi < queue.size() && !result.proven_false;
           ++qi) {
        const Lit unit = queue[qi];
        if (formula.is_universal(unit.var())) {
          // A universal unit clause is falsified by the opposite value.
          result.proven_false = true;
          break;
        }
        // An earlier unit of the opposite polarity makes the formula
        // False; the same polarity is already applied.
        if (!force(unit.var(), !unit.negated())) continue;
        ++stats.units_propagated;
        changed = true;
        for (const std::size_t id :
             db.occ[static_cast<std::size_t>(unit.code())]) {
          if (db.alive[id] != 0 && db.contains(id, unit)) db.erase(id);
        }
        const Lit fal = ~unit;
        for (const std::size_t id :
             db.occ[static_cast<std::size_t>(fal.code())]) {
          if (db.alive[id] == 0 || !db.contains(id, fal)) continue;
          Clause filtered;
          filtered.reserve(db.clauses[id].size() - 1);
          for (const Lit l : db.clauses[id]) {
            if (l != fal) filtered.push_back(l);
          }
          db.erase(id);
          if (filtered.empty()) {
            result.proven_false = true;
            break;
          }
          if (filtered.size() == 1) queue.push_back(filtered[0]);
          db.insert(std::move(filtered));
        }
      }
      if (result.proven_false) break;
    }

    // --- existential pure literals ---------------------------------------
    {
      // Occurrence polarity per existential: 1 = pos seen, 2 = neg seen.
      std::map<Var, int> polarity;
      for (std::size_t id = 0; id < db.clauses.size(); ++id) {
        if (db.alive[id] == 0) continue;
        for (const Lit l : db.clauses[id]) {
          if (!is_existential(l.var())) continue;
          polarity[l.var()] |= l.negated() ? 2 : 1;
        }
      }
      for (const auto& [v, mask] : polarity) {
        if (result.proven_false) break;
        if (mask == 3) continue;
        // Eliminating an earlier pure literal removes clauses, so the
        // snapshot polarity may be stale; recheck against the live set
        // before committing.
        bool has_pos = false;
        bool has_neg = false;
        for (const std::size_t id :
             db.occ[static_cast<std::size_t>(cnf::pos(v).code())]) {
          if (db.alive[id] != 0 && db.contains(id, cnf::pos(v))) {
            has_pos = true;
            break;
          }
        }
        for (const std::size_t id :
             db.occ[static_cast<std::size_t>(cnf::neg(v).code())]) {
          if (db.alive[id] != 0 && db.contains(id, cnf::neg(v))) {
            has_neg = true;
            break;
          }
        }
        if (has_pos == has_neg) continue;  // mixed again, or gone entirely
        const Lit pure = has_pos ? cnf::pos(v) : cnf::neg(v);
        // A unit may already have forced the opposite value; that is a
        // conflict (proven_false), not a silent overwrite.
        if (!force(v, !pure.negated())) continue;
        ++stats.pure_literals_eliminated;
        changed = true;
        for (const std::size_t id :
             db.occ[static_cast<std::size_t>(pure.code())]) {
          if (db.alive[id] != 0 && db.contains(id, pure)) db.erase(id);
        }
      }
      if (result.proven_false) break;
    }

    // --- subsumption + self-subsuming resolution -------------------------
    // Occurrence-list driven via the shared kernels in sat/simplify.hpp:
    // each clause c removes its supersets (scanning only the occurrence
    // list of its rarest literal) and strengthens near-supersets d ⊇
    // (c \ {q}) ∪ {~q} to d \ {~q}. The strengthening is pointwise sound —
    // any assignment satisfying c and d satisfies the resolvent, which
    // subsumes d — so no quantifier-prefix restriction is needed.
    {
      std::vector<std::size_t> queue;
      for (std::size_t id = 0; id < db.clauses.size(); ++id) {
        if (db.alive[id] != 0) queue.push_back(id);
      }
      for (std::size_t qi = 0; qi < queue.size() && !result.proven_false;
           ++qi) {
        const std::size_t c = queue[qi];
        if (db.alive[c] == 0) continue;
        // Inserting strengthened clauses below reallocates the database
        // vectors; work off copies of c's clause and abstraction.
        const Clause cc = db.clauses[c];
        const std::uint64_t ca = db.abst[c];
        Lit pivot = cnf::kUndefLit;
        std::size_t pivot_occ = 0;
        for (const Lit l : cc) {
          const std::size_t n = db.occ[static_cast<std::size_t>(l.code())].size();
          if (!pivot.valid() || n < pivot_occ) {
            pivot = l;
            pivot_occ = n;
          }
        }
        for (const std::size_t d :
             db.occ[static_cast<std::size_t>(pivot.code())]) {
          if (d == c || db.alive[d] == 0) continue;
          if (db.clauses[d].size() <= cc.size()) continue;  // live set deduped
          if (!sat::abstraction_subsumes(ca, db.abst[d])) continue;
          if (sat::subsumes_sorted(cc, db.clauses[d])) {
            db.erase(d);
            ++stats.clauses_subsumed;
            changed = true;
          }
        }
        for (const Lit q : cc) {
          if (db.alive[c] == 0 || result.proven_false) break;
          const auto nq_code = static_cast<std::size_t>((~q).code());
          // Index loop: a strengthened clause may still contain ~q, so
          // its insertion can grow (and reallocate) this occurrence list.
          for (std::size_t oi = 0; oi < db.occ[nq_code].size(); ++oi) {
            const std::size_t d = db.occ[nq_code][oi];
            if (db.alive[d] == 0 || db.clauses[d].size() < cc.size()) continue;
            if (!sat::abstraction_subsumes(ca, db.abst[d])) continue;
            const Lit rem = sat::self_subsumes_sorted(cc, db.clauses[d]);
            if (!rem.valid()) continue;
            Clause strengthened;
            strengthened.reserve(db.clauses[d].size() - 1);
            for (const Lit l : db.clauses[d]) {
              if (l != rem) strengthened.push_back(l);
            }
            db.erase(d);
            ++stats.literals_strengthened;
            changed = true;
            if (strengthened.empty()) {
              result.proven_false = true;  // q and ~q both derived
              break;
            }
            const std::size_t nid = db.insert(std::move(strengthened));
            if (nid != kNoClause) queue.push_back(nid);
          }
        }
      }
      if (result.proven_false) break;
    }
  }

  if (result.proven_false) {
    result.simplified = dqbf::DqbfFormula();
    return result;
  }

  // Rebuild the simplified formula: same quantifier prefix minus the
  // eliminated existentials.
  dqbf::DqbfFormula out;
  for (const Var x : formula.universals()) out.add_universal(x);
  for (const dqbf::Existential& e : formula.existentials()) {
    const auto it = forced.find(e.var);
    if (it != forced.end()) {
      result.eliminated.emplace_back(e.var, it->second);
    } else {
      out.add_existential(e.var, e.deps);
    }
  }
  out.matrix().ensure_vars(formula.matrix().num_vars());
  for (const Clause& c : db.dedup) out.matrix().add_clause(c);
  result.simplified = std::move(out);
  return result;
}

std::vector<aig::Ref> HqspreLite::reconstruct(
    const dqbf::DqbfFormula& original, const PreprocessResult& result,
    const std::vector<aig::Ref>& simplified_functions) {
  std::map<Var, aig::Ref> function_of;
  const auto& kept = result.simplified.existentials();
  for (std::size_t i = 0; i < kept.size(); ++i) {
    function_of[kept[i].var] = simplified_functions[i];
  }
  for (const auto& [v, value] : result.eliminated) {
    function_of[v] = aig::Aig::constant(value);
  }
  std::vector<aig::Ref> functions;
  functions.reserve(original.existentials().size());
  for (const dqbf::Existential& e : original.existentials()) {
    functions.push_back(function_of.at(e.var));
  }
  return functions;
}

}  // namespace manthan::preprocess
