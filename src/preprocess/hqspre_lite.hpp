// HqspreLite — a DQBF preprocessor in the spirit of HQSpre (Wimmer et
// al., TACAS 2017), which the paper's evaluation discusses explicitly
// (HQS2 invokes it implicitly; Pedant degrades with it; Manthan3 runs
// without it).
//
// Implemented sound DQBF-preserving transformations:
//   * tautology and duplicate-literal removal,
//   * universal reduction: a universal literal x is deleted from a clause
//     when no existential literal of that clause may depend on x,
//   * detection of False-by-universal-unit: a clause left with only
//     universal literals (or empty) falsifies the formula,
//   * existential unit propagation: a unit existential fixes its function
//     to a constant and simplifies the matrix,
//   * existential pure-literal elimination: an existential occurring with
//     one polarity only is fixed to the satisfying constant,
//   * subsumption elimination and self-subsuming resolution (pointwise
//     sound, so no quantifier-prefix restriction applies).
//
// The clause passes run over an occurrence-list database with 64-bit
// clause abstractions, sharing the screening/subset kernels in
// sat/simplify.hpp with the SAT solver's inprocessing engine; only the
// DQBF-aware universal reduction stays local.
//
// Eliminated existentials are recorded on a reconstruction stack so a
// Henkin vector of the simplified formula extends to one of the original
// formula (reconstruct()).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "dqbf/dqbf.hpp"

namespace manthan::preprocess {

struct PreprocessStats {
  std::size_t tautologies_removed = 0;
  std::size_t universal_literals_reduced = 0;
  std::size_t units_propagated = 0;
  std::size_t pure_literals_eliminated = 0;
  std::size_t clauses_subsumed = 0;
  std::size_t literals_strengthened = 0;
  std::size_t rounds = 0;
};

struct PreprocessResult {
  /// The simplified formula; existentials keep their variable ids (some
  /// may have been eliminated — they no longer occur in the matrix and
  /// are *absent* from simplified.existentials()).
  dqbf::DqbfFormula simplified;
  /// False detected during preprocessing (empty / all-universal clause).
  bool proven_false = false;
  /// Constants assigned to eliminated existentials (var, value).
  std::vector<std::pair<dqbf::Var, bool>> eliminated;
  PreprocessStats stats;
};

class HqspreLite {
 public:
  /// Run simplification to fixpoint.
  PreprocessResult run(const dqbf::DqbfFormula& formula) const;

  /// Extend a Henkin vector of the simplified formula to the original
  /// one: functions for eliminated variables are the recorded constants.
  /// `simplified_functions` is indexed like result.simplified
  /// .existentials(); the return is indexed like original.existentials().
  static std::vector<aig::Ref> reconstruct(
      const dqbf::DqbfFormula& original, const PreprocessResult& result,
      const std::vector<aig::Ref>& simplified_functions);
};

}  // namespace manthan::preprocess
