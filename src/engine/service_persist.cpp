// Crash-durable tier-1 cache: one text file per definitive entry.
//
// Format (version 1), all-ASCII so a truncated write is detectable by
// line structure alone:
//
//   manthan3-cache 1
//   fp <32 hex digits>
//   mode <u32>
//   status <status_name>
//   engine <engine_name>
//   certified <0|1>
//   raced <0|1>
//   solve_seconds <double>
//   stat <name> <value>          (one line per SynthesisStats field)
//   roots <k>
//   inputs <id...>               (when the cones read any input: the
//                                 original input ids, ascending)
//   end-header
//   <ASCII AIGER payload when k > 0>
//
// The AIGER writer numbers inputs densely in ascending id order, which
// loses the matrix-variable ids the cone inputs carry — and
// ResultCone::import_into maps inputs by id. The `inputs` line records
// the original id of each dense AIGER input so the reload can rebuild
// the cone over the right variables.
//
// Unknown `stat` names are skipped on load (forward compatibility);
// anything else malformed — bad magic, missing field, AIGER parse error,
// root-count mismatch — skips the entry, never aborts the service.
// Files are written through obs::write_file_atomic (tmp + rename), so a
// crash mid-store leaves either the old file or a stray .tmp, never a
// half entry under the real name.

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <unordered_map>
#include <vector>

#include "aig/aiger.hpp"
#include "engine/service.hpp"
#include "obs/metrics.hpp"

namespace manthan::engine {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMagic = "manthan3-cache 1";
constexpr const char* kExtension = ".m3c";

struct SizeField {
  const char* name;
  std::size_t core::SynthesisStats::*member;
};
struct U64Field {
  const char* name;
  std::uint64_t core::SynthesisStats::*member;
};
struct DoubleField {
  const char* name;
  double core::SynthesisStats::*member;
};

// Every SynthesisStats field, by name: the envelope stays valid when
// fields are appended (old readers skip, new readers default to zero).
const SizeField kSizeFields[] = {
    {"samples", &core::SynthesisStats::samples},
    {"unique_defined", &core::SynthesisStats::unique_defined},
    {"learned_candidates", &core::SynthesisStats::learned_candidates},
    {"counterexamples", &core::SynthesisStats::counterexamples},
    {"repairs", &core::SynthesisStats::repairs},
    {"repair_checks", &core::SynthesisStats::repair_checks},
    {"maxsat_calls", &core::SynthesisStats::maxsat_calls},
    {"learn_workers", &core::SynthesisStats::learn_workers},
    {"cones_encoded", &core::SynthesisStats::cones_encoded},
    {"cones_reused", &core::SynthesisStats::cones_reused},
    {"aig_nodes_encoded", &core::SynthesisStats::aig_nodes_encoded},
    {"activations_retired", &core::SynthesisStats::activations_retired},
    {"verify_vars", &core::SynthesisStats::verify_vars},
    {"verify_clauses_retired", &core::SynthesisStats::verify_clauses_retired},
    {"phi_vars", &core::SynthesisStats::phi_vars},
    {"phi_clauses_retired", &core::SynthesisStats::phi_clauses_retired},
    {"inprocess_runs", &core::SynthesisStats::inprocess_runs},
    {"eliminated_vars", &core::SynthesisStats::eliminated_vars},
    {"subsumed_clauses", &core::SynthesisStats::subsumed_clauses},
    {"vivified_literals", &core::SynthesisStats::vivified_literals},
    {"remapped_vars", &core::SynthesisStats::remapped_vars},
    {"samples_appended", &core::SynthesisStats::samples_appended},
    {"refit_rounds", &core::SynthesisStats::refit_rounds},
    {"refit_candidates", &core::SynthesisStats::refit_candidates},
    {"gk_streamed_samples", &core::SynthesisStats::gk_streamed_samples},
    {"adaptive_refits", &core::SynthesisStats::adaptive_refits},
    {"analysis_unique_hits", &core::SynthesisStats::analysis_unique_hits},
    {"analysis_dependency_hits",
     &core::SynthesisStats::analysis_dependency_hits},
};

const U64Field kU64Fields[] = {
    {"peak_rss_bytes", &core::SynthesisStats::peak_rss_bytes},
    {"sample_matrix_bytes", &core::SynthesisStats::sample_matrix_bytes},
    {"verify_arena_bytes", &core::SynthesisStats::verify_arena_bytes},
    {"phi_arena_bytes", &core::SynthesisStats::phi_arena_bytes},
    {"aig_nodes", &core::SynthesisStats::aig_nodes},
    {"aig_bytes", &core::SynthesisStats::aig_bytes},
};

const DoubleField kDoubleFields[] = {
    {"sampling_seconds", &core::SynthesisStats::sampling_seconds},
    {"learning_seconds", &core::SynthesisStats::learning_seconds},
    {"verify_seconds", &core::SynthesisStats::verify_seconds},
    {"repair_seconds", &core::SynthesisStats::repair_seconds},
    {"total_seconds", &core::SynthesisStats::total_seconds},
};

std::string format_double(double value) {
  std::ostringstream out;
  out.precision(17);
  out << value;
  return out.str();
}

bool parse_u64(const std::string& text, std::uint64_t& out, int base = 10) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto result = std::from_chars(begin, end, out, base);
  return result.ec == std::errc() && result.ptr == end;
}

bool parse_double(const std::string& text, double& out) {
  try {
    std::size_t consumed = 0;
    out = std::stod(text, &consumed);
    return consumed == text.size();
  } catch (...) {
    return false;
  }
}

bool parse_fingerprint(const std::string& hex, dqbf::Fingerprint& fp) {
  if (hex.size() != 32) return false;
  return parse_u64(hex.substr(0, 16), fp.hi, 16) &&
         parse_u64(hex.substr(16, 16), fp.lo, 16);
}

/// Split "key value" (value may contain further spaces for `stat` lines).
bool split_kv(const std::string& line, std::string& key, std::string& value) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || space == 0) return false;
  key = line.substr(0, space);
  value = line.substr(space + 1);
  return !value.empty();
}

// The typed ServiceMetrics block is file-local to service.cpp; the
// registry's get-or-create lookup reaches the same instruments.
obs::Gauge& persisted_entries_gauge() {
  return obs::Registry::global().gauge("cache_persisted_entries");
}

/// Union of the cones' primary-input ids, ascending — exactly the dense
/// input order write_aiger_ascii emits, so position k of this list is
/// the original id of AIGER input k.
std::vector<std::int32_t> cone_input_ids(const aig::Aig& manager,
                                         const std::vector<aig::Ref>& roots) {
  std::vector<std::int32_t> ids;
  for (const aig::Ref root : roots) {
    for (const std::uint32_t idx : aig::cone_topo_order(manager, root)) {
      const std::int32_t input_id = manager.node(idx).input_id;
      if (input_id >= 0) ids.push_back(input_id);
    }
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

}  // namespace

std::string Service::persist_filename(const CacheKey& key) {
  return dqbf::to_string(key.fp) + "-" + std::to_string(key.mode) + kExtension;
}

std::string Service::encode_persisted(const CacheKey& key,
                                      const ServiceResponse& response) {
  std::ostringstream out;
  out << kMagic << '\n';
  out << "fp " << dqbf::to_string(key.fp) << '\n';
  out << "mode " << key.mode << '\n';
  out << "status " << status_name(response.status) << '\n';
  out << "engine " << engine_name(response.engine) << '\n';
  out << "certified " << (response.certified ? 1 : 0) << '\n';
  out << "raced " << (response.raced ? 1 : 0) << '\n';
  out << "solve_seconds " << format_double(response.solve_seconds) << '\n';
  for (const SizeField& f : kSizeFields) {
    out << "stat " << f.name << ' ' << response.stats.*f.member << '\n';
  }
  for (const U64Field& f : kU64Fields) {
    out << "stat " << f.name << ' ' << response.stats.*f.member << '\n';
  }
  for (const DoubleField& f : kDoubleFields) {
    out << "stat " << f.name << ' ' << format_double(response.stats.*f.member)
        << '\n';
  }
  const std::size_t roots =
      response.functions != nullptr ? response.functions->roots().size() : 0;
  out << "roots " << roots << '\n';
  if (roots > 0) {
    const std::vector<std::int32_t> inputs = cone_input_ids(
        response.functions->manager(), response.functions->roots());
    if (!inputs.empty()) {
      out << "inputs";
      for (const std::int32_t id : inputs) out << ' ' << id;
      out << '\n';
    }
  }
  out << "end-header\n";
  if (roots > 0) {
    out << aig::to_aiger_ascii_string(response.functions->manager(),
                                      response.functions->roots());
  }
  return out.str();
}

std::optional<Service::PersistedEntry> Service::decode_persisted(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kMagic) return std::nullopt;

  PersistedEntry entry;
  bool have_fp = false, have_mode = false, have_status = false;
  bool have_engine = false, have_roots = false;
  std::uint64_t roots = 0;
  std::vector<std::int32_t> input_ids;
  while (std::getline(in, line)) {
    if (line == "end-header") break;
    std::string key, value;
    if (!split_kv(line, key, value)) return std::nullopt;
    if (key == "fp") {
      if (!parse_fingerprint(value, entry.key.fp)) return std::nullopt;
      entry.response.fingerprint = entry.key.fp;
      have_fp = true;
    } else if (key == "mode") {
      std::uint64_t mode = 0;
      if (!parse_u64(value, mode) || mode > 0xffffffffULL) return std::nullopt;
      entry.key.mode = static_cast<std::uint32_t>(mode);
      have_mode = true;
    } else if (key == "status") {
      const auto status = status_from_name(value);
      if (!status) return std::nullopt;
      entry.response.status = *status;
      have_status = true;
    } else if (key == "engine") {
      const auto engine = engine_from_name(value);
      if (!engine) return std::nullopt;
      entry.response.engine = *engine;
      have_engine = true;
    } else if (key == "certified") {
      entry.response.certified = value == "1";
    } else if (key == "raced") {
      entry.response.raced = value == "1";
    } else if (key == "solve_seconds") {
      if (!parse_double(value, entry.response.solve_seconds)) {
        return std::nullopt;
      }
    } else if (key == "stat") {
      std::string name, number;
      if (!split_kv(value, name, number)) return std::nullopt;
      bool known = false;
      for (const SizeField& f : kSizeFields) {
        if (name != f.name) continue;
        std::uint64_t v = 0;
        if (!parse_u64(number, v)) return std::nullopt;
        entry.response.stats.*f.member = static_cast<std::size_t>(v);
        known = true;
        break;
      }
      for (const U64Field& f : kU64Fields) {
        if (known || name != f.name) continue;
        if (!parse_u64(number, entry.response.stats.*f.member)) {
          return std::nullopt;
        }
        known = true;
        break;
      }
      for (const DoubleField& f : kDoubleFields) {
        if (known || name != f.name) continue;
        if (!parse_double(number, entry.response.stats.*f.member)) {
          return std::nullopt;
        }
        known = true;
        break;
      }
      // Unknown stat names are fine: a newer writer added a field.
    } else if (key == "roots") {
      if (!parse_u64(value, roots)) return std::nullopt;
      have_roots = true;
    } else if (key == "inputs") {
      std::istringstream ids(value);
      std::string token;
      while (ids >> token) {
        std::uint64_t id = 0;
        if (!parse_u64(token, id) || id > 0x7fffffffULL) return std::nullopt;
        input_ids.push_back(static_cast<std::int32_t>(id));
      }
      if (input_ids.empty()) return std::nullopt;
    } else {
      return std::nullopt;  // unknown header key: not our file
    }
  }
  if (line != "end-header") return std::nullopt;  // truncated header
  if (!have_fp || !have_mode || !have_status || !have_engine || !have_roots) {
    return std::nullopt;
  }

  if (roots > 0) {
    std::string payload((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    // The AIGER module numbers inputs 0..I-1; rebuild the cone with the
    // original ids from the `inputs` line by seeding the import map with
    // input-to-input translations.
    aig::Aig raw;
    aig::AigerModule module;
    try {
      module = aig::read_aiger_ascii_string(payload, raw);
    } catch (const std::exception&) {
      return std::nullopt;  // truncated or corrupted payload
    }
    if (module.outputs.size() != roots) return std::nullopt;
    if (module.num_inputs != input_ids.size()) return std::nullopt;
    auto cone = std::make_shared<ResultCone>();
    std::unordered_map<std::uint32_t, aig::Ref> node_map;
    for (std::size_t k = 0; k < input_ids.size(); ++k) {
      node_map.emplace(
          aig::ref_node(raw.input(static_cast<std::int32_t>(k))),
          cone->manager_.input(input_ids[k]));
    }
    cone->roots_.reserve(module.outputs.size());
    for (const aig::Ref output : module.outputs) {
      cone->roots_.push_back(
          aig::import_cone(raw, cone->manager_, output, node_map));
    }
    entry.response.functions = std::move(cone);
  }
  // Persisted entries must round-trip to the exact definitive semantics:
  // solved() (certified realizable with functions) or unrealizable.
  const bool valid =
      (entry.response.solved() && entry.response.functions != nullptr) ||
      (entry.response.status == core::SynthesisStatus::kUnrealizable &&
       roots == 0);
  if (!valid) return std::nullopt;
  return entry;
}

void Service::load_persisted_cache() {
  std::error_code ec;
  fs::create_directories(options_.cache_dir, ec);
  if (ec) return;  // unusable cache dir: run in-memory only

  std::vector<fs::path> files;
  for (const auto& item : fs::directory_iterator(options_.cache_dir, ec)) {
    if (ec) break;
    if (!item.is_regular_file(ec) || ec) continue;
    if (item.path().extension() != kExtension) continue;
    files.push_back(item.path());
  }
  // Filename order, not directory order: the reload (and which entries
  // survive a capacity squeeze) must be deterministic.
  std::sort(files.begin(), files.end());

  const std::lock_guard<std::mutex> lock(mutex_);
  for (const fs::path& path : files) {
    std::ifstream in(path);
    if (!in) {
      ++persisted_corrupt_;
      continue;
    }
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    std::optional<PersistedEntry> entry = decode_persisted(text);
    // A filename that disagrees with its own header belongs to some other
    // key's entry (a torn rename): treat as corrupt.
    if (entry && persist_filename(entry->key) != path.filename().string()) {
      entry.reset();
    }
    if (!entry) {
      ++persisted_corrupt_;
      continue;
    }
    cache_store(entry->key, entry->response, /*persist=*/false);
    ++persisted_entries_;
  }
  obs::Registry::global()
      .gauge("service_result_cache_entries")
      .set(static_cast<double>(cache_.size()));
  persisted_entries_gauge().set(static_cast<double>(persisted_entries_));
}

void Service::persist_store(const CacheKey& key,
                            const ServiceResponse& response) {
  // mutex_ held. Failure to persist is not an error: the in-memory entry
  // still serves this process; only warm restarts lose it.
  std::error_code ec;
  fs::create_directories(options_.cache_dir, ec);
  if (ec) return;
  const std::string path =
      (fs::path(options_.cache_dir) / persist_filename(key)).string();
  if (obs::write_file_atomic(path, encode_persisted(key, response))) {
    ++persisted_entries_;
    persisted_entries_gauge().set(static_cast<double>(persisted_entries_));
  }
}

void Service::persist_remove(const CacheKey& key) {
  // mutex_ held.
  std::error_code ec;
  if (fs::remove(fs::path(options_.cache_dir) / persist_filename(key), ec) &&
      !ec && persisted_entries_ > 0) {
    --persisted_entries_;
    persisted_entries_gauge().set(static_cast<double>(persisted_entries_));
  }
}

}  // namespace manthan::engine
