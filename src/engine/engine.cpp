#include "engine/engine.hpp"

#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"

namespace manthan::engine {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kManthan3: return "Manthan3";
    case EngineKind::kHqsLite: return "HqsLite";
    case EngineKind::kPedantLite: return "PedantLite";
  }
  return "?";
}

const char* status_name(core::SynthesisStatus status) {
  switch (status) {
    case core::SynthesisStatus::kRealizable: return "realizable";
    case core::SynthesisStatus::kUnrealizable: return "unrealizable";
    case core::SynthesisStatus::kIncomplete: return "incomplete";
    case core::SynthesisStatus::kLimit: return "limit";
    case core::SynthesisStatus::kTimeout: return "timeout";
  }
  return "?";
}

core::SynthesisResult run_engine(const dqbf::DqbfFormula& formula,
                                 aig::Aig& manager, EngineKind kind,
                                 const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kManthan3: {
      core::Manthan3Options opts = options.manthan3;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.seed = options.seed;
      opts.cancel = options.cancel;
      core::Manthan3 synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
    case EngineKind::kHqsLite: {
      baselines::HqsLiteOptions opts;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.cancel = options.cancel;
      baselines::HqsLite synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
    case EngineKind::kPedantLite: {
      baselines::PedantLiteOptions opts;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.cancel = options.cancel;
      baselines::PedantLite synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
  }
  return {};
}

}  // namespace manthan::engine
