#include "engine/engine.hpp"

#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"

namespace manthan::engine {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kManthan3: return "Manthan3";
    case EngineKind::kHqsLite: return "HqsLite";
    case EngineKind::kPedantLite: return "PedantLite";
  }
  return "?";
}

const char* status_name(core::SynthesisStatus status) {
  switch (status) {
    case core::SynthesisStatus::kRealizable: return "realizable";
    case core::SynthesisStatus::kUnrealizable: return "unrealizable";
    case core::SynthesisStatus::kIncomplete: return "incomplete";
    case core::SynthesisStatus::kLimit: return "limit";
    case core::SynthesisStatus::kTimeout: return "timeout";
    case core::SynthesisStatus::kOutOfBudget: return "out_of_budget";
    case core::SynthesisStatus::kInternalError: return "internal_error";
  }
  return "?";
}

std::optional<core::SynthesisStatus> status_from_name(
    const std::string& name) {
  for (const auto status :
       {core::SynthesisStatus::kRealizable, core::SynthesisStatus::kUnrealizable,
        core::SynthesisStatus::kIncomplete, core::SynthesisStatus::kLimit,
        core::SynthesisStatus::kTimeout, core::SynthesisStatus::kOutOfBudget,
        core::SynthesisStatus::kInternalError}) {
    if (name == status_name(status)) return status;
  }
  return std::nullopt;
}

std::optional<EngineKind> engine_from_name(const std::string& name) {
  for (const auto kind : {EngineKind::kManthan3, EngineKind::kHqsLite,
                          EngineKind::kPedantLite}) {
    if (name == engine_name(kind)) return kind;
  }
  return std::nullopt;
}

core::SynthesisResult run_engine(const dqbf::DqbfFormula& formula,
                                 aig::Aig& manager, EngineKind kind,
                                 const EngineOptions& options) {
  switch (kind) {
    case EngineKind::kManthan3: {
      core::Manthan3Options opts = options.manthan3;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.seed = options.seed;
      opts.cancel = options.cancel;
      core::Manthan3 synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
    case EngineKind::kHqsLite: {
      baselines::HqsLiteOptions opts;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.cancel = options.cancel;
      baselines::HqsLite synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
    case EngineKind::kPedantLite: {
      baselines::PedantLiteOptions opts;
      opts.time_limit_seconds = options.time_limit_seconds;
      opts.cancel = options.cancel;
      baselines::PedantLite synthesizer(opts);
      return synthesizer.synthesize(formula, manager);
    }
  }
  return {};
}

}  // namespace manthan::engine
