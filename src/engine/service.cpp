#include "engine/service.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "dqbf/certificate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::engine {

namespace {

std::size_t default_workers(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

/// Registry instruments mirroring ServiceStats. The typed struct stays
/// the API; these are the transport any /metrics-style consumer scrapes.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& tier1_hits;
  obs::Counter& tier1_misses;
  obs::Counter& coalesced;
  obs::Counter& races;
  obs::Counter& single_runs;
  obs::Counter& completed;
  obs::Counter& cancelled;
  obs::Counter& evictions;
  obs::Counter& internal_errors;
  obs::Counter& budget_memory;
  obs::Counter& budget_time;
  obs::Counter& budget_conflicts;
  obs::Counter& budget_alloc;
  obs::Counter& retried;      // incremented by the daemon (same registry)
  obs::Counter& quarantined;  // incremented by the daemon (same registry)
  obs::Gauge& cache_entries;
  obs::Gauge& persisted_entries;
  obs::Histogram& solve_seconds;

  obs::Counter& budget_trip_counter(util::ResourceBudget::Trip trip) {
    switch (trip) {
      case util::ResourceBudget::Trip::kTime: return budget_time;
      case util::ResourceBudget::Trip::kConflicts: return budget_conflicts;
      case util::ResourceBudget::Trip::kAllocFailure: return budget_alloc;
      default: return budget_memory;
    }
  }
};

ServiceMetrics& service_metrics() {
  auto& r = obs::Registry::global();
  // Leaked for the same static-destruction reason as the registry itself.
  static ServiceMetrics* m = new ServiceMetrics{
      r.counter("service_requests_total"),
      r.counter("service_cache_hits_total"),
      r.counter("service_cache_misses_total"),
      r.counter("service_coalesced_total"),
      r.counter("service_races_total"),
      r.counter("service_single_runs_total"),
      r.counter("service_completed_total"),
      r.counter("service_cancelled_total"),
      r.counter("service_cache_evictions_total"),
      r.counter("service_job_exceptions_total"),
      r.counter("budget_trips_total_memory"),
      r.counter("budget_trips_total_time"),
      r.counter("budget_trips_total_conflicts"),
      r.counter("budget_trips_total_alloc_failure"),
      r.counter("service_requests_retried_total"),
      r.counter("service_requests_quarantined_total"),
      r.gauge("service_result_cache_entries"),
      r.gauge("cache_persisted_entries"),
      r.histogram("service_solve_seconds"),
  };
  return *m;
}

/// Trace id for a request: the canonical spec fingerprint folded to one
/// word. Telemetry only — never fed into seed derivation.
std::uint64_t trace_id_of(const dqbf::Fingerprint& fp) {
  return fp.hi ^ fp.lo;
}

}  // namespace

void register_service_metrics() { service_metrics(); }

dqbf::HenkinVector ResultCone::import_into(aig::Aig& dst) const {
  dqbf::HenkinVector vector;
  vector.functions.reserve(roots_.size());
  std::unordered_map<std::uint32_t, aig::Ref> node_map;
  for (const aig::Ref root : roots_) {
    vector.functions.push_back(aig::import_cone(manager_, dst, root, node_map));
  }
  return vector;
}

struct Service::Job {
  dqbf::DqbfFormula formula;
  dqbf::CanonicalForm canon;
  CacheKey key;
  SolveOptions options;
  bool coalescable = false;
  bool coalesced = false;  // guarded by the service mutex
  std::promise<ServiceResponse> promise;
};

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(default_workers(options_.workers)) {
  watchdog_.poll_ms = options_.watchdog_poll_ms;
  if (options_.result_cache && !options_.cache_dir.empty()) {
    load_persisted_cache();
  }
}

Service::~Service() {
  shutdown();
  // pool_ is the last member: its destructor drains every submitted job
  // while the caches and maps above it are still alive.
}

void Service::shutdown() { shutdown_.cancel(); }

std::shared_future<ServiceResponse> Service::submit(
    const dqbf::DqbfFormula& formula, const SolveOptions& options) {
  auto job = std::make_shared<Job>();
  job->formula = formula;
  job->canon = dqbf::canonicalize(formula);
  job->key.fp = job->canon.spec;
  job->key.mode =
      options.engine
          ? 1 + static_cast<std::uint32_t>(*options.engine)
          : 0;
  job->options = options;
  job->coalescable = options_.coalesce && options.use_cache &&
                     options.cancel == nullptr;
  const std::uint64_t trace_id = trace_id_of(job->canon.spec);
  obs::Span submit_span("service.submit", "service", trace_id);
  ServiceMetrics& metrics = service_metrics();
  metrics.requests.inc();

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;

    if (options.use_cache && options_.result_cache) {
      const auto it = cache_.find(job->key);
      if (it != cache_.end()) {
        ++stats_.tier1_hits;
        metrics.tier1_hits.inc();
        obs::trace_instant("cache.hit", "service", trace_id);
        lru_.splice(lru_.begin(), lru_, it->second);
        ServiceResponse response = it->second->response;
        response.cache_hit = true;
        std::promise<ServiceResponse> ready;
        ready.set_value(std::move(response));
        return ready.get_future().share();
      }
      ++stats_.tier1_misses;
      metrics.tier1_misses.inc();
    }

    if (job->coalescable) {
      const auto it = inflight_.find(job->key);
      if (it != inflight_.end()) {
        ++stats_.coalesced;
        metrics.coalesced.inc();
        obs::trace_instant("coalesce", "service", trace_id);
        // Flag the in-flight job so its response records the sharing.
        // (The owning Job is reachable only through the future, so the
        // flag lives on the response instead: set when the job ends.)
        coalesced_keys_.insert(job->key);
        return it->second;
      }
    }

    ++queued_;
    std::shared_future<ServiceResponse> future =
        job->promise.get_future().share();
    if (job->coalescable) inflight_.emplace(job->key, future);
    pool_.submit([this, job]() {
      // A worker never dies on a job: any escape from the engines —
      // injected faults included — becomes a structured internal-error
      // response, so callers (and coalesced waiters) always get a value.
      ServiceResponse response;
      try {
        response = run_job(job);
      } catch (const std::exception& e) {
        response = internal_error_response(job, e.what());
      } catch (...) {
        response = internal_error_response(job, "unknown exception");
      }
      job->promise.set_value(std::move(response));
    });
    return future;
  }
}

ServiceResponse Service::run_job(const std::shared_ptr<Job>& job) {
  const std::uint64_t trace_id = trace_id_of(job->canon.spec);
  obs::Span job_span("service.job", "service", trace_id);
  ServiceMetrics& metrics = service_metrics();
  bool race_mode = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    if (!job->options.engine && options_.race_contenders.size() >= 2) {
      switch (options_.admission) {
        case ServiceOptions::Admission::kRace:
          race_mode = true;
          break;
        case ServiceOptions::Admission::kAuto:
          // Latency mode only while idle: a backlog means every worker
          // is worth more as a separate request than as a race lane.
          race_mode = queued_ == 0 && pool_.worker_count() >= 2;
          break;
        case ServiceOptions::Admission::kSingle:
          break;
      }
    }
    if (race_mode) {
      ++stats_.races;
      metrics.races.inc();
    } else {
      ++stats_.single_runs;
      metrics.single_runs.inc();
    }
  }

  util::Timer timer;
  // Per-request budget: explicit override, else the service default. The
  // budget's token joins the cancellation set so an out-of-band trip (the
  // wall-time watchdog) stops the engines at their next deadline poll.
  const util::ResourceBudget::Limits limits =
      job->options.budget ? *job->options.budget : options_.default_budget;
  std::optional<util::ResourceBudget> budget;
  if (limits.any()) budget.emplace(limits);
  util::AnyOfCancelToken token(&shutdown_, job->options.cancel,
                               budget ? &budget->token() : nullptr);
  struct WatchdogGuard {  // unregisters on every exit path (throws too)
    Watchdog& dog;
    std::uint64_t id = 0;
    ~WatchdogGuard() {
      if (id != 0) dog.remove(id);
    }
  } watchdog_guard{watchdog_};
  if (budget && limits.wall_seconds > 0.0) {
    watchdog_guard.id = watchdog_.add(&*budget, limits.wall_seconds);
  }
  // Chaos hook: one poll per executed job (cache hits never reach here).
  switch (util::fault::poll(util::fault::Site::kServiceJob)) {
    case util::fault::Kind::kAlloc:
      throw std::bad_alloc();  // surfaces through the worker's catch-all
    case util::fault::Kind::kIo:
      throw std::runtime_error("injected service.job fault");
    case util::fault::Kind::kCancel:
      token.cancel();
      break;
    default:  // kStall already slept inside poll(); kNone is free
      break;
  }
  const double limit = job->options.time_limit_seconds < 0.0
                           ? options_.default_time_limit_seconds
                           : job->options.time_limit_seconds;
  core::Manthan3Options manthan3 = options_.manthan3;
  if (options_.analysis_cache) manthan3.analysis_cache = &analysis_cache_;
  manthan3.trace_id = trace_id;
  // Seed from the canonical identity, not submission order: duplicate
  // specs replay identical streams, which is what makes a tier-1 hit
  // indistinguishable from re-solving.
  const std::uint64_t seed = util::derive_seed(
      options_.seed, job->canon.spec.hi ^ job->key.mode, job->canon.spec.lo);

  ServiceResponse response;
  response.fingerprint = job->canon.spec;
  auto cone = std::make_shared<ResultCone>();

  try {
    // Growth sites on this thread charge the request's budget; race lanes
    // re-install the scope per worker through RaceOptions::budget.
    util::BudgetScope budget_scope(budget ? &*budget : nullptr);
    if (race_mode) {
      RaceOptions race_options;
      race_options.contenders = options_.race_contenders;
      race_options.time_limit_seconds = limit;
      race_options.seed = seed;
      race_options.manthan3 = manthan3;
      race_options.cancel = &token;
      race_options.budget = budget ? &*budget : nullptr;
      const RaceOutcome outcome = race(job->formula, cone->manager_,
                                       race_options);
      response.status = outcome.status;
      response.certified = outcome.certified;
      response.raced = true;
      if (outcome.winner >= 0) {
        const auto& lane =
            outcome.lanes[static_cast<std::size_t>(outcome.winner)];
        response.engine = lane.engine;
        response.stats = lane.stats;
      }
      if (outcome.solved()) {
        cone->roots_ = outcome.vector.functions;
        response.functions = std::move(cone);
      }
    } else {
      const EngineKind kind =
          job->options.engine.value_or(options_.single_engine);
      EngineOptions engine_options;
      engine_options.time_limit_seconds = limit;
      engine_options.seed = seed;
      engine_options.cancel = &token;
      engine_options.manthan3 = manthan3;
      core::SynthesisResult result =
          run_engine(job->formula, cone->manager_, kind, engine_options);
      response.status = result.status;
      response.stats = result.stats;
      response.engine = kind;
      if (result.status == core::SynthesisStatus::kRealizable) {
        const dqbf::CertificateResult cert = dqbf::check_certificate(
            job->formula, cone->manager_, result.vector);
        response.certified = cert.status == dqbf::CertificateStatus::kValid;
        if (response.certified) {
          cone->roots_ = result.vector.functions;
          response.functions = std::move(cone);
        }
      }
    }
  } catch (const util::OutOfBudgetError&) {
    // Backstop for throws outside Manthan3's own catch (baseline engines,
    // certificate checking): a truncated-but-valid budget verdict.
    response.status = core::SynthesisStatus::kOutOfBudget;
    response.certified = false;
    response.functions = nullptr;
  }

  response.solve_seconds = timer.seconds();
  metrics.solve_seconds.observe(response.solve_seconds);
  const bool definitive =
      response.solved() ||
      response.status == core::SynthesisStatus::kUnrealizable;
  if (budget && !definitive &&
      budget->tripped() != util::ResourceBudget::Trip::kNone) {
    // A polled trip surfaces as kTimeout through the cancellation chain;
    // rewrite it to the budget verdict it actually is.
    response.status = core::SynthesisStatus::kOutOfBudget;
  }
  if (response.status == core::SynthesisStatus::kOutOfBudget) {
    response.budget_trip =
        budget && budget->tripped() != util::ResourceBudget::Trip::kNone
            ? budget->tripped()
            : util::ResourceBudget::Trip::kAllocFailure;
    metrics.budget_trip_counter(response.budget_trip).inc();
  }
  // A tripped budget is a final answer, not a cancellation: daemons must
  // not retry it and callers should trust its (truncated) stats.
  response.cancelled =
      token.cancelled() && !definitive &&
      response.status != core::SynthesisStatus::kOutOfBudget;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    metrics.completed.inc();
    if (response.cancelled) {
      ++stats_.cancelled;
      metrics.cancelled.inc();
    }
    if (response.status == core::SynthesisStatus::kOutOfBudget) {
      ++stats_.budget_trips;
    }
    if (job->coalescable) {
      inflight_.erase(job->key);
      const auto shared = coalesced_keys_.find(job->key);
      if (shared != coalesced_keys_.end()) {
        response.coalesced = true;
        coalesced_keys_.erase(shared);
      }
    }
    // Cache only trustworthy verdicts: certified vectors and proven
    // unrealizability, never anything a token truncated.
    if (job->options.use_cache && options_.result_cache && definitive &&
        !response.cancelled) {
      obs::trace_instant("cache.store", "service", trace_id);
      cache_store(job->key, response, /*persist=*/true);
      metrics.cache_entries.set(static_cast<double>(cache_.size()));
    }
  }
  return response;
}

ServiceResponse Service::internal_error_response(
    const std::shared_ptr<Job>& job, const char* what) {
  ServiceResponse response;
  response.status = core::SynthesisStatus::kInternalError;
  response.fingerprint = job->canon.spec;
  response.error = what;
  ServiceMetrics& metrics = service_metrics();
  metrics.internal_errors.inc();
  obs::trace_instant("job.exception", "service",
                     trace_id_of(job->canon.spec));
  const std::lock_guard<std::mutex> lock(mutex_);
  // run_job already decremented queued_ and counted the admission mode;
  // the job consumed a worker, so it still counts as completed.
  ++stats_.completed;
  metrics.completed.inc();
  ++stats_.internal_errors;
  if (job->coalescable) {
    inflight_.erase(job->key);
    const auto shared = coalesced_keys_.find(job->key);
    if (shared != coalesced_keys_.end()) {
      response.coalesced = true;
      coalesced_keys_.erase(shared);
    }
  }
  return response;
}

std::uint64_t Service::Watchdog::add(util::ResourceBudget* budget,
                                     double wall_seconds) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(wall_seconds));
  const std::lock_guard<std::mutex> lock(mutex);
  if (!thread.joinable()) {
    thread = std::thread([this] { run(); });
  }
  const std::uint64_t id = next_id++;
  active.emplace(id, Entry{budget, deadline});
  cv.notify_all();
  return id;
}

void Service::Watchdog::remove(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mutex);
  active.erase(id);
}

void Service::Watchdog::run() {
  std::unique_lock<std::mutex> lock(mutex);
  while (!stop) {
    if (active.empty()) {
      cv.wait(lock, [this] { return stop || !active.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& item : active) {
      if (now >= item.second.deadline) {
        // Idempotent: trip() keeps the first cause and re-cancelling the
        // token is harmless, so no need to deregister here.
        item.second.budget->trip(util::ResourceBudget::Trip::kTime);
      }
    }
    cv.wait_for(lock, std::chrono::milliseconds(poll_ms));
  }
}

Service::Watchdog::~Watchdog() {
  {
    const std::lock_guard<std::mutex> lock(mutex);
    stop = true;
  }
  cv.notify_all();
  if (thread.joinable()) thread.join();
}

void Service::cache_store(const CacheKey& key, const ServiceResponse& response,
                          bool persist) {
  // Callers hold mutex_.
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A coalescing race lost (two non-coalescable duplicates solved
    // concurrently): keep the incumbent, results are identical anyway.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  CacheEntry entry;
  entry.key = key;
  entry.response = response;
  entry.response.cache_hit = false;
  entry.response.coalesced = false;
  lru_.push_front(std::move(entry));
  cache_.emplace(key, lru_.begin());
  if (persist && !options_.cache_dir.empty()) {
    persist_store(key, lru_.front().response);
  }
  if (options_.result_cache_capacity != 0 &&
      lru_.size() > options_.result_cache_capacity) {
    if (!options_.cache_dir.empty()) persist_remove(lru_.back().key);
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
    service_metrics().evictions.inc();
  }
}

ServiceResult Service::solve(const dqbf::DqbfFormula& formula,
                             aig::Aig& manager, const SolveOptions& options) {
  ServiceResult result;
  result.response = submit(formula, options).get();
  if (result.response.functions != nullptr) {
    result.vector = result.response.functions->import_into(manager);
  }
  return result;
}

ServiceStats Service::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.cache_entries = cache_.size();
  snapshot.persisted_entries = persisted_entries_;
  snapshot.persisted_corrupt = persisted_corrupt_;
  snapshot.analysis = analysis_cache_.stats();
  return snapshot;
}

}  // namespace manthan::engine
