#include "engine/service.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>
#include <utility>

#include "dqbf/certificate.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::engine {

namespace {

std::size_t default_workers(std::size_t configured) {
  if (configured != 0) return configured;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? static_cast<std::size_t>(hw) : 1;
}

/// Registry instruments mirroring ServiceStats. The typed struct stays
/// the API; these are the transport any /metrics-style consumer scrapes.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& tier1_hits;
  obs::Counter& tier1_misses;
  obs::Counter& coalesced;
  obs::Counter& races;
  obs::Counter& single_runs;
  obs::Counter& completed;
  obs::Counter& cancelled;
  obs::Counter& evictions;
  obs::Gauge& cache_entries;
  obs::Histogram& solve_seconds;
};

ServiceMetrics& service_metrics() {
  auto& r = obs::Registry::global();
  // Leaked for the same static-destruction reason as the registry itself.
  static ServiceMetrics* m = new ServiceMetrics{
      r.counter("service_requests_total"),
      r.counter("service_cache_hits_total"),
      r.counter("service_cache_misses_total"),
      r.counter("service_coalesced_total"),
      r.counter("service_races_total"),
      r.counter("service_single_runs_total"),
      r.counter("service_completed_total"),
      r.counter("service_cancelled_total"),
      r.counter("service_cache_evictions_total"),
      r.gauge("service_result_cache_entries"),
      r.histogram("service_solve_seconds"),
  };
  return *m;
}

/// Trace id for a request: the canonical spec fingerprint folded to one
/// word. Telemetry only — never fed into seed derivation.
std::uint64_t trace_id_of(const dqbf::Fingerprint& fp) {
  return fp.hi ^ fp.lo;
}

}  // namespace

void register_service_metrics() { service_metrics(); }

dqbf::HenkinVector ResultCone::import_into(aig::Aig& dst) const {
  dqbf::HenkinVector vector;
  vector.functions.reserve(roots_.size());
  std::unordered_map<std::uint32_t, aig::Ref> node_map;
  for (const aig::Ref root : roots_) {
    vector.functions.push_back(aig::import_cone(manager_, dst, root, node_map));
  }
  return vector;
}

struct Service::Job {
  dqbf::DqbfFormula formula;
  dqbf::CanonicalForm canon;
  CacheKey key;
  SolveOptions options;
  bool coalescable = false;
  bool coalesced = false;  // guarded by the service mutex
  std::promise<ServiceResponse> promise;
};

Service::Service(ServiceOptions options)
    : options_(std::move(options)),
      pool_(default_workers(options_.workers)) {}

Service::~Service() {
  shutdown();
  // pool_ is the last member: its destructor drains every submitted job
  // while the caches and maps above it are still alive.
}

void Service::shutdown() { shutdown_.cancel(); }

std::shared_future<ServiceResponse> Service::submit(
    const dqbf::DqbfFormula& formula, const SolveOptions& options) {
  auto job = std::make_shared<Job>();
  job->formula = formula;
  job->canon = dqbf::canonicalize(formula);
  job->key.fp = job->canon.spec;
  job->key.mode =
      options.engine
          ? 1 + static_cast<std::uint32_t>(*options.engine)
          : 0;
  job->options = options;
  job->coalescable = options_.coalesce && options.use_cache &&
                     options.cancel == nullptr;
  const std::uint64_t trace_id = trace_id_of(job->canon.spec);
  obs::Span submit_span("service.submit", "service", trace_id);
  ServiceMetrics& metrics = service_metrics();
  metrics.requests.inc();

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;

    if (options.use_cache && options_.result_cache) {
      const auto it = cache_.find(job->key);
      if (it != cache_.end()) {
        ++stats_.tier1_hits;
        metrics.tier1_hits.inc();
        obs::trace_instant("cache.hit", "service", trace_id);
        lru_.splice(lru_.begin(), lru_, it->second);
        ServiceResponse response = it->second->response;
        response.cache_hit = true;
        std::promise<ServiceResponse> ready;
        ready.set_value(std::move(response));
        return ready.get_future().share();
      }
      ++stats_.tier1_misses;
      metrics.tier1_misses.inc();
    }

    if (job->coalescable) {
      const auto it = inflight_.find(job->key);
      if (it != inflight_.end()) {
        ++stats_.coalesced;
        metrics.coalesced.inc();
        obs::trace_instant("coalesce", "service", trace_id);
        // Flag the in-flight job so its response records the sharing.
        // (The owning Job is reachable only through the future, so the
        // flag lives on the response instead: set when the job ends.)
        coalesced_keys_.insert(job->key);
        return it->second;
      }
    }

    ++queued_;
    std::shared_future<ServiceResponse> future =
        job->promise.get_future().share();
    if (job->coalescable) inflight_.emplace(job->key, future);
    pool_.submit([this, job]() {
      try {
        job->promise.set_value(run_job(job));
      } catch (...) {
        job->promise.set_exception(std::current_exception());
      }
    });
    return future;
  }
}

ServiceResponse Service::run_job(const std::shared_ptr<Job>& job) {
  const std::uint64_t trace_id = trace_id_of(job->canon.spec);
  obs::Span job_span("service.job", "service", trace_id);
  ServiceMetrics& metrics = service_metrics();
  bool race_mode = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    --queued_;
    if (!job->options.engine && options_.race_contenders.size() >= 2) {
      switch (options_.admission) {
        case ServiceOptions::Admission::kRace:
          race_mode = true;
          break;
        case ServiceOptions::Admission::kAuto:
          // Latency mode only while idle: a backlog means every worker
          // is worth more as a separate request than as a race lane.
          race_mode = queued_ == 0 && pool_.worker_count() >= 2;
          break;
        case ServiceOptions::Admission::kSingle:
          break;
      }
    }
    if (race_mode) {
      ++stats_.races;
      metrics.races.inc();
    } else {
      ++stats_.single_runs;
      metrics.single_runs.inc();
    }
  }

  util::Timer timer;
  util::AnyOfCancelToken token(&shutdown_, job->options.cancel);
  const double limit = job->options.time_limit_seconds < 0.0
                           ? options_.default_time_limit_seconds
                           : job->options.time_limit_seconds;
  core::Manthan3Options manthan3 = options_.manthan3;
  if (options_.analysis_cache) manthan3.analysis_cache = &analysis_cache_;
  manthan3.trace_id = trace_id;
  // Seed from the canonical identity, not submission order: duplicate
  // specs replay identical streams, which is what makes a tier-1 hit
  // indistinguishable from re-solving.
  const std::uint64_t seed = util::derive_seed(
      options_.seed, job->canon.spec.hi ^ job->key.mode, job->canon.spec.lo);

  ServiceResponse response;
  response.fingerprint = job->canon.spec;
  auto cone = std::make_shared<ResultCone>();

  if (race_mode) {
    RaceOptions race_options;
    race_options.contenders = options_.race_contenders;
    race_options.time_limit_seconds = limit;
    race_options.seed = seed;
    race_options.manthan3 = manthan3;
    race_options.cancel = &token;
    const RaceOutcome outcome = race(job->formula, cone->manager_,
                                     race_options);
    response.status = outcome.status;
    response.certified = outcome.certified;
    response.raced = true;
    if (outcome.winner >= 0) {
      const auto& lane = outcome.lanes[static_cast<std::size_t>(outcome.winner)];
      response.engine = lane.engine;
      response.stats = lane.stats;
    }
    if (outcome.solved()) {
      cone->roots_ = outcome.vector.functions;
      response.functions = std::move(cone);
    }
  } else {
    const EngineKind kind =
        job->options.engine.value_or(options_.single_engine);
    EngineOptions engine_options;
    engine_options.time_limit_seconds = limit;
    engine_options.seed = seed;
    engine_options.cancel = &token;
    engine_options.manthan3 = manthan3;
    core::SynthesisResult result =
        run_engine(job->formula, cone->manager_, kind, engine_options);
    response.status = result.status;
    response.stats = result.stats;
    response.engine = kind;
    if (result.status == core::SynthesisStatus::kRealizable) {
      const dqbf::CertificateResult cert = dqbf::check_certificate(
          job->formula, cone->manager_, result.vector);
      response.certified = cert.status == dqbf::CertificateStatus::kValid;
      if (response.certified) {
        cone->roots_ = result.vector.functions;
        response.functions = std::move(cone);
      }
    }
  }

  response.solve_seconds = timer.seconds();
  metrics.solve_seconds.observe(response.solve_seconds);
  const bool definitive =
      response.solved() ||
      response.status == core::SynthesisStatus::kUnrealizable;
  response.cancelled = token.cancelled() && !definitive;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.completed;
    metrics.completed.inc();
    if (response.cancelled) {
      ++stats_.cancelled;
      metrics.cancelled.inc();
    }
    if (job->coalescable) {
      inflight_.erase(job->key);
      const auto shared = coalesced_keys_.find(job->key);
      if (shared != coalesced_keys_.end()) {
        response.coalesced = true;
        coalesced_keys_.erase(shared);
      }
    }
    // Cache only trustworthy verdicts: certified vectors and proven
    // unrealizability, never anything a token truncated.
    if (job->options.use_cache && options_.result_cache && definitive &&
        !response.cancelled) {
      obs::trace_instant("cache.store", "service", trace_id);
      cache_store(job->key, response);
      metrics.cache_entries.set(static_cast<double>(cache_.size()));
    }
  }
  return response;
}

void Service::cache_store(const CacheKey& key, const ServiceResponse& response) {
  // Callers hold mutex_.
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    // A coalescing race lost (two non-coalescable duplicates solved
    // concurrently): keep the incumbent, results are identical anyway.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  CacheEntry entry;
  entry.key = key;
  entry.response = response;
  entry.response.cache_hit = false;
  entry.response.coalesced = false;
  lru_.push_front(std::move(entry));
  cache_.emplace(key, lru_.begin());
  if (options_.result_cache_capacity != 0 &&
      lru_.size() > options_.result_cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.cache_evictions;
    service_metrics().evictions.inc();
  }
}

ServiceResult Service::solve(const dqbf::DqbfFormula& formula,
                             aig::Aig& manager, const SolveOptions& options) {
  ServiceResult result;
  result.response = submit(formula, options).get();
  if (result.response.functions != nullptr) {
    result.vector = result.response.functions->import_into(manager);
  }
  return result;
}

ServiceStats Service::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServiceStats snapshot = stats_;
  snapshot.cache_entries = cache_.size();
  snapshot.analysis = analysis_cache_.stats();
  return snapshot;
}

}  // namespace manthan::engine
