// Cancellation-aware single-engine invocation — the common job body of
// the parallel suite runner and the racing portfolio.
//
// This is the canonical home of EngineKind (the portfolio layer aliases
// it for source compatibility): one enum naming the three synthesizers,
// plus run_engine(), which packages "run this engine on this formula
// under this budget/seed/token" as a self-contained, thread-safe unit of
// work. Each call builds its own synthesizer (and the caller supplies a
// private aig::Aig), so any number of run_engine() calls may execute
// concurrently on scheduler workers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "aig/aig.hpp"
#include "core/manthan3.hpp"
#include "dqbf/dqbf.hpp"
#include "util/cancel.hpp"

namespace manthan::engine {

enum class EngineKind { kManthan3, kHqsLite, kPedantLite };

const char* engine_name(EngineKind kind);
const char* status_name(core::SynthesisStatus status);
/// Inverse lookups, used by the persisted-cache decoder; nullopt for
/// unrecognized names (a corrupt or future-format entry).
std::optional<core::SynthesisStatus> status_from_name(const std::string& name);
std::optional<EngineKind> engine_from_name(const std::string& name);

/// Budget, stream identity, and knobs for one engine run.
struct EngineOptions {
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Seed for the engine's private RNG streams (Manthan3 only; the
  /// baseline engines are deterministic). Derive per-job seeds with
  /// util::derive_seed — see the contract in util/rng.hpp.
  std::uint64_t seed = 42;
  /// Cooperative stop flag composed into the engine's internal Deadline;
  /// null means "not cancellable". Must outlive the run.
  const util::CancelToken* cancel = nullptr;
  /// Knobs forwarded to Manthan3 (its time/seed/cancel fields are
  /// overridden by the ones above).
  core::Manthan3Options manthan3;
};

/// Run one engine on one formula. Thread-safe: shares no mutable state
/// with other calls; `manager` must be private to this call.
core::SynthesisResult run_engine(const dqbf::DqbfFormula& formula,
                                 aig::Aig& manager, EngineKind kind,
                                 const EngineOptions& options);

}  // namespace manthan::engine
