// The thread-pool scheduler, re-exported under the engine namespace.
//
// The implementation moved to util/scheduler.hpp so that layers below the
// engine module (notably core, whose candidate learning fans across the
// pool) can use it without a link cycle — engine depends on core for
// run_engine()/race(). This header is interface-only: including it from
// any module costs no link dependency beyond util.
#pragma once

#include "util/scheduler.hpp"

namespace manthan::engine {

using Scheduler = util::Scheduler;

}  // namespace manthan::engine
