// Racing portfolio: run several engines on the same instance
// concurrently, return the first definitive answer, cancel the losers.
//
// The paper's evaluation (§6) shows the three engines have orthogonal
// strengths — each family has instances only one of them solves fast. A
// race turns that orthogonality into latency: every contender runs on its
// own scheduler worker with a private aig::Aig, and the first lane to
// produce a *certified* realizable vector (or a proven-False verdict)
// flips a shared util::CancelToken. The token is composed into every
// lane's Deadline, so the losing engines stop at their next budget poll —
// inside the SAT solver's decisions+propagations check, the Manthan3
// verify/repair loop, or the baselines' outer loops — and their lane
// stats record the truncated work.
//
// An uncertified "realizable" claim never wins (solved == certified, as
// everywhere in this codebase); such a lane simply finishes and the race
// continues.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "core/manthan3.hpp"
#include "dqbf/dqbf.hpp"
#include "engine/engine.hpp"
#include "util/budget.hpp"
#include "util/cancel.hpp"

namespace manthan::engine {

struct RaceOptions {
  std::vector<EngineKind> contenders{
      EngineKind::kManthan3, EngineKind::kHqsLite, EngineKind::kPedantLite};
  /// Per-lane wall-clock budget in seconds; 0 = unlimited (the race still
  /// ends when every lane returns).
  double time_limit_seconds = 0.0;
  std::uint64_t seed = 42;
  /// Knobs forwarded to Manthan3 lanes.
  core::Manthan3Options manthan3;
  /// External stop signal (a service shutdown, a caller's per-request
  /// cancel): composed with the race's internal winner token, so every
  /// lane stops at its next poll when either fires. Null = the race can
  /// only be ended by a winner or the time budget. Must outlive race().
  const util::CancelToken* cancel = nullptr;
  /// Per-request resource budget shared by all lanes (the budget's token
  /// should additionally be composed into `cancel` by the caller). Each
  /// lane installs it as its thread's growth-site budget, so a race
  /// charges memory/conflicts the same way a single-engine run does.
  /// Null = unbudgeted. Must outlive race().
  util::ResourceBudget* budget = nullptr;
};

/// Outcome of one contender.
struct RaceLane {
  EngineKind engine = EngineKind::kManthan3;
  core::SynthesisStatus status = core::SynthesisStatus::kLimit;
  /// Lane returned kRealizable and the checker accepted its vector.
  bool certified = false;
  bool winner = false;
  /// Lane was stopped by the winner's cancellation (its stats show the
  /// truncated work).
  bool cancelled = false;
  double seconds = 0.0;
  core::SynthesisStats stats;
};

struct RaceOutcome {
  /// Winner's status; when no lane was definitive: kIncomplete if any
  /// lane hit the engine's incompleteness, else kLimit if any lane hit an
  /// iteration limit, else kTimeout.
  core::SynthesisStatus status = core::SynthesisStatus::kLimit;
  /// Index into `lanes` of the winning engine; -1 if none was definitive.
  int winner = -1;
  bool certified = false;
  /// Winner's Henkin functions, rebuilt in the caller's manager; valid
  /// when status == kRealizable.
  dqbf::HenkinVector vector;
  std::vector<RaceLane> lanes;

  /// A certified Henkin vector was synthesized.
  bool solved() const {
    return status == core::SynthesisStatus::kRealizable && certified;
  }
};

/// Race `options.contenders` on `formula`; one scheduler worker per lane.
/// The winning vector is imported into `manager`.
RaceOutcome race(const dqbf::DqbfFormula& formula, aig::Aig& manager,
                 const RaceOptions& options = {});

}  // namespace manthan::engine
