#include "engine/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>

#include "aig/aig_io.hpp"
#include "dqbf/dqdimacs.hpp"
#include "dqbf/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::engine {

namespace {

namespace fs = std::filesystem;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_path_for(const fs::path& request) {
  fs::path p = request;
  p.replace_extension(".result.json");
  return p.string();
}

// Result files are written with obs::write_file_atomic (temp file +
// rename) so a drain interrupted mid-write leaves no half-result behind.
using obs::write_file_atomic;

std::string blif_certificate(const dqbf::DqbfFormula& formula,
                             const ServiceResponse& response) {
  aig::Aig manager;
  const dqbf::HenkinVector vector = response.functions->import_into(manager);
  std::vector<aig::NamedFunction> named;
  named.reserve(vector.functions.size());
  for (std::size_t i = 0; i < vector.functions.size(); ++i) {
    named.push_back(
        {"y" + std::to_string(formula.existentials()[i].var + 1),
         vector.functions[i]});
  }
  std::ostringstream out;
  aig::write_blif(out, manager, "henkin_functions", named);
  return out.str();
}

std::string result_json(const std::string& request_name,
                        const dqbf::DqbfFormula& formula,
                        const ServiceResponse& response,
                        bool with_certificate) {
  const core::SynthesisStats& st = response.stats;
  std::ostringstream out;
  out << "{\n";
  out << "  \"request\": \"" << json_escape(request_name) << "\",\n";
  out << "  \"status\": \"" << status_name(response.status) << "\",\n";
  out << "  \"engine\": \"" << engine_name(response.engine) << "\",\n";
  out << "  \"certified\": " << (response.certified ? "true" : "false")
      << ",\n";
  out << "  \"cache_hit\": " << (response.cache_hit ? "true" : "false")
      << ",\n";
  out << "  \"raced\": " << (response.raced ? "true" : "false") << ",\n";
  out << "  \"seconds\": " << response.solve_seconds << ",\n";
  out << "  \"fingerprint\": \"" << dqbf::to_string(response.fingerprint)
      << "\",\n";
  out << "  \"stats\": {\n";
  out << "    \"samples\": " << st.samples << ",\n";
  out << "    \"unique_defined\": " << st.unique_defined << ",\n";
  out << "    \"counterexamples\": " << st.counterexamples << ",\n";
  out << "    \"repairs\": " << st.repairs << ",\n";
  out << "    \"analysis_unique_hits\": " << st.analysis_unique_hits << ",\n";
  out << "    \"analysis_dependency_hits\": " << st.analysis_dependency_hits
      << "\n";
  out << "  }";
  if (with_certificate && response.solved() &&
      response.functions != nullptr) {
    out << ",\n  \"functions_blif\": \""
        << json_escape(blif_certificate(formula, response)) << "\"";
  }
  out << "\n}\n";
  return out.str();
}

std::string error_json(const std::string& request_name,
                       const std::string& message) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"request\": \"" << json_escape(request_name) << "\",\n";
  out << "  \"status\": \"error\",\n";
  out << "  \"error\": \"" << json_escape(message) << "\"\n";
  out << "}\n";
  return out.str();
}

bool stop_requested(const Service& service, const DaemonOptions& options) {
  return service.shutting_down() ||
         (options.stop != nullptr && options.stop->cancelled());
}

/// Write-ahead intent record for one request. Plain key-value text; a
/// missing or corrupt journal reads as "no attempts yet" — bookkeeping
/// corruption must never wedge the queue.
struct Journal {
  std::uint64_t attempts = 0;       // executions started
  std::uint64_t next_retry_ms = 0;  // unix ms; 0 = eligible now
  std::string error;                // last transient failure, if any
};

std::uint64_t now_unix_ms() {
  // system_clock, not steady_clock: retry times must survive restarts.
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

fs::path journal_path_for(const DaemonOptions& options,
                          const std::string& name) {
  return fs::path(options.queue_dir) / "journal" / (name + ".journal");
}

Journal read_journal(const fs::path& path) {
  Journal journal;
  std::ifstream in(path);
  if (!in) return journal;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    try {
      if (key == "attempts") {
        journal.attempts = std::stoull(value);
      } else if (key == "next_retry_ms") {
        journal.next_retry_ms = std::stoull(value);
      } else if (key == "error") {
        journal.error = value;
      }
    } catch (const std::exception&) {
      return Journal{};  // corrupt: start the request's count over
    }
  }
  return journal;
}

bool write_journal(const fs::path& path, const Journal& journal) {
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) return false;
  std::ostringstream out;
  out << "attempts " << journal.attempts << '\n';
  out << "next_retry_ms " << journal.next_retry_ms << '\n';
  if (!journal.error.empty()) out << "error " << journal.error << '\n';
  return write_file_atomic(path.string(), out.str());
}

void remove_journal(const fs::path& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

/// Deterministic per-(request, attempt) jitter in [0.5, 1.0): retries
/// de-synchronize across requests without wall-clock randomness, and a
/// replayed drain computes identical retry times.
double retry_jitter(const std::string& name, std::uint64_t attempt) {
  const std::uint64_t h = util::derive_seed(
      0x6a6f75726e616cULL, std::hash<std::string>{}(name), attempt);
  return 0.5 + 0.5 * (static_cast<double>(h >> 11) * 0x1.0p-53);
}

double backoff_ms(const DaemonOptions& options, const std::string& name,
                  std::uint64_t attempt) {
  double base = options.retry_base_ms;
  for (std::uint64_t i = 1; i < attempt && base < options.retry_max_ms; ++i) {
    base *= 2.0;
  }
  return std::min(base, options.retry_max_ms) * retry_jitter(name, attempt);
}

/// Move the request to failed/ with an error record; the request is
/// never executed again.
void quarantine_request(const DaemonOptions& options, const fs::path& request,
                        const std::string& name, std::uint64_t attempts,
                        const std::string& message) {
  std::error_code ec;
  const fs::path failed_dir = fs::path(options.queue_dir) / "failed";
  fs::create_directories(failed_dir, ec);
  if (!ec) {
    fs::rename(request, failed_dir / name, ec);
    std::ostringstream out;
    out << "{\n";
    out << "  \"request\": \"" << json_escape(name) << "\",\n";
    out << "  \"status\": \"quarantined\",\n";
    out << "  \"attempts\": " << attempts << ",\n";
    out << "  \"error\": \"" << json_escape(message) << "\"\n";
    out << "}\n";
    write_file_atomic((failed_dir / (name + ".error.json")).string(),
                      out.str());
  }
  remove_journal(journal_path_for(options, name));
}

}  // namespace

DrainReport drain_queue(Service& service, const DaemonOptions& options) {
  obs::Span drain_span("daemon.drain", "service");
  DrainReport report;

  std::vector<fs::path> pending;
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options.queue_dir, ec)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".dqdimacs") continue;
      pending.push_back(entry.path());
    }
    if (ec) return report;  // unreadable queue: nothing to do
  }
  std::sort(pending.begin(), pending.end());

  for (const fs::path& request : pending) {
    if (stop_requested(service, options)) {
      report.stopped = true;
      break;
    }
    if (options.max_requests != 0 &&
        report.processed + report.failed >= options.max_requests) {
      report.stopped = true;
      break;
    }
    const std::string result_path = result_path_for(request);
    const std::string name = request.filename().string();
    const fs::path journal_path = journal_path_for(options, name);
    if (fs::exists(result_path)) {
      // Finished in a previous life; a leftover journal (crash between
      // result write and journal removal) is stale bookkeeping.
      if (options.journal) remove_journal(journal_path);
      ++report.skipped;
      continue;
    }

    RequestRecord record;
    record.path = request.string();

    Journal journal;
    if (options.journal) {
      journal = read_journal(journal_path);
      if (journal.next_retry_ms != 0 &&
          now_unix_ms() < journal.next_retry_ms) {
        // Backoff not elapsed: leave for a later drain, keep draining —
        // one throttled request must not delay the rest of the queue.
        record.deferred = true;
        record.attempts = static_cast<std::size_t>(journal.attempts);
        ++report.deferred;
        report.records.push_back(std::move(record));
        continue;
      }
      if (journal.attempts >= options.max_attempts) {
        // Covers crash-loops: the journal counts *started* executions,
        // so a request that keeps killing the daemon exhausts its
        // attempts without ever reporting a failure.
        quarantine_request(options, request, name, journal.attempts,
                           journal.error.empty() ? "attempts exhausted"
                                                 : journal.error);
        record.quarantined = true;
        record.attempts = static_cast<std::size_t>(journal.attempts);
        ++report.quarantined;
        obs::Registry::global()
            .counter("service_requests_quarantined_total")
            .inc();
        report.records.push_back(std::move(record));
        continue;
      }
    }
    const std::uint64_t attempts_prev = journal.attempts;
    const std::uint64_t attempt = attempts_prev + 1;
    record.attempts = static_cast<std::size_t>(attempt);
    if (options.journal) {
      // Write-ahead intent: if we die mid-request, the next drain sees
      // this execution in the count and re-runs (or quarantines) it.
      Journal intent;
      intent.attempts = attempt;
      intent.error = journal.error;
      write_journal(journal_path, intent);
    }

    // A transient failure: journal a backed-off retry, or quarantine once
    // the attempt budget is spent. Without the journal this keeps the
    // PR-9 behavior — no result file, re-run on every drain.
    const auto transient_failure = [&](const std::string& message) {
      record.internal_error = true;
      if (!options.journal) return;
      if (attempt >= options.max_attempts) {
        quarantine_request(options, request, name, attempt, message);
        record.quarantined = true;
        ++report.quarantined;
        obs::Registry::global()
            .counter("service_requests_quarantined_total")
            .inc();
        return;
      }
      Journal next;
      next.attempts = attempt;
      next.next_retry_ms = now_unix_ms() + static_cast<std::uint64_t>(
                                               backoff_ms(options, name,
                                                          attempt));
      next.error = message;
      write_journal(journal_path, next);
      record.retried = true;
      ++report.retried;
      obs::Registry::global().counter("service_requests_retried_total").inc();
    };

    // Injected read fault: the request file is unreadable *this drain*
    // (EIO, stale NFS handle, ...) — transient, not malformed.
    if (util::fault::io_should_fail(util::fault::Site::kDaemonRead)) {
      transient_failure("injected daemon.read fault");
      report.records.push_back(std::move(record));
      continue;
    }

    dqbf::DqbfFormula formula;
    bool parsed = false;
    try {
      std::ifstream in(request);
      if (in) {
        formula = dqbf::parse_dqdimacs(in);
        parsed = true;
      }
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) {
      record.malformed = true;
      ++report.failed;
      if (write_file_atomic(result_path,
                            error_json(name, "unparsable DQDIMACS"))) {
        record.result_path = result_path;
      }
      if (options.journal) remove_journal(journal_path);
      report.records.push_back(std::move(record));
      continue;
    }

    util::Timer timer;
    SolveOptions solve_options;
    solve_options.time_limit_seconds = options.time_limit_seconds;
    solve_options.cancel = options.stop;
    solve_options.use_cache = options.use_cache;
    const ServiceResponse response =
        service.submit(formula, solve_options).get();
    record.seconds = timer.seconds();
    record.status = response.status;
    record.certified = response.certified;
    record.cache_hit = response.cache_hit;
    record.cancelled = response.cancelled;

    if (response.cancelled) {
      // Interrupted, not answered: leave no result file so the next
      // drain re-runs the request, and stop draining. The interrupted
      // execution does not count against the attempt budget.
      if (options.journal) {
        if (attempts_prev == 0) {
          remove_journal(journal_path);
        } else {
          Journal restore = journal;
          restore.next_retry_ms = 0;
          write_journal(journal_path, restore);
        }
      }
      report.records.push_back(std::move(record));
      report.stopped = true;
      break;
    }

    if (response.status == core::SynthesisStatus::kInternalError) {
      // The worker caught an exception for this request only; the
      // service (and the rest of the drain) is intact.
      transient_failure(response.error.empty() ? "internal error"
                                               : response.error);
      report.records.push_back(std::move(record));
      continue;
    }

    ++report.processed;
    if (response.solved()) ++report.solved;
    if (response.cache_hit) ++report.cache_hits;
    // Any other status — including kOutOfBudget — is a final answer and
    // gets a result file; budget trips are never retried.
    const bool write_failed =
        util::fault::io_should_fail(util::fault::Site::kDaemonWrite) ||
        !write_file_atomic(result_path,
                           result_json(name, formula, response,
                                       options.write_certificates));
    if (write_failed) {
      // The verdict exists but is not durable: without a result file the
      // next drain would re-run the request, so treat it as transient.
      --report.processed;
      if (response.solved()) --report.solved;
      if (response.cache_hit) --report.cache_hits;
      transient_failure("result write failed");
      report.records.push_back(std::move(record));
      continue;
    }
    record.result_path = result_path;
    if (options.journal) remove_journal(journal_path);
    report.records.push_back(std::move(record));
  }
  return report;
}

}  // namespace manthan::engine
