#include "engine/daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "aig/aig_io.hpp"
#include "dqbf/dqdimacs.hpp"
#include "dqbf/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace manthan::engine {

namespace {

namespace fs = std::filesystem;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_path_for(const fs::path& request) {
  fs::path p = request;
  p.replace_extension(".result.json");
  return p.string();
}

// Result files are written with obs::write_file_atomic (temp file +
// rename) so a drain interrupted mid-write leaves no half-result behind.
using obs::write_file_atomic;

std::string blif_certificate(const dqbf::DqbfFormula& formula,
                             const ServiceResponse& response) {
  aig::Aig manager;
  const dqbf::HenkinVector vector = response.functions->import_into(manager);
  std::vector<aig::NamedFunction> named;
  named.reserve(vector.functions.size());
  for (std::size_t i = 0; i < vector.functions.size(); ++i) {
    named.push_back(
        {"y" + std::to_string(formula.existentials()[i].var + 1),
         vector.functions[i]});
  }
  std::ostringstream out;
  aig::write_blif(out, manager, "henkin_functions", named);
  return out.str();
}

std::string result_json(const std::string& request_name,
                        const dqbf::DqbfFormula& formula,
                        const ServiceResponse& response,
                        bool with_certificate) {
  const core::SynthesisStats& st = response.stats;
  std::ostringstream out;
  out << "{\n";
  out << "  \"request\": \"" << json_escape(request_name) << "\",\n";
  out << "  \"status\": \"" << status_name(response.status) << "\",\n";
  out << "  \"engine\": \"" << engine_name(response.engine) << "\",\n";
  out << "  \"certified\": " << (response.certified ? "true" : "false")
      << ",\n";
  out << "  \"cache_hit\": " << (response.cache_hit ? "true" : "false")
      << ",\n";
  out << "  \"raced\": " << (response.raced ? "true" : "false") << ",\n";
  out << "  \"seconds\": " << response.solve_seconds << ",\n";
  out << "  \"fingerprint\": \"" << dqbf::to_string(response.fingerprint)
      << "\",\n";
  out << "  \"stats\": {\n";
  out << "    \"samples\": " << st.samples << ",\n";
  out << "    \"unique_defined\": " << st.unique_defined << ",\n";
  out << "    \"counterexamples\": " << st.counterexamples << ",\n";
  out << "    \"repairs\": " << st.repairs << ",\n";
  out << "    \"analysis_unique_hits\": " << st.analysis_unique_hits << ",\n";
  out << "    \"analysis_dependency_hits\": " << st.analysis_dependency_hits
      << "\n";
  out << "  }";
  if (with_certificate && response.solved() &&
      response.functions != nullptr) {
    out << ",\n  \"functions_blif\": \""
        << json_escape(blif_certificate(formula, response)) << "\"";
  }
  out << "\n}\n";
  return out.str();
}

std::string error_json(const std::string& request_name,
                       const std::string& message) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"request\": \"" << json_escape(request_name) << "\",\n";
  out << "  \"status\": \"error\",\n";
  out << "  \"error\": \"" << json_escape(message) << "\"\n";
  out << "}\n";
  return out.str();
}

bool stop_requested(const Service& service, const DaemonOptions& options) {
  return service.shutting_down() ||
         (options.stop != nullptr && options.stop->cancelled());
}

}  // namespace

DrainReport drain_queue(Service& service, const DaemonOptions& options) {
  obs::Span drain_span("daemon.drain", "service");
  DrainReport report;

  std::vector<fs::path> pending;
  {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(options.queue_dir, ec)) {
      if (!entry.is_regular_file()) continue;
      if (entry.path().extension() != ".dqdimacs") continue;
      pending.push_back(entry.path());
    }
    if (ec) return report;  // unreadable queue: nothing to do
  }
  std::sort(pending.begin(), pending.end());

  for (const fs::path& request : pending) {
    if (stop_requested(service, options)) {
      report.stopped = true;
      break;
    }
    if (options.max_requests != 0 &&
        report.processed + report.failed >= options.max_requests) {
      report.stopped = true;
      break;
    }
    const std::string result_path = result_path_for(request);
    if (fs::exists(result_path)) {
      ++report.skipped;
      continue;
    }

    RequestRecord record;
    record.path = request.string();
    const std::string name = request.filename().string();

    dqbf::DqbfFormula formula;
    bool parsed = false;
    try {
      std::ifstream in(request);
      if (in) {
        formula = dqbf::parse_dqdimacs(in);
        parsed = true;
      }
    } catch (const std::exception&) {
      parsed = false;
    }
    if (!parsed) {
      record.malformed = true;
      ++report.failed;
      if (write_file_atomic(result_path,
                            error_json(name, "unparsable DQDIMACS"))) {
        record.result_path = result_path;
      }
      report.records.push_back(std::move(record));
      continue;
    }

    util::Timer timer;
    SolveOptions solve_options;
    solve_options.time_limit_seconds = options.time_limit_seconds;
    solve_options.cancel = options.stop;
    solve_options.use_cache = options.use_cache;
    const ServiceResponse response =
        service.submit(formula, solve_options).get();
    record.seconds = timer.seconds();
    record.status = response.status;
    record.certified = response.certified;
    record.cache_hit = response.cache_hit;
    record.cancelled = response.cancelled;

    if (response.cancelled) {
      // Interrupted, not answered: leave no result file so the next
      // drain re-runs the request, and stop draining.
      report.records.push_back(std::move(record));
      report.stopped = true;
      break;
    }

    ++report.processed;
    if (response.solved()) ++report.solved;
    if (response.cache_hit) ++report.cache_hits;
    if (write_file_atomic(result_path,
                          result_json(name, formula, response,
                                      options.write_certificates))) {
      record.result_path = result_path;
    }
    report.records.push_back(std::move(record));
  }
  return report;
}

}  // namespace manthan::engine
