#include "engine/race.hpp"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "dqbf/certificate.hpp"
#include "engine/scheduler.hpp"
#include "obs/trace.hpp"
#include "util/budget.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::engine {

RaceOutcome race(const dqbf::DqbfFormula& formula, aig::Aig& manager,
                 const RaceOptions& options) {
  RaceOutcome outcome;
  const std::size_t n = options.contenders.size();
  outcome.lanes.resize(n);
  if (n == 0) return outcome;

  // The winner flips only the child flag; an external stop (service
  // shutdown, per-request cancel) flows in through the parent without
  // being conflated with a win.
  util::AnyOfCancelToken cancel(options.cancel);
  std::mutex finish_mutex;  // guards winner selection across lanes
  std::vector<std::unique_ptr<aig::Aig>> managers(n);
  std::vector<core::SynthesisResult> results(n);

  {
    Scheduler pool(n);
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      futures.push_back(pool.submit([&, i]() {
        // One span per contender; all lanes share the request's trace id,
        // so a trace shows them racing side by side across threads.
        obs::Span lane_span("race.lane", "service",
                            options.manthan3.trace_id);
        // The budget is thread-local; each lane re-installs it so its
        // growth sites charge the shared request budget.
        util::BudgetScope budget_scope(options.budget);
        util::Timer timer;
        EngineOptions engine_options;
        engine_options.time_limit_seconds = options.time_limit_seconds;
        engine_options.seed = util::derive_seed(
            options.seed,
            static_cast<std::uint64_t>(options.contenders[i]), i);
        engine_options.cancel = &cancel;
        engine_options.manthan3 = options.manthan3;
        managers[i] = std::make_unique<aig::Aig>();
        core::SynthesisResult result;
        try {
          result = run_engine(formula, *managers[i], options.contenders[i],
                              engine_options);
        } catch (const util::OutOfBudgetError&) {
          // Baseline engines don't catch budget trips themselves
          // (Manthan3 does); a tripped lane is a finished lane.
          result.status = core::SynthesisStatus::kOutOfBudget;
        }

        RaceLane& lane = outcome.lanes[i];
        lane.engine = options.contenders[i];
        lane.status = result.status;
        lane.stats = result.stats;
        lane.seconds = timer.seconds();
        if (result.status == core::SynthesisStatus::kRealizable) {
          const dqbf::CertificateResult cert = dqbf::check_certificate(
              formula, *managers[i], result.vector);
          lane.certified = cert.status == dqbf::CertificateStatus::kValid;
        }
        const bool definitive =
            lane.certified ||
            result.status == core::SynthesisStatus::kUnrealizable;

        const std::lock_guard<std::mutex> lock(finish_mutex);
        results[i] = std::move(result);
        if (definitive && outcome.winner < 0) {
          outcome.winner = static_cast<int>(i);
          lane.winner = true;
          obs::trace_instant("race.win", "service",
                             options.manthan3.trace_id);
          cancel.cancel();  // stop the losing lanes at their next poll
        } else if (cancel.cancelled() &&
                   lane.status == core::SynthesisStatus::kTimeout) {
          // Truncated by the token, not a natural completion. (A lane
          // whose own time budget expired in the instant after the win
          // is indistinguishable and also counted; a lane that finished
          // with a real verdict is not.)
          lane.cancelled = true;
        }
      }));
    }
    for (std::future<void>& f : futures) f.get();
  }

  if (outcome.winner >= 0) {
    const std::size_t w = static_cast<std::size_t>(outcome.winner);
    outcome.status = outcome.lanes[w].status;
    outcome.certified = outcome.lanes[w].certified;
    if (outcome.status == core::SynthesisStatus::kRealizable) {
      // Rebuild the winning functions in the caller's manager.
      std::unordered_map<std::uint32_t, aig::Ref> node_map;
      outcome.vector.functions.reserve(results[w].vector.functions.size());
      for (const aig::Ref f : results[w].vector.functions) {
        outcome.vector.functions.push_back(
            aig::import_cone(*managers[w], manager, f, node_map));
      }
    }
    return outcome;
  }

  // No definitive lane: summarize the failure mode. Incompleteness
  // dominates (a budget would not have helped), then iteration limits,
  // then resource-budget trips, then genuine timeouts; an uncertified
  // kRealizable claim counts as incompleteness (the engine finished but
  // produced an invalid vector). Internal errors rank last — any other
  // lane's outcome is more informative.
  const auto rank = [](core::SynthesisStatus s) {
    switch (s) {
      case core::SynthesisStatus::kIncomplete: return 0;
      case core::SynthesisStatus::kRealizable: return 0;  // uncertified
      case core::SynthesisStatus::kLimit: return 1;
      case core::SynthesisStatus::kOutOfBudget: return 2;
      case core::SynthesisStatus::kInternalError: return 4;
      default: return 3;  // kTimeout
    }
  };
  outcome.status = core::SynthesisStatus::kTimeout;
  for (const RaceLane& lane : outcome.lanes) {
    if (rank(lane.status) >= rank(outcome.status)) continue;
    outcome.status = lane.status == core::SynthesisStatus::kRealizable
                         ? core::SynthesisStatus::kIncomplete
                         : lane.status;
  }
  return outcome;
}

}  // namespace manthan::engine
