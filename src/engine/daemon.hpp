// Directory-queue front end for the synthesis service.
//
// The deployment shape behind examples/manthan3d.cpp: producers drop
// `*.dqdimacs` files into a queue directory; drain_queue() walks the
// directory in lexicographic order, routes each request through an
// engine::Service, and writes `<name>.result.json` next to the request —
// status, engine, cache/race provenance, timing, the canonical spec
// fingerprint, engine counters, and (for solved requests) the certified
// Henkin functions embedded as a BLIF netlist. A request whose result
// file already exists is skipped, so repeated drains (and daemon
// restarts) are idempotent.
//
// Shutdown without leaked work: the stop token is checked between
// requests and composed into each request's cancellation, so a SIGINT
// mid-solve stops the engine at its next deadline poll; the cancelled
// request writes no result file and is re-run by the next drain. Result
// files are written to a temporary name and renamed into place, so a
// crash mid-write never leaves a half-result that a later drain would
// mistake for a finished one.
//
// Malformed requests (unparsable DQDIMACS) are counted as failed and get
// an error-result file — a poisoned request must not wedge the queue by
// being retried forever.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/manthan3.hpp"
#include "engine/service.hpp"
#include "util/cancel.hpp"

namespace manthan::engine {

struct DaemonOptions {
  /// Directory holding `*.dqdimacs` request files.
  std::string queue_dir;
  /// Per-request budget in seconds; negative = the service default.
  double time_limit_seconds = -1.0;
  /// Stop after this many processed requests (0 = drain everything).
  std::size_t max_requests = 0;
  /// Checked between requests and composed into each request's
  /// cancellation; null = only service shutdown can interrupt.
  const util::CancelToken* stop = nullptr;
  /// Consult/populate the service's tier-1 cache.
  bool use_cache = true;
  /// Embed the certified functions as BLIF in the result JSON.
  bool write_certificates = true;
};

/// Per-request drain outcome.
struct RequestRecord {
  std::string path;         // request file
  std::string result_path;  // result JSON (empty if none was written)
  core::SynthesisStatus status = core::SynthesisStatus::kTimeout;
  bool certified = false;
  bool cache_hit = false;
  /// Request file could not be parsed.
  bool malformed = false;
  /// Stopped by the stop token / service shutdown before a verdict.
  bool cancelled = false;
  double seconds = 0.0;
};

struct DrainReport {
  std::size_t processed = 0;  // requests routed through the service
  std::size_t solved = 0;     // certified realizable
  std::size_t cache_hits = 0;
  std::size_t failed = 0;   // malformed requests
  std::size_t skipped = 0;  // result file already present
  /// The drain ended early (stop token, shutdown, or max_requests).
  bool stopped = false;
  std::vector<RequestRecord> records;
};

/// Drain pending requests from options.queue_dir through `service`.
/// Sequential (one request at a time — the service's admission policy
/// turns idle cores into engine races); safe to call repeatedly.
DrainReport drain_queue(Service& service, const DaemonOptions& options);

}  // namespace manthan::engine
