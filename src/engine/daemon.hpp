// Directory-queue front end for the synthesis service.
//
// The deployment shape behind examples/manthan3d.cpp: producers drop
// `*.dqdimacs` files into a queue directory; drain_queue() walks the
// directory in lexicographic order, routes each request through an
// engine::Service, and writes `<name>.result.json` next to the request —
// status, engine, cache/race provenance, timing, the canonical spec
// fingerprint, engine counters, and (for solved requests) the certified
// Henkin functions embedded as a BLIF netlist. A request whose result
// file already exists is skipped, so repeated drains (and daemon
// restarts) are idempotent.
//
// Shutdown without leaked work: the stop token is checked between
// requests and composed into each request's cancellation, so a SIGINT
// mid-solve stops the engine at its next deadline poll; the cancelled
// request writes no result file and is re-run by the next drain. Result
// files are written to a temporary name and renamed into place, so a
// crash mid-write never leaves a half-result that a later drain would
// mistake for a finished one.
//
// Malformed requests (unparsable DQDIMACS) are counted as failed and get
// an error-result file — a poisoned request must not wedge the queue by
// being retried forever.
//
// Crash/fault hardening (when `journal` is on): before a request is
// executed, a write-ahead intent record `journal/<name>.journal` is
// written with the attempt count. A transient failure (worker internal
// error, result-write failure, injected daemon I/O fault) leaves the
// journal in place with an exponential-backoff-with-jitter retry time, so
// later drains re-run the request after the backoff; once max_attempts
// executions have started without producing a result — including
// crash-loops, where the journal survives the process — the request file
// is moved to `failed/<name>` with an `<name>.error.json` beside it and
// never retried again (quarantine). Graceful cancellation restores the
// previous attempt count: an interrupt is not a failure. Successful
// results remove the journal, so a daemon killed between journal write
// and result write re-runs the interrupted request exactly once.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/manthan3.hpp"
#include "engine/service.hpp"
#include "util/cancel.hpp"

namespace manthan::engine {

struct DaemonOptions {
  /// Directory holding `*.dqdimacs` request files.
  std::string queue_dir;
  /// Per-request budget in seconds; negative = the service default.
  double time_limit_seconds = -1.0;
  /// Stop after this many processed requests (0 = drain everything).
  std::size_t max_requests = 0;
  /// Checked between requests and composed into each request's
  /// cancellation; null = only service shutdown can interrupt.
  const util::CancelToken* stop = nullptr;
  /// Consult/populate the service's tier-1 cache.
  bool use_cache = true;
  /// Embed the certified functions as BLIF in the result JSON.
  bool write_certificates = true;

  /// Maximum executions per request before it is quarantined to
  /// `failed/` (counted across daemon restarts via the journal).
  std::size_t max_attempts = 3;
  /// Exponential retry backoff: attempt k waits about
  /// retry_base_ms * 2^(k-1), capped at retry_max_ms, scaled by a
  /// deterministic per-(request, attempt) jitter in [0.5, 1.0].
  double retry_base_ms = 200.0;
  double retry_max_ms = 60000.0;
  /// Write-ahead intent journal + retry/quarantine bookkeeping. Off =
  /// PR-9 behavior (transient failures re-run forever, no quarantine).
  bool journal = true;
};

/// Per-request drain outcome.
struct RequestRecord {
  std::string path;         // request file
  std::string result_path;  // result JSON (empty if none was written)
  core::SynthesisStatus status = core::SynthesisStatus::kTimeout;
  bool certified = false;
  bool cache_hit = false;
  /// Request file could not be parsed.
  bool malformed = false;
  /// Stopped by the stop token / service shutdown before a verdict.
  bool cancelled = false;
  /// Transient failure this drain; journaled for a backed-off re-run.
  bool retried = false;
  /// Moved to failed/ after exhausting max_attempts.
  bool quarantined = false;
  /// Journaled retry time still in the future; skipped this drain.
  bool deferred = false;
  /// The service reported kInternalError for this execution.
  bool internal_error = false;
  /// Executions started (journal count including this drain's, if any).
  std::size_t attempts = 0;
  double seconds = 0.0;
};

struct DrainReport {
  std::size_t processed = 0;  // requests routed through the service
  std::size_t solved = 0;     // certified realizable
  std::size_t cache_hits = 0;
  std::size_t failed = 0;   // malformed requests
  std::size_t skipped = 0;  // result file already present
  std::size_t retried = 0;      // transient failures journaled for re-run
  std::size_t quarantined = 0;  // requests moved to failed/
  std::size_t deferred = 0;     // backoff not yet elapsed
  /// The drain ended early (stop token, shutdown, or max_requests).
  bool stopped = false;
  std::vector<RequestRecord> records;
};

/// Drain pending requests from options.queue_dir through `service`.
/// Sequential (one request at a time — the service's admission policy
/// turns idle cores into engine races); safe to call repeatedly.
DrainReport drain_queue(Service& service, const DaemonOptions& options);

}  // namespace manthan::engine
