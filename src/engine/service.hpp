// The synthesis service: a session-based, embeddable front door to the
// engines.
//
// One Service owns a scheduler pool, an admission policy, and a two-tier
// result cache; clients hold a Service for the lifetime of a session
// (a daemon process, a suite run, an embedding application) and submit
// any number of requests against it. Per-request work is keyed by the
// canonical spec fingerprint (dqbf/fingerprint.hpp), which buys three
// things no one-shot API can offer:
//
//   * Tier-1 result reuse. A certified SynthesisResult — status plus the
//     Skolem/Henkin AIG cones, serialized into a private immutable
//     manager — is stored under (fingerprint, engine-mode) in an LRU
//     cache. A duplicate request (same spec up to clause order, literal
//     order, and role-preserving variable renaming) is answered without
//     touching a worker; callers import the cached cones into their own
//     manager via aig::import_cone, exactly like a race winner's vector.
//
//   * Tier-2 analysis reuse. Every Manthan3 run executed by the service
//     shares one core::AnalysisCache, so near-duplicate specs reuse
//     unique-definability verdicts and dependency relations even when
//     tier 1 misses.
//
//   * In-flight coalescing. Concurrent duplicate submissions (no
//     per-request cancel token) share one underlying job and one future.
//
// Admission: when the service is idle (no queued requests) and has spare
// workers, a request fans into engine::race across the configured
// contenders — latency mode. Once a backlog forms, each request runs a
// single engine — throughput mode, one worker per request. kSingle /
// kRace force either behavior.
//
// Determinism: the per-request seed is derived from the service seed and
// the spec fingerprint, never from submission order or wall clock, so a
// warm hit is field-for-field identical to what the cold solve at the
// same seed produced (the determinism guard in tests/test_service.cpp
// pins this).
//
// Cancellation: each job observes a util::AnyOfCancelToken composed of
// the service-wide shutdown token and the caller's optional per-request
// token. shutdown() flips the service token and returns; the destructor
// drains the pool, with every queued-but-unstarted job observing the
// token at its first deadline poll and returning kTimeout quickly.
// Cancelled results are never cached.
//
// Threading: submit() is safe from any thread. solve() blocks on the
// returned future — calling it from inside a service worker can deadlock
// a fully-busy pool (the scheduler's documented dependent-stage caveat);
// embedders that need request chaining should use submit() and compose
// futures outside the pool.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "aig/aig.hpp"
#include "core/analysis_cache.hpp"
#include "core/manthan3.hpp"
#include "dqbf/dqbf.hpp"
#include "dqbf/fingerprint.hpp"
#include "engine/engine.hpp"
#include "engine/race.hpp"
#include "engine/scheduler.hpp"
#include "util/budget.hpp"
#include "util/cancel.hpp"

namespace manthan::engine {

struct ServiceOptions {
  /// Scheduler worker threads; 0 = hardware concurrency.
  std::size_t workers = 0;
  /// Default per-request wall-clock budget in seconds (0 = unlimited);
  /// counted from job start, not from submission (queue wait is free).
  double default_time_limit_seconds = 0.0;
  /// Base seed: per-request seeds are derive_seed(seed, fp, mode).
  std::uint64_t seed = 42;
  /// Knobs forwarded to every Manthan3 run (time/seed/cancel and the
  /// analysis_cache pointer are overridden per request by the service).
  core::Manthan3Options manthan3;

  enum class Admission {
    kAuto,    // race when idle, single-engine when backlogged
    kSingle,  // always one engine per request
    kRace,    // always race (unless the request forces an engine)
  };
  Admission admission = Admission::kAuto;
  /// Engine used for single-engine runs (backlog mode / kSingle).
  EngineKind single_engine = EngineKind::kManthan3;
  /// Contenders for race-mode requests.
  std::vector<EngineKind> race_contenders{
      EngineKind::kManthan3, EngineKind::kHqsLite, EngineKind::kPedantLite};

  /// Enable the tier-1 certified-result cache.
  bool result_cache = true;
  /// Tier-1 LRU capacity (entries); 0 = unbounded.
  std::size_t result_cache_capacity = 1024;
  /// Enable the shared tier-2 analysis cache (unique-def verdicts,
  /// dependency relations) across all Manthan3 runs.
  bool analysis_cache = true;
  /// Share one in-flight job between concurrent duplicate submissions
  /// (only requests without a per-request cancel token coalesce — a
  /// token must never cancel a stranger's request).
  bool coalesce = true;

  /// Default per-request resource budget (growth-site heap bytes, wall
  /// seconds enforced by the service watchdog, SAT conflicts). All-zero =
  /// unlimited; SolveOptions::budget overrides per request. A tripped
  /// budget yields kOutOfBudget with truncated-but-valid stats — it is a
  /// final answer, never marked cancelled and never retried by daemons.
  util::ResourceBudget::Limits default_budget;
  /// Poll interval of the wall-clock budget watchdog thread.
  std::uint32_t watchdog_poll_ms = 10;
  /// Directory for the crash-durable tier-1 cache: one text file per
  /// definitive entry (header + AIGER payload, see README). Entries are
  /// reloaded at construction — corrupt or truncated files are skipped,
  /// never fatal — and deleted on LRU eviction. Empty = in-memory only.
  std::string cache_dir;
};

/// Per-request knobs for submit()/solve().
struct SolveOptions {
  /// Wall-clock budget in seconds; negative = service default.
  double time_limit_seconds = -1.0;
  /// Optional per-request stop flag, composed with the service shutdown
  /// token. Must outlive the request. Requests carrying a token are
  /// never coalesced with other submissions.
  const util::CancelToken* cancel = nullptr;
  /// Force this engine instead of the admission policy (cached under a
  /// separate engine-mode tag).
  std::optional<EngineKind> engine;
  /// Consult and populate the tier-1 cache for this request.
  bool use_cache = true;
  /// Per-request resource budget; unset = the service default.
  std::optional<util::ResourceBudget::Limits> budget;
};

/// Certified Henkin functions serialized as a private immutable AIG —
/// the tier-1 cache value. Immutable after construction; any number of
/// threads may import_into() concurrently.
class ResultCone {
 public:
  /// Rebuild the functions in `dst` (shared strashing: importing into a
  /// manager that already solved the same spec yields identical Refs).
  dqbf::HenkinVector import_into(aig::Aig& dst) const;

  const aig::Aig& manager() const { return manager_; }
  const std::vector<aig::Ref>& roots() const { return roots_; }

 private:
  friend class Service;
  aig::Aig manager_;
  std::vector<aig::Ref> roots_;
};

/// Outcome of one service request.
struct ServiceResponse {
  core::SynthesisStatus status = core::SynthesisStatus::kTimeout;
  /// Result independently validated by dqbf::check_certificate (set for
  /// kRealizable only; kUnrealizable verdicts are engine-proven).
  bool certified = false;
  /// Answered from the tier-1 cache without running an engine.
  bool cache_hit = false;
  /// At least one duplicate submission attached to this job while it was
  /// in flight (every holder of the shared future sees the same value).
  bool coalesced = false;
  /// Produced by a multi-engine race.
  bool raced = false;
  /// Stopped by shutdown or the per-request token before a verdict.
  bool cancelled = false;
  /// Engine that produced the result (race winner; meaningless when no
  /// lane won).
  EngineKind engine = EngineKind::kManthan3;
  /// Engine execution seconds (0 for cache hits; queue wait excluded).
  double solve_seconds = 0.0;
  /// Canonical spec fingerprint of the request.
  dqbf::Fingerprint fingerprint;
  /// Stats of the run that produced the result (the winning lane's for
  /// races; preserved verbatim on cache hits).
  core::SynthesisStats stats;
  /// Which budget limit tripped (set for kOutOfBudget, kNone otherwise).
  util::ResourceBudget::Trip budget_trip = util::ResourceBudget::Trip::kNone;
  /// Worker-caught exception text (set for kInternalError only).
  std::string error;
  /// Non-null iff solved(): the certified functions, importable into any
  /// manager. Shared with the cache — do not mutate through it.
  std::shared_ptr<const ResultCone> functions;

  bool solved() const {
    return status == core::SynthesisStatus::kRealizable && certified;
  }
};

/// solve() convenience: the response plus the functions imported into
/// the caller's manager.
struct ServiceResult {
  ServiceResponse response;
  /// Valid when response.solved(): functions in the caller's manager,
  /// indexed like formula.existentials().
  dqbf::HenkinVector vector;

  bool solved() const { return response.solved(); }
};

/// Aggregate service counters (monotonic since construction).
struct ServiceStats {
  std::size_t requests = 0;        // submit() calls
  std::size_t completed = 0;       // jobs executed on workers
  std::size_t tier1_hits = 0;      // answered from the result cache
  std::size_t tier1_misses = 0;    // cache consulted, no entry
  std::size_t coalesced = 0;       // submissions attached to in-flight jobs
  std::size_t races = 0;           // jobs run in race mode
  std::size_t single_runs = 0;     // jobs run single-engine
  std::size_t cancelled = 0;       // jobs stopped by a token
  std::size_t cache_entries = 0;   // current tier-1 size
  std::size_t cache_evictions = 0;
  std::size_t internal_errors = 0;  // worker-caught exceptions
  std::size_t budget_trips = 0;     // jobs ended kOutOfBudget
  std::size_t persisted_entries = 0;  // tier-1 entries with a cache file
  std::size_t persisted_corrupt = 0;  // cache files skipped at load
  /// Tier-2 counters (all zeros when the analysis cache is disabled).
  core::AnalysisCache::Stats analysis;
};

/// Register the service_* series in the global obs registry (at zero if no
/// request ran yet). Any Service activity registers them implicitly; call
/// this from binaries that export metrics snapshots without necessarily
/// constructing a Service, so scrapers see a stable series set.
void register_service_metrics();

class Service {
 public:
  explicit Service(ServiceOptions options = {});
  /// shutdown() + drain: blocks until every submitted job has returned.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Submit one request; never blocks on solving (cache hits resolve the
  /// future before returning). The formula is copied into the job, so
  /// the caller's copy may be destroyed immediately.
  std::shared_future<ServiceResponse> submit(const dqbf::DqbfFormula& formula,
                                             const SolveOptions& options = {});

  /// Submit + wait + import the functions into `manager`. Blocking; do
  /// not call from inside a service worker (pool deadlock).
  ServiceResult solve(const dqbf::DqbfFormula& formula, aig::Aig& manager,
                      const SolveOptions& options = {});

  /// Flip the service-wide shutdown token: in-flight jobs stop at their
  /// next deadline poll, queued jobs return kTimeout at their first.
  /// Idempotent; does not block (the destructor drains).
  void shutdown();
  bool shutting_down() const { return shutdown_.cancelled(); }

  ServiceStats stats() const;
  std::size_t worker_count() const { return pool_.worker_count(); }
  /// The shared tier-2 cache (valid regardless of options; unused by
  /// jobs when analysis_cache is disabled).
  core::AnalysisCache& analysis_cache() { return analysis_cache_; }

 private:
  struct CacheKey {
    dqbf::Fingerprint fp;
    std::uint32_t mode = 0;  // 0 = policy-admitted, 1 + engine = forced
    bool operator==(const CacheKey& o) const {
      return fp == o.fp && mode == o.mode;
    }
  };
  struct CacheKeyHasher {
    std::size_t operator()(const CacheKey& k) const {
      return dqbf::FingerprintHasher{}(k.fp) ^
             (static_cast<std::size_t>(k.mode) * 0x9e3779b97f4a7c15ULL);
    }
  };
  struct Job;

  ServiceResponse run_job(const std::shared_ptr<Job>& job);
  /// Structured response for a worker-caught exception: the job consumed
  /// a worker but the engines never returned (injected fault, unexpected
  /// throw). Completes coalesced waiters like any other outcome.
  ServiceResponse internal_error_response(const std::shared_ptr<Job>& job,
                                          const char* what);
  void cache_store(const CacheKey& key, const ServiceResponse& response,
                   bool persist);

  // --- crash-durable tier-1 cache (service_persist.cpp) -----------------
  struct PersistedEntry {
    CacheKey key;
    ServiceResponse response;
  };
  static std::string persist_filename(const CacheKey& key);
  static std::string encode_persisted(const CacheKey& key,
                                      const ServiceResponse& response);
  /// Parse one cache file; nullopt on any corruption (bad magic, missing
  /// field, malformed AIGER, root-count mismatch).
  static std::optional<PersistedEntry> decode_persisted(
      const std::string& text);
  /// Constructor-time reload, ordered by filename for determinism.
  void load_persisted_cache();
  // Both called with mutex_ held; file I/O under the lock is accepted —
  // entries are small and stores are rare (one per definitive cold solve).
  void persist_store(const CacheKey& key, const ServiceResponse& response);
  void persist_remove(const CacheKey& key);

  // --- wall-clock budget watchdog ---------------------------------------
  /// One lazily-started thread trips ResourceBudget::Trip::kTime on every
  /// registered budget whose deadline passed. Declared before pool_ so
  /// the workers (which add/remove entries) drain first; the thread is
  /// joined afterwards by ~Watchdog.
  struct Watchdog {
    std::uint32_t poll_ms = 10;
    std::mutex mutex;
    std::condition_variable cv;
    bool stop = false;
    std::uint64_t next_id = 1;
    struct Entry {
      util::ResourceBudget* budget;
      std::chrono::steady_clock::time_point deadline;
    };
    std::unordered_map<std::uint64_t, Entry> active;
    std::thread thread;

    std::uint64_t add(util::ResourceBudget* budget, double wall_seconds);
    void remove(std::uint64_t id);
    void run();
    ~Watchdog();
  };

  ServiceOptions options_;
  util::CancelToken shutdown_;
  core::AnalysisCache analysis_cache_;

  mutable std::mutex mutex_;  // guards cache + coalescing maps + stats
  // Tier-1 LRU: most-recent at the front of lru_; map values point into
  // the list.
  struct CacheEntry {
    CacheKey key;
    ServiceResponse response;  // cache_hit/coalesced false; rewritten per hit
  };
  std::list<CacheEntry> lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHasher>
      cache_;
  std::unordered_map<CacheKey, std::shared_future<ServiceResponse>,
                     CacheKeyHasher>
      inflight_;
  /// Keys whose in-flight job picked up a duplicate submission; consumed
  /// when the job finishes to set ServiceResponse::coalesced.
  std::unordered_set<CacheKey, CacheKeyHasher> coalesced_keys_;
  ServiceStats stats_;
  std::size_t queued_ = 0;  // submitted, not yet started on a worker
  std::size_t persisted_entries_ = 0;  // guarded by mutex_
  std::size_t persisted_corrupt_ = 0;  // guarded by mutex_

  Watchdog watchdog_;  // before pool_: outlives every job
  Scheduler pool_;     // last member: drains before the maps die
};

}  // namespace manthan::engine
