#include "aig/aig_sim.hpp"

#include <algorithm>
#include <cassert>

#include "util/simd.hpp"

namespace manthan::aig {

std::uint64_t simulate64(
    const Aig& aig, Ref root,
    const std::unordered_map<std::int32_t, std::uint64_t>& input_patterns) {
  std::unordered_map<std::uint32_t, std::uint64_t> value;
  for (const std::uint32_t n : cone_topo_order(aig, root)) {
    const Aig::Node& node = aig.node(n);
    if (n == 0) {
      value[n] = 0;
    } else if (node.input_id >= 0) {
      const auto it = input_patterns.find(node.input_id);
      value[n] = it != input_patterns.end() ? it->second : 0;
    } else {
      const std::uint64_t f0 = value[ref_node(node.fanin0)] ^
                               (ref_complemented(node.fanin0) ? ~0ULL : 0);
      const std::uint64_t f1 = value[ref_node(node.fanin1)] ^
                               (ref_complemented(node.fanin1) ? ~0ULL : 0);
      value[n] = f0 & f1;
    }
  }
  return value[ref_node(root)] ^ (ref_complemented(root) ? ~0ULL : 0);
}

namespace {

/// Words per simulation block: each gate evaluates kBlock words (1024
/// samples) at a time through the lane-wide combine kernel, so the vector
/// unit runs full blocks instead of one word per gate visit, while the
/// per-gate scratch slot (128 bytes) stays cache-resident across blocks.
constexpr std::size_t kSimBlockWords = 16;

/// All-zero block read by constants and out-of-matrix inputs.
alignas(64) constexpr std::uint64_t kZeroBlock[kSimBlockWords] = {};

}  // namespace

std::vector<std::uint64_t> simulate_matrix(const Aig& aig, Ref root,
                                           const cnf::SampleMatrix& matrix) {
  std::vector<std::uint64_t> out(matrix.num_words());
  if (out.empty()) return out;
  const std::vector<std::uint32_t> order = cone_topo_order(aig, root);
  // Flatten the cone once: leaves resolve to matrix columns (or the zero
  // block), gates to scratch slots. The block loop then evaluates gates
  // only, lane-wide, without hash lookups.
  std::unordered_map<std::uint32_t, std::uint32_t> slot;
  slot.reserve(order.size());
  struct Source {
    const std::uint64_t* column = nullptr;  // non-null: leaf
    std::uint32_t gate = 0;                 // otherwise: scratch slot index
  };
  struct Gate {
    std::uint32_t slot0 = 0;  // Source indices of the two fanins
    std::uint32_t slot1 = 0;
    std::uint64_t inv0 = 0;
    std::uint64_t inv1 = 0;
  };
  std::vector<Source> sources(order.size());
  std::vector<Gate> gates;
  gates.reserve(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::uint32_t n = order[i];
    slot.emplace(n, static_cast<std::uint32_t>(i));
    const Aig::Node& node = aig.node(n);
    if (n == 0 || node.input_id >= 0) {
      sources[i].column =
          (n != 0 &&
           node.input_id < static_cast<std::int32_t>(matrix.num_vars()))
              ? matrix.column(static_cast<cnf::Var>(node.input_id))
              : kZeroBlock;
    } else {
      sources[i].gate = static_cast<std::uint32_t>(gates.size());
      gates.push_back({slot.at(ref_node(node.fanin0)),
                       slot.at(ref_node(node.fanin1)),
                       ref_complemented(node.fanin0) ? ~0ULL : 0,
                       ref_complemented(node.fanin1) ? ~0ULL : 0});
    }
  }
  const std::uint64_t root_inv = ref_complemented(root) ? ~0ULL : 0;
  const std::uint32_t root_slot = slot.at(ref_node(root));

  const util::simd::Kernels& kernels = util::simd::kernels();
  util::simd::AlignedVector<std::uint64_t> scratch(gates.size() *
                                                   kSimBlockWords);
  const std::size_t words = matrix.num_words();
  for (std::size_t w = 0; w < words; w += kSimBlockWords) {
    const std::size_t n = std::min(kSimBlockWords, words - w);
    // Value of Source s for this block: leaves advance with the block
    // (except the zero block), gates read their scratch slot.
    const auto src = [&](std::uint32_t s) -> const std::uint64_t* {
      const Source& source = sources[s];
      if (source.column != nullptr) {
        return source.column == kZeroBlock ? kZeroBlock : source.column + w;
      }
      return scratch.data() + source.gate * kSimBlockWords;
    };
    for (std::size_t g = 0; g < gates.size(); ++g) {
      const Gate& gate = gates[g];
      kernels.combine(scratch.data() + g * kSimBlockWords, src(gate.slot0),
                      gate.inv0, src(gate.slot1), gate.inv1, 0, n);
    }
    kernels.xor_const(out.data() + w, src(root_slot), root_inv, n);
  }
  // Mask the tail: callers popcount the result directly.
  out[words - 1] &= matrix.tail_mask();
  return out;
}

namespace {

/// Evaluate `root` for all assignments of `ids`; calls `visit` with each
/// 64-pattern word. Returns false early if visit returns false.
template <typename Visit>
bool for_all_patterns(const Aig& aig, Ref root,
                      const std::vector<std::int32_t>& ids, Visit visit) {
  const std::size_t k = ids.size();
  // The first six inputs are packed into the bit positions of one word.
  std::unordered_map<std::int32_t, std::uint64_t> patterns;
  static constexpr std::uint64_t kBasePatterns[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};
  for (std::size_t i = 0; i < k && i < 6; ++i) {
    patterns[ids[i]] = kBasePatterns[i];
  }
  const std::size_t high_bits = k > 6 ? k - 6 : 0;
  const std::uint64_t blocks = 1ULL << high_bits;
  const std::uint64_t valid_mask =
      k >= 6 ? ~0ULL : (1ULL << (1ULL << k)) - 1;
  for (std::uint64_t block = 0; block < blocks; ++block) {
    for (std::size_t i = 6; i < k; ++i) {
      patterns[ids[i]] = ((block >> (i - 6)) & 1) ? ~0ULL : 0ULL;
    }
    if (!visit(simulate64(aig, root, patterns), valid_mask)) return false;
  }
  return true;
}

}  // namespace

bool is_tautology(const Aig& aig, Ref root) {
  const std::vector<std::int32_t> ids = aig.support(root);
  assert(ids.size() <= 24 && "exhaustive check limited to small supports");
  return for_all_patterns(
      aig, root, ids, [](std::uint64_t word, std::uint64_t mask) {
        return (word & mask) == mask;
      });
}

bool semantically_equal(const Aig& aig, Ref a, Ref b) {
  // Equality over the union of supports == xnor is a tautology; but avoid
  // mutating the manager: simulate both and compare words.
  std::vector<std::int32_t> ids = aig.support(a);
  for (const std::int32_t id : aig.support(b)) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  assert(ids.size() <= 24 && "exhaustive check limited to small supports");

  const std::size_t k = ids.size();
  std::unordered_map<std::int32_t, std::uint64_t> patterns;
  static constexpr std::uint64_t kBasePatterns[6] = {
      0xaaaaaaaaaaaaaaaaULL, 0xccccccccccccccccULL, 0xf0f0f0f0f0f0f0f0ULL,
      0xff00ff00ff00ff00ULL, 0xffff0000ffff0000ULL, 0xffffffff00000000ULL};
  for (std::size_t i = 0; i < k && i < 6; ++i) {
    patterns[ids[i]] = kBasePatterns[i];
  }
  const std::size_t high_bits = k > 6 ? k - 6 : 0;
  const std::uint64_t blocks = 1ULL << high_bits;
  const std::uint64_t valid_mask =
      k >= 6 ? ~0ULL : (1ULL << (1ULL << k)) - 1;
  for (std::uint64_t block = 0; block < blocks; ++block) {
    for (std::size_t i = 6; i < k; ++i) {
      patterns[ids[i]] = ((block >> (i - 6)) & 1) ? ~0ULL : 0ULL;
    }
    const std::uint64_t wa = simulate64(aig, a, patterns);
    const std::uint64_t wb = simulate64(aig, b, patterns);
    if (((wa ^ wb) & valid_mask) != 0) return false;
  }
  return true;
}

std::vector<bool> truth_table(const Aig& aig, Ref root,
                              const std::vector<std::int32_t>& input_ids) {
  const std::size_t k = input_ids.size();
  assert(k <= 24 && "truth table limited to small supports");
  std::vector<bool> table;
  table.reserve(1ULL << k);
  std::unordered_map<std::int32_t, bool> inputs;
  for (std::uint64_t row = 0; row < (1ULL << k); ++row) {
    for (std::size_t j = 0; j < k; ++j) {
      inputs[input_ids[j]] = ((row >> j) & 1) != 0;
    }
    table.push_back(aig.evaluate(root, inputs));
  }
  return table;
}

}  // namespace manthan::aig
