#include "aig/aig_cnf.hpp"

#include <unordered_map>

namespace manthan::aig {

cnf::Lit encode_cone(
    const Aig& aig, Ref root, cnf::CnfFormula& out,
    const std::function<cnf::Lit(std::int32_t)>& input_lit) {
  std::unordered_map<std::uint32_t, cnf::Lit> lit_of_node;
  cnf::Lit const_false_lit = cnf::kUndefLit;
  for (const std::uint32_t n : cone_topo_order(aig, root)) {
    const Aig::Node& node = aig.node(n);
    if (n == 0) {
      // Constant node: materialize a variable fixed to false only if some
      // cone actually references the constant.
      const_false_lit = cnf::pos(out.new_var());
      out.add_unit(~const_false_lit);
      lit_of_node.emplace(n, const_false_lit);
    } else if (node.input_id >= 0) {
      lit_of_node.emplace(n, input_lit(node.input_id));
    } else {
      const cnf::Lit a =
          lit_of_node.at(ref_node(node.fanin0)) ^
          ref_complemented(node.fanin0);
      const cnf::Lit b =
          lit_of_node.at(ref_node(node.fanin1)) ^
          ref_complemented(node.fanin1);
      const cnf::Lit n_lit = cnf::pos(out.new_var());
      out.add_binary(~n_lit, a);
      out.add_binary(~n_lit, b);
      out.add_ternary(~a, ~b, n_lit);
      lit_of_node.emplace(n, n_lit);
    }
  }
  return lit_of_node.at(ref_node(root)) ^ ref_complemented(root);
}

cnf::Lit encode_cone(const Aig& aig, Ref root, cnf::CnfFormula& out) {
  return encode_cone(aig, root, out, [](std::int32_t id) {
    return cnf::pos(static_cast<cnf::Var>(id));
  });
}

}  // namespace manthan::aig
