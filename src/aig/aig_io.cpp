#include "aig/aig_io.hpp"

#include <ostream>
#include <set>
#include <sstream>
#include <unordered_map>

namespace manthan::aig {

std::string default_input_name(std::int32_t id) {
  return "x" + std::to_string(id);
}

namespace {

/// Union of the cones of all outputs in topological order.
std::vector<std::uint32_t> combined_cone(const Aig& aig,
                                         const std::vector<NamedFunction>&
                                             outputs) {
  std::vector<std::uint32_t> order;
  std::set<std::uint32_t> seen;
  for (const NamedFunction& o : outputs) {
    for (const std::uint32_t n : cone_topo_order(aig, o.function)) {
      if (seen.insert(n).second) order.push_back(n);
    }
  }
  return order;
}

std::string node_name(const Aig& aig, std::uint32_t n) {
  const Aig::Node& node = aig.node(n);
  if (n == 0) return "const0";
  if (node.input_id >= 0) return default_input_name(node.input_id);
  return "n" + std::to_string(n);
}

/// Edge as a (name, inverted) pair.
std::pair<std::string, bool> edge(const Aig& aig, Ref r) {
  return {node_name(aig, ref_node(r)), ref_complemented(r)};
}

}  // namespace

void write_blif(std::ostream& out, const Aig& aig, const std::string& model,
                const std::vector<NamedFunction>& outputs) {
  const std::vector<std::uint32_t> cone = combined_cone(aig, outputs);
  // Collect primary inputs.
  std::vector<std::string> inputs;
  bool uses_const = false;
  for (const std::uint32_t n : cone) {
    if (n == 0) {
      uses_const = true;
    } else if (aig.node(n).input_id >= 0) {
      inputs.push_back(default_input_name(aig.node(n).input_id));
    }
  }

  out << ".model " << model << '\n';
  out << ".inputs";
  for (const std::string& in : inputs) out << ' ' << in;
  out << '\n';
  out << ".outputs";
  for (const NamedFunction& o : outputs) out << ' ' << o.name;
  out << '\n';
  if (uses_const) {
    out << ".names const0\n";  // empty cover = constant 0
  }
  // AND nodes: cover over possibly-inverted fanins.
  for (const std::uint32_t n : cone) {
    const Aig::Node& node = aig.node(n);
    if (n == 0 || node.input_id >= 0) continue;
    const auto [a_name, a_inv] = edge(aig, node.fanin0);
    const auto [b_name, b_inv] = edge(aig, node.fanin1);
    out << ".names " << a_name << ' ' << b_name << ' ' << node_name(aig, n)
        << '\n';
    out << (a_inv ? '0' : '1') << (b_inv ? '0' : '1') << " 1\n";
  }
  // Output drivers (handle complemented roots with inverter covers).
  for (const NamedFunction& o : outputs) {
    const auto [name, inv] = edge(aig, o.function);
    out << ".names " << name << ' ' << o.name << '\n';
    out << (inv ? "0 1\n" : "1 1\n");
  }
  out << ".end\n";
}

void write_verilog(std::ostream& out, const Aig& aig,
                   const std::string& module,
                   const std::vector<NamedFunction>& outputs) {
  const std::vector<std::uint32_t> cone = combined_cone(aig, outputs);
  std::vector<std::string> inputs;
  for (const std::uint32_t n : cone) {
    if (n != 0 && aig.node(n).input_id >= 0) {
      inputs.push_back(default_input_name(aig.node(n).input_id));
    }
  }

  out << "module " << module << "(";
  bool first = true;
  for (const std::string& in : inputs) {
    out << (first ? "" : ", ") << in;
    first = false;
  }
  for (const NamedFunction& o : outputs) {
    out << (first ? "" : ", ") << o.name;
    first = false;
  }
  out << ");\n";
  for (const std::string& in : inputs) out << "  input " << in << ";\n";
  for (const NamedFunction& o : outputs) {
    out << "  output " << o.name << ";\n";
  }

  const auto expr = [&](Ref r) {
    const auto [name, inv] = edge(aig, r);
    return inv ? "~" + name : name;
  };
  bool uses_const = false;
  for (const std::uint32_t n : cone) {
    if (n == 0) uses_const = true;
  }
  if (uses_const) out << "  wire const0 = 1'b0;\n";
  for (const std::uint32_t n : cone) {
    const Aig::Node& node = aig.node(n);
    if (n == 0 || node.input_id >= 0) continue;
    out << "  wire " << node_name(aig, n) << " = " << expr(node.fanin0)
        << " & " << expr(node.fanin1) << ";\n";
  }
  for (const NamedFunction& o : outputs) {
    out << "  assign " << o.name << " = " << expr(o.function) << ";\n";
  }
  out << "endmodule\n";
}

}  // namespace manthan::aig
