#include "aig/incremental_cnf.hpp"

#include <utility>

namespace manthan::aig {

IncrementalCnfEncoder::IncrementalCnfEncoder(const Aig& aig, NewVarFn new_var,
                                             EmitClauseFn emit)
    : aig_(aig), new_var_(std::move(new_var)), emit_(std::move(emit)) {}

void IncrementalCnfEncoder::map_input(std::int32_t input_id, cnf::Lit lit) {
  input_map_[input_id] = lit;
}

cnf::Lit IncrementalCnfEncoder::input_literal(std::int32_t id) {
  const auto it = input_map_.find(id);
  if (it != input_map_.end()) return it->second;
  return cnf::pos(static_cast<cnf::Var>(id));
}

void IncrementalCnfEncoder::emit(const cnf::Clause& clause) {
  emit_(clause);
  ++stats_.clauses_emitted;
}

cnf::Lit IncrementalCnfEncoder::encode(Ref root) {
  ++stats_.encode_calls;
  // Depth-first walk that stops at cached nodes, so only the fresh part
  // of the cone is visited at all. A node is expanded (fanins pushed) on
  // first visit and encoded once both fanins are cached.
  walk_stack_.clear();
  walk_stack_.push_back(ref_node(root));
  while (!walk_stack_.empty()) {
    const std::uint32_t n = walk_stack_.back();
    if (lit_of_node_.count(n) != 0) {
      ++stats_.nodes_reused;
      walk_stack_.pop_back();
      continue;
    }
    const Aig::Node& node = aig_.node(n);
    if (n == 0) {
      // Constant node: materialize a variable fixed to false on first use.
      const cnf::Lit lit = cnf::pos(new_var_());
      emit({~lit});
      lit_of_node_.emplace(n, lit);
      ++stats_.nodes_encoded;
      walk_stack_.pop_back();
      continue;
    }
    if (node.input_id >= 0) {
      lit_of_node_.emplace(n, input_literal(node.input_id));
      ++stats_.nodes_encoded;
      walk_stack_.pop_back();
      continue;
    }
    const auto it0 = lit_of_node_.find(ref_node(node.fanin0));
    const auto it1 = lit_of_node_.find(ref_node(node.fanin1));
    if (it0 == lit_of_node_.end() || it1 == lit_of_node_.end()) {
      if (it0 == lit_of_node_.end()) {
        walk_stack_.push_back(ref_node(node.fanin0));
      } else {
        ++stats_.nodes_reused;
      }
      if (it1 == lit_of_node_.end()) {
        walk_stack_.push_back(ref_node(node.fanin1));
      } else {
        ++stats_.nodes_reused;
      }
      continue;
    }
    const cnf::Lit a = it0->second ^ ref_complemented(node.fanin0);
    const cnf::Lit b = it1->second ^ ref_complemented(node.fanin1);
    const cnf::Lit n_lit = cnf::pos(new_var_());
    emit({~n_lit, a});
    emit({~n_lit, b});
    emit({~a, ~b, n_lit});
    lit_of_node_.emplace(n, n_lit);
    ++stats_.nodes_encoded;
    walk_stack_.pop_back();
  }
  return lit_of_node_.at(ref_node(root)) ^ ref_complemented(root);
}

}  // namespace manthan::aig
