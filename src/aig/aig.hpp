// And-Inverter Graphs with structural hashing.
//
// Role in the paper: ABC — the container in which candidate and final
// Henkin functions are represented and manipulated. Functions are edges
// (`Ref`s) into a shared Aig manager; an edge is a node index plus a
// complementation bit, so negation is free. The manager provides:
//   * constant folding + structural hashing (two-level canonical ANDs),
//   * derived gates (or/xor/ite/equiv) on top of AND/NOT,
//   * composition (substituting functions for inputs) — the Substitute
//     step of Algorithm 1,
//   * structural support — used to assert that a synthesized f_i really
//     only depends on its Henkin set H_i,
//   * Tseitin CNF encoding (aig_cnf.cpp) for SAT queries over functions,
//   * 64-way parallel and exhaustive simulation (aig_sim.cpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cnf/cnf.hpp"

namespace manthan::aig {

/// An edge: node index << 1 | complement bit.
using Ref = std::uint32_t;

inline constexpr Ref kFalseRef = 0;  // node 0, plain
inline constexpr Ref kTrueRef = 1;   // node 0, complemented

inline constexpr Ref make_ref(std::uint32_t node, bool complemented) {
  return (node << 1) | (complemented ? 1u : 0u);
}
inline constexpr std::uint32_t ref_node(Ref r) { return r >> 1; }
inline constexpr bool ref_complemented(Ref r) { return (r & 1u) != 0; }
inline constexpr Ref ref_not(Ref r) { return r ^ 1u; }
inline constexpr Ref ref_regular(Ref r) { return r & ~1u; }

class Aig {
 public:
  Aig();

  /// Edge for a constant.
  static constexpr Ref constant(bool value) {
    return value ? kTrueRef : kFalseRef;
  }

  /// Edge for the primary input identified by `input_id` (created on first
  /// use). Input ids are caller-chosen; the DQBF layer uses CNF variables.
  Ref input(std::int32_t input_id);

  /// True iff `r` points at an input node; returns its id via out param.
  bool is_input(Ref r) const;
  std::int32_t input_id(Ref r) const;

  // --- gate constructors (hash-consed, constant-folding) ----------------
  Ref and_gate(Ref a, Ref b);
  Ref or_gate(Ref a, Ref b) { return ref_not(and_gate(ref_not(a), ref_not(b))); }
  Ref xor_gate(Ref a, Ref b);
  Ref equiv_gate(Ref a, Ref b) { return ref_not(xor_gate(a, b)); }
  Ref ite_gate(Ref c, Ref t, Ref e);
  Ref implies_gate(Ref a, Ref b) { return or_gate(ref_not(a), b); }

  /// Conjunction / disjunction over a list (balanced reduction).
  Ref and_all(const std::vector<Ref>& refs);
  Ref or_all(const std::vector<Ref>& refs);

  /// Substitute: replace each input id in `substitution` by the given
  /// function everywhere in the cone of `root`. Single bottom-up pass; all
  /// mapped inputs are replaced simultaneously.
  Ref compose(Ref root,
              const std::unordered_map<std::int32_t, Ref>& substitution);

  /// Cofactor: fix input `input_id` to a constant.
  Ref cofactor(Ref root, std::int32_t input_id, bool value);

  /// Input ids appearing in the structural cone of `root` (sorted).
  std::vector<std::int32_t> support(Ref root) const;

  /// Number of AND nodes in the cone of `root`.
  std::size_t cone_size(Ref root) const;

  /// Evaluate under a complete input valuation (ids -> bool).
  bool evaluate(Ref root,
                const std::unordered_map<std::int32_t, bool>& inputs) const;

  /// Evaluate with input ids interpreted as CNF variables of `a`.
  bool evaluate(Ref root, const cnf::Assignment& a) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t num_inputs() const { return input_of_id_.size(); }
  /// Heap bytes of the node table (capacity). Feeds memory gauges; the
  /// strash table is transient and excluded on purpose.
  std::size_t node_bytes() const { return nodes_.capacity() * sizeof(Node); }

  // Internal node accessors (used by the CNF encoder and simulator).
  struct Node {
    Ref fanin0 = 0;
    Ref fanin1 = 0;
    std::int32_t input_id = -1;  // >= 0 iff this is an input node
  };
  const Node& node(std::uint32_t index) const { return nodes_[index]; }

 private:
  Ref make_and(Ref a, Ref b);
  void strash_grow();
  /// Node-table capacity growth through the instrumented
  /// aig.node.alloc hazard point (budget charging + fault injection).
  void reserve_node_slot();

  std::vector<Node> nodes_;
  // Structural-hash table, open addressing with linear probing: the key
  // packs the canonically ordered operand pair (a <= b, both >= 2 because
  // constant operands fold before hashing, so key 0 marks an empty slot);
  // the value is the AND node's Ref. One flat array probe per lookup
  // replaces the unordered_map's bucket pointer chase on the hottest AIG
  // path (every gate constructor lands here). Power-of-two capacity,
  // grown at 50% load.
  std::vector<std::uint64_t> strash_keys_;
  std::vector<Ref> strash_vals_;
  std::size_t strash_used_ = 0;
  std::unordered_map<std::int32_t, Ref> input_of_id_;
};

/// Collect the node indices of the cone of `root` in topological order
/// (fanins before fanouts); includes input and constant nodes.
std::vector<std::uint32_t> cone_topo_order(const Aig& aig, Ref root);

/// Rebuild the cone of `root` (a ref in `src`) inside `dst`, reusing the
/// destination's structural hashing. `node_map` maps src node index ->
/// dst ref of the plain node; share it across roots so common logic is
/// imported once. Used wherever functions cross manager boundaries: the
/// racing portfolio hands the winner's vector to the caller, and the
/// service's result cache replays certified cones into each requester's
/// manager.
Ref import_cone(const Aig& src, Aig& dst, Ref root,
                std::unordered_map<std::uint32_t, Ref>& node_map);

}  // namespace manthan::aig
