#include "aig/aiger.hpp"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace manthan::aig {

AigerModule read_aiger_ascii(std::istream& in, Aig& manager) {
  std::string magic;
  std::size_t max_index = 0;
  std::size_t num_inputs = 0;
  std::size_t num_latches = 0;
  std::size_t num_outputs = 0;
  std::size_t num_ands = 0;
  if (!(in >> magic >> max_index >> num_inputs >> num_latches >>
        num_outputs >> num_ands)) {
    throw std::runtime_error("aiger: malformed header");
  }
  if (magic != "aag") {
    throw std::runtime_error("aiger: expected ASCII 'aag' header");
  }
  if (num_latches != 0) {
    throw std::runtime_error("aiger: latches not supported");
  }
  if (num_inputs + num_ands > max_index) {
    throw std::runtime_error("aiger: header maximum index too small");
  }

  // Every literal must stay within the header's declared maximum index.
  const auto check_range = [&](std::size_t lit) {
    if (lit > 2 * max_index + 1) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " out of range for maximum index " +
                               std::to_string(max_index));
    }
  };

  // AIGER literal -> our edge. Literal 0 = false, 1 = true.
  std::map<std::size_t, Ref> edge_of;  // keyed by even (variable) literal
  const auto lit_to_ref = [&](std::size_t lit) -> Ref {
    if (lit == 0) return kFalseRef;
    if (lit == 1) return kTrueRef;
    const auto it = edge_of.find(lit & ~std::size_t{1});
    if (it == edge_of.end()) {
      throw std::runtime_error("aiger: literal " + std::to_string(lit) +
                               " used before definition");
    }
    return (lit & 1) ? ref_not(it->second) : it->second;
  };

  for (std::size_t i = 0; i < num_inputs; ++i) {
    std::size_t lit = 0;
    if (!(in >> lit) || (lit & 1) != 0 || lit == 0) {
      throw std::runtime_error("aiger: bad input literal");
    }
    check_range(lit);
    edge_of[lit] = manager.input(static_cast<std::int32_t>(i));
  }
  std::vector<std::size_t> output_lits(num_outputs);
  for (std::size_t i = 0; i < num_outputs; ++i) {
    if (!(in >> output_lits[i])) {
      throw std::runtime_error("aiger: bad output literal");
    }
    check_range(output_lits[i]);
  }
  for (std::size_t i = 0; i < num_ands; ++i) {
    std::size_t lhs = 0;
    std::size_t rhs0 = 0;
    std::size_t rhs1 = 0;
    if (!(in >> lhs >> rhs0 >> rhs1) || (lhs & 1) != 0) {
      throw std::runtime_error("aiger: bad AND line");
    }
    check_range(lhs);
    check_range(rhs0);
    check_range(rhs1);
    // AIGER requires rhs < lhs, so fanins are already defined.
    edge_of[lhs] = manager.and_gate(lit_to_ref(rhs0), lit_to_ref(rhs1));
  }

  AigerModule module;
  module.num_inputs = num_inputs;
  for (const std::size_t lit : output_lits) {
    module.outputs.push_back(lit_to_ref(lit));
  }
  return module;
}

AigerModule read_aiger_ascii_string(const std::string& text, Aig& manager) {
  std::istringstream in(text);
  return read_aiger_ascii(in, manager);
}

void write_aiger_ascii(std::ostream& out, const Aig& manager,
                       const std::vector<Ref>& outputs) {
  // Union cone in topological order.
  std::vector<std::uint32_t> cone;
  std::set<std::uint32_t> seen;
  for (const Ref o : outputs) {
    for (const std::uint32_t n : cone_topo_order(manager, o)) {
      if (seen.insert(n).second) cone.push_back(n);
    }
  }
  // Assign AIGER variable indices: inputs first (ascending input id),
  // then AND nodes in topological order.
  std::vector<std::pair<std::int32_t, std::uint32_t>> inputs;  // (id, node)
  std::vector<std::uint32_t> ands;
  for (const std::uint32_t n : cone) {
    if (n == 0) continue;
    if (manager.node(n).input_id >= 0) {
      inputs.emplace_back(manager.node(n).input_id, n);
    } else {
      ands.push_back(n);
    }
  }
  std::sort(inputs.begin(), inputs.end());

  std::map<std::uint32_t, std::size_t> aiger_lit;  // node -> even literal
  std::size_t next_var = 1;
  for (const auto& [id, n] : inputs) {
    (void)id;
    aiger_lit[n] = 2 * next_var++;
  }
  for (const std::uint32_t n : ands) aiger_lit[n] = 2 * next_var++;

  const auto ref_to_lit = [&](Ref r) -> std::size_t {
    if (r == kFalseRef) return 0;
    if (r == kTrueRef) return 1;
    return aiger_lit.at(ref_node(r)) + (ref_complemented(r) ? 1 : 0);
  };

  out << "aag " << next_var - 1 << ' ' << inputs.size() << " 0 "
      << outputs.size() << ' ' << ands.size() << '\n';
  for (const auto& [id, n] : inputs) {
    (void)id;
    out << aiger_lit[n] << '\n';
  }
  for (const Ref o : outputs) out << ref_to_lit(o) << '\n';
  for (const std::uint32_t n : ands) {
    const Aig::Node& node = manager.node(n);
    out << aiger_lit[n] << ' ' << ref_to_lit(node.fanin0) << ' '
        << ref_to_lit(node.fanin1) << '\n';
  }
}

std::string to_aiger_ascii_string(const Aig& manager,
                                  const std::vector<Ref>& outputs) {
  std::ostringstream out;
  write_aiger_ascii(out, manager, outputs);
  return out.str();
}

}  // namespace manthan::aig
