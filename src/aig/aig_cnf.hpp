// Tseitin encoding of AIG cones into CNF.
//
// Bridges function space (AIGs) and oracle space (the CDCL solver): the
// verification formula E(X,Y') and the repair formulas G_k conjoin the
// specification CNF with encoded candidate functions.
#pragma once

#include <functional>

#include "aig/aig.hpp"
#include "cnf/cnf.hpp"

namespace manthan::aig {

/// Encode the cone of `root` into `out`. Each input id is mapped to a CNF
/// literal by `input_lit`; internal AND nodes get fresh variables from
/// `out.new_var()`. Returns a literal whose truth value equals `root`.
cnf::Lit encode_cone(const Aig& aig, Ref root, cnf::CnfFormula& out,
                     const std::function<cnf::Lit(std::int32_t)>& input_lit);

/// Convenience overload: input id i is CNF variable i.
cnf::Lit encode_cone(const Aig& aig, Ref root, cnf::CnfFormula& out);

}  // namespace manthan::aig
