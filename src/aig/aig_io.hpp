// Exporting synthesized functions as circuit netlists.
//
// Henkin functions are delivered as AIG edges; downstream users (ECO
// patch insertion, controller implementation) want them as netlists.
// Writers for BLIF and structural Verilog are provided; both treat a
// collection of named output functions over shared named inputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace manthan::aig {

struct NamedFunction {
  std::string name;
  Ref function;
};

/// Produce a readable name for input id `id` (x<id> by default).
std::string default_input_name(std::int32_t id);

/// Write the cones of all functions as a single BLIF model. Inputs are
/// named via `input_name`; internal AND nodes become two-literal .names
/// covers; complemented edges become inverter covers.
void write_blif(std::ostream& out, const Aig& aig, const std::string& model,
                const std::vector<NamedFunction>& outputs);

/// Write the cones as a structural Verilog module (assign statements).
void write_verilog(std::ostream& out, const Aig& aig,
                   const std::string& module,
                   const std::vector<NamedFunction>& outputs);

}  // namespace manthan::aig
