#include "aig/aig.hpp"

#include <algorithm>
#include <cassert>

#include "util/budget.hpp"

namespace manthan::aig {

namespace {

/// Fibonacci multiplicative hash of an operand-pair key: one multiply is
/// enough spread for a power-of-two open-addressing table, and is
/// measurably cheaper than a full 64-bit mixer on the all-hit lookup
/// loads the repair loop generates.
inline std::size_t strash_hash(std::uint64_t key) {
  return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> 16);
}

}  // namespace

Aig::Aig() {
  nodes_.push_back({});  // node 0: constant false
}

Ref Aig::input(std::int32_t input_id) {
  const auto it = input_of_id_.find(input_id);
  if (it != input_of_id_.end()) return it->second;
  reserve_node_slot();
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.input_id = input_id;
  nodes_.push_back(n);
  const Ref r = make_ref(index, false);
  input_of_id_.emplace(input_id, r);
  return r;
}

bool Aig::is_input(Ref r) const {
  return nodes_[ref_node(r)].input_id >= 0;
}

std::int32_t Aig::input_id(Ref r) const {
  assert(is_input(r));
  return nodes_[ref_node(r)].input_id;
}

void Aig::reserve_node_slot() {
  if (nodes_.size() < nodes_.capacity()) return;
  // Node-table growth is an instrumented hazard point: the capacity delta
  // is charged to the thread's ResourceBudget and a (real or injected)
  // bad_alloc becomes OutOfBudgetError instead of process death.
  const std::size_t new_cap = std::max<std::size_t>(nodes_.capacity() * 2, 64);
  util::guarded_grow(util::fault::Site::kAigNodeAlloc,
                     (new_cap - nodes_.capacity()) * sizeof(Node),
                     [&] { nodes_.reserve(new_cap); });
}

void Aig::strash_grow() {
  const std::size_t cap = strash_keys_.empty() ? 1024 : strash_keys_.size() * 2;
  std::vector<std::uint64_t> keys;
  std::vector<Ref> vals;
  util::guarded_grow(util::fault::Site::kAigNodeAlloc,
                     cap * (sizeof(std::uint64_t) + sizeof(Ref)), [&] {
                       keys.assign(cap, 0);
                       vals.assign(cap, 0);
                     });
  const std::size_t mask = cap - 1;
  for (std::size_t i = 0; i < strash_keys_.size(); ++i) {
    const std::uint64_t key = strash_keys_[i];
    if (key == 0) continue;
    std::size_t slot = strash_hash(key) & mask;
    while (keys[slot] != 0) slot = (slot + 1) & mask;
    keys[slot] = key;
    vals[slot] = strash_vals_[i];
  }
  strash_keys_ = std::move(keys);
  strash_vals_ = std::move(vals);
}

Ref Aig::make_and(Ref a, Ref b) {
  // Canonical order so that and(a,b) == and(b,a) hash-cons together.
  if (a > b) std::swap(a, b);
  const std::uint64_t key =
      (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
  if (strash_used_ * 2 >= strash_keys_.size()) strash_grow();
  const std::size_t mask = strash_keys_.size() - 1;
  std::size_t slot = strash_hash(key) & mask;
  while (strash_keys_[slot] != 0) {
    if (strash_keys_[slot] == key) return strash_vals_[slot];
    slot = (slot + 1) & mask;
  }
  reserve_node_slot();
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.fanin0 = a;
  n.fanin1 = b;
  nodes_.push_back(n);
  const Ref r = make_ref(index, false);
  strash_keys_[slot] = key;
  strash_vals_[slot] = r;
  ++strash_used_;
  return r;
}

Ref Aig::and_gate(Ref a, Ref b) {
  // Constant folding and trivial cases.
  if (a == kFalseRef || b == kFalseRef) return kFalseRef;
  if (a == kTrueRef) return b;
  if (b == kTrueRef) return a;
  if (a == b) return a;
  if (a == ref_not(b)) return kFalseRef;
  return make_and(a, b);
}

Ref Aig::xor_gate(Ref a, Ref b) {
  // a ^ b == ~(~(a & ~b) & ~(~a & b))
  return ref_not(
      and_gate(ref_not(and_gate(a, ref_not(b))),
               ref_not(and_gate(ref_not(a), b))));
}

Ref Aig::ite_gate(Ref c, Ref t, Ref e) {
  return ref_not(and_gate(ref_not(and_gate(c, t)),
                          ref_not(and_gate(ref_not(c), e))));
}

Ref Aig::and_all(const std::vector<Ref>& refs) {
  if (refs.empty()) return kTrueRef;
  // Balanced reduction keeps the graph shallow.
  std::vector<Ref> layer = refs;
  while (layer.size() > 1) {
    std::vector<Ref> next;
    next.reserve((layer.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      next.push_back(and_gate(layer[i], layer[i + 1]));
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  return layer[0];
}

Ref Aig::or_all(const std::vector<Ref>& refs) {
  std::vector<Ref> negated;
  negated.reserve(refs.size());
  for (const Ref r : refs) negated.push_back(ref_not(r));
  return ref_not(and_all(negated));
}

std::vector<std::uint32_t> cone_topo_order(const Aig& aig, Ref root) {
  std::vector<std::uint32_t> order;
  std::vector<std::uint32_t> stack{ref_node(root)};
  std::unordered_map<std::uint32_t, bool> state;  // false=open, true=done
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    const auto it = state.find(n);
    if (it != state.end() && it->second) {
      stack.pop_back();
      continue;
    }
    const Aig::Node& node = aig.node(n);
    const bool is_leaf = node.input_id >= 0 || n == 0;
    if (it == state.end()) {
      state.emplace(n, false);
      if (!is_leaf) {
        stack.push_back(ref_node(node.fanin0));
        stack.push_back(ref_node(node.fanin1));
        continue;
      }
    }
    state[n] = true;
    order.push_back(n);
    stack.pop_back();
  }
  return order;
}

Ref Aig::compose(Ref root,
                 const std::unordered_map<std::int32_t, Ref>& substitution) {
  const std::vector<std::uint32_t> order = cone_topo_order(*this, root);
  std::unordered_map<std::uint32_t, Ref> rebuilt;
  for (const std::uint32_t n : order) {
    const Node& node = nodes_[n];
    if (n == 0) {
      rebuilt[n] = kFalseRef;
    } else if (node.input_id >= 0) {
      const auto it = substitution.find(node.input_id);
      rebuilt[n] = it != substitution.end() ? it->second
                                            : make_ref(n, false);
    } else {
      const Ref f0 = rebuilt[ref_node(node.fanin0)] ^
                     (ref_complemented(node.fanin0) ? 1u : 0u);
      const Ref f1 = rebuilt[ref_node(node.fanin1)] ^
                     (ref_complemented(node.fanin1) ? 1u : 0u);
      rebuilt[n] = and_gate(f0, f1);
    }
  }
  return rebuilt[ref_node(root)] ^ (ref_complemented(root) ? 1u : 0u);
}

Ref Aig::cofactor(Ref root, std::int32_t input_id, bool value) {
  return compose(root, {{input_id, constant(value)}});
}

std::vector<std::int32_t> Aig::support(Ref root) const {
  std::vector<std::int32_t> ids;
  for (const std::uint32_t n : cone_topo_order(*this, root)) {
    if (nodes_[n].input_id >= 0) ids.push_back(nodes_[n].input_id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t Aig::cone_size(Ref root) const {
  std::size_t count = 0;
  for (const std::uint32_t n : cone_topo_order(*this, root)) {
    if (n != 0 && nodes_[n].input_id < 0) ++count;
  }
  return count;
}

bool Aig::evaluate(
    Ref root, const std::unordered_map<std::int32_t, bool>& inputs) const {
  std::unordered_map<std::uint32_t, bool> value;
  for (const std::uint32_t n : cone_topo_order(*this, root)) {
    const Node& node = nodes_[n];
    if (n == 0) {
      value[n] = false;
    } else if (node.input_id >= 0) {
      const auto it = inputs.find(node.input_id);
      assert(it != inputs.end());
      value[n] = it->second;
    } else {
      const bool f0 =
          value[ref_node(node.fanin0)] != ref_complemented(node.fanin0);
      const bool f1 =
          value[ref_node(node.fanin1)] != ref_complemented(node.fanin1);
      value[n] = f0 && f1;
    }
  }
  return value[ref_node(root)] != ref_complemented(root);
}

bool Aig::evaluate(Ref root, const cnf::Assignment& a) const {
  std::unordered_map<std::uint32_t, bool> value;
  for (const std::uint32_t n : cone_topo_order(*this, root)) {
    const Node& node = nodes_[n];
    if (n == 0) {
      value[n] = false;
    } else if (node.input_id >= 0) {
      value[n] = a.value(static_cast<cnf::Var>(node.input_id));
    } else {
      const bool f0 =
          value[ref_node(node.fanin0)] != ref_complemented(node.fanin0);
      const bool f1 =
          value[ref_node(node.fanin1)] != ref_complemented(node.fanin1);
      value[n] = f0 && f1;
    }
  }
  return value[ref_node(root)] != ref_complemented(root);
}

Ref import_cone(const Aig& src, Aig& dst, Ref root,
                std::unordered_map<std::uint32_t, Ref>& node_map) {
  const auto translate = [&node_map](Ref r) {
    return node_map.at(ref_node(r)) ^ (ref_complemented(r) ? 1u : 0u);
  };
  for (const std::uint32_t idx : cone_topo_order(src, root)) {
    if (node_map.find(idx) != node_map.end()) continue;
    const Aig::Node& node = src.node(idx);
    Ref mapped;
    if (idx == ref_node(kFalseRef)) {
      mapped = kFalseRef;
    } else if (node.input_id >= 0) {
      mapped = dst.input(node.input_id);
    } else {
      mapped = dst.and_gate(translate(node.fanin0), translate(node.fanin1));
    }
    node_map.emplace(idx, mapped);
  }
  return translate(root);
}

}  // namespace manthan::aig
