// AIGER (ASCII "aag") reading and writing.
//
// AIGER is the interchange format of the ABC/AIGER ecosystem the paper's
// toolchain lives in. We support the combinational subset (no latches):
// reading produces input ids 0..I-1 and a vector of output edges in a
// fresh manager; writing serializes the union cone of a set of outputs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "aig/aig.hpp"

namespace manthan::aig {

struct AigerModule {
  /// Input ids used by the functions (0-based, dense).
  std::size_t num_inputs = 0;
  std::vector<Ref> outputs;
};

/// Read an ASCII AIGER file ("aag" header, combinational only) into
/// `manager`. Throws std::runtime_error on malformed input or latches.
AigerModule read_aiger_ascii(std::istream& in, Aig& manager);
AigerModule read_aiger_ascii_string(const std::string& text, Aig& manager);

/// Write the given outputs as an ASCII AIGER file. Inputs are the union
/// of the cones' input ids, mapped densely in ascending id order.
void write_aiger_ascii(std::ostream& out, const Aig& manager,
                       const std::vector<Ref>& outputs);
std::string to_aiger_ascii_string(const Aig& manager,
                                  const std::vector<Ref>& outputs);

}  // namespace manthan::aig
