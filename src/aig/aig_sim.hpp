// Bit-parallel and exhaustive simulation of AIG cones.
//
// Used for fast semantic checks in tests and generators: 64 input patterns
// per word, plus exhaustive tautology/equality checks for cones with small
// structural support.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/sample_matrix.hpp"

namespace manthan::aig {

/// Simulate one 64-pattern word: each input id maps to a 64-bit pattern;
/// returns the 64 output bits.
std::uint64_t simulate64(
    const Aig& aig, Ref root,
    const std::unordered_map<std::int32_t, std::uint64_t>& input_patterns);

/// Batch-evaluate `root` over every sample of a bit-packed training
/// matrix: input ids are read as matrix variables (ids outside the matrix
/// evaluate to false), 64 samples per word through the runtime-dispatched
/// util::simd kernels. Returns one output word per matrix word; bits at
/// positions >= num_samples() in the last word are ZERO (the result is
/// masked with matrix.tail_mask() before returning), so popcounts over the
/// result need no re-masking. This is how the synthesis loop screens
/// repair/refit candidates against the whole training set — words instead
/// of one evaluate() walk per assignment.
std::vector<std::uint64_t> simulate_matrix(const Aig& aig, Ref root,
                                           const cnf::SampleMatrix& matrix);

/// Exhaustively check whether `root` is a tautology over its structural
/// support. Intended for supports up to ~24 inputs (2^support evaluations,
/// 64 at a time).
bool is_tautology(const Aig& aig, Ref root);

/// Exhaustively check semantic equivalence of two cones (over the union of
/// their supports).
bool semantically_equal(const Aig& aig, Ref a, Ref b);

/// Full truth table of `root` over the given ordered input ids (must cover
/// the support). Bit i of the result corresponds to the assignment where
/// input_ids[j] takes bit j of i.
std::vector<bool> truth_table(const Aig& aig, Ref root,
                              const std::vector<std::int32_t>& input_ids);

}  // namespace manthan::aig
