// Incremental Tseitin encoding of AIG cones with a persistent node cache.
//
// The one-shot encoder (aig_cnf.hpp) re-encodes a cone's every node on
// every call. Across the verify/repair rounds of the synthesis loop that
// is almost all wasted work: a repair rewrites one candidate's cone while
// every other cone — and most of the repaired cone, since repairs conjoin
// onto the old root — is structurally unchanged. This encoder keeps a
// node → literal cache for the lifetime of the target solver, so encode()
// emits definitional clauses only for nodes never seen before and the
// per-round encoding cost is O(changed cone), not O(formula).
//
// AIG nodes are immutable and hash-consed, so a node's definitional
// clauses (lit ↔ fanin0 ∧ fanin1) are valid forever; cached definitions
// are never retired. What *does* change round to round — which root a
// candidate output variable is tied to — is the client's business and is
// expressed with activation literals on top of the literals returned
// here (see dqbf::IncrementalRefutation).
//
// The clause sink is a pair of callbacks rather than a sat::Solver so the
// aig module stays independent of the solver layer.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "aig/aig.hpp"
#include "cnf/cnf.hpp"

namespace manthan::aig {

class IncrementalCnfEncoder {
 public:
  using NewVarFn = std::function<cnf::Var()>;
  using EmitClauseFn = std::function<void(const cnf::Clause&)>;

  struct Stats {
    std::uint64_t encode_calls = 0;
    /// AIG nodes Tseitin-encoded (fresh cache entries).
    std::uint64_t nodes_encoded = 0;
    /// Cache hits observed while walking cones (boundary nodes whose
    /// definitions were already in the solver).
    std::uint64_t nodes_reused = 0;
    std::uint64_t clauses_emitted = 0;
  };

  /// `aig` must outlive the encoder and is append-only (nodes are never
  /// rewritten), which is what makes the cache sound.
  IncrementalCnfEncoder(const Aig& aig, NewVarFn new_var,
                        EmitClauseFn emit);

  /// Map input id `input_id` to an existing literal. Must be called
  /// before the input is first reached by encode(); unmapped input id i
  /// defaults to variable i (the DQBF convention).
  void map_input(std::int32_t input_id, cnf::Lit lit);

  /// Encode the not-yet-encoded part of the cone of `root`; returns a
  /// literal whose truth value equals `root` under the emitted
  /// definitions.
  cnf::Lit encode(Ref root);

  const Stats& stats() const { return stats_; }

 private:
  cnf::Lit input_literal(std::int32_t id);
  void emit(const cnf::Clause& clause);

  const Aig& aig_;
  NewVarFn new_var_;
  EmitClauseFn emit_;
  std::unordered_map<std::uint32_t, cnf::Lit> lit_of_node_;
  std::unordered_map<std::int32_t, cnf::Lit> input_map_;
  std::vector<std::uint32_t> walk_stack_;  // reused across encode() calls
  Stats stats_;
};

}  // namespace manthan::aig
