// Shared clause-simplification kernels.
//
// Both simplification engines — the SAT solver's inter-solve inprocessing
// (solver.cpp) and the DQBF preprocessor (preprocess/hqspre_lite.cpp) —
// run occurrence-list-driven subsumption and self-subsuming resolution.
// The data layouts differ (flat arena records with arbitrary literal
// order vs. sorted std::vector clauses), but the screening and the
// subset tests are the same algorithm; this header holds them so the two
// engines cannot drift apart.
//
// The workhorse is the 64-bit clause abstraction (SatELite's signature
// trick): hash every variable into one of 64 buckets and OR the bucket
// bits. C ⊆ D implies abst(C) & ~abst(D) == 0, so a single AND+compare
// rejects almost every non-subsuming candidate pair before the O(|C|)
// subset test runs.
#pragma once

#include <cstdint>

#include "cnf/lit.hpp"

namespace manthan::sat {

/// Abstraction bit of one variable.
inline std::uint64_t abstraction_bit(cnf::Var v) {
  return 1ULL << (static_cast<std::uint32_t>(v) & 63u);
}

/// 64-bit signature of a literal range (any iterable of cnf::Lit).
template <typename Lits>
std::uint64_t clause_abstraction(const Lits& lits) {
  std::uint64_t a = 0;
  for (const cnf::Lit l : lits) a |= abstraction_bit(l.var());
  return a;
}

/// Fast necessary condition for {sub} ⊆ {sup}.
inline bool abstraction_subsumes(std::uint64_t sub, std::uint64_t sup) {
  return (sub & ~sup) == 0;
}

/// Exact subset test over *sorted* literal ranges: every literal of `sub`
/// occurs in `sup`. (The solver's arena records are unsorted and use a
/// mark-array test instead; see Solver::inprocess.)
template <typename LitsA, typename LitsB>
bool subsumes_sorted(const LitsA& sub, const LitsB& sup) {
  auto it = sup.begin();
  for (const cnf::Lit l : sub) {
    while (it != sup.end() && *it < l) ++it;
    if (it == sup.end() || !(*it == l)) return false;
  }
  return true;
}

/// Self-subsuming resolution probe over *sorted* ranges: if `sub` with
/// exactly one literal flipped is a subset of `sup`, returns that flipped
/// literal as it occurs in `sup` (the literal strengthening removes from
/// `sup`); returns cnf::kUndefLit otherwise. A return of l means
///   sup := sup \ {l}
/// is sound: resolving sub and sup on var(l) yields a clause subsuming it.
template <typename LitsA, typename LitsB>
cnf::Lit self_subsumes_sorted(const LitsA& sub, const LitsB& sup) {
  cnf::Lit flipped = cnf::kUndefLit;
  auto it = sup.begin();
  for (const cnf::Lit l : sub) {
    // Advance to var(l)'s literal pair (codes 2v, 2v+1 are adjacent).
    const cnf::Lit lo = cnf::pos(l.var());
    while (it != sup.end() && *it < lo) ++it;
    if (it == sup.end()) return cnf::kUndefLit;
    if (*it == l) {
      ++it;
    } else if (*it == ~l) {
      if (flipped.valid()) return cnf::kUndefLit;  // two flips: no resolvent
      flipped = *it;
      ++it;
    } else {
      return cnf::kUndefLit;  // var(l) absent from sup
    }
  }
  return flipped;
}

}  // namespace manthan::sat
