#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"

namespace manthan::sat {

// ---------------------------------------------------------------------------
// OrderHeap
// ---------------------------------------------------------------------------

void Solver::OrderHeap::insert(Var v) {
  if (contains(v)) return;
  if (v >= static_cast<Var>(index_.size())) index_.resize(v + 1, -1);
  index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1);
}

void Solver::OrderHeap::update(Var v) {
  if (contains(v)) sift_up(static_cast<std::size_t>(index_[v]));
}

Var Solver::OrderHeap::remove_max() {
  const Var top = heap_[0];
  heap_[0] = heap_.back();
  index_[heap_[0]] = 0;
  heap_.pop_back();
  index_[top] = -1;
  if (!heap_.empty()) sift_down(0);
  return top;
}

void Solver::OrderHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[parent];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

void Solver::OrderHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])]) {
      ++child;
    }
    if (activity_[static_cast<std::size_t>(heap_[child])] <=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[child];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

// ---------------------------------------------------------------------------
// Construction / variables / clauses
// ---------------------------------------------------------------------------

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed) {}

float Solver::clause_activity(ClauseRef c) const {
  float a;
  std::memcpy(&a, &arena_[c + 2], sizeof(a));
  return a;
}

void Solver::set_clause_activity(ClauseRef c, float activity) {
  std::memcpy(&arena_[c + 2], &activity, sizeof(activity));
}

Var Solver::new_internal_var() {
  const Var v = internal_vars();
  assigns_.push_back(LBool::kUndef);
  var_data_.push_back({});
  saved_phase_.push_back(options_.default_polarity);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.resize(2 * assigns_.size());
  order_.grow(v + 1);
  order_.insert(v);
  return v;
}

Var Solver::new_var() {
  const Var iv = new_internal_var();
  remap_.push_var(iv);
  return remap_.num_external() - 1;
}

Var Solver::reserve_vars(Var count) {
  const Var first = num_vars();
  for (Var i = 0; i < count; ++i) new_var();
  return first;
}

void Solver::ensure_vars(Var n) {
  while (num_vars() < n) new_var();
}

void Solver::reseed(std::uint64_t seed) { rng_ = util::Rng(seed); }

bool Solver::add_clause(const Clause& clause) {
  if (!ok_) return false;
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  if (remap_.identity()) return add_clause_impl(clause, nullptr);
  if (!translate_clause_in(clause, map_tmp_)) return true;  // fixed-satisfied
  return add_clause_impl(map_tmp_, nullptr);
}

// `clause` is in internal numbering; every variable already has a slot.
bool Solver::add_clause_impl(const Clause& clause, ClauseRef* attached) {
  if (attached != nullptr) *attached = kNoReason;
  if (!ok_) return false;
  assert(decision_level() == 0);
  // Normalize into the scratch buffer: sort, drop duplicate/false
  // literals, detect tautology.
  add_tmp_.assign(clause.begin(), clause.end());
  std::sort(add_tmp_.begin(), add_tmp_.end());
  std::size_t keep = 0;
  Lit prev = cnf::kUndefLit;
  for (const Lit l : add_tmp_) {
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) == LBool::kFalse || l == prev) continue;     // falsified/dup
    add_tmp_[keep++] = l;
    prev = l;
  }
  add_tmp_.resize(keep);
  if (add_tmp_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_tmp_.size() == 1) {
    enqueue(add_tmp_[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }
  const ClauseRef cref = attach_new_clause(add_tmp_, /*learnt=*/false,
                                           /*lbd=*/0);
  if (attached != nullptr) *attached = cref;
  return true;
}

bool Solver::add_clause_activated(const Clause& clause, Lit activation) {
  if (!ok_) return false;
  ensure_vars(activation.var() + 1);
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  Clause guarded;
  guarded.reserve(clause.size() + 1);
  guarded.assign(clause.begin(), clause.end());
  guarded.push_back(~activation);
  // The guarded index is keyed by *internal* variable (activation
  // literals are fresh by contract, hence always live).
  Var act_var = activation.var();
  const Clause* use = &guarded;
  if (!remap_.identity()) {
    if (!translate_clause_in(guarded, map_tmp_)) return true;
    use = &map_tmp_;
    act_var = remap_.to_internal(activation.var());
  }
  ClauseRef cref = kNoReason;
  const bool result = add_clause_impl(*use, &cref);
  // Only arena records need indexing: simplified-away clauses (satisfied,
  // tautological, or collapsed to a unit) leave nothing to retire.
  if (cref != kNoReason) {
    activation_clauses_[act_var].push_back(cref);
  }
  return result;
}

std::size_t Solver::retire(Lit activation) {
  return retire(std::vector<Lit>{activation});
}

std::size_t Solver::retire(const std::vector<Lit>& activations) {
  assert(decision_level() == 0);
  if (activations.empty()) return 0;
  stats_.retired_activations += activations.size();
  // Translate to internal numbering. A guard compact() dropped as
  // root-fixed was already retired (retirement is the only way an
  // activation variable gets a root value), so it is skipped; free drops
  // revive as fresh, trivially-retirable variables.
  const std::vector<Lit>* acts = &activations;
  std::vector<Lit> translated;
  if (!remap_.identity()) {
    translated.reserve(activations.size());
    for (const Lit a : activations) {
      switch (remap_.drop_kind(a.var())) {
        case Remapper::DropKind::kLive:
          translated.push_back(remap_.to_internal(a));
          break;
        case Remapper::DropKind::kFixed:
          break;
        case Remapper::DropKind::kFree:
        case Remapper::DropKind::kEliminated:
          translated.push_back(Lit(revive(a.var()), a.negated()));
          break;
      }
    }
    acts = &translated;
    if (acts->empty()) return 0;
  }
  std::size_t reclaimed = 0;
  // Reclaim the indexed guarded records first. A record can be a root
  // reason only if it propagated its own ~activation; those stay alive
  // (they are satisfied and harmless) rather than dangling as reasons.
  for (const Lit activation : *acts) {
    const auto it = activation_clauses_.find(activation.var());
    if (it == activation_clauses_.end()) continue;
    for (const ClauseRef cref : it->second) {
      if (clause_removed(cref) || clause_is_root_reason(cref)) continue;
      remove_clause(cref);
      ++reclaimed;
    }
    activation_clauses_.erase(it);
  }
  // Make the retirements permanent. Any remaining clause mentioning a
  // retired ~activation — in particular every learnt clause that
  // recorded the guard during assumption solving — is satisfied forever
  // from here on.
  std::unordered_set<std::uint32_t> dead;
  dead.reserve(acts->size());
  for (const Lit activation : *acts) {
    enqueue_root_unit(~activation);
    dead.insert(static_cast<std::uint32_t>((~activation).code()));
  }
  // One sweep of the learnt database covers the whole batch.
  std::size_t keep = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const std::uint32_t size = clause_size(cref);
    const std::uint32_t base = lit_base(cref);
    bool mentions = false;
    for (std::uint32_t i = 0; i < size && !mentions; ++i) {
      mentions = dead.count(arena_[base + i]) != 0;
    }
    if (mentions && !clause_is_root_reason(cref)) {
      remove_clause(cref);
      ++reclaimed;
    } else {
      learnt_clauses_[keep++] = cref;
    }
  }
  learnt_clauses_.resize(keep);
  stats_.retired_clauses += reclaimed;
  maybe_garbage_collect();
  return reclaimed;
}

bool Solver::add_formula(const CnfFormula& formula) {
  ensure_vars(formula.num_vars());
  for (const Clause& c : formula.clauses()) {
    if (!add_clause(c)) return false;
  }
  return ok_;
}

Solver::ClauseRef Solver::attach_new_clause(const std::vector<Lit>& lits,
                                            bool learnt, std::uint32_t lbd) {
  assert(lits.size() >= 2);
  // Arena capacity growth is an instrumented hazard point: the capacity
  // delta is charged to the thread's ResourceBudget and a (real or
  // injected) bad_alloc becomes OutOfBudgetError instead of process death.
  const std::size_t words = 1 + (learnt ? 2u : 0u) + lits.size();
  if (arena_.size() + words > arena_.capacity()) {
    const std::size_t new_cap =
        std::max(arena_.capacity() * 2,
                 std::max<std::size_t>(arena_.size() + words, 1024));
    util::guarded_grow(util::fault::Site::kSatArenaGrow,
                       (new_cap - arena_.capacity()) * sizeof(std::uint32_t),
                       [&] { arena_.reserve(new_cap); });
  }
  const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
                   (learnt ? kLearntBit : 0u));
  if (learnt) {
    arena_.push_back(lbd);
    arena_.push_back(0u);  // activity 0.0f by bit pattern
  }
  for (const Lit l : lits) {
    arena_.push_back(static_cast<std::uint32_t>(l.code()));
  }
  (learnt ? learnt_clauses_ : problem_clauses_).push_back(cref);
  attach_watches(cref);
  return cref;
}

void Solver::attach_watches(ClauseRef cref) {
  const Lit l0 = clause_lit(cref, 0);
  const Lit l1 = clause_lit(cref, 1);
  if (clause_size(cref) == 2) {
    // Binary: the watcher's blocker is the implied literal.
    watches_[static_cast<std::size_t>((~l0).code())].push_back(
        {cref | kBinaryTag, l1});
    watches_[static_cast<std::size_t>((~l1).code())].push_back(
        {cref | kBinaryTag, l0});
  } else {
    watches_[static_cast<std::size_t>((~l0).code())].push_back({cref, l1});
    watches_[static_cast<std::size_t>((~l1).code())].push_back({cref, l0});
  }
}

void Solver::detach_watches(ClauseRef cref) {
  // Binary clauses carry the tag bit in their watcher entries (reduce_db
  // spares binaries, but retire() reclaims guarded binaries too).
  const ClauseRef key =
      clause_size(cref) == 2 ? (cref | kBinaryTag) : cref;
  for (int i = 0; i < 2; ++i) {
    const Lit watched = clause_lit(cref, static_cast<std::uint32_t>(i));
    auto& list = watches_[static_cast<std::size_t>((~watched).code())];
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].cref == key) {
        list[j] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::clause_is_root_reason(ClauseRef cref) const {
  // Long-clause propagation keeps the implied literal at position 0;
  // binary reasons may have it at either position.
  for (std::uint32_t i = 0; i < 2; ++i) {
    const Lit l = clause_lit(cref, i);
    if (value(l) == LBool::kTrue && reason(l.var()) == cref) return true;
  }
  return false;
}

void Solver::remove_clause(ClauseRef cref) {
  detach_watches(cref);
  wasted_ += record_words(cref);
  arena_[cref] |= kMarkBit;
}

// ---------------------------------------------------------------------------
// Propagation and trail
// ---------------------------------------------------------------------------

void Solver::enqueue(Lit p, ClauseRef from) {
  assert(value(p) == LBool::kUndef);
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = cnf::lbool_from(!p.negated());
  var_data_[v] = {from, decision_level()};
  trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    const auto p_code = static_cast<std::size_t>(p.code());
    auto& watch_list = watches_[p_code];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      const LBool blocker_value = value(w.blocker);
      if (blocker_value == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      if ((w.cref & kBinaryTag) != 0) {
        // Binary fast path: the blocker is the implied literal, so the
        // arena is never touched while propagating over binaries.
        watch_list[keep++] = w;
        if (blocker_value == LBool::kFalse) {
          // Conflict: keep the remaining watchers and bail out.
          for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          propagate_head_ = trail_.size();
          return w.cref & ~kBinaryTag;
        }
        enqueue(w.blocker, w.cref & ~kBinaryTag);
        continue;
      }
      const std::uint32_t header = arena_[w.cref];
      std::uint32_t* lits = &arena_[w.cref + 1 + ((header & kLearntBit) << 1)];
      const std::uint32_t size = header >> kSizeShift;
      // Ensure the false literal (~p) sits at position 1.
      const auto not_p = static_cast<std::uint32_t>((~p).code());
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      const Lit first = Lit::from_code(static_cast<std::int32_t>(lits[0]));
      if (value(first) == LBool::kTrue) {
        watch_list[keep++] = {w.cref, first};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(Lit::from_code(static_cast<std::int32_t>(lits[k]))) !=
            LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>(lits[1] ^ 1u)].push_back(
              {w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = {w.cref, first};
      if (value(first) == LBool::kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return w.cref;
      }
      enqueue(first, w.cref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::cancel_until(std::int32_t target_level) {
  if (decision_level() <= target_level) return;
  const auto bound =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[static_cast<std::size_t>(v)] = !trail_[i].negated();
    assigns_[static_cast<std::size_t>(v)] = LBool::kUndef;
    if (!order_.contains(v)) order_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(cnf::kUndefLit);  // slot for the asserting literal
  std::int32_t counter = 0;
  Lit p = cnf::kUndefLit;
  std::size_t index = trail_.size();

  ClauseRef reason_ref = conflict;
  do {
    if (clause_learnt(reason_ref)) {
      clause_bump_activity(reason_ref);
      // Glucose: keep the best (lowest) LBD the clause ever exhibits.
      const std::uint32_t lbd = lbd_of_clause(reason_ref);
      if (lbd < clause_lbd(reason_ref)) set_clause_lbd(reason_ref, lbd);
    }
    const std::uint32_t size = clause_size(reason_ref);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit q = clause_lit(reason_ref, i);
      if (q == p) continue;  // the literal this reason clause implied
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level(q.var()) == 0) continue;
      seen_[v] = 1;
      var_bump_activity(q.var());
      if (level(q.var()) >= decision_level()) {
        ++counter;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    reason_ref = reason(p.var());
    --counter;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Self-subsumption minimization: drop literals implied by the rest.
  const std::vector<Lit> before_minimization = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (level(out_learnt[i].var()) & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason(out_learnt[i].var()) == kNoReason ||
        !literal_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[keep++] = out_learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt.resize(keep);
  stats_.learnt_literals += out_learnt.size();

  // Find the backtrack level = highest level among the non-asserting lits.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(out_learnt[i].var()) > level(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  for (const Lit l : before_minimization) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  // literal_redundant leaves extra seen_ marks for redundancy witnesses.
  for (const Lit l : analyze_stack_) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  analyze_stack_.clear();
}

bool Solver::literal_redundant(Lit p, std::uint32_t abstract_levels) {
  // Depth-first check that every path from p's reason leads to seen
  // literals (or level-0 facts). Conservative on levels via the bitmask.
  std::vector<Lit> stack{p};
  const std::size_t cleanup_mark = analyze_stack_.size();
  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    const ClauseRef r = reason(q.var());
    assert(r != kNoReason);
    const std::uint32_t size = clause_size(r);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit l = clause_lit(r, i);
      if (l.var() == q.var()) continue;  // the implied literal itself
      const auto v = static_cast<std::size_t>(l.var());
      if (seen_[v] || level(l.var()) == 0) continue;
      if (reason(l.var()) == kNoReason ||
          ((1u << (level(l.var()) & 31)) & abstract_levels) == 0) {
        // Not redundant: undo the marks added during this check.
        for (std::size_t j = cleanup_mark; j < analyze_stack_.size(); ++j) {
          seen_[static_cast<std::size_t>(analyze_stack_[j].var())] = 0;
        }
        analyze_stack_.resize(cleanup_mark);
        return false;
      }
      seen_[v] = 1;
      analyze_stack_.push_back(l);
      stack.push_back(l);
    }
  }
  return true;
}

void Solver::analyze_final(Lit failed, std::vector<Lit>& out_core) {
  // `failed` is an assumption found false under the earlier assumptions.
  // Walk the implication graph backwards from ~failed; every decision
  // reached is an earlier assumption, and together with `failed` they form
  // an unsatisfiable subset (the core).
  out_core.clear();
  out_core.push_back(failed);
  if (decision_level() == 0) return;
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  const auto level0_end =
      static_cast<std::size_t>(trail_lim_.empty() ? 0 : trail_lim_[0]);
  for (std::size_t i = trail_.size(); i-- > level0_end;) {
    const Var v = trail_[i].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    seen_[static_cast<std::size_t>(v)] = 0;
    const ClauseRef r = reason(v);
    if (r == kNoReason) {
      // A decision above level 0 is an assumption (assumptions are the
      // only decisions made before analyze_final can run).
      out_core.push_back(trail_[i]);
    } else {
      const std::uint32_t size = clause_size(r);
      for (std::uint32_t k = 0; k < size; ++k) {
        const Lit l = clause_lit(r, k);
        if (l.var() == v) continue;  // the implied literal itself
        if (level(l.var()) > 0) {
          seen_[static_cast<std::size_t>(l.var())] = 1;
        }
      }
    }
  }
  seen_[static_cast<std::size_t>(failed.var())] = 0;
}

// ---------------------------------------------------------------------------
// Activities and LBD
// ---------------------------------------------------------------------------

void Solver::var_bump_activity(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void Solver::var_decay_activity() { var_inc_ /= options_.var_decay; }

void Solver::clause_bump_activity(ClauseRef cref) {
  const float bumped =
      clause_activity(cref) + static_cast<float>(clause_inc_);
  set_clause_activity(cref, bumped);
  if (bumped > 1e20f) {
    for (const ClauseRef c : learnt_clauses_) {
      set_clause_activity(c, clause_activity(c) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::clause_decay_activity() {
  clause_inc_ /= options_.clause_activity_decay;
}

/// Number of distinct (non-root) decision levels among `size` literals
/// produced by `lit_at(i)` — the literal-block distance.
template <typename LitAt>
std::uint32_t Solver::lbd_of(std::uint32_t size, LitAt lit_at) {
  if (lbd_stamp_.size() <= static_cast<std::size_t>(decision_level())) {
    lbd_stamp_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  ++lbd_stamp_counter_;
  std::uint32_t lbd = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto lev = static_cast<std::size_t>(level(lit_at(i).var()));
    if (lev == 0) continue;
    if (lbd_stamp_[lev] != lbd_stamp_counter_) {
      lbd_stamp_[lev] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

std::uint32_t Solver::lbd_of_lits(const std::vector<Lit>& lits) {
  return lbd_of(static_cast<std::uint32_t>(lits.size()),
                [&](std::uint32_t i) { return lits[i]; });
}

std::uint32_t Solver::lbd_of_clause(ClauseRef cref) {
  return lbd_of(clause_size(cref),
                [&](std::uint32_t i) { return clause_lit(cref, i); });
}

// ---------------------------------------------------------------------------
// Decisions and clause DB reduction
// ---------------------------------------------------------------------------

bool Solver::pick_polarity(Var v) {
  if (options_.random_polarity) {
    // polarity_bias is written by clients in external numbering.
    auto i = static_cast<std::size_t>(v);
    if (!remap_.identity()) {
      const Var ev = remap_.to_external(v);
      if (ev == cnf::kNoVar) return rng_.flip(0.5);
      i = static_cast<std::size_t>(ev);
    }
    const double p_true =
        i < options_.polarity_bias.size() ? options_.polarity_bias[i] : 0.5;
    return rng_.flip(p_true);
  }
  return saved_phase_[static_cast<std::size_t>(v)];
}

Lit Solver::pick_branch_lit() {
  Var next = cnf::kNoVar;
  if (options_.random_branch_freq > 0.0 &&
      rng_.flip(options_.random_branch_freq)) {
    // Random decision variable (sampler diversification).
    const Var v = static_cast<Var>(rng_.next_below(
        static_cast<std::uint64_t>(internal_vars())));
    if (value(v) == LBool::kUndef && !is_orphan(v)) next = v;
  }
  while (next == cnf::kNoVar || value(next) != LBool::kUndef ||
         is_orphan(next)) {
    if (order_.empty()) return cnf::kUndefLit;
    next = order_.remove_max();
  }
  return Lit(next, !pick_polarity(next));
}

Lit Solver::pick_enum_lit() {
  // Enumeration decisions scan the shuffled permutation instead of the
  // VSIDS heap: the heap costs O(log n) per decision plus a full
  // reinsert-and-drain cycle per restart, which dominates descents on
  // model-rich formulas where every model needs a root restart.
  while (enum_cursor_ < enum_order_.size()) {
    const Var v = enum_order_[enum_cursor_];
    if (value(v) == LBool::kUndef && !is_orphan(v)) {
      return Lit(v, !pick_polarity(v));
    }
    ++enum_cursor_;
  }
  return cnf::kUndefLit;
}

void Solver::scramble_for_descent() {
  // Fisher-Yates over the decision permutation: each descent branches in
  // a fresh random order, decorrelating successive models.
  enum_order_.resize(static_cast<std::size_t>(internal_vars()));
  for (Var v = 0; v < internal_vars(); ++v) {
    enum_order_[static_cast<std::size_t>(v)] = v;
  }
  for (std::size_t i = enum_order_.size(); i > 1; --i) {
    std::swap(enum_order_[i - 1], enum_order_[rng_.next_below(i)]);
  }
  enum_cursor_ = 0;
  if (!options_.random_polarity) {
    // Phase scramble: saved phases would replay the previous model.
    for (std::size_t v = 0; v < saved_phase_.size(); ++v) {
      saved_phase_[v] = rng_.flip();
    }
  }
}

bool Solver::clause_locked(ClauseRef cref) const {
  // Valid for clauses of size >= 3 only: long-clause propagation keeps the
  // implied literal at position 0. (A binary reason may have it at either
  // position, but binaries are never removal candidates.)
  const Lit first = clause_lit(cref, 0);
  return value(first) == LBool::kTrue && reason(first.var()) == cref;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  // Record the LBD tier census before removal.
  stats_.tier_core = stats_.tier_mid = stats_.tier_local = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const std::uint32_t lbd = clause_lbd(cref);
    if (lbd <= kCoreLbd) {
      ++stats_.tier_core;
    } else if (lbd <= kMidLbd) {
      ++stats_.tier_mid;
    } else {
      ++stats_.tier_local;
    }
  }
  // Worst clauses first: highest LBD, ties broken by lowest activity.
  // Core clauses (LBD <= kCoreLbd) sort to the back and survive.
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              const std::uint32_t la = clause_lbd(a);
              const std::uint32_t lb = clause_lbd(b);
              if (la != lb) return la > lb;
              return clause_activity(a) < clause_activity(b);
            });
  const std::size_t target = learnt_clauses_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnt_clauses_.size());
  std::size_t removed = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const bool removable = removed < target && clause_size(cref) > 2 &&
                           clause_lbd(cref) > kCoreLbd &&
                           !clause_locked(cref);
    if (removable) {
      remove_clause(cref);
      ++removed;
    } else {
      kept.push_back(cref);
    }
  }
  learnt_clauses_ = std::move(kept);
  maybe_garbage_collect();
}

// ---------------------------------------------------------------------------
// Arena garbage collection
// ---------------------------------------------------------------------------

void Solver::maybe_garbage_collect() {
  // Mark-compact once removed records waste more than ~20% of the arena.
  if (wasted_ > 0 && wasted_ * 5 > arena_.size()) garbage_collect();
}

void Solver::garbage_collect() {
  ++stats_.gc_runs;
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wasted_);
  // Copy a live record on first visit and leave a forwarding address in
  // its old header so every other root referencing it follows along.
  const auto reloc = [&](ClauseRef& cref) {
    if ((arena_[cref] & kRelocBit) != 0) {
      cref = arena_[cref + 1];
      return;
    }
    assert(!clause_removed(cref));
    const std::uint32_t words = record_words(cref);
    const auto moved = static_cast<ClauseRef>(to.size());
    to.insert(to.end(), arena_.begin() + cref, arena_.begin() + cref + words);
    arena_[cref] |= kRelocBit;
    // Forwarding address in the word after the header (the LBD slot for
    // learnt clauses, lit0 for problem clauses — the record is dead).
    arena_[cref + 1] = moved;
    cref = moved;
  };
  for (auto& list : watches_) {
    for (Watcher& w : list) {
      ClauseRef untagged = w.cref & ~kBinaryTag;
      reloc(untagged);
      w.cref = untagged | (w.cref & kBinaryTag);
    }
  }
  // Reasons of assigned variables are live roots; reasons of unassigned
  // variables are stale and must not survive as dangling offsets.
  for (const Lit l : trail_) {
    ClauseRef& r = var_data_[static_cast<std::size_t>(l.var())].reason;
    if (r != kNoReason) reloc(r);
  }
  for (Var v = 0; v < internal_vars(); ++v) {
    if (value(v) == LBool::kUndef) {
      var_data_[static_cast<std::size_t>(v)].reason = kNoReason;
    }
  }
  // Guarded records removed outside retire() (root-satisfied clauses
  // swept by simplify_root) are dropped from the index here, like the
  // stale clause-list entries below.
  for (auto& entry : activation_clauses_) {
    std::size_t keep = 0;
    for (ClauseRef cref : entry.second) {
      if ((arena_[cref] & (kMarkBit | kRelocBit)) == kMarkBit) continue;
      reloc(cref);
      entry.second[keep++] = cref;
    }
    entry.second.resize(keep);
  }
  // The clause lists may still carry records retired between reductions;
  // they are dead (detached, marked) and get swept here rather than paying
  // an O(list) erase at every retire().
  const auto sweep = [&](std::vector<ClauseRef>& list) {
    std::size_t keep = 0;
    for (ClauseRef cref : list) {
      if ((arena_[cref] & (kMarkBit | kRelocBit)) == kMarkBit) continue;
      reloc(cref);
      list[keep++] = cref;
    }
    list.resize(keep);
  };
  sweep(problem_clauses_);
  sweep(learnt_clauses_);
  arena_ = std::move(to);
  wasted_ = 0;
}

// ---------------------------------------------------------------------------
// External/internal translation and revival
// ---------------------------------------------------------------------------

bool Solver::enqueue_root_unit(Lit p) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  const LBool val = value(p);
  if (val == LBool::kTrue) return true;
  if (val == LBool::kFalse) {
    ok_ = false;
    return false;
  }
  enqueue(p, kNoReason);
  ok_ = (propagate() == kNoReason);
  return ok_;
}

Var Solver::revive(Var external) {
  const Var iv = new_internal_var();
  const bool was_eliminated = remap_.is_eliminated(external);
  remap_.bind(external, iv);
  if (was_eliminated) {
    // Re-adding the defining clauses restores full equivalence with the
    // pre-elimination formula: the resolvents that replaced them are
    // implied and stay. Binding first terminates the recursion (a stored
    // clause may mention the variable itself or later-eliminated ones).
    const auto it = elim_group_of_.find(external);
    assert(it != elim_group_of_.end());
    ElimGroup& group = elim_groups_[it->second];
    group.revived = true;
    elim_group_of_.erase(it);
    std::vector<Lit> lits;  // local: revival can recurse through here
    const auto re_add = [&](const std::vector<Clause>& side) {
      for (const Clause& c : side) {
        if (!translate_clause_in(c, lits)) continue;
        if (!add_clause_impl(lits, nullptr)) return false;
      }
      return true;
    };
    if (re_add(group.clauses)) re_add(group.other);
    group.clauses.clear();
    group.clauses.shrink_to_fit();
    group.other.clear();
    group.other.shrink_to_fit();
  }
  return iv;
}

bool Solver::translate_clause_in(const Clause& clause, std::vector<Lit>& out) {
  out.clear();
  for (const Lit l : clause) {
    switch (remap_.drop_kind(l.var())) {
      case Remapper::DropKind::kLive:
        out.push_back(remap_.to_internal(l));
        break;
      case Remapper::DropKind::kFixed:
        if ((remap_.fixed_value(l.var()) ^ l.negated()) == LBool::kTrue) {
          return false;  // satisfied by the recorded root value
        }
        break;  // false literal: drop
      case Remapper::DropKind::kFree:
      case Remapper::DropKind::kEliminated:
        out.push_back(Lit(revive(l.var()), l.negated()));
        break;
    }
  }
  return true;
}

void Solver::freeze(Var v) {
  ensure_vars(v + 1);
  if (static_cast<std::size_t>(v) >= frozen_.size()) {
    frozen_.resize(static_cast<std::size_t>(v) + 1, 0);
  }
  frozen_[static_cast<std::size_t>(v)] = 1;
}

void Solver::freeze_range(Var first, Var count) {
  if (count <= 0) return;
  ensure_vars(first + count);
  if (static_cast<std::size_t>(first + count) > frozen_.size()) {
    frozen_.resize(static_cast<std::size_t>(first + count), 0);
  }
  for (Var i = 0; i < count; ++i) {
    frozen_[static_cast<std::size_t>(first + i)] = 1;
  }
}

// ---------------------------------------------------------------------------
// Inprocessing
// ---------------------------------------------------------------------------

bool Solver::clause_contains(ClauseRef cref, Lit l) const {
  const std::uint32_t size = clause_size(cref);
  const std::uint32_t base = lit_base(cref);
  const auto code = static_cast<std::uint32_t>(l.code());
  for (std::uint32_t i = 0; i < size; ++i) {
    if (arena_[base + i] == code) return true;
  }
  return false;
}

bool Solver::is_guarded_record(ClauseRef cref) const {
  return std::binary_search(guarded_records_.begin(), guarded_records_.end(),
                            cref);
}

void Solver::occ_push(ClauseRef cref) {
  const std::uint32_t size = clause_size(cref);
  const std::uint32_t base = lit_base(cref);
  for (std::uint32_t i = 0; i < size; ++i) {
    occ_[static_cast<std::size_t>(arena_[base + i])].push_back(cref);
  }
}

void Solver::build_occ_lists() {
  const auto n = static_cast<std::size_t>(internal_vars());
  occ_.assign(2 * n, {});
  guarded_var_.assign(n, 0);
  guarded_records_.clear();
  // Guarded records are invisible to every simplification; any variable
  // occurring in one (including the activation variable itself) is
  // additionally barred from elimination, so retirement semantics can
  // never be broken by a resolvent that silently dropped a guard.
  for (const auto& entry : activation_clauses_) {
    guarded_var_[static_cast<std::size_t>(entry.first)] = 1;
    for (const ClauseRef cref : entry.second) {
      guarded_records_.push_back(cref);
      if (clause_removed(cref)) continue;
      const std::uint32_t size = clause_size(cref);
      const std::uint32_t base = lit_base(cref);
      for (std::uint32_t i = 0; i < size; ++i) {
        guarded_var_[static_cast<std::size_t>(arena_[base + i] >> 1)] = 1;
      }
    }
  }
  std::sort(guarded_records_.begin(), guarded_records_.end());
  for (const ClauseRef cref : problem_clauses_) {
    if (clause_removed(cref) || is_guarded_record(cref)) continue;
    occ_push(cref);
  }
}

bool Solver::simplify_root() {
  assert(decision_level() == 0);
  if (!ok_) return false;
  if (propagate() != kNoReason) {
    ok_ = false;
    return false;
  }
  // Root facts never re-enter conflict analysis (analyze / analyze_final
  // skip level-0 literals), so their reason records are dead links;
  // clearing them lets every root-satisfied clause be removed, including
  // records that propagated units.
  for (const Lit l : trail_) {
    var_data_[static_cast<std::size_t>(l.var())].reason = kNoReason;
  }
  std::vector<Lit> lits;
  const auto clean = [&](std::vector<ClauseRef>& list) {
    std::size_t keep = 0;
    for (const ClauseRef cref : list) {
      if (clause_removed(cref)) continue;  // stale entry awaiting GC
      const std::uint32_t size = clause_size(cref);
      bool satisfied = false;
      lits.clear();
      for (std::uint32_t i = 0; i < size; ++i) {
        const Lit l = clause_lit(cref, i);
        const LBool val = value(l);
        if (val == LBool::kTrue) {
          satisfied = true;
          break;
        }
        if (val == LBool::kUndef) lits.push_back(l);
      }
      if (satisfied) {
        remove_clause(cref);
        continue;
      }
      if (lits.size() == static_cast<std::size_t>(size)) {
        list[keep++] = cref;  // untouched
        continue;
      }
      // Strip the root-false literals (propagation is at fixpoint, so at
      // least two literals remain).
      if (rebuild_clause(cref, lits)) list[keep++] = cref;
    }
    list.resize(keep);
  };
  clean(problem_clauses_);
  clean(learnt_clauses_);
  return ok_;
}

bool Solver::rebuild_clause(ClauseRef cref, std::vector<Lit>& lits) {
  // `lits` is a subset of the record's literals. In-pass root units may
  // have assigned some of them since the caller built the list, so
  // re-filter here: that keeps every mutation locally sound regardless
  // of interleaving, and guarantees attached watches sit on unassigned
  // literals.
  std::size_t keep = 0;
  bool satisfied = false;
  for (const Lit l : lits) {
    const LBool val = value(l);
    if (val == LBool::kTrue) {
      satisfied = true;
      break;
    }
    if (val == LBool::kUndef) lits[keep++] = l;
  }
  if (satisfied) {
    remove_clause(cref);
    return false;
  }
  lits.resize(keep);
  if (lits.empty()) {
    remove_clause(cref);
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    remove_clause(cref);
    enqueue_root_unit(lits[0]);
    return false;
  }
  // Rewrite the record in place; the shrink slack counts as wasted arena
  // words. detach_watches on an already-detached record (vivification
  // target) is a harmless no-op scan.
  detach_watches(cref);
  const std::uint32_t old_words = record_words(cref);
  const std::uint32_t base = lit_base(cref);
  for (std::size_t i = 0; i < lits.size(); ++i) {
    arena_[base + i] = static_cast<std::uint32_t>(lits[i].code());
  }
  arena_[cref] = (static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
                 (arena_[cref] & (kLearntBit | kMarkBit | kRelocBit));
  wasted_ += old_words - record_words(cref);
  attach_watches(cref);
  return true;
}

bool Solver::inprocess_should_stop(const InprocessOptions& options) {
  if (inprocess_stopped_) return true;
  if (util::fault::poll(util::fault::Site::kSatInprocessStep) ==
          util::fault::Kind::kCancel ||
      (options.cancel != nullptr && options.cancel->cancelled())) {
    inprocess_stopped_ = true;
  }
  return inprocess_stopped_;
}

bool Solver::subsumption_pass(const InprocessOptions& options) {
  // Every unguarded problem clause is processed once as the subsuming
  // side; strengthened clauses re-enter the queue. Occurrence lists are
  // lazily stale — the mark test below is exact regardless of how a
  // candidate was found.
  std::vector<ClauseRef> queue;
  queue.reserve(problem_clauses_.size());
  for (const ClauseRef cref : problem_clauses_) {
    if (!clause_removed(cref) && !is_guarded_record(cref)) {
      queue.push_back(cref);
    }
  }
  std::vector<Lit> strengthened;
  for (std::size_t qi = 0; qi < queue.size(); ++qi) {
    if (!ok_) return false;
    if (inprocess_should_stop(options)) break;
    const ClauseRef c = queue[qi];
    if (clause_removed(c)) continue;
    const std::uint32_t size = clause_size(c);
    // Mark c's literals; remember the cheapest occurrence list to scan.
    Lit pivot = cnf::kUndefLit;
    std::size_t pivot_occ = 0;
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit l = clause_lit(c, i);
      lit_mark_[static_cast<std::size_t>(l.code())] = 1;
      const std::size_t n = occ_[static_cast<std::size_t>(l.code())].size();
      if (!pivot.valid() || n < pivot_occ) {
        pivot = l;
        pivot_occ = n;
      }
    }
    // Backward subsumption: c removes its supersets. Any superset of c
    // contains the pivot, so one occurrence list covers all candidates.
    if (pivot_occ <= options.occ_limit) {
      for (const ClauseRef d :
           occ_[static_cast<std::size_t>(pivot.code())]) {
        if (d == c || clause_removed(d)) continue;
        const std::uint32_t d_size = clause_size(d);
        if (d_size < size) continue;
        const std::uint32_t d_base = lit_base(d);
        std::uint32_t hits = 0;
        for (std::uint32_t k = 0; k < d_size; ++k) {
          hits += lit_mark_[static_cast<std::size_t>(arena_[d_base + k])];
        }
        if (hits == size) {
          remove_clause(d);
          ++stats_.subsumed_clauses;
        }
      }
    }
    // Self-subsuming resolution: if (c \ {q}) ∪ {~q} ⊆ d, resolving c
    // with d on var(q) yields d \ {~q} — strengthen d in place. d cannot
    // contain q too (it would be tautological), so a candidate with ~q
    // and |c|-1 marked hits contains exactly c \ {q}.
    for (std::uint32_t i = 0; i < size && ok_; ++i) {
      const Lit nq = ~clause_lit(c, i);
      const auto& cand = occ_[static_cast<std::size_t>(nq.code())];
      if (cand.size() > options.occ_limit) continue;
      for (const ClauseRef d : cand) {
        if (clause_removed(d)) continue;
        const std::uint32_t d_size = clause_size(d);
        if (d_size < size) continue;
        const std::uint32_t d_base = lit_base(d);
        std::uint32_t hits = 0;
        bool has_nq = false;
        for (std::uint32_t k = 0; k < d_size; ++k) {
          hits += lit_mark_[static_cast<std::size_t>(arena_[d_base + k])];
          has_nq |= arena_[d_base + k] == static_cast<std::uint32_t>(nq.code());
        }
        if (!has_nq || hits != size - 1) continue;
        strengthened.clear();
        for (std::uint32_t k = 0; k < d_size; ++k) {
          const Lit l =
              Lit::from_code(static_cast<std::int32_t>(arena_[d_base + k]));
          if (l != nq) strengthened.push_back(l);
        }
        ++stats_.strengthened_literals;
        if (rebuild_clause(d, strengthened)) queue.push_back(d);
        if (!ok_) break;
      }
    }
    // Clear the marks. The literal *set* of c is untouched by this pass
    // (in-pass propagation may only reorder records), so rescanning the
    // record clears exactly what was set.
    const std::uint32_t base = lit_base(c);
    for (std::uint32_t i = 0; i < size; ++i) {
      lit_mark_[static_cast<std::size_t>(arena_[base + i])] = 0;
    }
  }
  return ok_;
}

bool Solver::eliminate_pass(const InprocessOptions& options) {
  // Cheapest candidates first: fewest total occurrences.
  std::vector<std::pair<std::uint32_t, Var>> cands;
  for (Var v = 0; v < internal_vars(); ++v) {
    if (value(v) != LBool::kUndef || is_orphan(v)) continue;
    if (guarded_var_[static_cast<std::size_t>(v)] != 0) continue;
    if (is_frozen(remap_.identity() ? v : remap_.to_external(v))) continue;
    const std::size_t occ_n =
        occ_[static_cast<std::size_t>(cnf::pos(v).code())].size() +
        occ_[static_cast<std::size_t>(cnf::neg(v).code())].size();
    if (occ_n == 0 || occ_n > 2 * options.occ_limit) continue;
    cands.emplace_back(static_cast<std::uint32_t>(occ_n), v);
  }
  std::sort(cands.begin(), cands.end());
  std::vector<ClauseRef> pos, neg;
  std::vector<Lit> merged;
  std::vector<std::vector<Lit>> resolvents;
  std::vector<std::uint8_t> elim_mark(
      static_cast<std::size_t>(internal_vars()), 0);
  bool any = false;
  for (const auto& [occ_count, v] : cands) {
    (void)occ_count;
    if (!ok_) return false;
    if (inprocess_should_stop(options)) break;
    if (value(v) != LBool::kUndef) continue;  // fixed by an in-pass unit
    const Lit vp = cnf::pos(v);
    const Lit vn = cnf::neg(v);
    // Exact occurrence sets (list entries are lazily stale).
    pos.clear();
    neg.clear();
    for (const ClauseRef cref : occ_[static_cast<std::size_t>(vp.code())]) {
      if (!clause_removed(cref) && clause_contains(cref, vp)) {
        pos.push_back(cref);
      }
    }
    for (const ClauseRef cref : occ_[static_cast<std::size_t>(vn.code())]) {
      if (!clause_removed(cref) && clause_contains(cref, vn)) {
        neg.push_back(cref);
      }
    }
    if (pos.empty() && neg.empty()) continue;  // free: compact() handles it
    if (pos.size() > options.occ_limit || neg.size() > options.occ_limit) {
      continue;
    }
    // Trial resolution under the SatELite bound: eliminate only if the
    // resolvent set is no larger than what it replaces (plus slack).
    const std::size_t budget = pos.size() + neg.size() + options.elim_grow;
    resolvents.clear();
    bool abort = false;
    for (const ClauseRef cp : pos) {
      const std::uint32_t cp_size = clause_size(cp);
      const std::uint32_t cp_base = lit_base(cp);
      for (const ClauseRef cn : neg) {
        merged.clear();
        bool taut = false;
        bool satisfied = false;
        std::size_t cp_marked = 0;
        for (std::uint32_t i = 0; i < cp_size; ++i) {
          const Lit l =
              Lit::from_code(static_cast<std::int32_t>(arena_[cp_base + i]));
          if (l.var() == v) continue;
          const LBool val = value(l);
          if (val == LBool::kTrue) {
            satisfied = true;
            break;
          }
          if (val == LBool::kFalse) continue;
          lit_mark_[static_cast<std::size_t>(l.code())] = 1;
          merged.push_back(l);
          ++cp_marked;
        }
        if (!satisfied) {
          const std::uint32_t cn_size = clause_size(cn);
          const std::uint32_t cn_base = lit_base(cn);
          for (std::uint32_t i = 0; i < cn_size; ++i) {
            const Lit l =
                Lit::from_code(static_cast<std::int32_t>(arena_[cn_base + i]));
            if (l.var() == v) continue;
            const LBool val = value(l);
            if (val == LBool::kTrue) {
              satisfied = true;
              break;
            }
            if (val == LBool::kFalse) continue;
            if (lit_mark_[static_cast<std::size_t>((~l).code())] != 0) {
              taut = true;
              break;
            }
            if (lit_mark_[static_cast<std::size_t>(l.code())] == 0) {
              merged.push_back(l);
            }
          }
        }
        for (std::size_t i = 0; i < cp_marked; ++i) {
          lit_mark_[static_cast<std::size_t>(merged[i].code())] = 0;
        }
        if (satisfied || taut) continue;
        if (merged.size() > options.elim_clause_limit) {
          abort = true;
          break;
        }
        resolvents.push_back(merged);
        if (resolvents.size() > budget) {
          abort = true;
          break;
        }
      }
      if (abort) break;
    }
    if (abort) continue;
    // Commit. Store the smaller side (in external literals) for model
    // extension and revival; this leaves identity mode on the first drop.
    remap_.materialize(internal_vars());
    const Var ev = remap_.to_external(v);
    const bool store_pos = pos.size() <= neg.size();
    ElimGroup group;
    group.lit = remap_.to_external(store_pos ? vp : vn);
    const auto externalize = [&](const std::vector<ClauseRef>& side,
                                 std::vector<Clause>& out) {
      out.reserve(side.size());
      for (const ClauseRef cref : side) {
        Clause stored;
        const std::uint32_t size = clause_size(cref);
        const std::uint32_t base = lit_base(cref);
        stored.reserve(size);
        for (std::uint32_t i = 0; i < size; ++i) {
          stored.push_back(remap_.to_external(
              Lit::from_code(static_cast<std::int32_t>(arena_[base + i]))));
        }
        out.push_back(std::move(stored));
      }
    };
    externalize(store_pos ? pos : neg, group.clauses);
    externalize(store_pos ? neg : pos, group.other);
    elim_group_of_[ev] = elim_groups_.size();
    elim_groups_.push_back(std::move(group));
    remap_.drop(ev, Remapper::DropKind::kEliminated);
    for (const ClauseRef cref : pos) remove_clause(cref);
    for (const ClauseRef cref : neg) remove_clause(cref);
    // add_clause_impl re-checks root values, so resolvents stay sound
    // even when an earlier resolvent collapsed to a propagating unit.
    for (const std::vector<Lit>& r : resolvents) {
      ClauseRef attached = kNoReason;
      if (!add_clause_impl(r, &attached)) return false;
      if (attached != kNoReason) occ_push(attached);
    }
    elim_mark[static_cast<std::size_t>(v)] = 1;
    any = true;
    ++stats_.eliminated_vars;
  }
  // Learnt clauses mentioning an eliminated variable would keep its
  // orphaned slot in the search; drop them (always sound).
  if (any) {
    std::size_t keep = 0;
    for (const ClauseRef cref : learnt_clauses_) {
      if (clause_removed(cref)) continue;
      const std::uint32_t size = clause_size(cref);
      const std::uint32_t base = lit_base(cref);
      bool mentions = false;
      for (std::uint32_t i = 0; i < size && !mentions; ++i) {
        mentions = elim_mark[static_cast<std::size_t>(arena_[base + i] >> 1)] != 0;
      }
      if (mentions && !clause_is_root_reason(cref)) {
        remove_clause(cref);
      } else {
        learnt_clauses_[keep++] = cref;
      }
    }
    learnt_clauses_.resize(keep);
  }
  return ok_;
}

bool Solver::vivify_pass(const InprocessOptions& options) {
  // Clause vivification: detach a clause, assume the negation of its
  // literals one by one, and shorten it when propagation proves a prefix
  // sufficient — (¬l₁ ∧ … ∧ ¬lᵢ) ⊢ conflict or lᵢ₊₁ means the prefix
  // clause is implied and subsumes the original. No conflicts are
  // learnt; the pass is bounded by a propagation budget.
  const std::uint64_t budget_end =
      stats_.propagations + options.vivify_budget;
  std::vector<Lit> lits, kept;
  for (const ClauseRef cref : problem_clauses_) {
    if (!ok_) return false;
    if (stats_.propagations >= budget_end) break;
    if (inprocess_should_stop(options)) break;
    if (clause_removed(cref) || is_guarded_record(cref)) continue;
    const std::uint32_t size = clause_size(cref);
    if (size < 3) continue;
    lits.clear();
    for (std::uint32_t i = 0; i < size; ++i) lits.push_back(clause_lit(cref, i));
    detach_watches(cref);
    kept.clear();
    bool shortened = false;
    bool root_satisfied = false;
    for (const Lit l : lits) {
      const LBool val = value(l);
      if (val == LBool::kTrue) {
        // ¬kept* ⊢ l: the kept prefix plus l is an implied subset.
        kept.push_back(l);
        root_satisfied = decision_level() == 0;
        shortened = kept.size() < lits.size();
        break;
      }
      if (val == LBool::kFalse) {
        if (decision_level() == 0) {
          shortened = true;  // root-false literal: always droppable
          continue;
        }
        // ¬kept* ⊢ ¬l: l is redundant in this clause.
        shortened = true;
        continue;
      }
      new_decision_level();
      enqueue(~l, kNoReason);
      if (propagate() != kNoReason) {
        // ¬kept* ∧ ¬l is contradictory ⟹ (kept ∨ l) is implied.
        kept.push_back(l);
        shortened = kept.size() < lits.size();
        break;
      }
      kept.push_back(l);
    }
    cancel_until(0);
    if (root_satisfied) {
      remove_clause(cref);  // already detached; mark + account only
      continue;
    }
    if (!shortened) {
      attach_watches(cref);
      continue;
    }
    stats_.vivified_literals += lits.size() - kept.size();
    rebuild_clause(cref, kept);
  }
  return ok_;
}

bool Solver::inprocess(const InprocessOptions& options) {
  assert(decision_level() == 0);
  if (!ok_) return false;
  ++stats_.inprocess_runs;
  inprocess_stopped_ = false;
  if (!simplify_root()) return false;
  lit_mark_.assign(2 * static_cast<std::size_t>(internal_vars()), 0);
  build_occ_lists();
  for (std::uint32_t round = 0; round < options.max_rounds; ++round) {
    const std::size_t trail_before = trail_.size();
    if (options.subsume && !subsumption_pass(options)) return false;
    if (options.eliminate && !eliminate_pass(options)) return false;
    if (inprocess_stopped_ || trail_.size() == trail_before) break;
    // New root units: re-clean the database and run another round.
    if (!simplify_root()) return false;
    build_occ_lists();
  }
  if (!inprocess_stopped_ && options.vivify && !vivify_pass(options)) {
    return false;
  }
  // In-pass propagation recorded clause reasons for new root facts;
  // clear them (root reasons are never traversed) so records removed
  // above can never dangle as reasons at the next GC.
  for (const Lit l : trail_) {
    var_data_[static_cast<std::size_t>(l.var())].reason = kNoReason;
  }
  occ_.clear();
  occ_.shrink_to_fit();
  guarded_records_.clear();
  maybe_garbage_collect();
  return true;
}

// ---------------------------------------------------------------------------
// Variable compaction
// ---------------------------------------------------------------------------

std::size_t Solver::compact() {
  assert(decision_level() == 0);
  if (!ok_) return 0;
  if (!simplify_root()) return 0;
  // Sweep removed records and stale list/index entries so the occurrence
  // scan below sees only live records. (Root reasons were cleared by
  // simplify_root, so nothing dangles.)
  garbage_collect();
  const Var n_old = internal_vars();
  std::vector<std::uint8_t> occurs(static_cast<std::size_t>(n_old), 0);
  const auto scan = [&](const std::vector<ClauseRef>& list) {
    for (const ClauseRef cref : list) {
      const std::uint32_t size = clause_size(cref);
      const std::uint32_t base = lit_base(cref);
      for (std::uint32_t i = 0; i < size; ++i) {
        occurs[static_cast<std::size_t>(arena_[base + i] >> 1)] = 1;
      }
    }
  };
  scan(problem_clauses_);
  scan(learnt_clauses_);
  // After simplify_root, no live clause mentions a root-assigned
  // variable, so the drop taxonomy is exact: assigned → kFixed (value
  // recorded), unused → kFree, orphaned eliminated slots → gone.
  remap_.materialize(n_old);
  std::vector<Var> old2new(static_cast<std::size_t>(n_old), cnf::kNoVar);
  Var n_new = 0;
  for (Var v = 0; v < n_old; ++v) {
    const Var ev = remap_.to_external(v);
    if (value(v) != LBool::kUndef) {
      assert(level(v) == 0);
      if (ev != cnf::kNoVar) {
        remap_.drop(ev, Remapper::DropKind::kFixed, value(v));
      }
      continue;
    }
    if (occurs[static_cast<std::size_t>(v)] == 0) {
      if (ev != cnf::kNoVar) remap_.drop(ev, Remapper::DropKind::kFree);
      continue;
    }
    old2new[static_cast<std::size_t>(v)] = n_new++;
  }
  const auto reclaimed = static_cast<std::size_t>(n_old - n_new);
  if (reclaimed == 0) return 0;
  remap_.remapped_vars_ += reclaimed;
  // Rebind the external maps onto the new numbering.
  std::vector<Var> int2ext_new(static_cast<std::size_t>(n_new), cnf::kNoVar);
  for (Var v = 0; v < n_old; ++v) {
    const Var nv = old2new[static_cast<std::size_t>(v)];
    if (nv == cnf::kNoVar) continue;
    const Var ev = remap_.int2ext_[static_cast<std::size_t>(v)];
    int2ext_new[static_cast<std::size_t>(nv)] = ev;
    if (ev != cnf::kNoVar) remap_.ext2int_[static_cast<std::size_t>(ev)] = nv;
  }
  remap_.int2ext_ = std::move(int2ext_new);
  // Rewrite every literal word in the live records.
  const auto rewrite = [&](const std::vector<ClauseRef>& list) {
    for (const ClauseRef cref : list) {
      const std::uint32_t size = clause_size(cref);
      const std::uint32_t base = lit_base(cref);
      for (std::uint32_t i = 0; i < size; ++i) {
        const std::uint32_t code = arena_[base + i];
        arena_[base + i] =
            2 * static_cast<std::uint32_t>(
                    old2new[static_cast<std::size_t>(code >> 1)]) |
            (code & 1u);
      }
    }
  };
  rewrite(problem_clauses_);
  rewrite(learnt_clauses_);
  // The guarded index is keyed by internal variable ids. A surviving
  // entry's activation variable occurs in its live records, so it maps.
  std::unordered_map<Var, std::vector<ClauseRef>> activation_new;
  activation_new.reserve(activation_clauses_.size());
  for (auto& entry : activation_clauses_) {
    if (entry.second.empty()) continue;
    activation_new[old2new[static_cast<std::size_t>(entry.first)]] =
        std::move(entry.second);
  }
  activation_clauses_ = std::move(activation_new);
  // Rebuild the per-variable state in the new numbering. old2new is
  // monotone over kept variables, so in-place compression is safe.
  for (Var v = 0; v < n_old; ++v) {
    const Var nv = old2new[static_cast<std::size_t>(v)];
    if (nv == cnf::kNoVar) continue;
    saved_phase_[static_cast<std::size_t>(nv)] =
        saved_phase_[static_cast<std::size_t>(v)];
    activity_[static_cast<std::size_t>(nv)] =
        activity_[static_cast<std::size_t>(v)];
  }
  saved_phase_.resize(static_cast<std::size_t>(n_new));
  activity_.resize(static_cast<std::size_t>(n_new));
  assigns_.assign(static_cast<std::size_t>(n_new), LBool::kUndef);
  var_data_.assign(static_cast<std::size_t>(n_new), {});
  seen_.assign(static_cast<std::size_t>(n_new), 0);
  // Root facts now live in the remapper's kFixed records.
  trail_.clear();
  propagate_head_ = 0;
  watches_.assign(2 * static_cast<std::size_t>(n_new), {});
  for (const ClauseRef cref : problem_clauses_) attach_watches(cref);
  for (const ClauseRef cref : learnt_clauses_) attach_watches(cref);
  order_.reset(n_new);
  for (Var v = 0; v < n_new; ++v) order_.insert(v);
  enum_order_.clear();
  enum_cursor_ = 0;
  return reclaimed;
}

// ---------------------------------------------------------------------------
// Main search
// ---------------------------------------------------------------------------

std::int64_t Solver::luby(std::int64_t i) {
  // 1-indexed Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  // If i == 2^k - 1, the value is 2^(k-1); otherwise recurse on the
  // position within the current subsequence.
  while (true) {
    std::int64_t k = 1;
    while ((1LL << k) - 1 < i) ++k;
    if (i == (1LL << k) - 1) return 1LL << (k - 1);
    i -= (1LL << (k - 1)) - 1;
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  return solve_entry(assumptions, nullptr, nullptr);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     const util::Deadline& deadline) {
  return solve_entry(assumptions, &deadline, nullptr);
}

Result Solver::enumerate(const ModelSink& sink,
                         const std::vector<Lit>& assumptions,
                         const util::Deadline* deadline) {
  return solve_entry(assumptions, deadline, &sink);
}

// Public solve boundary: translates assumptions into internal numbering
// (reviving dropped variables), runs the search, and maps the core back.
Result Solver::solve_entry(const std::vector<Lit>& assumptions,
                           const util::Deadline* deadline,
                           const ModelSink* sink) {
  core_.clear();
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) ensure_vars(a.var() + 1);
  const std::vector<Lit>* use = &assumptions;
  if (!remap_.identity()) {
    assump_tmp_.clear();
    for (const Lit a : assumptions) {
      switch (remap_.drop_kind(a.var())) {
        case Remapper::DropKind::kLive:
          assump_tmp_.push_back(remap_.to_internal(a));
          break;
        case Remapper::DropKind::kFixed:
          // A root-fixed assumption is vacuous or immediately refutable.
          if ((remap_.fixed_value(a.var()) ^ a.negated()) == LBool::kFalse) {
            core_.assign(1, a);
            return Result::kUnsat;
          }
          break;
        case Remapper::DropKind::kFree:
        case Remapper::DropKind::kEliminated:
          assump_tmp_.push_back(Lit(revive(a.var()), a.negated()));
          break;
      }
    }
    use = &assump_tmp_;
  }
  Result result;
  try {
    result = search_loop(*use, deadline, sink);
  } catch (...) {
    // OutOfBudgetError from arena growth unwinds mid-search; restore the
    // root level so the solver object stays consistent for callers that
    // catch and keep going.
    cancel_until(0);
    throw;
  }
  if (result == Result::kUnsat && !remap_.identity()) {
    for (Lit& l : core_) l = remap_.to_external(l);
  }
  return result;
}

Result Solver::search_loop(const std::vector<Lit>& assumptions,
                           const util::Deadline* deadline,
                           const ModelSink* sink) {
  if (!ok_) return Result::kUnsat;
  cancel_until(0);
  if (sink != nullptr) scramble_for_descent();
  if (propagate() != kNoReason) {
    ok_ = false;
    return Result::kUnsat;
  }

  // Rescale the learnt budget against the *current* problem size so that
  // clauses added incrementally between solves (e.g. MaxSAT relaxation
  // rounds) grow it; growth applied by earlier reductions is kept.
  max_learnts_ = std::max(
      max_learnts_,
      std::max<double>(1000.0,
                       static_cast<double>(problem_clauses_.size()) / 3.0));

  // Deadlines are polled on a decision + propagation counter (not only on
  // conflicts): conflict-light solves spend all their time propagating,
  // and the root-level propagate() above can already exceed a tight
  // deadline before the first conflict ever happens.
  std::uint64_t next_deadline_poll = stats_.decisions + stats_.propagations;

  std::int64_t restart_round = 0;
  std::vector<Lit> learnt;
  while (true) {
    const std::int64_t budget =
        luby(++restart_round) * options_.restart_base;
    std::int64_t conflicts_this_round = 0;
    while (true) {
      if (deadline != nullptr &&
          stats_.decisions + stats_.propagations >= next_deadline_poll) {
        next_deadline_poll =
            stats_.decisions + stats_.propagations + kDeadlinePollInterval;
        // Report conflicts to the request budget at the same cadence; a
        // conflict-limit trip cancels the budget token, which the
        // composed deadline observes right below.
        if (util::ResourceBudget* budget = util::current_budget()) {
          budget->add_conflicts(stats_.conflicts -
                                budget_conflicts_reported_);
          budget_conflicts_reported_ = stats_.conflicts;
        }
        if (deadline->expired()) {
          cancel_until(0);
          return Result::kUnknown;
        }
      }
      const ClauseRef conflict = propagate();
      if (conflict != kNoReason) {
        ++stats_.conflicts;
        ++conflicts_this_round;
        if (decision_level() == 0) {
          ok_ = false;
          return Result::kUnsat;  // conflict independent of assumptions
        }
        std::int32_t bt_level = 0;
        analyze(conflict, learnt, bt_level);
        // LBD must be computed before backtracking erases the levels.
        const std::uint32_t lbd = lbd_of_lits(learnt);
        // Never backtrack past the assumption prefix unexpectedly: the
        // learnt clause's asserting literal stays valid because bt_level
        // is computed from the clause itself.
        cancel_until(bt_level);
        // The backjump unassigned variables the enumeration cursor already
        // passed; rescan from the front (assigned prefixes skip fast).
        if (sink != nullptr) enum_cursor_ = 0;
        if (learnt.size() == 1) {
          if (decision_level() > 0) cancel_until(0);
          enqueue(learnt[0], kNoReason);
        } else {
          const ClauseRef cref =
              attach_new_clause(learnt, /*learnt=*/true, lbd);
          clause_bump_activity(cref);
          enqueue(learnt[0], cref);
        }
        var_decay_activity();
        clause_decay_activity();
        if (conflicts_this_round >= budget) {
          ++stats_.restarts;
          cancel_until(0);
          if (sink != nullptr) enum_cursor_ = 0;
          break;  // restart
        }
        continue;
      }
      if (static_cast<double>(learnt_clauses_.size()) >= max_learnts_) {
        max_learnts_ *= 1.3;
        reduce_db();
      }
      // Extend with assumptions, then decide.
      if (decision_level() < static_cast<std::int32_t>(assumptions.size())) {
        const Lit a =
            assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::kTrue) {
          new_decision_level();  // dummy level to keep indices aligned
          continue;
        }
        if (value(a) == LBool::kFalse) {
          analyze_final(a, core_);
          cancel_until(0);
          return Result::kUnsat;
        }
        ++stats_.decisions;
        new_decision_level();
        enqueue(a, kNoReason);
        continue;
      }
      const Lit next = sink != nullptr ? pick_enum_lit() : pick_branch_lit();
      if (next == cnf::kUndefLit) {
        extract_model();
        if (sink != nullptr) {
          ++stats_.enumerated_models;
          if (!(*sink)(model_)) {
            cancel_until(0);
            return Result::kSat;
          }
          // Phase-scrambled rapid restart. The backjump target is a
          // *random* level above the assumption prefix (CMSGen-style
          // random backtracking), biased deep (max of two uniform draws:
          // ~1/3 of the descent redone per model) — shallow cuts still
          // occur with quadratically decaying probability, so the search
          // keeps returning towards the root and no prefix gets pinned.
          // Decision order and phases are re-scrambled so the redone
          // suffix branches freshly, and the Luby round restarts so the
          // next harvest is immediate.
          const auto floor_level =
              static_cast<std::int32_t>(assumptions.size());
          std::int32_t target = floor_level;
          if (decision_level() > floor_level) {
            const auto span =
                static_cast<std::uint64_t>(decision_level() - floor_level);
            target += static_cast<std::int32_t>(
                std::max(rng_.next_below(span), rng_.next_below(span)));
          }
          cancel_until(target);
          scramble_for_descent();
          ++stats_.restarts;
          restart_round = 0;
          break;
        }
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
      new_decision_level();
      enqueue(next, kNoReason);
    }
  }
}

void Solver::extract_model() {
  const Var n_ext = remap_.num_external();
  model_.resize(static_cast<std::size_t>(n_ext));
  if (remap_.identity()) {
    for (Var v = 0; v < n_ext; ++v) {
      // Unassigned vars (disconnected) default to their saved phase.
      const LBool val = value(v);
      model_.set(v, val == LBool::kUndef
                        ? saved_phase_[static_cast<std::size_t>(v)]
                        : val == LBool::kTrue);
    }
    return;
  }
  for (Var ev = 0; ev < n_ext; ++ev) {
    bool bit = false;
    const Var iv = remap_.to_internal(ev);
    if (iv != cnf::kNoVar) {
      const LBool val = value(iv);
      bit = val == LBool::kUndef ? saved_phase_[static_cast<std::size_t>(iv)]
                                 : val == LBool::kTrue;
    } else if (remap_.drop_kind(ev) == Remapper::DropKind::kFixed) {
      bit = remap_.fixed_value(ev) == LBool::kTrue;
    }
    // kFree defaults to false; kEliminated is filled in below.
    model_.set(ev, bit);
  }
  // Extend eliminated variables in reverse elimination order (each
  // group's defining clauses mention, besides the variable itself, only
  // variables that were never eliminated or were eliminated later — both
  // have values by the time the group is reached). Default makes the
  // stored literal p false; flip it iff some defining clause would
  // otherwise be falsified.
  for (auto it = elim_groups_.rbegin(); it != elim_groups_.rend(); ++it) {
    if (it->revived) continue;
    const Lit p = it->lit;
    bool need_p = false;
    for (const Clause& c : it->clauses) {
      bool satisfied = false;
      for (const Lit l : c) {
        if (l.var() == p.var()) continue;
        if (model_.value(l)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) {
        need_p = true;
        break;
      }
    }
    model_.set(p.var(), need_p ? !p.negated() : p.negated());
  }
}

LBool Solver::fixed_value(Lit l) const {
  if (!remap_.identity()) {
    const Lit il = remap_.to_internal(l);
    if (!il.valid()) {
      // Dropped: kFixed carries its recorded root value; free/eliminated
      // variables are unconstrained.
      return remap_.fixed_value(l.var()) ^ l.negated();
    }
    l = il;
  }
  const auto v = static_cast<std::size_t>(l.var());
  if (var_data_[v].level != 0) return LBool::kUndef;
  return value(l);
}

const SolverStats& Solver::stats() const {
  stats_.arena_bytes = arena_.size() * sizeof(std::uint32_t);
  stats_.wasted_bytes = wasted_ * sizeof(std::uint32_t);
  stats_.max_learnts = max_learnts_;
  stats_.vars_allocated = static_cast<std::uint64_t>(num_vars());
  stats_.remapped_vars = remap_.remapped_vars();
  stats_.peak_rss_bytes = obs::peak_rss_bytes();
  return stats_;
}

Solver::~Solver() {
  // Fold this solver's lifetime counters into the process-wide registry.
  // Aggregating at destruction (rather than per-solve) keeps the hot path
  // free of registry lookups; the instrument references are cached after
  // the first solver dies.
  auto& registry = obs::Registry::global();
  static obs::Counter& decisions = registry.counter("sat_decisions_total");
  static obs::Counter& propagations =
      registry.counter("sat_propagations_total");
  static obs::Counter& conflicts = registry.counter("sat_conflicts_total");
  static obs::Counter& restarts = registry.counter("sat_restarts_total");
  static obs::Counter& models = registry.counter("sat_enumerated_models_total");
  static obs::Counter& solvers = registry.counter("sat_solvers_total");
  static obs::Gauge& arena_peak = registry.gauge("sat_arena_peak_bytes");
  decisions.add(stats_.decisions);
  propagations.add(stats_.propagations);
  conflicts.add(stats_.conflicts);
  restarts.add(stats_.restarts);
  models.add(stats_.enumerated_models);
  solvers.inc();
  arena_peak.update_max(
      static_cast<double>(arena_.size() * sizeof(std::uint32_t)));
}

}  // namespace manthan::sat
