#include "sat/solver.hpp"

#include <algorithm>
#include <cmath>

namespace manthan::sat {

// ---------------------------------------------------------------------------
// OrderHeap
// ---------------------------------------------------------------------------

void Solver::OrderHeap::insert(Var v) {
  if (contains(v)) return;
  if (v >= static_cast<Var>(index_.size())) index_.resize(v + 1, -1);
  index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1);
}

void Solver::OrderHeap::update(Var v) {
  if (contains(v)) sift_up(static_cast<std::size_t>(index_[v]));
}

Var Solver::OrderHeap::remove_max() {
  const Var top = heap_[0];
  heap_[0] = heap_.back();
  index_[heap_[0]] = 0;
  heap_.pop_back();
  index_[top] = -1;
  if (!heap_.empty()) sift_down(0);
  return top;
}

void Solver::OrderHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[parent];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

void Solver::OrderHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])]) {
      ++child;
    }
    if (activity_[static_cast<std::size_t>(heap_[child])] <=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[child];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

// ---------------------------------------------------------------------------
// Construction / variables / clauses
// ---------------------------------------------------------------------------

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed) {}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  var_data_.push_back({});
  saved_phase_.push_back(options_.default_polarity);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.resize(2 * assigns_.size());
  order_.grow(v + 1);
  order_.insert(v);
  return v;
}

void Solver::ensure_vars(Var n) {
  while (num_vars() < n) new_var();
}

bool Solver::add_clause(Clause clause) {
  if (!ok_) return false;
  assert(decision_level() == 0);
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  // Normalize: sort, drop duplicate/false literals, detect tautology.
  std::sort(clause.begin(), clause.end());
  std::vector<Lit> lits;
  Lit prev = cnf::kUndefLit;
  for (const Lit l : clause) {
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) == LBool::kFalse || l == prev) continue;     // falsified/dup
    lits.push_back(l);
    prev = l;
  }
  if (lits.empty()) {
    ok_ = false;
    return false;
  }
  if (lits.size() == 1) {
    enqueue(lits[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }
  attach_new_clause(std::move(lits), /*learnt=*/false);
  return true;
}

bool Solver::add_formula(const CnfFormula& formula) {
  ensure_vars(formula.num_vars());
  for (const Clause& c : formula.clauses()) {
    if (!add_clause(c)) return false;
  }
  return ok_;
}

Solver::ClauseRef Solver::attach_new_clause(std::vector<Lit> lits,
                                            bool learnt) {
  const ClauseRef cref = static_cast<ClauseRef>(clauses_.size());
  clauses_.push_back({std::move(lits), 0.0, learnt, false});
  (learnt ? learnt_clauses_ : problem_clauses_).push_back(cref);
  attach_watches(cref);
  return cref;
}

void Solver::attach_watches(ClauseRef cref) {
  const auto& lits = clauses_[static_cast<std::size_t>(cref)].lits;
  watches_[static_cast<std::size_t>((~lits[0]).code())].push_back(
      {cref, lits[1]});
  watches_[static_cast<std::size_t>((~lits[1]).code())].push_back(
      {cref, lits[0]});
}

void Solver::detach_watches(ClauseRef cref) {
  const auto& lits = clauses_[static_cast<std::size_t>(cref)].lits;
  for (int i = 0; i < 2; ++i) {
    auto& list = watches_[static_cast<std::size_t>((~lits[i]).code())];
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].cref == cref) {
        list[j] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Propagation and trail
// ---------------------------------------------------------------------------

void Solver::enqueue(Lit p, ClauseRef from) {
  assert(value(p) == LBool::kUndef);
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = cnf::lbool_from(!p.negated());
  var_data_[v] = {from, decision_level()};
  trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& watch_list = watches_[static_cast<std::size_t>(p.code())];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      if (value(w.blocker) == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      auto& clause = clauses_[static_cast<std::size_t>(w.cref)];
      auto& lits = clause.lits;
      // Ensure the false literal (~p) sits at position 1.
      const Lit not_p = ~p;
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      if (value(lits[0]) == LBool::kTrue) {
        watch_list[keep++] = {w.cref, lits[0]};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::size_t k = 2; k < lits.size(); ++k) {
        if (value(lits[k]) != LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>((~lits[1]).code())].push_back(
              {w.cref, lits[0]});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = {w.cref, lits[0]};
      if (value(lits[0]) == LBool::kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return w.cref;
      }
      enqueue(lits[0], w.cref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::cancel_until(std::int32_t target_level) {
  if (decision_level() <= target_level) return;
  const auto bound =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[static_cast<std::size_t>(v)] = !trail_[i].negated();
    assigns_[static_cast<std::size_t>(v)] = LBool::kUndef;
    if (!order_.contains(v)) order_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(cnf::kUndefLit);  // slot for the asserting literal
  std::int32_t counter = 0;
  Lit p = cnf::kUndefLit;
  std::size_t index = trail_.size();

  ClauseRef reason_ref = conflict;
  do {
    auto& clause = clauses_[static_cast<std::size_t>(reason_ref)];
    if (clause.learnt) clause_bump_activity(clause);
    const std::size_t start = (p == cnf::kUndefLit) ? 0 : 1;
    for (std::size_t i = start; i < clause.lits.size(); ++i) {
      const Lit q = clause.lits[i];
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level(q.var()) == 0) continue;
      seen_[v] = 1;
      var_bump_activity(q.var());
      if (level(q.var()) >= decision_level()) {
        ++counter;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    reason_ref = reason(p.var());
    --counter;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Self-subsumption minimization: drop literals implied by the rest.
  const std::vector<Lit> before_minimization = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (level(out_learnt[i].var()) & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason(out_learnt[i].var()) == kNoReason ||
        !literal_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[keep++] = out_learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt.resize(keep);
  stats_.learnt_literals += out_learnt.size();

  // Find the backtrack level = highest level among the non-asserting lits.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(out_learnt[i].var()) > level(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  for (const Lit l : before_minimization) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  // literal_redundant leaves extra seen_ marks for redundancy witnesses.
  for (const Lit l : analyze_stack_) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  analyze_stack_.clear();
}

bool Solver::literal_redundant(Lit p, std::uint32_t abstract_levels) {
  // Depth-first check that every path from p's reason leads to seen
  // literals (or level-0 facts). Conservative on levels via the bitmask.
  std::vector<Lit> stack{p};
  const std::size_t cleanup_mark = analyze_stack_.size();
  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    const ClauseRef r = reason(q.var());
    assert(r != kNoReason);
    const auto& lits = clauses_[static_cast<std::size_t>(r)].lits;
    for (std::size_t i = 1; i < lits.size(); ++i) {
      const Lit l = lits[i];
      const auto v = static_cast<std::size_t>(l.var());
      if (seen_[v] || level(l.var()) == 0) continue;
      if (reason(l.var()) == kNoReason ||
          ((1u << (level(l.var()) & 31)) & abstract_levels) == 0) {
        // Not redundant: undo the marks added during this check.
        for (std::size_t j = cleanup_mark; j < analyze_stack_.size(); ++j) {
          seen_[static_cast<std::size_t>(analyze_stack_[j].var())] = 0;
        }
        analyze_stack_.resize(cleanup_mark);
        return false;
      }
      seen_[v] = 1;
      analyze_stack_.push_back(l);
      stack.push_back(l);
    }
  }
  return true;
}

void Solver::analyze_final(Lit failed, std::vector<Lit>& out_core) {
  // `failed` is an assumption found false under the earlier assumptions.
  // Walk the implication graph backwards from ~failed; every decision
  // reached is an earlier assumption, and together with `failed` they form
  // an unsatisfiable subset (the core).
  out_core.clear();
  out_core.push_back(failed);
  if (decision_level() == 0) return;
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  const auto level0_end =
      static_cast<std::size_t>(trail_lim_.empty() ? 0 : trail_lim_[0]);
  for (std::size_t i = trail_.size(); i-- > level0_end;) {
    const Var v = trail_[i].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    seen_[static_cast<std::size_t>(v)] = 0;
    const ClauseRef r = reason(v);
    if (r == kNoReason) {
      // A decision above level 0 is an assumption (assumptions are the
      // only decisions made before analyze_final can run).
      out_core.push_back(trail_[i]);
    } else {
      const auto& lits = clauses_[static_cast<std::size_t>(r)].lits;
      for (std::size_t k = 1; k < lits.size(); ++k) {
        if (level(lits[k].var()) > 0) {
          seen_[static_cast<std::size_t>(lits[k].var())] = 1;
        }
      }
    }
  }
  seen_[static_cast<std::size_t>(failed.var())] = 0;
}

// ---------------------------------------------------------------------------
// Activities
// ---------------------------------------------------------------------------

void Solver::var_bump_activity(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void Solver::var_decay_activity() { var_inc_ /= options_.var_decay; }

void Solver::clause_bump_activity(ClauseData& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (const ClauseRef cref : learnt_clauses_) {
      clauses_[static_cast<std::size_t>(cref)].activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::clause_decay_activity() {
  clause_inc_ /= options_.clause_activity_decay;
}

// ---------------------------------------------------------------------------
// Decisions and clause DB reduction
// ---------------------------------------------------------------------------

Lit Solver::pick_branch_lit() {
  Var next = cnf::kNoVar;
  if (options_.random_branch_freq > 0.0 &&
      rng_.flip(options_.random_branch_freq)) {
    // Random decision variable (sampler diversification).
    const Var v = static_cast<Var>(rng_.next_below(
        static_cast<std::uint64_t>(num_vars())));
    if (value(v) == LBool::kUndef) next = v;
  }
  while (next == cnf::kNoVar || value(next) != LBool::kUndef) {
    if (order_.empty()) return cnf::kUndefLit;
    next = order_.remove_max();
  }
  bool polarity;
  if (options_.random_polarity) {
    const auto v = static_cast<std::size_t>(next);
    const double p_true = v < options_.polarity_bias.size()
                              ? options_.polarity_bias[v]
                              : 0.5;
    polarity = rng_.flip(p_true);
  } else {
    polarity = saved_phase_[static_cast<std::size_t>(next)];
  }
  return Lit(next, !polarity);
}

bool Solver::clause_locked(ClauseRef cref) const {
  const auto& lits = clauses_[static_cast<std::size_t>(cref)].lits;
  return value(lits[0]) == LBool::kTrue && reason(lits[0].var()) == cref;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              return clauses_[static_cast<std::size_t>(a)].activity <
                     clauses_[static_cast<std::size_t>(b)].activity;
            });
  const std::size_t target = learnt_clauses_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnt_clauses_.size());
  for (std::size_t i = 0; i < learnt_clauses_.size(); ++i) {
    const ClauseRef cref = learnt_clauses_[i];
    auto& clause = clauses_[static_cast<std::size_t>(cref)];
    const bool removable = clause.lits.size() > 2 && !clause_locked(cref) &&
                           i < target;
    if (removable) {
      detach_watches(cref);
      clause.removed = true;
      clause.lits.clear();
      clause.lits.shrink_to_fit();
    } else {
      kept.push_back(cref);
    }
  }
  learnt_clauses_ = std::move(kept);
}

// ---------------------------------------------------------------------------
// Main search
// ---------------------------------------------------------------------------

std::int64_t Solver::luby(std::int64_t i) {
  // 1-indexed Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  // If i == 2^k - 1, the value is 2^(k-1); otherwise recurse on the
  // position within the current subsequence.
  while (true) {
    std::int64_t k = 1;
    while ((1LL << k) - 1 < i) ++k;
    if (i == (1LL << k) - 1) return 1LL << (k - 1);
    i -= (1LL << (k - 1)) - 1;
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  return search_loop(assumptions, nullptr);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     const util::Deadline& deadline) {
  return search_loop(assumptions, &deadline);
}

Result Solver::search_loop(const std::vector<Lit>& assumptions,
                           const util::Deadline* deadline) {
  core_.clear();
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) ensure_vars(a.var() + 1);
  cancel_until(0);
  if (propagate() != kNoReason) {
    ok_ = false;
    return Result::kUnsat;
  }

  if (max_learnts_ <= 0.0) {
    max_learnts_ = std::max<double>(
        1000.0, static_cast<double>(problem_clauses_.size()) / 3.0);
  }

  std::int64_t restart_round = 0;
  std::vector<Lit> learnt;
  while (true) {
    const std::int64_t budget =
        luby(++restart_round) * options_.restart_base;
    std::int64_t conflicts_this_round = 0;
    while (true) {
      const ClauseRef conflict = propagate();
      if (conflict != kNoReason) {
        ++stats_.conflicts;
        ++conflicts_this_round;
        if (decision_level() == 0) {
          ok_ = false;
          return Result::kUnsat;  // conflict independent of assumptions
        }
        std::int32_t bt_level = 0;
        analyze(conflict, learnt, bt_level);
        // Never backtrack past the assumption prefix unexpectedly: the
        // learnt clause's asserting literal stays valid because bt_level
        // is computed from the clause itself.
        cancel_until(bt_level);
        if (learnt.size() == 1) {
          if (decision_level() > 0) cancel_until(0);
          enqueue(learnt[0], kNoReason);
        } else {
          const ClauseRef cref = attach_new_clause(learnt, /*learnt=*/true);
          clause_bump_activity(clauses_[static_cast<std::size_t>(cref)]);
          enqueue(learnt[0], cref);
        }
        var_decay_activity();
        clause_decay_activity();
        if ((stats_.conflicts & 1023) == 0 && deadline != nullptr &&
            deadline->expired()) {
          cancel_until(0);
          return Result::kUnknown;
        }
        if (conflicts_this_round >= budget) {
          ++stats_.restarts;
          cancel_until(0);
          break;  // restart
        }
        continue;
      }
      if (static_cast<double>(learnt_clauses_.size()) >= max_learnts_) {
        max_learnts_ *= 1.3;
        reduce_db();
      }
      // Extend with assumptions, then decide.
      if (decision_level() < static_cast<std::int32_t>(assumptions.size())) {
        const Lit a =
            assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::kTrue) {
          new_decision_level();  // dummy level to keep indices aligned
          continue;
        }
        if (value(a) == LBool::kFalse) {
          analyze_final(a, core_);
          cancel_until(0);
          return Result::kUnsat;
        }
        ++stats_.decisions;
        new_decision_level();
        enqueue(a, kNoReason);
        continue;
      }
      const Lit next = pick_branch_lit();
      if (next == cnf::kUndefLit) {
        extract_model();
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
      new_decision_level();
      enqueue(next, kNoReason);
    }
  }
}

void Solver::extract_model() {
  model_.resize(static_cast<std::size_t>(num_vars()));
  for (Var v = 0; v < num_vars(); ++v) {
    // Unassigned vars (disconnected) default to their saved phase.
    const LBool val = value(v);
    model_.set(v, val == LBool::kUndef
                      ? saved_phase_[static_cast<std::size_t>(v)]
                      : val == LBool::kTrue);
  }
}

LBool Solver::fixed_value(Lit l) const {
  const auto v = static_cast<std::size_t>(l.var());
  if (var_data_[v].level != 0) return LBool::kUndef;
  return value(l);
}

}  // namespace manthan::sat
