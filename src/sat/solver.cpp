#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <unordered_set>

namespace manthan::sat {

// ---------------------------------------------------------------------------
// OrderHeap
// ---------------------------------------------------------------------------

void Solver::OrderHeap::insert(Var v) {
  if (contains(v)) return;
  if (v >= static_cast<Var>(index_.size())) index_.resize(v + 1, -1);
  index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  sift_up(heap_.size() - 1);
}

void Solver::OrderHeap::update(Var v) {
  if (contains(v)) sift_up(static_cast<std::size_t>(index_[v]));
}

Var Solver::OrderHeap::remove_max() {
  const Var top = heap_[0];
  heap_[0] = heap_.back();
  index_[heap_[0]] = 0;
  heap_.pop_back();
  index_[top] = -1;
  if (!heap_.empty()) sift_down(0);
  return top;
}

void Solver::OrderHeap::sift_up(std::size_t i) {
  const Var v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[parent])] >=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[parent];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

void Solver::OrderHeap::sift_down(std::size_t i) {
  const Var v = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[child + 1])] >
            activity_[static_cast<std::size_t>(heap_[child])]) {
      ++child;
    }
    if (activity_[static_cast<std::size_t>(heap_[child])] <=
        activity_[static_cast<std::size_t>(v)]) {
      break;
    }
    heap_[i] = heap_[child];
    index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  index_[v] = static_cast<std::int32_t>(i);
}

// ---------------------------------------------------------------------------
// Construction / variables / clauses
// ---------------------------------------------------------------------------

Solver::Solver(SolverOptions options)
    : options_(options), rng_(options.seed) {}

float Solver::clause_activity(ClauseRef c) const {
  float a;
  std::memcpy(&a, &arena_[c + 2], sizeof(a));
  return a;
}

void Solver::set_clause_activity(ClauseRef c, float activity) {
  std::memcpy(&arena_[c + 2], &activity, sizeof(activity));
}

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  var_data_.push_back({});
  saved_phase_.push_back(options_.default_polarity);
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.resize(2 * assigns_.size());
  order_.grow(v + 1);
  order_.insert(v);
  return v;
}

Var Solver::reserve_vars(Var count) {
  const Var first = num_vars();
  for (Var i = 0; i < count; ++i) new_var();
  return first;
}

void Solver::ensure_vars(Var n) {
  while (num_vars() < n) new_var();
}

void Solver::reseed(std::uint64_t seed) { rng_ = util::Rng(seed); }

bool Solver::add_clause(const Clause& clause) {
  return add_clause_impl(clause, nullptr);
}

bool Solver::add_clause_impl(const Clause& clause, ClauseRef* attached) {
  if (attached != nullptr) *attached = kNoReason;
  if (!ok_) return false;
  assert(decision_level() == 0);
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  // Normalize into the scratch buffer: sort, drop duplicate/false
  // literals, detect tautology.
  add_tmp_.assign(clause.begin(), clause.end());
  std::sort(add_tmp_.begin(), add_tmp_.end());
  std::size_t keep = 0;
  Lit prev = cnf::kUndefLit;
  for (const Lit l : add_tmp_) {
    if (value(l) == LBool::kTrue || l == ~prev) return true;  // satisfied/taut
    if (value(l) == LBool::kFalse || l == prev) continue;     // falsified/dup
    add_tmp_[keep++] = l;
    prev = l;
  }
  add_tmp_.resize(keep);
  if (add_tmp_.empty()) {
    ok_ = false;
    return false;
  }
  if (add_tmp_.size() == 1) {
    enqueue(add_tmp_[0], kNoReason);
    ok_ = (propagate() == kNoReason);
    return ok_;
  }
  const ClauseRef cref = attach_new_clause(add_tmp_, /*learnt=*/false,
                                           /*lbd=*/0);
  if (attached != nullptr) *attached = cref;
  return true;
}

bool Solver::add_clause_activated(const Clause& clause, Lit activation) {
  Clause guarded;
  guarded.reserve(clause.size() + 1);
  guarded.assign(clause.begin(), clause.end());
  guarded.push_back(~activation);
  ClauseRef cref = kNoReason;
  const bool result = add_clause_impl(guarded, &cref);
  // Only arena records need indexing: simplified-away clauses (satisfied,
  // tautological, or collapsed to a unit) leave nothing to retire.
  if (cref != kNoReason) {
    activation_clauses_[activation.var()].push_back(cref);
  }
  return result;
}

std::size_t Solver::retire(Lit activation) {
  return retire(std::vector<Lit>{activation});
}

std::size_t Solver::retire(const std::vector<Lit>& activations) {
  assert(decision_level() == 0);
  if (activations.empty()) return 0;
  stats_.retired_activations += activations.size();
  std::size_t reclaimed = 0;
  // Reclaim the indexed guarded records first. A record can be a root
  // reason only if it propagated its own ~activation; those stay alive
  // (they are satisfied and harmless) rather than dangling as reasons.
  for (const Lit activation : activations) {
    const auto it = activation_clauses_.find(activation.var());
    if (it == activation_clauses_.end()) continue;
    for (const ClauseRef cref : it->second) {
      if (clause_removed(cref) || clause_is_root_reason(cref)) continue;
      remove_clause(cref);
      ++reclaimed;
    }
    activation_clauses_.erase(it);
  }
  // Make the retirements permanent. Any remaining clause mentioning a
  // retired ~activation — in particular every learnt clause that
  // recorded the guard during assumption solving — is satisfied forever
  // from here on.
  std::unordered_set<std::uint32_t> dead;
  dead.reserve(activations.size());
  for (const Lit activation : activations) {
    add_clause({~activation});
    dead.insert(static_cast<std::uint32_t>((~activation).code()));
  }
  // One sweep of the learnt database covers the whole batch.
  std::size_t keep = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const std::uint32_t size = clause_size(cref);
    const std::uint32_t base = lit_base(cref);
    bool mentions = false;
    for (std::uint32_t i = 0; i < size && !mentions; ++i) {
      mentions = dead.count(arena_[base + i]) != 0;
    }
    if (mentions && !clause_is_root_reason(cref)) {
      remove_clause(cref);
      ++reclaimed;
    } else {
      learnt_clauses_[keep++] = cref;
    }
  }
  learnt_clauses_.resize(keep);
  stats_.retired_clauses += reclaimed;
  maybe_garbage_collect();
  return reclaimed;
}

bool Solver::add_formula(const CnfFormula& formula) {
  ensure_vars(formula.num_vars());
  for (const Clause& c : formula.clauses()) {
    if (!add_clause(c)) return false;
  }
  return ok_;
}

Solver::ClauseRef Solver::attach_new_clause(const std::vector<Lit>& lits,
                                            bool learnt, std::uint32_t lbd) {
  assert(lits.size() >= 2);
  const ClauseRef cref = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
                   (learnt ? kLearntBit : 0u));
  if (learnt) {
    arena_.push_back(lbd);
    arena_.push_back(0u);  // activity 0.0f by bit pattern
  }
  for (const Lit l : lits) {
    arena_.push_back(static_cast<std::uint32_t>(l.code()));
  }
  (learnt ? learnt_clauses_ : problem_clauses_).push_back(cref);
  attach_watches(cref);
  return cref;
}

void Solver::attach_watches(ClauseRef cref) {
  const Lit l0 = clause_lit(cref, 0);
  const Lit l1 = clause_lit(cref, 1);
  if (clause_size(cref) == 2) {
    // Binary: the watcher's blocker is the implied literal.
    watches_[static_cast<std::size_t>((~l0).code())].push_back(
        {cref | kBinaryTag, l1});
    watches_[static_cast<std::size_t>((~l1).code())].push_back(
        {cref | kBinaryTag, l0});
  } else {
    watches_[static_cast<std::size_t>((~l0).code())].push_back({cref, l1});
    watches_[static_cast<std::size_t>((~l1).code())].push_back({cref, l0});
  }
}

void Solver::detach_watches(ClauseRef cref) {
  // Binary clauses carry the tag bit in their watcher entries (reduce_db
  // spares binaries, but retire() reclaims guarded binaries too).
  const ClauseRef key =
      clause_size(cref) == 2 ? (cref | kBinaryTag) : cref;
  for (int i = 0; i < 2; ++i) {
    const Lit watched = clause_lit(cref, static_cast<std::uint32_t>(i));
    auto& list = watches_[static_cast<std::size_t>((~watched).code())];
    for (std::size_t j = 0; j < list.size(); ++j) {
      if (list[j].cref == key) {
        list[j] = list.back();
        list.pop_back();
        break;
      }
    }
  }
}

bool Solver::clause_is_root_reason(ClauseRef cref) const {
  // Long-clause propagation keeps the implied literal at position 0;
  // binary reasons may have it at either position.
  for (std::uint32_t i = 0; i < 2; ++i) {
    const Lit l = clause_lit(cref, i);
    if (value(l) == LBool::kTrue && reason(l.var()) == cref) return true;
  }
  return false;
}

void Solver::remove_clause(ClauseRef cref) {
  detach_watches(cref);
  wasted_ += record_words(cref);
  arena_[cref] |= kMarkBit;
}

// ---------------------------------------------------------------------------
// Propagation and trail
// ---------------------------------------------------------------------------

void Solver::enqueue(Lit p, ClauseRef from) {
  assert(value(p) == LBool::kUndef);
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = cnf::lbool_from(!p.negated());
  var_data_[v] = {from, decision_level()};
  trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const Lit p = trail_[propagate_head_++];
    ++stats_.propagations;
    const auto p_code = static_cast<std::size_t>(p.code());
    auto& watch_list = watches_[p_code];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < watch_list.size(); ++i) {
      const Watcher w = watch_list[i];
      const LBool blocker_value = value(w.blocker);
      if (blocker_value == LBool::kTrue) {
        watch_list[keep++] = w;
        continue;
      }
      if ((w.cref & kBinaryTag) != 0) {
        // Binary fast path: the blocker is the implied literal, so the
        // arena is never touched while propagating over binaries.
        watch_list[keep++] = w;
        if (blocker_value == LBool::kFalse) {
          // Conflict: keep the remaining watchers and bail out.
          for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
            watch_list[keep++] = watch_list[j];
          }
          watch_list.resize(keep);
          propagate_head_ = trail_.size();
          return w.cref & ~kBinaryTag;
        }
        enqueue(w.blocker, w.cref & ~kBinaryTag);
        continue;
      }
      const std::uint32_t header = arena_[w.cref];
      std::uint32_t* lits = &arena_[w.cref + 1 + ((header & kLearntBit) << 1)];
      const std::uint32_t size = header >> kSizeShift;
      // Ensure the false literal (~p) sits at position 1.
      const auto not_p = static_cast<std::uint32_t>((~p).code());
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      const Lit first = Lit::from_code(static_cast<std::int32_t>(lits[0]));
      if (value(first) == LBool::kTrue) {
        watch_list[keep++] = {w.cref, first};
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(Lit::from_code(static_cast<std::int32_t>(lits[k]))) !=
            LBool::kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>(lits[1] ^ 1u)].push_back(
              {w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;
      // Clause is unit or conflicting.
      watch_list[keep++] = {w.cref, first};
      if (value(first) == LBool::kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < watch_list.size(); ++j) {
          watch_list[keep++] = watch_list[j];
        }
        watch_list.resize(keep);
        propagate_head_ = trail_.size();
        return w.cref;
      }
      enqueue(first, w.cref);
    }
    watch_list.resize(keep);
  }
  return kNoReason;
}

void Solver::cancel_until(std::int32_t target_level) {
  if (decision_level() <= target_level) return;
  const auto bound =
      static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const Var v = trail_[i].var();
    saved_phase_[static_cast<std::size_t>(v)] = !trail_[i].negated();
    assigns_[static_cast<std::size_t>(v)] = LBool::kUndef;
    if (!order_.contains(v)) order_.insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  propagate_head_ = trail_.size();
}

// ---------------------------------------------------------------------------
// Conflict analysis
// ---------------------------------------------------------------------------

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     std::int32_t& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(cnf::kUndefLit);  // slot for the asserting literal
  std::int32_t counter = 0;
  Lit p = cnf::kUndefLit;
  std::size_t index = trail_.size();

  ClauseRef reason_ref = conflict;
  do {
    if (clause_learnt(reason_ref)) {
      clause_bump_activity(reason_ref);
      // Glucose: keep the best (lowest) LBD the clause ever exhibits.
      const std::uint32_t lbd = lbd_of_clause(reason_ref);
      if (lbd < clause_lbd(reason_ref)) set_clause_lbd(reason_ref, lbd);
    }
    const std::uint32_t size = clause_size(reason_ref);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit q = clause_lit(reason_ref, i);
      if (q == p) continue;  // the literal this reason clause implied
      const auto v = static_cast<std::size_t>(q.var());
      if (seen_[v] || level(q.var()) == 0) continue;
      seen_[v] = 1;
      var_bump_activity(q.var());
      if (level(q.var()) >= decision_level()) {
        ++counter;
      } else {
        out_learnt.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    reason_ref = reason(p.var());
    --counter;
  } while (counter > 0);
  out_learnt[0] = ~p;

  // Self-subsumption minimization: drop literals implied by the rest.
  const std::vector<Lit> before_minimization = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    abstract_levels |= 1u << (level(out_learnt[i].var()) & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    if (reason(out_learnt[i].var()) == kNoReason ||
        !literal_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[keep++] = out_learnt[i];
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt.resize(keep);
  stats_.learnt_literals += out_learnt.size();

  // Find the backtrack level = highest level among the non-asserting lits.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (level(out_learnt[i].var()) > level(out_learnt[max_i].var())) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = level(out_learnt[1].var());
  }

  for (const Lit l : before_minimization) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  // literal_redundant leaves extra seen_ marks for redundancy witnesses.
  for (const Lit l : analyze_stack_) {
    seen_[static_cast<std::size_t>(l.var())] = 0;
  }
  analyze_stack_.clear();
}

bool Solver::literal_redundant(Lit p, std::uint32_t abstract_levels) {
  // Depth-first check that every path from p's reason leads to seen
  // literals (or level-0 facts). Conservative on levels via the bitmask.
  std::vector<Lit> stack{p};
  const std::size_t cleanup_mark = analyze_stack_.size();
  while (!stack.empty()) {
    const Lit q = stack.back();
    stack.pop_back();
    const ClauseRef r = reason(q.var());
    assert(r != kNoReason);
    const std::uint32_t size = clause_size(r);
    for (std::uint32_t i = 0; i < size; ++i) {
      const Lit l = clause_lit(r, i);
      if (l.var() == q.var()) continue;  // the implied literal itself
      const auto v = static_cast<std::size_t>(l.var());
      if (seen_[v] || level(l.var()) == 0) continue;
      if (reason(l.var()) == kNoReason ||
          ((1u << (level(l.var()) & 31)) & abstract_levels) == 0) {
        // Not redundant: undo the marks added during this check.
        for (std::size_t j = cleanup_mark; j < analyze_stack_.size(); ++j) {
          seen_[static_cast<std::size_t>(analyze_stack_[j].var())] = 0;
        }
        analyze_stack_.resize(cleanup_mark);
        return false;
      }
      seen_[v] = 1;
      analyze_stack_.push_back(l);
      stack.push_back(l);
    }
  }
  return true;
}

void Solver::analyze_final(Lit failed, std::vector<Lit>& out_core) {
  // `failed` is an assumption found false under the earlier assumptions.
  // Walk the implication graph backwards from ~failed; every decision
  // reached is an earlier assumption, and together with `failed` they form
  // an unsatisfiable subset (the core).
  out_core.clear();
  out_core.push_back(failed);
  if (decision_level() == 0) return;
  seen_[static_cast<std::size_t>(failed.var())] = 1;
  const auto level0_end =
      static_cast<std::size_t>(trail_lim_.empty() ? 0 : trail_lim_[0]);
  for (std::size_t i = trail_.size(); i-- > level0_end;) {
    const Var v = trail_[i].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    seen_[static_cast<std::size_t>(v)] = 0;
    const ClauseRef r = reason(v);
    if (r == kNoReason) {
      // A decision above level 0 is an assumption (assumptions are the
      // only decisions made before analyze_final can run).
      out_core.push_back(trail_[i]);
    } else {
      const std::uint32_t size = clause_size(r);
      for (std::uint32_t k = 0; k < size; ++k) {
        const Lit l = clause_lit(r, k);
        if (l.var() == v) continue;  // the implied literal itself
        if (level(l.var()) > 0) {
          seen_[static_cast<std::size_t>(l.var())] = 1;
        }
      }
    }
  }
  seen_[static_cast<std::size_t>(failed.var())] = 0;
}

// ---------------------------------------------------------------------------
// Activities and LBD
// ---------------------------------------------------------------------------

void Solver::var_bump_activity(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  order_.update(v);
}

void Solver::var_decay_activity() { var_inc_ /= options_.var_decay; }

void Solver::clause_bump_activity(ClauseRef cref) {
  const float bumped =
      clause_activity(cref) + static_cast<float>(clause_inc_);
  set_clause_activity(cref, bumped);
  if (bumped > 1e20f) {
    for (const ClauseRef c : learnt_clauses_) {
      set_clause_activity(c, clause_activity(c) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::clause_decay_activity() {
  clause_inc_ /= options_.clause_activity_decay;
}

/// Number of distinct (non-root) decision levels among `size` literals
/// produced by `lit_at(i)` — the literal-block distance.
template <typename LitAt>
std::uint32_t Solver::lbd_of(std::uint32_t size, LitAt lit_at) {
  if (lbd_stamp_.size() <= static_cast<std::size_t>(decision_level())) {
    lbd_stamp_.resize(static_cast<std::size_t>(decision_level()) + 1, 0);
  }
  ++lbd_stamp_counter_;
  std::uint32_t lbd = 0;
  for (std::uint32_t i = 0; i < size; ++i) {
    const auto lev = static_cast<std::size_t>(level(lit_at(i).var()));
    if (lev == 0) continue;
    if (lbd_stamp_[lev] != lbd_stamp_counter_) {
      lbd_stamp_[lev] = lbd_stamp_counter_;
      ++lbd;
    }
  }
  return lbd;
}

std::uint32_t Solver::lbd_of_lits(const std::vector<Lit>& lits) {
  return lbd_of(static_cast<std::uint32_t>(lits.size()),
                [&](std::uint32_t i) { return lits[i]; });
}

std::uint32_t Solver::lbd_of_clause(ClauseRef cref) {
  return lbd_of(clause_size(cref),
                [&](std::uint32_t i) { return clause_lit(cref, i); });
}

// ---------------------------------------------------------------------------
// Decisions and clause DB reduction
// ---------------------------------------------------------------------------

bool Solver::pick_polarity(Var v) {
  if (options_.random_polarity) {
    const auto i = static_cast<std::size_t>(v);
    const double p_true =
        i < options_.polarity_bias.size() ? options_.polarity_bias[i] : 0.5;
    return rng_.flip(p_true);
  }
  return saved_phase_[static_cast<std::size_t>(v)];
}

Lit Solver::pick_branch_lit() {
  Var next = cnf::kNoVar;
  if (options_.random_branch_freq > 0.0 &&
      rng_.flip(options_.random_branch_freq)) {
    // Random decision variable (sampler diversification).
    const Var v = static_cast<Var>(rng_.next_below(
        static_cast<std::uint64_t>(num_vars())));
    if (value(v) == LBool::kUndef) next = v;
  }
  while (next == cnf::kNoVar || value(next) != LBool::kUndef) {
    if (order_.empty()) return cnf::kUndefLit;
    next = order_.remove_max();
  }
  return Lit(next, !pick_polarity(next));
}

Lit Solver::pick_enum_lit() {
  // Enumeration decisions scan the shuffled permutation instead of the
  // VSIDS heap: the heap costs O(log n) per decision plus a full
  // reinsert-and-drain cycle per restart, which dominates descents on
  // model-rich formulas where every model needs a root restart.
  while (enum_cursor_ < enum_order_.size()) {
    const Var v = enum_order_[enum_cursor_];
    if (value(v) == LBool::kUndef) return Lit(v, !pick_polarity(v));
    ++enum_cursor_;
  }
  return cnf::kUndefLit;
}

void Solver::scramble_for_descent() {
  // Fisher-Yates over the decision permutation: each descent branches in
  // a fresh random order, decorrelating successive models.
  enum_order_.resize(static_cast<std::size_t>(num_vars()));
  for (Var v = 0; v < num_vars(); ++v) {
    enum_order_[static_cast<std::size_t>(v)] = v;
  }
  for (std::size_t i = enum_order_.size(); i > 1; --i) {
    std::swap(enum_order_[i - 1], enum_order_[rng_.next_below(i)]);
  }
  enum_cursor_ = 0;
  if (!options_.random_polarity) {
    // Phase scramble: saved phases would replay the previous model.
    for (std::size_t v = 0; v < saved_phase_.size(); ++v) {
      saved_phase_[v] = rng_.flip();
    }
  }
}

bool Solver::clause_locked(ClauseRef cref) const {
  // Valid for clauses of size >= 3 only: long-clause propagation keeps the
  // implied literal at position 0. (A binary reason may have it at either
  // position, but binaries are never removal candidates.)
  const Lit first = clause_lit(cref, 0);
  return value(first) == LBool::kTrue && reason(first.var()) == cref;
}

void Solver::reduce_db() {
  ++stats_.db_reductions;
  // Record the LBD tier census before removal.
  stats_.tier_core = stats_.tier_mid = stats_.tier_local = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const std::uint32_t lbd = clause_lbd(cref);
    if (lbd <= kCoreLbd) {
      ++stats_.tier_core;
    } else if (lbd <= kMidLbd) {
      ++stats_.tier_mid;
    } else {
      ++stats_.tier_local;
    }
  }
  // Worst clauses first: highest LBD, ties broken by lowest activity.
  // Core clauses (LBD <= kCoreLbd) sort to the back and survive.
  std::sort(learnt_clauses_.begin(), learnt_clauses_.end(),
            [&](ClauseRef a, ClauseRef b) {
              const std::uint32_t la = clause_lbd(a);
              const std::uint32_t lb = clause_lbd(b);
              if (la != lb) return la > lb;
              return clause_activity(a) < clause_activity(b);
            });
  const std::size_t target = learnt_clauses_.size() / 2;
  std::vector<ClauseRef> kept;
  kept.reserve(learnt_clauses_.size());
  std::size_t removed = 0;
  for (const ClauseRef cref : learnt_clauses_) {
    const bool removable = removed < target && clause_size(cref) > 2 &&
                           clause_lbd(cref) > kCoreLbd &&
                           !clause_locked(cref);
    if (removable) {
      remove_clause(cref);
      ++removed;
    } else {
      kept.push_back(cref);
    }
  }
  learnt_clauses_ = std::move(kept);
  maybe_garbage_collect();
}

// ---------------------------------------------------------------------------
// Arena garbage collection
// ---------------------------------------------------------------------------

void Solver::maybe_garbage_collect() {
  // Mark-compact once removed records waste more than ~20% of the arena.
  if (wasted_ > 0 && wasted_ * 5 > arena_.size()) garbage_collect();
}

void Solver::garbage_collect() {
  ++stats_.gc_runs;
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wasted_);
  // Copy a live record on first visit and leave a forwarding address in
  // its old header so every other root referencing it follows along.
  const auto reloc = [&](ClauseRef& cref) {
    if ((arena_[cref] & kRelocBit) != 0) {
      cref = arena_[cref + 1];
      return;
    }
    assert(!clause_removed(cref));
    const std::uint32_t words = record_words(cref);
    const auto moved = static_cast<ClauseRef>(to.size());
    to.insert(to.end(), arena_.begin() + cref, arena_.begin() + cref + words);
    arena_[cref] |= kRelocBit;
    // Forwarding address in the word after the header (the LBD slot for
    // learnt clauses, lit0 for problem clauses — the record is dead).
    arena_[cref + 1] = moved;
    cref = moved;
  };
  for (auto& list : watches_) {
    for (Watcher& w : list) {
      ClauseRef untagged = w.cref & ~kBinaryTag;
      reloc(untagged);
      w.cref = untagged | (w.cref & kBinaryTag);
    }
  }
  // Reasons of assigned variables are live roots; reasons of unassigned
  // variables are stale and must not survive as dangling offsets.
  for (const Lit l : trail_) {
    ClauseRef& r = var_data_[static_cast<std::size_t>(l.var())].reason;
    if (r != kNoReason) reloc(r);
  }
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == LBool::kUndef) {
      var_data_[static_cast<std::size_t>(v)].reason = kNoReason;
    }
  }
  for (auto& entry : activation_clauses_) {
    for (ClauseRef& cref : entry.second) reloc(cref);
  }
  // The clause lists may still carry records retired between reductions;
  // they are dead (detached, marked) and get swept here rather than paying
  // an O(list) erase at every retire().
  const auto sweep = [&](std::vector<ClauseRef>& list) {
    std::size_t keep = 0;
    for (ClauseRef cref : list) {
      if ((arena_[cref] & (kMarkBit | kRelocBit)) == kMarkBit) continue;
      reloc(cref);
      list[keep++] = cref;
    }
    list.resize(keep);
  };
  sweep(problem_clauses_);
  sweep(learnt_clauses_);
  arena_ = std::move(to);
  wasted_ = 0;
}

// ---------------------------------------------------------------------------
// Main search
// ---------------------------------------------------------------------------

std::int64_t Solver::luby(std::int64_t i) {
  // 1-indexed Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  // If i == 2^k - 1, the value is 2^(k-1); otherwise recurse on the
  // position within the current subsequence.
  while (true) {
    std::int64_t k = 1;
    while ((1LL << k) - 1 < i) ++k;
    if (i == (1LL << k) - 1) return 1LL << (k - 1);
    i -= (1LL << (k - 1)) - 1;
  }
}

Result Solver::solve(const std::vector<Lit>& assumptions) {
  return search_loop(assumptions, nullptr);
}

Result Solver::solve(const std::vector<Lit>& assumptions,
                     const util::Deadline& deadline) {
  return search_loop(assumptions, &deadline);
}

Result Solver::enumerate(const ModelSink& sink,
                         const std::vector<Lit>& assumptions,
                         const util::Deadline* deadline) {
  return search_loop(assumptions, deadline, &sink);
}

Result Solver::search_loop(const std::vector<Lit>& assumptions,
                           const util::Deadline* deadline,
                           const ModelSink* sink) {
  core_.clear();
  if (!ok_) return Result::kUnsat;
  for (const Lit a : assumptions) ensure_vars(a.var() + 1);
  cancel_until(0);
  if (sink != nullptr) scramble_for_descent();
  if (propagate() != kNoReason) {
    ok_ = false;
    return Result::kUnsat;
  }

  // Rescale the learnt budget against the *current* problem size so that
  // clauses added incrementally between solves (e.g. MaxSAT relaxation
  // rounds) grow it; growth applied by earlier reductions is kept.
  max_learnts_ = std::max(
      max_learnts_,
      std::max<double>(1000.0,
                       static_cast<double>(problem_clauses_.size()) / 3.0));

  // Deadlines are polled on a decision + propagation counter (not only on
  // conflicts): conflict-light solves spend all their time propagating,
  // and the root-level propagate() above can already exceed a tight
  // deadline before the first conflict ever happens.
  std::uint64_t next_deadline_poll = stats_.decisions + stats_.propagations;

  std::int64_t restart_round = 0;
  std::vector<Lit> learnt;
  while (true) {
    const std::int64_t budget =
        luby(++restart_round) * options_.restart_base;
    std::int64_t conflicts_this_round = 0;
    while (true) {
      if (deadline != nullptr &&
          stats_.decisions + stats_.propagations >= next_deadline_poll) {
        next_deadline_poll =
            stats_.decisions + stats_.propagations + kDeadlinePollInterval;
        if (deadline->expired()) {
          cancel_until(0);
          return Result::kUnknown;
        }
      }
      const ClauseRef conflict = propagate();
      if (conflict != kNoReason) {
        ++stats_.conflicts;
        ++conflicts_this_round;
        if (decision_level() == 0) {
          ok_ = false;
          return Result::kUnsat;  // conflict independent of assumptions
        }
        std::int32_t bt_level = 0;
        analyze(conflict, learnt, bt_level);
        // LBD must be computed before backtracking erases the levels.
        const std::uint32_t lbd = lbd_of_lits(learnt);
        // Never backtrack past the assumption prefix unexpectedly: the
        // learnt clause's asserting literal stays valid because bt_level
        // is computed from the clause itself.
        cancel_until(bt_level);
        // The backjump unassigned variables the enumeration cursor already
        // passed; rescan from the front (assigned prefixes skip fast).
        if (sink != nullptr) enum_cursor_ = 0;
        if (learnt.size() == 1) {
          if (decision_level() > 0) cancel_until(0);
          enqueue(learnt[0], kNoReason);
        } else {
          const ClauseRef cref =
              attach_new_clause(learnt, /*learnt=*/true, lbd);
          clause_bump_activity(cref);
          enqueue(learnt[0], cref);
        }
        var_decay_activity();
        clause_decay_activity();
        if (conflicts_this_round >= budget) {
          ++stats_.restarts;
          cancel_until(0);
          if (sink != nullptr) enum_cursor_ = 0;
          break;  // restart
        }
        continue;
      }
      if (static_cast<double>(learnt_clauses_.size()) >= max_learnts_) {
        max_learnts_ *= 1.3;
        reduce_db();
      }
      // Extend with assumptions, then decide.
      if (decision_level() < static_cast<std::int32_t>(assumptions.size())) {
        const Lit a =
            assumptions[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::kTrue) {
          new_decision_level();  // dummy level to keep indices aligned
          continue;
        }
        if (value(a) == LBool::kFalse) {
          analyze_final(a, core_);
          cancel_until(0);
          return Result::kUnsat;
        }
        ++stats_.decisions;
        new_decision_level();
        enqueue(a, kNoReason);
        continue;
      }
      const Lit next = sink != nullptr ? pick_enum_lit() : pick_branch_lit();
      if (next == cnf::kUndefLit) {
        extract_model();
        if (sink != nullptr) {
          ++stats_.enumerated_models;
          if (!(*sink)(model_)) {
            cancel_until(0);
            return Result::kSat;
          }
          // Phase-scrambled rapid restart. The backjump target is a
          // *random* level above the assumption prefix (CMSGen-style
          // random backtracking), biased deep (max of two uniform draws:
          // ~1/3 of the descent redone per model) — shallow cuts still
          // occur with quadratically decaying probability, so the search
          // keeps returning towards the root and no prefix gets pinned.
          // Decision order and phases are re-scrambled so the redone
          // suffix branches freshly, and the Luby round restarts so the
          // next harvest is immediate.
          const auto floor_level =
              static_cast<std::int32_t>(assumptions.size());
          std::int32_t target = floor_level;
          if (decision_level() > floor_level) {
            const auto span =
                static_cast<std::uint64_t>(decision_level() - floor_level);
            target += static_cast<std::int32_t>(
                std::max(rng_.next_below(span), rng_.next_below(span)));
          }
          cancel_until(target);
          scramble_for_descent();
          ++stats_.restarts;
          restart_round = 0;
          break;
        }
        cancel_until(0);
        return Result::kSat;
      }
      ++stats_.decisions;
      new_decision_level();
      enqueue(next, kNoReason);
    }
  }
}

void Solver::extract_model() {
  model_.resize(static_cast<std::size_t>(num_vars()));
  for (Var v = 0; v < num_vars(); ++v) {
    // Unassigned vars (disconnected) default to their saved phase.
    const LBool val = value(v);
    model_.set(v, val == LBool::kUndef
                      ? saved_phase_[static_cast<std::size_t>(v)]
                      : val == LBool::kTrue);
  }
}

LBool Solver::fixed_value(Lit l) const {
  const auto v = static_cast<std::size_t>(l.var());
  if (var_data_[v].level != 0) return LBool::kUndef;
  return value(l);
}

const SolverStats& Solver::stats() const {
  stats_.arena_bytes = arena_.size() * sizeof(std::uint32_t);
  stats_.wasted_bytes = wasted_ * sizeof(std::uint32_t);
  stats_.max_learnts = max_learnts_;
  stats_.vars_allocated = static_cast<std::uint64_t>(num_vars());
  return stats_;
}

}  // namespace manthan::sat
