// Variable remapping between a solver's stable external numbering and its
// compacted internal numbering.
//
// Long-lived incremental sessions (the persistent verify solver, the
// shared φ/MaxSAT solver, the synthesis daemon) allocate variables
// forever: activation guards, MaxSAT selectors, and Tseitin cone
// variables become dead after retirement, but every per-variable array
// (assignments, watches, activity, phases) and every model extraction
// keeps paying for the whole historical range.
//
// The Remapper decouples the two numberings. Clients keep talking to the
// solver in *external* ids — the ids new_var() handed out, stable for the
// lifetime of the solver — while Solver::compact() renumbers the live
// variables densely and records what happened to everything it dropped:
//
//   * kFixed:       the variable was assigned at the root (e.g. a retired
//                   activation literal); its value is recorded and
//                   substituted into later clauses and models,
//   * kFree:        the variable occurred in no live clause; if a later
//                   clause or assumption mentions it again it is revived
//                   as a fresh internal variable (this is what makes
//                   IncrementalMaxSat's recycled round variables safe),
//   * kEliminated:  removed by bounded variable elimination during
//                   inprocessing; the solver keeps the defining clauses
//                   and re-adds them on revival, and model extraction
//                   recomputes the variable's value from them.
//
// Translation is identity (and branch-free) until the first elimination
// or compaction actually diverges the numberings.
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/lit.hpp"

namespace manthan::sat {

class Solver;

class Remapper {
 public:
  /// What became of an external variable that has no internal slot.
  enum class DropKind : std::uint8_t { kLive, kFixed, kFree, kEliminated };

  /// External variables handed out by Solver::new_var() so far.
  cnf::Var num_external() const { return num_external_; }

  /// True while external and internal numbering coincide (no compaction
  /// or elimination has diverged them yet).
  bool identity() const { return identity_; }

  /// Internal variable backing external `v`, or cnf::kNoVar if dropped.
  cnf::Var to_internal(cnf::Var v) const {
    if (identity_) return v;
    return ext2int_[static_cast<std::size_t>(v)];
  }
  /// Internal literal backing external `l`; cnf::kUndefLit if dropped.
  cnf::Lit to_internal(cnf::Lit l) const {
    if (identity_) return l;
    const cnf::Var iv = ext2int_[static_cast<std::size_t>(l.var())];
    if (iv == cnf::kNoVar) return cnf::kUndefLit;
    return cnf::Lit(iv, l.negated());
  }
  /// External variable behind internal `v`; cnf::kNoVar for orphaned
  /// internal slots awaiting compaction.
  cnf::Var to_external(cnf::Var v) const {
    if (identity_) return v;
    return int2ext_[static_cast<std::size_t>(v)];
  }
  cnf::Lit to_external(cnf::Lit l) const {
    if (identity_) return l;
    return cnf::Lit(int2ext_[static_cast<std::size_t>(l.var())], l.negated());
  }

  DropKind drop_kind(cnf::Var external) const {
    if (identity_ || ext2int_[static_cast<std::size_t>(external)] != cnf::kNoVar)
      return DropKind::kLive;
    return dropped_[static_cast<std::size_t>(external)];
  }
  bool is_live(cnf::Var external) const {
    return drop_kind(external) == DropKind::kLive;
  }
  bool is_eliminated(cnf::Var external) const {
    return drop_kind(external) == DropKind::kEliminated;
  }
  /// Root value of a kFixed drop; kUndef for every other kind.
  cnf::LBool fixed_value(cnf::Var external) const {
    if (drop_kind(external) != DropKind::kFixed) return cnf::LBool::kUndef;
    return fixed_value_[static_cast<std::size_t>(external)];
  }

  /// Internal variable slots reclaimed by compactions so far (cumulative).
  std::uint64_t remapped_vars() const { return remapped_vars_; }

 private:
  friend class Solver;

  /// Leave identity mode: materialize the maps for `internal` current
  /// variables (external count already tracked).
  void materialize(cnf::Var internal) {
    if (!identity_) return;
    identity_ = false;
    ext2int_.resize(static_cast<std::size_t>(num_external_), cnf::kNoVar);
    for (cnf::Var v = 0; v < num_external_; ++v) {
      ext2int_[static_cast<std::size_t>(v)] = v < internal ? v : cnf::kNoVar;
    }
    int2ext_.resize(static_cast<std::size_t>(internal));
    for (cnf::Var v = 0; v < internal; ++v) {
      int2ext_[static_cast<std::size_t>(v)] = v;
    }
    dropped_.resize(static_cast<std::size_t>(num_external_), DropKind::kLive);
    fixed_value_.resize(static_cast<std::size_t>(num_external_),
                        cnf::LBool::kUndef);
  }

  void push_var(cnf::Var internal) {
    ++num_external_;
    if (identity_) return;
    ext2int_.push_back(internal);
    dropped_.push_back(DropKind::kLive);
    fixed_value_.push_back(cnf::LBool::kUndef);
    bind(num_external_ - 1, internal);
  }

  /// (Re)bind external `ev` to internal `iv` (revival or fresh alloc).
  void bind(cnf::Var ev, cnf::Var iv) {
    ext2int_[static_cast<std::size_t>(ev)] = iv;
    dropped_[static_cast<std::size_t>(ev)] = DropKind::kLive;
    if (static_cast<std::size_t>(iv) >= int2ext_.size()) {
      int2ext_.resize(static_cast<std::size_t>(iv) + 1, cnf::kNoVar);
    }
    int2ext_[static_cast<std::size_t>(iv)] = ev;
  }

  void drop(cnf::Var ev, DropKind kind,
            cnf::LBool value = cnf::LBool::kUndef) {
    const auto e = static_cast<std::size_t>(ev);
    const cnf::Var iv = ext2int_[e];
    if (iv != cnf::kNoVar) int2ext_[static_cast<std::size_t>(iv)] = cnf::kNoVar;
    ext2int_[e] = cnf::kNoVar;
    dropped_[e] = kind;
    fixed_value_[e] = value;
  }

  bool identity_ = true;
  cnf::Var num_external_ = 0;
  std::vector<cnf::Var> ext2int_;
  std::vector<cnf::Var> int2ext_;
  std::vector<DropKind> dropped_;
  std::vector<cnf::LBool> fixed_value_;
  std::uint64_t remapped_vars_ = 0;
};

}  // namespace manthan::sat
