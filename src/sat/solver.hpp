// Conflict-driven clause-learning (CDCL) SAT solver.
//
// This is the oracle behind every reasoning step of the library:
//   * CheckSat queries of the Manthan3 verification loop,
//   * UNSAT-core extraction over assumptions (FindCore; PicoSAT's role in
//     the paper), via final-conflict analysis,
//   * the Fu-Malik MaxSAT solver (FindCandi; Open-WBO's role),
//   * the constrained sampler (CMSGen's role), through randomized
//     branching and polarities.
//
// Architecture: classic MiniSat-style two-watched-literal propagation,
// first-UIP clause learning with self-subsumption minimization, VSIDS
// decision heuristic with phase saving, Luby restarts, and activity-based
// learnt-clause database reduction.
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::sat {

using cnf::Assignment;
using cnf::Clause;
using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;
using cnf::Var;

enum class Result { kSat, kUnsat, kUnknown };

struct SolverOptions {
  double var_decay = 0.95;
  double clause_activity_decay = 0.999;
  /// Probability of choosing a random (instead of highest-activity)
  /// decision variable. Raised by the sampler to diversify models.
  double random_branch_freq = 0.0;
  /// If true, decision polarities are drawn at random (per decision)
  /// instead of from saved phases; used by the sampler.
  bool random_polarity = false;
  /// Per-variable polarity bias used when random_polarity is set:
  /// probability of deciding the variable true (see Sampler).
  /// Empty means unbiased 0.5.
  std::vector<double> polarity_bias;
  /// Polarity assigned to fresh variables before any phase is saved.
  bool default_polarity = false;
  std::uint64_t seed = 0x123456789abcdefULL;
  /// Restart interval base (conflicts); scaled by the Luby sequence.
  int restart_base = 100;
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t db_reductions = 0;
};

/// Incremental CDCL solver with assumptions and UNSAT-core extraction.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});

  // The decision-order heap holds a reference into this object; copying or
  // moving would dangle it.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocate a fresh variable.
  Var new_var();
  /// Grow to at least `n` variables.
  void ensure_vars(Var n);
  Var num_vars() const { return static_cast<Var>(assigns_.size()); }

  /// Add a clause. Returns false if the formula became trivially
  /// unsatisfiable (conflicting units at the root level).
  bool add_clause(Clause clause);
  /// Add every clause of a CNF formula.
  bool add_formula(const CnfFormula& formula);

  /// Solve under the given assumptions. kUnknown only when a budget or
  /// deadline interrupts the search.
  Result solve(const std::vector<Lit>& assumptions = {});
  /// Solve with a wall-clock deadline (checked periodically).
  Result solve(const std::vector<Lit>& assumptions,
               const util::Deadline& deadline);

  /// Complete satisfying assignment; valid after solve() returned kSat.
  const Assignment& model() const { return model_; }

  /// Subset of the assumptions sufficient for unsatisfiability; valid
  /// after solve() returned kUnsat. Empty core means the formula itself
  /// (without assumptions) is UNSAT.
  const std::vector<Lit>& core() const { return core_; }

  /// Truth value of `l` in the current root-level assignment (kUndef if
  /// unassigned at level 0). Useful after unit propagation.
  LBool fixed_value(Lit l) const;

  const SolverStats& stats() const { return stats_; }
  SolverOptions& options() { return options_; }

 private:
  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoReason = -1;

  struct ClauseData {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool removed = false;
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  struct VarData {
    ClauseRef reason = kNoReason;
    std::int32_t level = 0;
  };

  // --- indexed max-heap over variable activity -------------------------
  class OrderHeap {
   public:
    explicit OrderHeap(const std::vector<double>& activity)
        : activity_(activity) {}
    bool empty() const { return heap_.empty(); }
    bool contains(Var v) const {
      return v < static_cast<Var>(index_.size()) && index_[v] >= 0;
    }
    void insert(Var v);
    void update(Var v);  // activity of v increased
    Var remove_max();
    void grow(Var n) { index_.resize(n, -1); }

   private:
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    const std::vector<double>& activity_;
    std::vector<Var> heap_;
    std::vector<std::int32_t> index_;
  };

  // --- core operations ---------------------------------------------------
  LBool value(Lit l) const {
    return assigns_[static_cast<std::size_t>(l.var())] ^ l.negated();
  }
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  std::int32_t level(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].level;
  }
  ClauseRef reason(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].reason;
  }
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void new_decision_level() {
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  }
  void enqueue(Lit p, ClauseRef from);
  ClauseRef propagate();
  void cancel_until(std::int32_t target_level);
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
               std::int32_t& out_btlevel);
  bool literal_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p, std::vector<Lit>& out_core);
  Lit pick_branch_lit();
  ClauseRef attach_new_clause(std::vector<Lit> lits, bool learnt);
  void attach_watches(ClauseRef cref);
  void detach_watches(ClauseRef cref);
  void reduce_db();
  bool clause_locked(ClauseRef cref) const;
  void var_bump_activity(Var v);
  void var_decay_activity();
  void clause_bump_activity(ClauseData& c);
  void clause_decay_activity();
  Result search_loop(const std::vector<Lit>& assumptions,
                     const util::Deadline* deadline);
  void extract_model();
  static std::int64_t luby(std::int64_t i);

  SolverOptions options_;
  util::Rng rng_;

  std::vector<ClauseData> clauses_;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code

  std::vector<LBool> assigns_;
  std::vector<VarData> var_data_;
  std::vector<bool> saved_phase_;
  std::vector<double> activity_;
  OrderHeap order_{activity_};
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;

  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;

  bool ok_ = true;
  double max_learnts_ = 0.0;

  Assignment model_;
  std::vector<Lit> core_;
  SolverStats stats_;
};

}  // namespace manthan::sat
