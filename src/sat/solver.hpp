// Conflict-driven clause-learning (CDCL) SAT solver.
//
// This is the oracle behind every reasoning step of the library:
//   * CheckSat queries of the Manthan3 verification loop,
//   * UNSAT-core extraction over assumptions (FindCore; PicoSAT's role in
//     the paper), via final-conflict analysis,
//   * the Fu-Malik MaxSAT solver (FindCandi; Open-WBO's role),
//   * the constrained sampler (CMSGen's role), through randomized
//     branching and polarities.
//
// Architecture: classic MiniSat-style two-watched-literal propagation,
// first-UIP clause learning with self-subsumption minimization, VSIDS
// decision heuristic with phase saving, Luby restarts, and Glucose-style
// LBD-tiered learnt-clause database reduction.
//
// Clause storage is a flat arena (MiniSat/Glucose "clause allocator"):
// one contiguous std::vector<uint32_t> holds every clause as a packed
// record
//
//     [header]([lbd][activity] learnt only)[lit0][lit1]...[litN-1]
//
// where the header word packs the literal count (bits 3..31) with three
// flags (learnt / removed-mark / relocated), `lbd` is the clause's
// literal-block distance (number of distinct decision levels at learn
// time, updated downwards whenever the clause is reused in conflict
// analysis), and `activity` is a float stored by bit pattern. A ClauseRef
// is simply the record's word offset into the arena, so propagation walks
// cache-contiguous memory instead of chasing a per-clause heap pointer.
//
// Binary clauses get a fast path inside the shared watch lists: their
// watchers carry a tag bit in the ClauseRef and store the implied literal
// as the blocker, so propagating over a binary clause decides
// satisfied/unit/conflict from the watcher alone and never touches the
// arena; the arena record only backs conflict/reason lookups.
//
// Removing a learnt clause marks its record and counts the words as
// wasted; when waste exceeds ~20% of the arena, a mark-compact garbage
// collector copies the live records into a fresh arena and rewrites every
// root (watch lists, binary watch lists, reason references of assigned
// variables, problem/learnt clause lists) through per-record forwarding
// addresses. Memory for deleted clauses is therefore actually reclaimed,
// not just flagged.
//
// reduce_db() keeps learnt clauses by quality, not just recency: clauses
// with LBD <= 3 form the "core" tier and are never deleted, LBD 4..6 is
// the "mid" tier, everything above is "local"; the worse half (highest
// LBD, then lowest activity) of the non-core clauses is dropped at each
// reduction. SolverStats exposes the arena size, current wasted bytes, GC
// run count, the tier sizes of the last reduction, and the learnt-clause
// budget (max_learnts) in effect.
// Activation literals (incremental verify/repair pipeline): a client may
// guard a clause with an activation literal a via add_clause_activated(),
// which stores (~a ∨ clause) and indexes the record under a. The clause
// constrains the search only while `a` is assumed. retire(a) asserts ~a
// as a root-level unit and reclaims every indexed record plus any learnt
// clause that mentions ~a (all satisfied forever), so the arena GC
// actually recovers the space instead of carrying dead encodings for the
// rest of the run. This is how the synthesis pipeline swaps per-candidate
// cone encodings and per-counterexample MaxSAT machinery in and out of
// one persistent solver.
// Inter-solve inprocessing (PR-6): between solve() calls the solver can
// simplify its own clause database — occurrence-list subsumption and
// self-subsuming resolution, bounded variable elimination (SatELite /
// MiniSat-SimpSolver style, with a stored extension stack so models stay
// complete), and clause vivification (propagation-based clause
// shortening). Activation-guarded clauses are never touched: their
// variables are protected from elimination and the records are excluded
// from subsumption/vivification, so retirement semantics are preserved.
//
// compact() pairs with inprocessing: it renumbers the live variables
// densely and records what happened to every dropped variable in a
// sat::Remapper, while the public API keeps speaking the original
// ("external") numbering — clients never renumber anything. Dropped
// variables that are mentioned again (recycled MaxSAT round variables,
// cached Tseitin node ids) are transparently revived; eliminated
// variables are revived by re-adding their stored defining clauses,
// which restores full logical equivalence.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cnf/cnf.hpp"
#include "sat/remapper.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::sat {

using cnf::Assignment;
using cnf::Clause;
using cnf::CnfFormula;
using cnf::LBool;
using cnf::Lit;
using cnf::Var;

enum class Result { kSat, kUnsat, kUnknown };

struct SolverOptions {
  double var_decay = 0.95;
  double clause_activity_decay = 0.999;
  /// Probability of choosing a random (instead of highest-activity)
  /// decision variable. Raised by the sampler to diversify models.
  double random_branch_freq = 0.0;
  /// If true, decision polarities are drawn at random (per decision)
  /// instead of from saved phases; used by the sampler.
  bool random_polarity = false;
  /// Per-variable polarity bias used when random_polarity is set:
  /// probability of deciding the variable true (see Sampler).
  /// Empty means unbiased 0.5.
  std::vector<double> polarity_bias;
  /// Polarity assigned to fresh variables before any phase is saved.
  bool default_polarity = false;
  std::uint64_t seed = 0x123456789abcdefULL;
  /// Restart interval base (conflicts); scaled by the Luby sequence.
  int restart_base = 100;
};

/// Knobs for one inprocess() call. Defaults follow MiniSat-SimpSolver's
/// bounds, scaled down since inprocessing runs repeatedly.
struct InprocessOptions {
  bool subsume = true;    ///< subsumption + self-subsuming resolution
  bool eliminate = true;  ///< bounded variable elimination
  bool vivify = true;     ///< propagation-based clause shortening
  /// A variable is eliminated only if the number of non-tautological
  /// resolvents does not exceed #pos + #neg occurrences plus this slack.
  std::uint32_t elim_grow = 0;
  /// Elimination is abandoned if any resolvent would be longer than this.
  std::uint32_t elim_clause_limit = 24;
  /// Literals with longer occurrence lists are skipped as subsumption
  /// pivots and their variables are not eliminated (density guard).
  std::size_t occ_limit = 400;
  /// Propagation budget for the vivification pass.
  std::uint64_t vivify_budget = 200000;
  /// Maximum simplification rounds (a strengthening that produces new
  /// units triggers another round).
  std::uint32_t max_rounds = 3;
  /// Cooperative stop, polled between per-item steps of every pass
  /// (subsumption pivots, elimination candidates, vivification clauses).
  /// When cancelled the remaining work is skipped — sound, because the
  /// clause database is valid after any prefix of simplifications — and
  /// inprocess() still returns true. Null = not cancellable.
  const util::CancelToken* cancel = nullptr;
};

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnt_literals = 0;
  std::uint64_t minimized_literals = 0;
  std::uint64_t db_reductions = 0;
  // --- clause-arena accounting (snapshots refreshed by stats()) ----------
  /// Current byte size of the flat clause arena.
  std::uint64_t arena_bytes = 0;
  /// Bytes currently held by removed-but-not-yet-collected clause records.
  /// Bounded by the GC trigger at ~20% of arena_bytes plus one reduction's
  /// worth of removals.
  std::uint64_t wasted_bytes = 0;
  /// Mark-compact garbage collections performed.
  std::uint64_t gc_runs = 0;
  // --- learnt-clause tiers as of the last reduce_db() run ----------------
  std::uint64_t tier_core = 0;   ///< LBD <= 3: never removed
  std::uint64_t tier_mid = 0;    ///< LBD in [4, 6]
  std::uint64_t tier_local = 0;  ///< LBD > 6: first to be dropped
  /// Learnt-clause budget in effect for the most recent solve() call;
  /// rescaled against the current problem size on every solve.
  double max_learnts = 0.0;
  // --- activation-literal retirement (snapshots refreshed by stats()) ----
  /// Total variables ever allocated (problem + Tseitin + selectors).
  std::uint64_t vars_allocated = 0;
  /// Clause records reclaimed by retire() — guarded problem clauses plus
  /// learnt clauses that mentioned a retired activation literal.
  std::uint64_t retired_clauses = 0;
  /// Activation literals retired so far.
  std::uint64_t retired_activations = 0;
  /// Models harvested by enumerate() sessions (one per descent).
  std::uint64_t enumerated_models = 0;
  // --- inprocessing (cumulative) -----------------------------------------
  /// inprocess() invocations that actually ran (root level, ok).
  std::uint64_t inprocess_runs = 0;
  /// Variables removed by bounded variable elimination.
  std::uint64_t eliminated_vars = 0;
  /// Clauses deleted because another clause subsumes them.
  std::uint64_t subsumed_clauses = 0;
  /// Literals removed by self-subsuming resolution (strengthening).
  std::uint64_t strengthened_literals = 0;
  /// Literals removed by clause vivification.
  std::uint64_t vivified_literals = 0;
  /// Internal variable slots reclaimed by compact() (snapshot).
  std::uint64_t remapped_vars = 0;
  // --- process memory (snapshot refreshed by stats()) --------------------
  /// Process-wide peak resident set size in bytes at the time of the
  /// stats() call. Process-global, not per-solver: useful for reporting,
  /// excluded from determinism comparisons.
  std::uint64_t peak_rss_bytes = 0;
};

/// Model sink for enumerate(): invoked at every satisfying total
/// assignment with the solver's model; return true to keep harvesting.
using ModelSink = std::function<bool(const Assignment&)>;

/// Incremental CDCL solver with assumptions and UNSAT-core extraction.
class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  /// Publishes this solver's lifetime search counters into the global
  /// metrics registry (sat_* series) before the object goes away.
  ~Solver();

  // The decision-order heap holds a reference into this object; copying or
  // moving would dangle it.
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Allocate a fresh variable.
  Var new_var();
  /// Allocate `count` consecutive fresh variables; returns the first.
  /// Clients encoding a fixed block (e.g. a DQBF matrix) reserve it up
  /// front so later Tseitin/selector variables never collide with it.
  Var reserve_vars(Var count);
  /// Grow to at least `n` variables.
  void ensure_vars(Var n);
  /// Variables handed out so far, in the stable external numbering. The
  /// internal (post-compaction) variable count may be smaller.
  Var num_vars() const { return remap_.num_external(); }

  /// Restart the decision RNG from `seed`. A persistent solver reseeds
  /// between rounds so a stuck client sees a different search trajectory
  /// (the one-shot equivalent was constructing a fresh solver per round).
  void reseed(std::uint64_t seed);

  /// Add a clause. Returns false if the formula became trivially
  /// unsatisfiable (conflicting units at the root level).
  bool add_clause(const Clause& clause);
  /// Add every clause of a CNF formula.
  bool add_formula(const CnfFormula& formula);

  /// Add `clause` guarded by the activation literal `activation`: the
  /// stored clause is (~activation ∨ clause), so it constrains the search
  /// only while `activation` is passed as an assumption. The record is
  /// indexed under `activation` for later retirement. `activation` must be
  /// a fresh variable that appears in no other (unguarded) clause.
  bool add_clause_activated(const Clause& clause, Lit activation);

  /// Retire an activation literal: asserts ~activation as a root-level
  /// unit (permanently satisfying every clause guarded by it, including
  /// learnt clauses that recorded the guard) and reclaims those records
  /// from the arena. Returns the number of clause records reclaimed; the
  /// memory is recovered by the next mark-compact GC. Must be called
  /// between solves (root decision level).
  std::size_t retire(Lit activation);
  /// Batch form: one learnt-database sweep covers every retired guard,
  /// so a verify round that swaps R cones pays O(learnt DB + guarded),
  /// not O(R × learnt DB).
  std::size_t retire(const std::vector<Lit>& activations);

  /// Solve under the given assumptions. kUnknown only when a budget or
  /// deadline interrupts the search.
  Result solve(const std::vector<Lit>& assumptions = {});
  /// Solve with a wall-clock deadline, polled both on conflicts and on a
  /// decision/propagation counter so that conflict-light (pure
  /// propagation) solves are interruptible too.
  Result solve(const std::vector<Lit>& assumptions,
               const util::Deadline& deadline);

  /// Enumerating session (the sampler's harvest loop): one persistent
  /// search that hands every satisfying total assignment to `sink` and —
  /// if it returns true — performs a phase-scrambled rapid restart and
  /// keeps descending, instead of the caller paying one full solve() per
  /// model. Decisions use a per-descent random permutation of the
  /// variables (CMSGen-style scrambled branching) rather than the VSIDS
  /// heap, so a restart costs O(vars) instead of O(vars log vars) heap
  /// churn; conflicts still run the full CDCL machinery (learnt clauses
  /// steer later descents away from dead subspaces). Decision polarities
  /// follow SolverOptions (random_polarity / polarity_bias / saved
  /// phases; saved phases are re-scrambled after each model).
  ///
  /// Returns kUnsat if no model exists, kSat once `sink` stops the
  /// session, kUnknown when the deadline expires (models may already have
  /// been harvested — the sink has seen them). No blocking clauses are
  /// added, so the session can revisit a model; callers deduplicate by
  /// fingerprint (cnf::fingerprint) and budget the repeats.
  Result enumerate(const ModelSink& sink,
                   const std::vector<Lit>& assumptions = {},
                   const util::Deadline* deadline = nullptr);

  /// Complete satisfying assignment; valid after solve() returned kSat.
  const Assignment& model() const { return model_; }

  /// Subset of the assumptions sufficient for unsatisfiability; valid
  /// after solve() returned kUnsat. Empty core means the formula itself
  /// (without assumptions) is UNSAT.
  const std::vector<Lit>& core() const { return core_; }

  /// Truth value of `l` in the current root-level assignment (kUndef if
  /// unassigned at level 0). Useful after unit propagation.
  LBool fixed_value(Lit l) const;

  /// Protect variable `v` (external numbering) from bounded variable
  /// elimination. Interface variables whose models/assumptions the client
  /// reads for the lifetime of the session (e.g. a DQBF matrix block)
  /// should be frozen so inprocessing does not churn them through
  /// eliminate/revive cycles. Fixing or freeing by compact() is still
  /// possible — both are transparent to the client.
  void freeze(Var v);
  /// Freeze the `count` variables starting at `first`.
  void freeze_range(Var first, Var count);
  bool is_frozen(Var v) const {
    return static_cast<std::size_t>(v) < frozen_.size() &&
           frozen_[static_cast<std::size_t>(v)] != 0;
  }

  /// Inter-solve simplification of the clause database: root-level
  /// cleanup (satisfied clauses removed, false literals stripped),
  /// occurrence-list subsumption + self-subsuming resolution, bounded
  /// variable elimination, and clause vivification, per `options`.
  /// Must be called between solves (root decision level, no active
  /// enumeration). Returns false iff the formula was proven
  /// unsatisfiable. Learnt clauses are kept (swept only when they mention
  /// an eliminated variable); activation-guarded clauses and their
  /// variables are never touched.
  bool inprocess(const InprocessOptions& options = {});

  /// Renumber the live internal variables densely, dropping root-fixed
  /// and unused slots (see sat::Remapper for the drop taxonomy). Every
  /// public API keeps speaking the original external numbering; dropped
  /// variables mentioned again are transparently revived. Returns the
  /// number of internal variable slots reclaimed. Must be called between
  /// solves. Invalidates model()/core() until the next solve.
  std::size_t compact();

  /// External↔internal variable bookkeeping (identity until the first
  /// elimination or compaction).
  const Remapper& remapper() const { return remap_; }

  const SolverStats& stats() const;
  SolverOptions& options() { return options_; }

 private:
  /// Word offset of a clause record in the arena.
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoReason = 0xffffffffu;

  // --- arena clause record layout ---------------------------------------
  // [header]([lbd][activity] if learnt)[lit0]...[litN-1];
  // header = size<<3 | flags.
  static constexpr std::uint32_t kLearntBit = 1u;
  static constexpr std::uint32_t kMarkBit = 2u;   // removed, awaiting GC
  static constexpr std::uint32_t kRelocBit = 4u;  // forwarded during GC
  static constexpr std::uint32_t kSizeShift = 3;
  // LBD tier boundaries (Glucose: "core" clauses are kept forever).
  static constexpr std::uint32_t kCoreLbd = 3;
  static constexpr std::uint32_t kMidLbd = 6;
  // Deadline poll interval in decisions + propagations.
  static constexpr std::uint64_t kDeadlinePollInterval = 4096;
  // Watcher cref tag marking a binary clause (top bit; arena offsets are
  // therefore limited to 2^31 words, i.e. 8 GiB of clauses).
  static constexpr ClauseRef kBinaryTag = 0x80000000u;

  std::uint32_t clause_size(ClauseRef c) const {
    return arena_[c] >> kSizeShift;
  }
  bool clause_learnt(ClauseRef c) const {
    return (arena_[c] & kLearntBit) != 0;
  }
  bool clause_removed(ClauseRef c) const {
    return (arena_[c] & kMarkBit) != 0;
  }
  /// Word offset of the first literal: learnt records carry two extra
  /// header words (lbd, activity) that problem clauses do without.
  std::uint32_t lit_base(ClauseRef c) const {
    return c + 1 + ((arena_[c] & kLearntBit) << 1);
  }
  std::uint32_t record_words(ClauseRef c) const {
    return 1 + ((arena_[c] & kLearntBit) << 1) + clause_size(c);
  }
  // lbd / activity slots exist on learnt clauses only.
  std::uint32_t clause_lbd(ClauseRef c) const { return arena_[c + 1]; }
  void set_clause_lbd(ClauseRef c, std::uint32_t lbd) { arena_[c + 1] = lbd; }
  float clause_activity(ClauseRef c) const;
  void set_clause_activity(ClauseRef c, float activity);
  Lit clause_lit(ClauseRef c, std::uint32_t i) const {
    return Lit::from_code(static_cast<std::int32_t>(arena_[lit_base(c) + i]));
  }

  /// Watch-list entry. For clauses of size >= 3 `blocker` is some other
  /// literal of the clause whose being true lets propagation skip the
  /// arena lookup. For binary clauses `cref` carries kBinaryTag and
  /// `blocker` IS the implied literal, so propagation decides
  /// satisfied/unit/conflict without reading the arena at all.
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  struct VarData {
    ClauseRef reason = kNoReason;
    std::int32_t level = 0;
  };

  // --- indexed max-heap over variable activity -------------------------
  class OrderHeap {
   public:
    explicit OrderHeap(const std::vector<double>& activity)
        : activity_(activity) {}
    bool empty() const { return heap_.empty(); }
    bool contains(Var v) const {
      return v < static_cast<Var>(index_.size()) && index_[v] >= 0;
    }
    void insert(Var v);
    void update(Var v);  // activity of v increased
    Var remove_max();
    void grow(Var n) { index_.resize(n, -1); }
    /// Empty the heap and resize for `n` variables (compaction rebuild).
    void reset(Var n) {
      heap_.clear();
      index_.assign(static_cast<std::size_t>(n), -1);
    }

   private:
    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    const std::vector<double>& activity_;
    std::vector<Var> heap_;
    std::vector<std::int32_t> index_;
  };

  // --- core operations ---------------------------------------------------
  LBool value(Lit l) const {
    return assigns_[static_cast<std::size_t>(l.var())] ^ l.negated();
  }
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  std::int32_t level(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].level;
  }
  ClauseRef reason(Var v) const {
    return var_data_[static_cast<std::size_t>(v)].reason;
  }
  std::int32_t decision_level() const {
    return static_cast<std::int32_t>(trail_lim_.size());
  }

  void new_decision_level() {
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  }
  bool add_clause_impl(const Clause& clause, ClauseRef* attached);
  void enqueue(Lit p, ClauseRef from);
  ClauseRef propagate();
  void cancel_until(std::int32_t target_level);
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
               std::int32_t& out_btlevel);
  bool literal_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p, std::vector<Lit>& out_core);
  Lit pick_branch_lit();
  Lit pick_enum_lit();
  bool pick_polarity(Var v);
  void scramble_for_descent();
  ClauseRef attach_new_clause(const std::vector<Lit>& lits, bool learnt,
                              std::uint32_t lbd);
  void attach_watches(ClauseRef cref);
  void detach_watches(ClauseRef cref);
  void remove_clause(ClauseRef cref);
  bool clause_is_root_reason(ClauseRef cref) const;
  void reduce_db();
  void maybe_garbage_collect();
  void garbage_collect();
  template <typename LitAt>
  std::uint32_t lbd_of(std::uint32_t size, LitAt lit_at);
  std::uint32_t lbd_of_lits(const std::vector<Lit>& lits);
  std::uint32_t lbd_of_clause(ClauseRef cref);
  bool clause_locked(ClauseRef cref) const;
  void var_bump_activity(Var v);
  void var_decay_activity();
  void clause_bump_activity(ClauseRef cref);
  void clause_decay_activity();
  Result search_loop(const std::vector<Lit>& assumptions,
                     const util::Deadline* deadline,
                     const ModelSink* sink = nullptr);
  Result solve_entry(const std::vector<Lit>& assumptions,
                     const util::Deadline* deadline, const ModelSink* sink);
  void extract_model();
  static std::int64_t luby(std::int64_t i);

  // --- external/internal numbering ---------------------------------------
  Var internal_vars() const { return static_cast<Var>(assigns_.size()); }
  /// Allocate an internal variable slot (arrays + heap); no external id.
  Var new_internal_var();
  /// Internal slot with no external binding (eliminated, pre-compaction).
  bool is_orphan(Var internal) const {
    return !remap_.identity() && remap_.to_external(internal) == cnf::kNoVar;
  }
  /// Give a dropped external variable a fresh internal slot; eliminated
  /// variables additionally re-add their stored defining clauses.
  Var revive(Var external);
  /// Map an external clause to internal literals. Returns false if the
  /// clause is satisfied by a fixed drop; fixed-false literals are
  /// skipped; free/eliminated variables are revived.
  bool translate_clause_in(const Clause& clause, std::vector<Lit>& out);
  /// Assert an internal literal at the root and propagate; updates ok_.
  bool enqueue_root_unit(Lit p);

  // --- inprocessing -------------------------------------------------------
  /// Root-level database cleanup: clear root reasons, remove satisfied
  /// clauses, strip false literals. Requires decision level 0.
  bool simplify_root();
  /// Replace a (detached or attached) record's literals with `lits`
  /// (a subset), handling root-assigned literals, unit/empty collapse,
  /// and watch maintenance. Returns true iff the record is still live.
  bool rebuild_clause(ClauseRef cref, std::vector<Lit>& lits);
  bool subsumption_pass(const InprocessOptions& options);
  bool eliminate_pass(const InprocessOptions& options);
  bool vivify_pass(const InprocessOptions& options);
  /// Sticky per-inprocess() cancellation poll (options.cancel + the
  /// sat.inprocess.step fault site); passes break at item boundaries.
  bool inprocess_should_stop(const InprocessOptions& options);
  /// Occurrence lists over unguarded problem clauses, rebuilt per
  /// inprocess() call; entries are lazily stale (membership re-verified).
  void build_occ_lists();
  void occ_push(ClauseRef cref);
  bool clause_contains(ClauseRef cref, Lit l) const;
  bool is_guarded_record(ClauseRef cref) const;

  SolverOptions options_;
  util::Rng rng_;

  Remapper remap_;
  /// Frozen external variables (never eliminated); see freeze().
  std::vector<std::uint8_t> frozen_;
  /// Internal variables occurring in activation-guarded records; never
  /// eliminated and excluded from occurrence lists. Rebuilt per
  /// inprocess() call.
  std::vector<std::uint8_t> guarded_var_;
  /// Defining clauses of one eliminated variable (external literals):
  /// the stored side's clauses all contain `lit`. Model extension walks
  /// groups in reverse order; revival re-adds `clauses` and marks the
  /// group dead.
  // One bounded-variable-elimination record, in EXTERNAL literals.
  // `clauses` is the smaller occurrence side (the side of `lit`): model
  // extension only needs one side (if no clause of it forces `lit`, the
  // default ~lit satisfies the other side through the resolvents).
  // Revival is different: restoring logical equivalence requires *all*
  // original clauses of the variable, so `other` keeps the opposite side
  // too — one side alone does not entail the other given the resolvents.
  struct ElimGroup {
    Lit lit;
    std::vector<Clause> clauses;  // extension + revival
    std::vector<Clause> other;    // revival only
    bool revived = false;
  };
  std::vector<ElimGroup> elim_groups_;
  std::unordered_map<Var, std::size_t> elim_group_of_;  // external var
  /// Occurrence lists (indexed by internal lit code) over unguarded
  /// problem clauses; valid only during inprocess().
  std::vector<std::vector<ClauseRef>> occ_;
  /// Activation-guarded records (sorted crefs) for the current
  /// inprocess() call; excluded from occurrence lists, subsumption, and
  /// vivification.
  std::vector<ClauseRef> guarded_records_;
  /// Literal marks for subset tests (indexed by internal lit code).
  std::vector<std::uint8_t> lit_mark_;

  /// Flat clause arena; every ClauseRef is a word offset into it.
  std::vector<std::uint32_t> arena_;
  /// Words occupied by removed (marked) clause records; drives the GC.
  std::size_t wasted_ = 0;
  /// Sticky stop flag for the current inprocess() call.
  bool inprocess_stopped_ = false;
  /// Conflicts already reported to the thread's ResourceBudget (charged
  /// as deltas at the deadline-poll cadence).
  std::uint64_t budget_conflicts_reported_ = 0;
  std::vector<ClauseRef> problem_clauses_;
  std::vector<ClauseRef> learnt_clauses_;
  /// Guarded clause records by activation variable; a GC root. Entries
  /// are erased wholesale when the activation is retired.
  std::unordered_map<Var, std::vector<ClauseRef>> activation_clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code

  std::vector<LBool> assigns_;
  std::vector<VarData> var_data_;
  std::vector<bool> saved_phase_;
  std::vector<double> activity_;
  OrderHeap order_{activity_};
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;

  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t propagate_head_ = 0;

  std::vector<std::uint8_t> seen_;
  std::vector<Lit> analyze_stack_;
  // Enumerating-session decision order: a per-descent shuffled variable
  // permutation scanned by a cursor (reset on every backjump/restart).
  std::vector<Var> enum_order_;
  std::size_t enum_cursor_ = 0;
  // Scratch buffer for add_clause normalization (avoids a heap
  // allocation per added clause — MaxSAT relaxation adds thousands).
  std::vector<Lit> add_tmp_;
  // Scratch for external→internal clause/assumption translation. Never
  // aliased with add_tmp_: translation feeds add_clause_impl, which
  // normalizes into add_tmp_.
  std::vector<Lit> map_tmp_;
  std::vector<Lit> assump_tmp_;
  // Scratch stamps for LBD computation, indexed by decision level.
  std::vector<std::uint64_t> lbd_stamp_;
  std::uint64_t lbd_stamp_counter_ = 0;

  bool ok_ = true;
  double max_learnts_ = 0.0;

  Assignment model_;
  std::vector<Lit> core_;
  // Mutable so stats() can refresh the arena-usage snapshot fields.
  mutable SolverStats stats_;
};

}  // namespace manthan::sat
