// Internal helpers shared by the workload generators.
#pragma once

#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_cnf.hpp"
#include "dqbf/dqbf.hpp"
#include "util/rng.hpp"

namespace manthan::workloads::detail {

/// A random Boolean function over `input_vars` built from `num_gates`
/// randomly wired gates with random polarities. With `allow_xor` false
/// the function is AND/OR-only (monotone modulo input polarities), which
/// decision trees learn far more readily than XOR-heavy functions —
/// used by the "learnable" benchmark families.
inline aig::Ref random_function(aig::Aig& manager,
                                const std::vector<cnf::Var>& input_vars,
                                std::size_t num_gates, util::Rng& rng,
                                bool allow_xor = true) {
  std::vector<aig::Ref> pool;
  pool.reserve(input_vars.size() + num_gates);
  for (const cnf::Var v : input_vars) pool.push_back(manager.input(v));
  if (pool.empty()) return aig::Aig::constant(rng.flip());
  for (std::size_t g = 0; g < num_gates; ++g) {
    aig::Ref a = pool[rng.next_below(pool.size())];
    aig::Ref b = pool[rng.next_below(pool.size())];
    if (rng.flip()) a = aig::ref_not(a);
    if (rng.flip()) b = aig::ref_not(b);
    switch (rng.next_below(allow_xor ? 3 : 2)) {
      case 0: pool.push_back(manager.and_gate(a, b)); break;
      case 1: pool.push_back(manager.or_gate(a, b)); break;
      default: pool.push_back(manager.xor_gate(a, b)); break;
    }
  }
  return pool.back();
}

/// Tseitin-encode `root` into the matrix of `formula` and assert it true.
/// Auxiliary variables introduced by the encoding are declared as
/// existentials depending on all universals (they are deterministic gate
/// functions of the circuit inputs, so this is always admissible).
inline void assert_aig(dqbf::DqbfFormula& formula, const aig::Aig& manager,
                       aig::Ref root) {
  const cnf::Var before = formula.matrix().num_vars();
  const cnf::Lit lit = aig::encode_cone(manager, root, formula.matrix());
  const cnf::Var after = formula.matrix().num_vars();
  for (cnf::Var v = before; v < after; ++v) {
    formula.add_existential(v, formula.universals());
  }
  formula.matrix().add_unit(lit);
}

/// Pick `count` distinct values from [0, bound) (count <= bound).
inline std::vector<cnf::Var> random_subset(std::size_t bound,
                                           std::size_t count,
                                           util::Rng& rng) {
  std::vector<cnf::Var> all(bound);
  for (std::size_t i = 0; i < bound; ++i) all[i] = static_cast<cnf::Var>(i);
  // Partial Fisher-Yates.
  for (std::size_t i = 0; i < count && i + 1 < bound; ++i) {
    const std::size_t j = i + rng.next_below(bound - i);
    std::swap(all[i], all[j]);
  }
  all.resize(std::min(count, bound));
  return all;
}

}  // namespace manthan::workloads::detail
