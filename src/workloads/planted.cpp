#include <algorithm>

#include "aig/aig_sim.hpp"
#include "workloads/gen_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {

using cnf::Var;

dqbf::DqbfFormula gen_planted(const PlantedParams& params) {
  util::Rng rng(params.seed);
  dqbf::DqbfFormula formula;
  const std::size_t nx = params.num_universals;
  const std::size_t ny = params.num_existentials;
  for (std::size_t i = 0; i < nx; ++i) {
    formula.add_universal(static_cast<Var>(i));
  }

  // Dependency sets (random or a nested chain) and planted functions.
  aig::Aig manager;
  std::vector<aig::Ref> planted(ny);
  std::vector<Var> y_vars(ny);
  const std::vector<Var> permutation = detail::random_subset(nx, nx, rng);
  for (std::size_t i = 0; i < ny; ++i) {
    std::vector<Var> deps;
    if (params.nested_deps) {
      // Prefix of one shared permutation: H_1 ⊆ H_2 ⊆ … ⊆ H_m.
      const std::size_t lo = std::min(params.dep_size, nx);
      const std::size_t hi = std::min(
          params.dep_size_max == 0 ? params.dep_size : params.dep_size_max,
          nx);
      const std::size_t size =
          ny > 1 ? lo + i * (hi - lo) / (ny - 1) : hi;
      deps.assign(permutation.begin(),
                  permutation.begin() + static_cast<std::ptrdiff_t>(size));
    } else {
      deps = detail::random_subset(nx, std::min(params.dep_size, nx), rng);
    }
    y_vars[i] = static_cast<Var>(nx + i);
    formula.add_existential(y_vars[i], deps);
    planted[i] = detail::random_function(manager, deps,
                                         params.function_gates, rng,
                                         params.xor_functions);
  }

  // Emit random clauses over X ∪ Y that the planted vector satisfies for
  // every X valuation: a clause is kept iff, with each y_i replaced by its
  // planted function, it is a tautology over X.
  std::size_t emitted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = params.num_clauses * 200;
  while (emitted < params.num_clauses && attempts++ < max_attempts) {
    const std::size_t width = 2 + rng.next_below(3);
    cnf::Clause clause;
    std::vector<aig::Ref> substituted;
    bool has_existential = false;
    for (std::size_t k = 0; k < width; ++k) {
      const bool negate = rng.flip();
      if (rng.flip(0.55) || ny == 0) {
        const Var x = static_cast<Var>(rng.next_below(nx));
        clause.push_back(cnf::Lit(x, negate));
        const aig::Ref in = manager.input(x);
        substituted.push_back(negate ? aig::ref_not(in) : in);
      } else {
        const std::size_t i = rng.next_below(ny);
        clause.push_back(cnf::Lit(y_vars[i], negate));
        substituted.push_back(negate ? aig::ref_not(planted[i])
                                     : planted[i]);
        has_existential = true;
      }
    }
    if (!has_existential) continue;  // pure-X clauses are rarely valid
    const aig::Ref clause_fn = manager.or_all(substituted);
    if (!aig::is_tautology(manager, clause_fn)) continue;
    // Deduplicate literals within the clause.
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    formula.matrix().add_clause(std::move(clause));
    ++emitted;
  }
  return formula;
}

}  // namespace manthan::workloads
