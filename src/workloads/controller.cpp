#include "workloads/gen_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {

using cnf::Var;

dqbf::DqbfFormula gen_controller(const ControllerParams& params) {
  util::Rng rng(params.seed);
  dqbf::DqbfFormula formula;
  const std::size_t k = params.state_bits;
  const std::size_t l = params.disturbance_bits;
  const std::size_t c = params.control_bits;

  // Universals: current state s_0..s_{k-1} and disturbance d_0..d_{l-1}.
  std::vector<Var> state_vars(k);
  std::vector<Var> dist_vars(l);
  for (std::size_t i = 0; i < k; ++i) {
    state_vars[i] = static_cast<Var>(i);
    formula.add_universal(state_vars[i]);
  }
  for (std::size_t i = 0; i < l; ++i) {
    dist_vars[i] = static_cast<Var>(k + i);
    formula.add_universal(dist_vars[i]);
  }
  std::vector<Var> plant_inputs = state_vars;
  plant_inputs.insert(plant_inputs.end(), dist_vars.begin(),
                      dist_vars.end());

  // Plant dynamics: controlled next-state bit j is u_j ⊕ g_j(s, d).
  aig::Aig manager;
  std::vector<aig::Ref> g(c);
  std::vector<std::vector<Var>> observation(c);
  std::vector<Var> u_vars(c);
  for (std::size_t j = 0; j < c; ++j) {
    g[j] = detail::random_function(manager, plant_inputs,
                                   params.update_gates, rng);
    // Observation (Henkin set): what g_j actually reads — plus, in the
    // blinded variant, with one needed input removed, which typically
    // makes the instance unrealizable.
    std::vector<std::int32_t> support = manager.support(g[j]);
    observation[j].assign(support.begin(), support.end());
    if (!params.fully_observable && !observation[j].empty()) {
      observation[j].erase(observation[j].begin() +
                           static_cast<std::ptrdiff_t>(
                               rng.next_below(observation[j].size())));
    }
    u_vars[j] = static_cast<Var>(k + l + j);
    formula.add_existential(u_vars[j], observation[j]);
  }

  // Safety: all controlled next-state bits must be driven to 0 whenever
  // the current state is safe; unsafe states are don't-care (classic
  // inductive-invariant shape:  safe(s) → safe(s')).
  const aig::Ref safe_now =
      aig::ref_not(detail::random_function(manager, state_vars, 3, rng));
  std::vector<aig::Ref> next_ok(c);
  for (std::size_t j = 0; j < c; ++j) {
    const aig::Ref next_bit =
        manager.xor_gate(manager.input(u_vars[j]), g[j]);
    next_ok[j] = aig::ref_not(next_bit);
  }
  const aig::Ref spec =
      manager.implies_gate(safe_now, manager.and_all(next_ok));
  detail::assert_aig(formula, manager, spec);
  return formula;
}

}  // namespace manthan::workloads
