#include <sstream>

#include "workloads/workloads.hpp"

namespace manthan::workloads {

namespace {

std::string make_name(const std::string& family, std::size_t a,
                      std::size_t b, std::uint64_t seed) {
  std::ostringstream os;
  os << family << '_' << a << 'x' << b << "_s" << seed;
  return os.str();
}

}  // namespace

std::vector<Instance> standard_suite(const SuiteParams& params) {
  std::vector<Instance> suite;
  const std::size_t scale = params.scale == 0 ? 1 : params.scale;
  std::uint64_t seed_base = params.seed;

  // Planted random (True): the bread-and-butter learnable family.
  {
    std::vector<std::size_t> sizes{6, 8, 10};
    if (scale >= 2) {
      sizes.push_back(12);
      sizes.push_back(14);
    }
    for (const std::size_t nx : sizes) {
      for (const std::size_t ny : {std::size_t{3}, std::size_t{5}}) {
        for (std::uint64_t s = 0; s < scale + 1; ++s) {
          PlantedParams p;
          p.num_universals = nx;
          p.num_existentials = ny;
          p.dep_size = nx / 2;
          p.num_clauses = 8 * ny;
          p.seed = seed_base++ * 7919 + s;
          suite.push_back(
              {make_name("planted", nx, ny, s), "planted", gen_planted(p)});
        }
      }
    }
  }

  // Planted-hard (True): large dependency sets with tree-learnable
  // functions. Elimination must expand nearly all universals (beyond the
  // cap) and arbiter tables need too many entries, while decision-tree
  // learning plus repair stays cheap — the Manthan3 niche behind the
  // paper's unique-solve count.
  {
    std::vector<std::size_t> sizes{16, 18};
    if (scale >= 2) {
      sizes.push_back(20);
      sizes.push_back(22);
    }
    for (const std::size_t nx : sizes) {
      for (const std::size_t ny : {std::size_t{4}, std::size_t{6}}) {
        for (std::uint64_t s = 0; s < scale + 1; ++s) {
          PlantedParams p;
          p.num_universals = nx;
          p.num_existentials = ny;
          p.dep_size = 5;
          p.function_gates = 5;
          p.num_clauses = 30 * ny;
          p.seed = seed_base++ * 7919 + s;
          p.xor_functions = false;
          p.nested_deps = true;
          p.dep_size_max = (3 * nx) / 4;
          suite.push_back({make_name("plantedhard", nx, ny, s),
                           "planted_hard", gen_planted(p)});
        }
      }
    }
  }

  // Partial equivalence checking (True).
  {
    std::vector<std::size_t> sizes{5, 7};
    if (scale >= 2) sizes.push_back(9);
    for (const std::size_t nx : sizes) {
      for (const std::size_t b : {std::size_t{2}, std::size_t{3}}) {
        for (std::uint64_t s = 0; s < scale + 1; ++s) {
          PecParams p;
          p.num_inputs = nx;
          p.num_blackboxes = b;
          p.blackbox_inputs = 2 + (nx >= 7 ? 1 : 0);
          p.circuit_gates = 2 * nx;
          p.seed = seed_base++ * 7919 + s;
          suite.push_back({make_name("pec", nx, b, s), "pec", gen_pec(p)});
        }
      }
    }
  }

  // Controller synthesis: mostly realizable, some blinded (False-leaning).
  {
    std::vector<std::size_t> sizes{3, 4};
    if (scale >= 2) sizes.push_back(5);
    for (const std::size_t k : sizes) {
      for (const std::size_t c : {std::size_t{2}, std::size_t{3}}) {
        for (std::uint64_t s = 0; s < scale + 1; ++s) {
          ControllerParams p;
          p.state_bits = k;
          p.disturbance_bits = 2;
          p.control_bits = c;
          p.fully_observable = (s % 3) != 2;  // every third one blinded
          p.update_gates = 2 * k;
          p.seed = seed_base++ * 7919 + s;
          suite.push_back({make_name("controller", k, c, s), "controller",
                           gen_controller(p)});
        }
      }
    }
  }

  // Succinct SAT encodings (True).
  {
    std::vector<std::size_t> sizes{10, 16};
    if (scale >= 2) {
      sizes.push_back(24);
      sizes.push_back(32);
    }
    for (const std::size_t n : sizes) {
      for (std::uint64_t s = 0; s < scale + 1; ++s) {
        SuccinctSatParams p;
        p.num_vars = n;
        p.seed = seed_base++ * 7919 + s;
        suite.push_back({make_name("succinct", n, 3, s), "succinct_sat",
                         gen_succinct_sat(p)});
      }
    }
  }

  // Split-dependency XOR chains (True; adversarial for Manthan3).
  {
    std::vector<std::size_t> pair_counts{1, 2, 3};
    if (scale >= 2) pair_counts.push_back(4);
    for (const std::size_t pcount : pair_counts) {
      for (const bool with_shared : {false, true}) {
        XorChainParams p;
        p.num_pairs = pcount;
        p.xor_with_shared = with_shared;
        p.seed = seed_base++;
        suite.push_back({make_name(with_shared ? "xorshared" : "xoreq",
                                   pcount, 2, 0),
                         "xor_chain", gen_xor_chain(p)});
      }
    }
  }

  // Unrealizable instances (False) — both the hard-to-refute and the
  // extension-detectable kinds.
  {
    for (const std::size_t pcount : {std::size_t{1}, std::size_t{2}}) {
      for (const bool detectable : {false, true}) {
        UnrealizableParams p;
        p.num_constraints = pcount;
        p.extension_detectable = detectable;
        p.seed = seed_base++;
        suite.push_back({make_name(detectable ? "unrealext" : "unreal",
                                   pcount, 1, 0),
                         "unrealizable", gen_unrealizable(p)});
      }
    }
  }

  return suite;
}

}  // namespace manthan::workloads
