#include <unordered_map>

#include "workloads/gen_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {

using cnf::Var;

dqbf::DqbfFormula gen_pec(const PecParams& params) {
  util::Rng rng(params.seed);
  dqbf::DqbfFormula formula;
  const std::size_t nx = params.num_inputs;
  for (std::size_t i = 0; i < nx; ++i) {
    formula.add_universal(static_cast<Var>(i));
  }

  // Blackbox outputs w_j: existentials whose Henkin set is the blackbox's
  // (observable) input cone S_j ⊆ X.
  const std::size_t b = params.num_blackboxes;
  std::vector<Var> w_vars(b);
  std::vector<std::vector<Var>> bb_inputs(b);
  for (std::size_t j = 0; j < b; ++j) {
    w_vars[j] = static_cast<Var>(nx + j);
    bb_inputs[j] = detail::random_subset(
        nx, std::min(params.blackbox_inputs, nx), rng);
    formula.add_existential(w_vars[j], bb_inputs[j]);
  }

  // Implementation outputs: random circuits over X and the blackbox
  // wires; make sure each blackbox wire can actually matter by seeding
  // every output's input pool with all of them.
  aig::Aig manager;
  std::vector<Var> impl_inputs;
  for (std::size_t i = 0; i < nx; ++i) {
    impl_inputs.push_back(static_cast<Var>(i));
  }
  for (const Var w : w_vars) impl_inputs.push_back(w);
  std::vector<aig::Ref> impl_outputs(params.num_outputs);
  for (std::size_t k = 0; k < params.num_outputs; ++k) {
    impl_outputs[k] = detail::random_function(manager, impl_inputs,
                                              params.circuit_gates, rng);
  }

  // Golden circuit: the implementation with *planted* blackbox functions
  // substituted — so a rectifying assignment of the blackboxes exists by
  // construction (the instance is True).
  std::unordered_map<std::int32_t, aig::Ref> plant;
  for (std::size_t j = 0; j < b; ++j) {
    plant[w_vars[j]] =
        detail::random_function(manager, bb_inputs[j], 4, rng);
  }
  std::vector<aig::Ref> equivalences(params.num_outputs);
  for (std::size_t k = 0; k < params.num_outputs; ++k) {
    const aig::Ref golden = manager.compose(impl_outputs[k], plant);
    equivalences[k] = manager.equiv_gate(impl_outputs[k], golden);
  }

  // Matrix: all outputs equivalent (miter is constant false).
  detail::assert_aig(formula, manager, manager.and_all(equivalences));
  return formula;
}

}  // namespace manthan::workloads
