// Benchmark instance generators.
//
// The paper evaluates on 563 QBFEval'18/19/20 DQBF instances drawn from
// equivalence checking of partial circuits, controller synthesis, and
// succinct DQBF representations of propositional satisfiability. QBFLib
// is not available offline, so this module generates instances of those
// same application classes (plus planted-random and adversarial families)
// from fixed seeds — see DESIGN.md §"Substitutions". Every generator
// documents whether its instances are True by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dqbf/dqbf.hpp"

namespace manthan::workloads {

/// A named benchmark instance.
struct Instance {
  std::string name;
  std::string family;
  dqbf::DqbfFormula formula;
};

// --- planted random (True by construction) --------------------------------
struct PlantedParams {
  std::size_t num_universals = 8;
  std::size_t num_existentials = 4;
  /// Size of each Henkin dependency set.
  std::size_t dep_size = 3;
  /// AND-gate budget of each planted function.
  std::size_t function_gates = 6;
  /// Number of matrix clauses to emit (each valid under the plant).
  std::size_t num_clauses = 30;
  std::uint64_t seed = 1;
  /// Allow XOR gates in the planted functions. false keeps the functions
  /// tree-learnable — the "planted-hard" family combines this with large
  /// dependency sets, which defeats table- and elimination-based engines
  /// while staying inside Manthan3's sweet spot.
  bool xor_functions = true;
  /// Nested dependency chain H_1 ⊂ H_2 ⊂ … ⊂ H_m (prefixes of a random
  /// permutation of X, growing from dep_size to dep_size_max). Nested
  /// sets give Manthan3's learning its Y-features and its repair a
  /// non-empty Ŷ — the regime where the paper's algorithm excels.
  bool nested_deps = false;
  /// Largest chain size when nested_deps is set (0: use dep_size).
  std::size_t dep_size_max = 0;
};
/// Random dependency sets, random planted functions f_i over H_i, and a
/// matrix of random clauses that the planted vector satisfies for every X.
dqbf::DqbfFormula gen_planted(const PlantedParams& params);

// --- partial equivalence checking (True by construction) ------------------
struct PecParams {
  std::size_t num_inputs = 8;
  std::size_t num_outputs = 2;
  std::size_t num_blackboxes = 2;
  /// Inputs visible to each blackbox (its Henkin dependency set).
  std::size_t blackbox_inputs = 3;
  /// AND-gate budget of the implementation circuit per output.
  std::size_t circuit_gates = 12;
  std::uint64_t seed = 1;
};
/// Implementation with blackboxes vs. a golden circuit obtained by
/// plugging planted blackbox functions in; the matrix asserts output
/// equivalence (Gitina et al.'s partial-design equivalence checking).
dqbf::DqbfFormula gen_pec(const PecParams& params);

// --- partial-observation controller synthesis -----------------------------
struct ControllerParams {
  std::size_t state_bits = 4;
  std::size_t disturbance_bits = 2;
  std::size_t control_bits = 2;
  /// Whether each controller output observes everything its correction
  /// target needs (realizable) or is blinded on one input (typically
  /// unrealizable).
  bool fully_observable = true;
  std::size_t update_gates = 8;
  std::uint64_t seed = 1;
};
/// One-step safety control: next-state bit j is u_j ⊕ g_j(s,d); the
/// controller (partial observation = Henkin dependencies) must keep the
/// safe region invariant.
dqbf::DqbfFormula gen_controller(const ControllerParams& params);

// --- succinct SAT encodings (True by construction) -------------------------
struct SuccinctSatParams {
  std::size_t num_vars = 16;
  double clause_ratio = 3.2;
  std::uint64_t seed = 1;
};
/// A planted-satisfiable random 3-SAT formula whose variables become
/// existentials with empty dependency sets: Henkin functions are the bits
/// of a satisfying assignment.
dqbf::DqbfFormula gen_succinct_sat(const SuccinctSatParams& params);

// --- split-dependency XOR families (paper §5) -------------------------------
struct XorChainParams {
  std::size_t num_pairs = 2;
  /// false: pure equality pairs ¬(y ⊕ y') — the paper's incompleteness
  /// example. true: pairs additionally XOR to the shared universal.
  bool xor_with_shared = false;
  std::uint64_t seed = 1;
};
/// True instances with incomparable dependency windows {x_a,x_s} /
/// {x_s,x_b}; the only Henkin functions factor through the shared x_s.
/// Drives Manthan3 into its documented incompleteness on bad candidates.
dqbf::DqbfFormula gen_xor_chain(const XorChainParams& params);

struct UnrealizableParams {
  std::size_t num_constraints = 2;
  /// false: y_i ↔ x_a ⊕ x_b with H_i = {x_a} — False, but *not* provable
  /// through Manthan3's extension check (every X-assignment extends to a
  /// model); only elimination-based reasoning refutes it.
  /// true: additionally y_i ↔ x_b, so an X-assignment with x_a ≠ x_b has
  /// no extension at all — every engine detects False quickly.
  bool extension_detectable = false;
  std::uint64_t seed = 1;
};
/// False instances: y_i must track universals outside H_i.
dqbf::DqbfFormula gen_unrealizable(const UnrealizableParams& params);

// --- suite assembly ---------------------------------------------------------
struct SuiteParams {
  /// Rough size multiplier: 1 = smoke suite, 2 = paper-shaped evaluation.
  std::size_t scale = 1;
  std::uint64_t seed = 2023;
};
/// The standard benchmark suite used by the figure/table benches: a
/// deterministic mix of all families at several sizes.
std::vector<Instance> standard_suite(const SuiteParams& params);

}  // namespace manthan::workloads
