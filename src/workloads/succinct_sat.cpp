#include "workloads/gen_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {

using cnf::Var;

dqbf::DqbfFormula gen_succinct_sat(const SuccinctSatParams& params) {
  util::Rng rng(params.seed);
  dqbf::DqbfFormula formula;
  const std::size_t n = params.num_vars;

  // Every SAT variable becomes an existential with an *empty* Henkin set:
  // its function is a constant, and the vector is a satisfying
  // assignment.
  for (std::size_t i = 0; i < n; ++i) {
    formula.add_existential(static_cast<Var>(i), {});
  }

  // Planted satisfiable random 3-SAT.
  std::vector<bool> plant(n);
  for (std::size_t i = 0; i < n; ++i) plant[i] = rng.flip();
  const auto num_clauses =
      static_cast<std::size_t>(params.clause_ratio * static_cast<double>(n));
  std::size_t emitted = 0;
  while (emitted < num_clauses) {
    cnf::Clause clause;
    for (std::size_t j = 0; j < 3; ++j) {
      const Var v = static_cast<Var>(rng.next_below(n));
      clause.push_back(cnf::Lit(v, rng.flip()));
    }
    // Keep only clauses the plant satisfies.
    bool satisfied = false;
    for (const cnf::Lit lit : clause) {
      if (plant[static_cast<std::size_t>(lit.var())] != lit.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) continue;
    formula.matrix().add_clause(std::move(clause));
    ++emitted;
  }
  return formula;
}

}  // namespace manthan::workloads
