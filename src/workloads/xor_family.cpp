#include "workloads/gen_util.hpp"
#include "workloads/workloads.hpp"

namespace manthan::workloads {

using cnf::Lit;
using cnf::Var;

dqbf::DqbfFormula gen_xor_chain(const XorChainParams& params) {
  // Pair j uses universals {a_j, s_j, b_j} and existentials y_j, y'_j with
  // the paper's incomparable dependency windows H = {a_j, s_j} and
  // {s_j, b_j}. Constraint: ¬(y_j ⊕ y'_j), optionally ⊕ s_j. Both
  // variants are True: the functions must factor through the shared s_j.
  dqbf::DqbfFormula formula;
  const std::size_t p = params.num_pairs;
  for (std::size_t j = 0; j < 3 * p; ++j) {
    formula.add_universal(static_cast<Var>(j));
  }
  for (std::size_t j = 0; j < p; ++j) {
    const Var a = static_cast<Var>(3 * j);
    const Var s = static_cast<Var>(3 * j + 1);
    const Var b = static_cast<Var>(3 * j + 2);
    const Var y0 = static_cast<Var>(3 * p + 2 * j);
    const Var y1 = static_cast<Var>(3 * p + 2 * j + 1);
    formula.add_existential(y0, {a, s});
    formula.add_existential(y1, {s, b});
    if (params.xor_with_shared) {
      // y0 ⊕ y1 ↔ s  (CNF of a three-way XOR relation).
      formula.matrix().add_ternary(cnf::neg(y0), cnf::neg(y1), cnf::neg(s));
      formula.matrix().add_ternary(cnf::neg(y0), cnf::pos(y1), cnf::pos(s));
      formula.matrix().add_ternary(cnf::pos(y0), cnf::neg(y1), cnf::pos(s));
      formula.matrix().add_ternary(cnf::pos(y0), cnf::pos(y1), cnf::neg(s));
    } else {
      // ¬(y0 ⊕ y1): the exact shape of the paper's §5 limitation example.
      formula.matrix().add_binary(cnf::neg(y0), cnf::pos(y1));
      formula.matrix().add_binary(cnf::pos(y0), cnf::neg(y1));
    }
  }
  return formula;
}

dqbf::DqbfFormula gen_unrealizable(const UnrealizableParams& params) {
  // Constraint j: y_j ↔ (x_aj ⊕ x_bj) with H_j = {x_aj} only — no
  // function of x_aj alone can track x_bj, so the DQBF is False.
  dqbf::DqbfFormula formula;
  const std::size_t p = params.num_constraints;
  for (std::size_t j = 0; j < 2 * p; ++j) {
    formula.add_universal(static_cast<Var>(j));
  }
  for (std::size_t j = 0; j < p; ++j) {
    const Var xa = static_cast<Var>(2 * j);
    const Var xb = static_cast<Var>(2 * j + 1);
    const Var y = static_cast<Var>(2 * p + j);
    formula.add_existential(y, {xa});
    if (params.extension_detectable) {
      // y ↔ xa and y ↔ xb: conflicting whenever xa ≠ xb, so the matrix
      // itself is unsatisfiable under those X — refutable by the
      // extension check of any engine.
      formula.matrix().add_binary(cnf::neg(y), cnf::pos(xa));
      formula.matrix().add_binary(cnf::pos(y), cnf::neg(xa));
      formula.matrix().add_binary(cnf::neg(y), cnf::pos(xb));
      formula.matrix().add_binary(cnf::pos(y), cnf::neg(xb));
    } else {
      // y ↔ xa ⊕ xb.
      formula.matrix().add_ternary(cnf::neg(y), cnf::neg(xa), cnf::neg(xb));
      formula.matrix().add_ternary(cnf::neg(y), cnf::pos(xa), cnf::pos(xb));
      formula.matrix().add_ternary(cnf::pos(y), cnf::neg(xa), cnf::pos(xb));
      formula.matrix().add_ternary(cnf::pos(y), cnf::pos(xa), cnf::neg(xb));
    }
  }
  return formula;
}

}  // namespace manthan::workloads
