// Reduced Ordered Binary Decision Diagrams.
//
// Role in the paper's ecosystem: the function-manipulation engine behind
// elimination-based DQBF solving (HQS2) and behind definition extraction
// (PedantLite). Provides ite with unique/computed tables, Boolean
// quantification, composition, restriction, model counting and support.
//
// Nodes are immutable and hash-consed; ids 0/1 are the false/true
// terminals. Variables are external integer ids mapped to levels in
// declaration order (declare_order can impose a custom order up front).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/cnf.hpp"

namespace manthan::bdd {

using NodeId = std::uint32_t;

inline constexpr NodeId kFalseNode = 0;
inline constexpr NodeId kTrueNode = 1;

/// Thrown from inside BDD operations when the abort hook fires (node or
/// time budget exceeded); callers translate it into a limit/timeout
/// status. Without this, a single ite/exists call on a blown-up graph
/// could run unboundedly between external budget checks.
class BddAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "BDD operation aborted by budget hook";
  }
};

class Bdd {
 public:
  Bdd();

  /// Fix the variable order up front (first = top). Variables not listed
  /// are appended below in order of first use.
  void declare_order(const std::vector<std::int32_t>& vars);

  /// Install an abort predicate, polled periodically from node creation;
  /// when it returns true, the in-flight operation throws BddAborted.
  void set_abort_check(std::function<bool()> check) {
    abort_check_ = std::move(check);
  }

  /// BDD for a single variable (creates it at the bottom of the current
  /// order on first use).
  NodeId var_node(std::int32_t var);
  NodeId literal(std::int32_t var, bool positive);

  static constexpr NodeId constant(bool value) {
    return value ? kTrueNode : kFalseNode;
  }

  // --- operations --------------------------------------------------------
  NodeId ite(NodeId f, NodeId g, NodeId h);
  NodeId not_op(NodeId f) { return ite(f, kFalseNode, kTrueNode); }
  NodeId and_op(NodeId f, NodeId g) { return ite(f, g, kFalseNode); }
  NodeId or_op(NodeId f, NodeId g) { return ite(f, kTrueNode, g); }
  NodeId xor_op(NodeId f, NodeId g) { return ite(f, not_op(g), g); }
  NodeId equiv_op(NodeId f, NodeId g) { return ite(f, g, not_op(g)); }
  NodeId implies_op(NodeId f, NodeId g) { return ite(f, g, kTrueNode); }

  /// Existential / universal quantification over a set of variables.
  NodeId exists(NodeId f, const std::vector<std::int32_t>& vars);
  NodeId forall(NodeId f, const std::vector<std::int32_t>& vars);

  /// Fix a variable to a constant.
  NodeId restrict_var(NodeId f, std::int32_t var, bool value);

  /// Substitute g for var in f: f[var := g].
  NodeId compose(NodeId f, std::int32_t var, NodeId g);

  /// Build the conjunction of a CNF formula (variable i of the formula is
  /// external id i).
  NodeId from_cnf(const cnf::CnfFormula& formula);

  /// Like from_cnf but aborts (returns nullopt) once the manager exceeds
  /// `max_nodes` — used to bound definition-extraction effort.
  std::optional<NodeId> from_cnf_limited(const cnf::CnfFormula& formula,
                                         std::size_t max_nodes);

  /// Variables in the support of f (external ids, sorted by level).
  std::vector<std::int32_t> support(NodeId f) const;

  /// Evaluate under a complete assignment (external id -> value).
  bool evaluate(NodeId f,
                const std::unordered_map<std::int32_t, bool>& values) const;

  /// Number of satisfying assignments over `num_vars` total variables
  /// (all declared variables must be within that space).
  double sat_count(NodeId f, std::size_t num_vars) const;

  /// One satisfying assignment (over support vars; others unconstrained).
  /// Returns false if f is the false terminal.
  bool pick_model(NodeId f,
                  std::unordered_map<std::int32_t, bool>& out) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  /// Count of distinct nodes in the graph of f (including terminals).
  std::size_t dag_size(NodeId f) const;

  std::int32_t var_of(NodeId n) const { return var_of_level_[nodes_[n].level]; }
  bool is_terminal(NodeId n) const { return n <= 1; }
  NodeId low(NodeId n) const { return nodes_[n].lo; }
  NodeId high(NodeId n) const { return nodes_[n].hi; }

 private:
  struct Node {
    std::uint32_t level;
    NodeId lo;
    NodeId hi;
  };

  /// Exact (collision-free) 3-word hash key for the unique and computed
  /// tables.
  struct TripleKey {
    std::uint32_t a, b, c;
    bool operator==(const TripleKey& o) const {
      return a == o.a && b == o.b && c == o.c;
    }
  };
  struct TripleKeyHash {
    std::size_t operator()(const TripleKey& k) const {
      std::uint64_t h = k.a;
      h = h * 0x9e3779b97f4a7c15ULL + k.b;
      h = h * 0x9e3779b97f4a7c15ULL + k.c;
      h ^= h >> 29;
      return static_cast<std::size_t>(h);
    }
  };

  static constexpr std::uint32_t kTerminalLevel = 0x7fffffff;

  std::uint32_t level_of(std::int32_t var);
  NodeId mk(std::uint32_t level, NodeId lo, NodeId hi);
  NodeId quantify(NodeId f, const std::vector<std::uint32_t>& levels,
                  bool existential,
                  std::unordered_map<NodeId, NodeId>& cache);
  NodeId restrict_level(NodeId f, std::uint32_t level, bool value,
                        std::unordered_map<NodeId, NodeId>& cache);

  std::vector<Node> nodes_;
  std::unordered_map<TripleKey, NodeId, TripleKeyHash> unique_;
  std::unordered_map<TripleKey, NodeId, TripleKeyHash> ite_cache_;
  std::unordered_map<std::int32_t, std::uint32_t> level_of_var_;
  std::vector<std::int32_t> var_of_level_;
  std::function<bool()> abort_check_;
  std::uint64_t op_counter_ = 0;
};

/// Convert a BDD into an AIG (multiplexer per node); external variable ids
/// become AIG input ids. Used to hand BDD-extracted definitions to the
/// AIG-based synthesis pipeline.
aig::Ref bdd_to_aig(const Bdd& bdd, NodeId f, aig::Aig& manager);

}  // namespace manthan::bdd
