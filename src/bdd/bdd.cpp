#include "bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>

namespace manthan::bdd {

Bdd::Bdd() {
  nodes_.push_back({kTerminalLevel, kFalseNode, kFalseNode});  // 0: false
  nodes_.push_back({kTerminalLevel, kTrueNode, kTrueNode});    // 1: true
}

void Bdd::declare_order(const std::vector<std::int32_t>& vars) {
  for (const std::int32_t v : vars) level_of(v);
}

std::uint32_t Bdd::level_of(std::int32_t var) {
  const auto it = level_of_var_.find(var);
  if (it != level_of_var_.end()) return it->second;
  const auto level = static_cast<std::uint32_t>(var_of_level_.size());
  level_of_var_.emplace(var, level);
  var_of_level_.push_back(var);
  return level;
}

NodeId Bdd::mk(std::uint32_t level, NodeId lo, NodeId hi) {
  if ((++op_counter_ & 0xfff) == 0 && abort_check_ && abort_check_()) {
    throw BddAborted();
  }
  if (lo == hi) return lo;
  const TripleKey key{level, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({level, lo, hi});
  unique_.emplace(key, id);
  return id;
}

NodeId Bdd::var_node(std::int32_t var) {
  return mk(level_of(var), kFalseNode, kTrueNode);
}

NodeId Bdd::literal(std::int32_t var, bool positive) {
  const std::uint32_t level = level_of(var);
  return positive ? mk(level, kFalseNode, kTrueNode)
                  : mk(level, kTrueNode, kFalseNode);
}

NodeId Bdd::ite(NodeId f, NodeId g, NodeId h) {
  // Terminal cases.
  if (f == kTrueNode) return g;
  if (f == kFalseNode) return h;
  if (g == h) return g;
  if (g == kTrueNode && h == kFalseNode) return f;

  const TripleKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  const std::uint32_t top = std::min(
      {nodes_[f].level, nodes_[g].level, nodes_[h].level});
  const auto cofactor = [&](NodeId n, bool positive) {
    if (nodes_[n].level != top) return n;
    return positive ? nodes_[n].hi : nodes_[n].lo;
  };
  const NodeId hi = ite(cofactor(f, true), cofactor(g, true),
                        cofactor(h, true));
  const NodeId lo = ite(cofactor(f, false), cofactor(g, false),
                        cofactor(h, false));
  const NodeId result = mk(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

NodeId Bdd::quantify(NodeId f, const std::vector<std::uint32_t>& levels,
                     bool existential,
                     std::unordered_map<NodeId, NodeId>& cache) {
  if (is_terminal(f)) return f;
  const auto it = cache.find(f);
  if (it != cache.end()) return it->second;
  const Node n = nodes_[f];
  // Levels are sorted; everything quantified lies at or below some level,
  // but we simply test membership.
  const bool quantify_here =
      std::binary_search(levels.begin(), levels.end(), n.level);
  const NodeId lo = quantify(n.lo, levels, existential, cache);
  const NodeId hi = quantify(n.hi, levels, existential, cache);
  NodeId result;
  if (quantify_here) {
    result = existential ? or_op(lo, hi) : and_op(lo, hi);
  } else {
    result = mk(n.level, lo, hi);
  }
  cache.emplace(f, result);
  return result;
}

NodeId Bdd::exists(NodeId f, const std::vector<std::int32_t>& vars) {
  std::vector<std::uint32_t> levels;
  levels.reserve(vars.size());
  for (const std::int32_t v : vars) levels.push_back(level_of(v));
  std::sort(levels.begin(), levels.end());
  std::unordered_map<NodeId, NodeId> cache;
  return quantify(f, levels, /*existential=*/true, cache);
}

NodeId Bdd::forall(NodeId f, const std::vector<std::int32_t>& vars) {
  std::vector<std::uint32_t> levels;
  levels.reserve(vars.size());
  for (const std::int32_t v : vars) levels.push_back(level_of(v));
  std::sort(levels.begin(), levels.end());
  std::unordered_map<NodeId, NodeId> cache;
  return quantify(f, levels, /*existential=*/false, cache);
}

NodeId Bdd::restrict_level(NodeId f, std::uint32_t level, bool value,
                           std::unordered_map<NodeId, NodeId>& cache) {
  if (is_terminal(f) || nodes_[f].level > level) return f;
  const auto it = cache.find(f);
  if (it != cache.end()) return it->second;
  const Node n = nodes_[f];
  NodeId result;
  if (n.level == level) {
    result = value ? n.hi : n.lo;
  } else {
    result = mk(n.level, restrict_level(n.lo, level, value, cache),
                restrict_level(n.hi, level, value, cache));
  }
  cache.emplace(f, result);
  return result;
}

NodeId Bdd::restrict_var(NodeId f, std::int32_t var, bool value) {
  std::unordered_map<NodeId, NodeId> cache;
  return restrict_level(f, level_of(var), value, cache);
}

NodeId Bdd::compose(NodeId f, std::int32_t var, NodeId g) {
  // f[var := g] == ite(g, f|var=1, f|var=0)
  return ite(g, restrict_var(f, var, true), restrict_var(f, var, false));
}

NodeId Bdd::from_cnf(const cnf::CnfFormula& formula) {
  // Declare variables in index order for a predictable default ordering.
  for (cnf::Var v = 0; v < formula.num_vars(); ++v) level_of(v);
  NodeId acc = kTrueNode;
  for (const cnf::Clause& clause : formula.clauses()) {
    NodeId c = kFalseNode;
    for (const cnf::Lit l : clause) {
      c = or_op(c, literal(l.var(), !l.negated()));
    }
    acc = and_op(acc, c);
    if (acc == kFalseNode) break;
  }
  return acc;
}

std::optional<NodeId> Bdd::from_cnf_limited(const cnf::CnfFormula& formula,
                                            std::size_t max_nodes) {
  for (cnf::Var v = 0; v < formula.num_vars(); ++v) level_of(v);
  NodeId acc = kTrueNode;
  for (const cnf::Clause& clause : formula.clauses()) {
    NodeId c = kFalseNode;
    for (const cnf::Lit l : clause) {
      c = or_op(c, literal(l.var(), !l.negated()));
    }
    acc = and_op(acc, c);
    if (acc == kFalseNode) break;
    if (nodes_.size() > max_nodes) return std::nullopt;
  }
  return acc;
}

std::vector<std::int32_t> Bdd::support(NodeId f) const {
  std::vector<std::int32_t> vars;
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> visited;
  std::vector<std::uint32_t> levels;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (is_terminal(n) || visited.count(n) != 0) continue;
    visited.emplace(n, true);
    levels.push_back(nodes_[n].level);
    stack.push_back(nodes_[n].lo);
    stack.push_back(nodes_[n].hi);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  vars.reserve(levels.size());
  for (const std::uint32_t l : levels) vars.push_back(var_of_level_[l]);
  return vars;
}

bool Bdd::evaluate(
    NodeId f, const std::unordered_map<std::int32_t, bool>& values) const {
  NodeId n = f;
  while (!is_terminal(n)) {
    const auto it = values.find(var_of_level_[nodes_[n].level]);
    assert(it != values.end());
    n = it->second ? nodes_[n].hi : nodes_[n].lo;
  }
  return n == kTrueNode;
}

double Bdd::sat_count(NodeId f, std::size_t num_vars) const {
  // Count over the declared level space, then scale by variables outside
  // the declared order.
  const std::size_t declared = var_of_level_.size();
  std::unordered_map<NodeId, double> cache;
  // count(n) = models over levels strictly below n.level ... standard
  // "scaled at edges" formulation.
  const std::function<double(NodeId)> count = [&](NodeId n) -> double {
    if (n == kFalseNode) return 0.0;
    if (n == kTrueNode) return 1.0;
    const auto it = cache.find(n);
    if (it != cache.end()) return it->second;
    const Node& node = nodes_[n];
    const auto weight = [&](NodeId child) -> double {
      const std::uint32_t child_level =
          is_terminal(child) ? static_cast<std::uint32_t>(declared)
                             : nodes_[child].level;
      return count(child) *
             std::pow(2.0, static_cast<double>(child_level) -
                               static_cast<double>(node.level) - 1.0);
    };
    const double result = weight(node.lo) + weight(node.hi);
    cache.emplace(n, result);
    return result;
  };
  double total;
  if (is_terminal(f)) {
    total = (f == kTrueNode) ? std::pow(2.0, static_cast<double>(declared))
                             : 0.0;
  } else {
    total = count(f) *
            std::pow(2.0, static_cast<double>(nodes_[f].level));
  }
  // Variables beyond the declared order are unconstrained.
  assert(num_vars >= declared);
  return total * std::pow(2.0, static_cast<double>(num_vars - declared));
}

bool Bdd::pick_model(NodeId f,
                     std::unordered_map<std::int32_t, bool>& out) const {
  if (f == kFalseNode) return false;
  NodeId n = f;
  while (!is_terminal(n)) {
    const Node& node = nodes_[n];
    const bool go_high = node.hi != kFalseNode;
    out[var_of_level_[node.level]] = go_high;
    n = go_high ? node.hi : node.lo;
  }
  return true;
}

std::size_t Bdd::dag_size(NodeId f) const {
  std::vector<NodeId> stack{f};
  std::unordered_map<NodeId, bool> visited;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    if (visited.count(n) != 0) continue;
    visited.emplace(n, true);
    if (!is_terminal(n)) {
      stack.push_back(nodes_[n].lo);
      stack.push_back(nodes_[n].hi);
    }
  }
  return visited.size();
}

aig::Ref bdd_to_aig(const Bdd& bdd, NodeId f, aig::Aig& manager) {
  std::unordered_map<NodeId, aig::Ref> memo;
  const std::function<aig::Ref(NodeId)> convert =
      [&](NodeId n) -> aig::Ref {
    if (n == kFalseNode) return aig::kFalseRef;
    if (n == kTrueNode) return aig::kTrueRef;
    const auto it = memo.find(n);
    if (it != memo.end()) return it->second;
    const aig::Ref selector = manager.input(bdd.var_of(n));
    const aig::Ref result = manager.ite_gate(selector, convert(bdd.high(n)),
                                             convert(bdd.low(n)));
    memo.emplace(n, result);
    return result;
  };
  return convert(f);
}

}  // namespace manthan::bdd
