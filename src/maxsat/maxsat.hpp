// Partial MaxSAT via the Fu-Malik core-guided algorithm.
//
// Role in the paper: Open-WBO. Manthan3's FindCandi subroutine makes one
// partial-MaxSAT call per counterexample: the specification plus the
// X-valuation are hard constraints, and (y_i <-> sigma[y'_i]) units are
// soft; the soft clauses falsified in an optimal solution identify the
// candidate functions that must be repaired.
//
// Algorithm: repeatedly solve with one fresh selector literal per active
// soft clause assumed; every UNSAT core yields a set of soft clauses that
// cannot all hold, each of which gets a relaxation variable with an
// at-most-one side constraint; the number of iterations equals the optimum.
#pragma once

#include <vector>

#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace manthan::maxsat {

using cnf::Assignment;
using cnf::Clause;
using cnf::CnfFormula;
using cnf::Lit;
using cnf::Var;

enum class MaxSatStatus { kOptimal, kUnsatisfiableHard, kUnknown };

/// Round-scoped partial MaxSAT over a *shared persistent* SAT solver.
///
/// The repair loop solves one MaxSAT instance per counterexample whose
/// hard part is always  φ ∧ (X ↔ π[X])  and whose soft part is always a
/// set of unit literals (Y ↔ σ[Y']). MaxSatSolver would re-encode φ every
/// round; this class instead borrows a solver that already holds φ (the
/// engine's φ solver) and runs Fu-Malik *inside one activation scope*:
///
///   * hard X-units are plain assumptions — nothing is added for them;
///   * each soft unit gets a selector clause (soft ∨ s), and every
///     Fu-Malik artifact (selector clauses, relaxed copies, at-most-one
///     constraints) is guarded by a single per-round activation literal;
///   * when the round ends the guard is retired, so the borrowed solver
///     keeps only φ plus whatever matrix-level clauses it learnt — those
///     persist and speed up every later extension check, repair query,
///     and MaxSAT round.
class IncrementalMaxSat {
 public:
  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t sat_calls = 0;
    /// Fu-Malik relaxation iterations summed over all rounds (== the sum
    /// of the optima).
    std::uint64_t cores_relaxed = 0;
    /// maintain() calls (inprocessing + compaction on the borrowed solver).
    std::uint64_t maintenance_runs = 0;
  };

  /// `solver` must already contain the hard clauses and outlive the
  /// object; it is returned to root level (with the round's machinery
  /// retired) after every solve_round().
  explicit IncrementalMaxSat(sat::Solver& solver) : solver_(solver) {}

  /// Minimize the number of falsified `soft` unit literals subject to the
  /// solver's clauses plus the `hard` unit assumptions.
  MaxSatStatus solve_round(const std::vector<Lit>& hard,
                           const std::vector<Lit>& soft,
                           const util::Deadline* deadline = nullptr);

  /// Minimum number of falsified softs; valid after kOptimal.
  std::size_t cost() const { return cost_; }
  /// Whether soft literal `index` holds in the optimum found by the last
  /// solve_round().
  bool soft_satisfied(std::size_t index) const { return soft_value_[index]; }

  /// Inter-round maintenance on the borrowed solver: inprocess + compact.
  /// Recycled round variables are unconstrained between rounds, so they
  /// compact away as free drops and revive on demand; the owner is
  /// responsible for freezing its own interface variables (the engine
  /// freezes the matrix block). Call between solve_round()s only.
  /// `cancel` (nullable) is polled between per-item inprocessing steps: a
  /// cancelled token skips the remaining simplification work.
  void maintain(const util::CancelToken* cancel = nullptr);

  /// The optimal assignment (the borrowed solver's full model at the
  /// optimum, so it includes solver-internal selector variables above the
  /// caller's block); valid after kOptimal. The synthesis loop appends it
  /// — truncated to matrix variables — to the training matrix
  /// (cross-round sample reuse: it is a model of φ ∧ (X ↔ π[X])).
  const Assignment& model() const { return model_; }

  const Stats& stats() const { return stats_; }

 private:
  cnf::Var fresh_round_var();

  sat::Solver& solver_;
  std::vector<bool> soft_value_;
  Assignment model_;
  std::size_t cost_ = 0;
  /// Round-local selector/relaxation variables, recycled across rounds:
  /// after retire() every clause (and learnt clause) mentioning them is
  /// gone — they all carried the round guard — so the variables are
  /// completely unconstrained again. Without recycling the borrowed
  /// solver's variable count grows by ~|softs| · iterations every round,
  /// and per-solve O(num_vars) work (model extraction, GC root walks)
  /// turns quadratic in the number of counterexamples. Only the round
  /// guard itself is never recycled: its negation is asserted as a
  /// permanent unit.
  std::vector<Var> round_vars_;
  std::size_t round_vars_used_ = 0;
  Stats stats_;
};

class MaxSatSolver {
 public:
  MaxSatSolver();

  /// Declare the user variable space; solver-internal selector variables
  /// live above this range and never leak into the reported model.
  void ensure_vars(Var n);

  void add_hard(Clause clause);
  void add_hard_formula(const CnfFormula& formula);

  /// Add a soft clause (weight 1); returns its index.
  std::size_t add_soft(Clause clause);

  /// Solve to optimality (or until the deadline expires).
  MaxSatStatus solve(const util::Deadline* deadline = nullptr);

  /// Minimum number of falsified soft clauses; valid after kOptimal.
  std::size_t cost() const { return cost_; }

  /// Optimal assignment restricted to user variables.
  const Assignment& model() const { return model_; }

  /// Whether soft clause `index` holds in the optimal assignment.
  bool soft_satisfied(std::size_t index) const;

 private:
  sat::Solver solver_;
  Var user_vars_ = 0;
  std::vector<Clause> soft_original_;   // as given by the caller
  std::vector<Clause> soft_working_;    // original + relaxation literals
  std::vector<Lit> soft_selector_;      // current selector per soft clause
  std::size_t cost_ = 0;
  Assignment model_;
  bool hard_conflict_ = false;
};

}  // namespace manthan::maxsat
