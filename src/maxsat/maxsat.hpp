// Partial MaxSAT via the Fu-Malik core-guided algorithm.
//
// Role in the paper: Open-WBO. Manthan3's FindCandi subroutine makes one
// partial-MaxSAT call per counterexample: the specification plus the
// X-valuation are hard constraints, and (y_i <-> sigma[y'_i]) units are
// soft; the soft clauses falsified in an optimal solution identify the
// candidate functions that must be repaired.
//
// Algorithm: repeatedly solve with one fresh selector literal per active
// soft clause assumed; every UNSAT core yields a set of soft clauses that
// cannot all hold, each of which gets a relaxation variable with an
// at-most-one side constraint; the number of iterations equals the optimum.
#pragma once

#include <vector>

#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace manthan::maxsat {

using cnf::Assignment;
using cnf::Clause;
using cnf::CnfFormula;
using cnf::Lit;
using cnf::Var;

enum class MaxSatStatus { kOptimal, kUnsatisfiableHard, kUnknown };

class MaxSatSolver {
 public:
  MaxSatSolver();

  /// Declare the user variable space; solver-internal selector variables
  /// live above this range and never leak into the reported model.
  void ensure_vars(Var n);

  void add_hard(Clause clause);
  void add_hard_formula(const CnfFormula& formula);

  /// Add a soft clause (weight 1); returns its index.
  std::size_t add_soft(Clause clause);

  /// Solve to optimality (or until the deadline expires).
  MaxSatStatus solve(const util::Deadline* deadline = nullptr);

  /// Minimum number of falsified soft clauses; valid after kOptimal.
  std::size_t cost() const { return cost_; }

  /// Optimal assignment restricted to user variables.
  const Assignment& model() const { return model_; }

  /// Whether soft clause `index` holds in the optimal assignment.
  bool soft_satisfied(std::size_t index) const;

 private:
  sat::Solver solver_;
  Var user_vars_ = 0;
  std::vector<Clause> soft_original_;   // as given by the caller
  std::vector<Clause> soft_working_;    // original + relaxation literals
  std::vector<Lit> soft_selector_;      // current selector per soft clause
  std::size_t cost_ = 0;
  Assignment model_;
  bool hard_conflict_ = false;
};

}  // namespace manthan::maxsat
