#include "maxsat/maxsat.hpp"

#include <algorithm>
#include <unordered_set>

namespace manthan::maxsat {

Var IncrementalMaxSat::fresh_round_var() {
  if (round_vars_used_ < round_vars_.size()) {
    return round_vars_[round_vars_used_++];
  }
  const Var v = solver_.new_var();
  round_vars_.push_back(v);
  ++round_vars_used_;
  return v;
}

void IncrementalMaxSat::maintain(const util::CancelToken* cancel) {
  ++stats_.maintenance_runs;
  sat::InprocessOptions options;
  options.cancel = cancel;
  // Root-UNSAT means the hard clauses are contradictory; the next
  // solve_round() reports kUnsatisfiableHard on its own.
  if (!solver_.inprocess(options)) return;
  if (cancel != nullptr && cancel->cancelled()) return;
  solver_.compact();
}

MaxSatStatus IncrementalMaxSat::solve_round(const std::vector<Lit>& hard,
                                            const std::vector<Lit>& soft,
                                            const util::Deadline* deadline) {
  ++stats_.rounds;
  cost_ = 0;
  soft_value_.assign(soft.size(), false);
  round_vars_used_ = 0;
  // One activation guard scopes every clause this round adds.
  const Lit round = cnf::pos(solver_.new_var());
  std::vector<Lit> selector(soft.size());
  // Working incarnation of each soft: the unit plus every relaxation
  // literal granted so far (Fu-Malik accumulates them).
  std::vector<Clause> working(soft.size());
  for (std::size_t i = 0; i < soft.size(); ++i) {
    selector[i] = cnf::pos(fresh_round_var());
    working[i] = {soft[i]};
    Clause incarnation = working[i];
    incarnation.push_back(selector[i]);
    solver_.add_clause_activated(incarnation, round);
  }

  MaxSatStatus status = MaxSatStatus::kUnknown;
  std::vector<Lit> assumptions;
  // Hard-only pre-check. With hards as assumptions an unsatisfiable hard
  // part would otherwise keep producing cores that happen to mention soft
  // selectors, relaxing forever; deciding it up front bounds the loop by
  // the classic Fu-Malik argument (in the repair loop this query was just
  // proven satisfiable by the extension check, so it is near-free).
  assumptions.push_back(round);
  assumptions.insert(assumptions.end(), hard.begin(), hard.end());
  {
    ++stats_.sat_calls;
    const sat::Result result =
        deadline != nullptr ? solver_.solve(assumptions, *deadline)
                            : solver_.solve(assumptions);
    if (result != sat::Result::kSat) {
      solver_.retire(round);
      return result == sat::Result::kUnknown
                 ? MaxSatStatus::kUnknown
                 : MaxSatStatus::kUnsatisfiableHard;
    }
  }
  while (true) {
    assumptions.clear();
    assumptions.push_back(round);
    assumptions.insert(assumptions.end(), hard.begin(), hard.end());
    for (const Lit s : selector) assumptions.push_back(~s);
    ++stats_.sat_calls;
    const sat::Result result =
        deadline != nullptr ? solver_.solve(assumptions, *deadline)
                            : solver_.solve(assumptions);
    if (result == sat::Result::kUnknown) {
      status = MaxSatStatus::kUnknown;
      break;
    }
    if (result == sat::Result::kSat) {
      const Assignment& model = solver_.model();
      for (std::size_t i = 0; i < soft.size(); ++i) {
        soft_value_[i] = model.value(soft[i]);
      }
      model_ = model;
      status = MaxSatStatus::kOptimal;
      break;
    }
    // UNSAT: the core is a subset of the assumptions. Soft selectors in it
    // get Fu-Malik-relaxed; a core without any soft selector (hard units,
    // the guard, or the borrowed clauses alone) means the hards conflict.
    std::unordered_set<std::int32_t> core_codes;
    for (const Lit a : solver_.core()) core_codes.insert(a.code());
    std::vector<std::size_t> core_softs;
    for (std::size_t i = 0; i < selector.size(); ++i) {
      if (core_codes.count((~selector[i]).code()) != 0) {
        core_softs.push_back(i);
      }
    }
    if (core_softs.empty()) {
      status = MaxSatStatus::kUnsatisfiableHard;
      break;
    }
    ++cost_;
    ++stats_.cores_relaxed;
    std::vector<Lit> relax_vars;
    relax_vars.reserve(core_softs.size());
    for (const std::size_t i : core_softs) {
      // Disable the old incarnation for the rest of the round ...
      solver_.add_clause_activated({selector[i]}, round);
      // ... and re-add it with one more relaxation literal and a fresh
      // selector.
      const Lit relax = cnf::pos(fresh_round_var());
      relax_vars.push_back(relax);
      working[i].push_back(relax);
      const Lit fresh = cnf::pos(fresh_round_var());
      Clause incarnation = working[i];
      incarnation.push_back(fresh);
      solver_.add_clause_activated(incarnation, round);
      selector[i] = fresh;
    }
    // Pairwise at-most-one over the new relaxation variables.
    for (std::size_t i = 0; i < relax_vars.size(); ++i) {
      for (std::size_t j = i + 1; j < relax_vars.size(); ++j) {
        solver_.add_clause_activated({~relax_vars[i], ~relax_vars[j]}, round);
      }
    }
  }
  // Retiring the guard reclaims every round-local clause (and any learnt
  // clause that recorded it); matrix-level learnt clauses persist.
  solver_.retire(round);
  return status;
}

MaxSatSolver::MaxSatSolver() = default;

void MaxSatSolver::ensure_vars(Var n) {
  user_vars_ = std::max(user_vars_, n);
  solver_.ensure_vars(n);
}

void MaxSatSolver::add_hard(Clause clause) {
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  if (!solver_.add_clause(std::move(clause))) hard_conflict_ = true;
}

void MaxSatSolver::add_hard_formula(const CnfFormula& formula) {
  ensure_vars(formula.num_vars());
  if (!solver_.add_formula(formula)) hard_conflict_ = true;
}

std::size_t MaxSatSolver::add_soft(Clause clause) {
  for (const Lit l : clause) ensure_vars(l.var() + 1);
  const std::size_t index = soft_original_.size();
  soft_original_.push_back(clause);
  // Append a selector: assuming ~selector activates the clause.
  const Lit selector = cnf::pos(solver_.new_var());
  clause.push_back(selector);
  soft_working_.push_back(clause);
  soft_selector_.push_back(selector);
  solver_.add_clause(soft_working_.back());
  return index;
}

MaxSatStatus MaxSatSolver::solve(const util::Deadline* deadline) {
  if (hard_conflict_) return MaxSatStatus::kUnsatisfiableHard;
  cost_ = 0;
  while (true) {
    std::vector<Lit> assumptions;
    assumptions.reserve(soft_selector_.size());
    for (const Lit s : soft_selector_) assumptions.push_back(~s);
    const sat::Result result =
        deadline != nullptr ? solver_.solve(assumptions, *deadline)
                            : solver_.solve(assumptions);
    if (result == sat::Result::kUnknown) return MaxSatStatus::kUnknown;
    if (result == sat::Result::kSat) {
      const Assignment& full = solver_.model();
      model_.resize(static_cast<std::size_t>(user_vars_));
      for (Var v = 0; v < user_vars_; ++v) model_.set(v, full.value(v));
      return MaxSatStatus::kOptimal;
    }
    // UNSAT: the core is a set of ~selector assumptions that cannot hold
    // together. An empty core means the hard clauses alone are UNSAT.
    const std::vector<Lit>& core = solver_.core();
    std::unordered_set<std::int32_t> core_selector_codes;
    for (const Lit a : core) core_selector_codes.insert((~a).code());
    std::vector<std::size_t> core_softs;
    for (std::size_t i = 0; i < soft_selector_.size(); ++i) {
      if (core_selector_codes.count(soft_selector_[i].code()) != 0) {
        core_softs.push_back(i);
      }
    }
    if (core_softs.empty()) return MaxSatStatus::kUnsatisfiableHard;

    // Fu-Malik relaxation: each soft clause in the core gets a fresh
    // relaxation variable; at most one of them may fire.
    ++cost_;
    std::vector<Lit> relax_vars;
    relax_vars.reserve(core_softs.size());
    for (const std::size_t i : core_softs) {
      // Permanently disable the old incarnation of the clause ...
      solver_.add_clause({soft_selector_[i]});
      // ... and re-add it with an extra relaxation literal and a fresh
      // selector.
      const Lit relax = cnf::pos(solver_.new_var());
      relax_vars.push_back(relax);
      Clause next = soft_working_[i];
      next.pop_back();  // old selector
      next.push_back(relax);
      const Lit selector = cnf::pos(solver_.new_var());
      next.push_back(selector);
      soft_working_[i] = next;
      soft_selector_[i] = selector;
      solver_.add_clause(next);
    }
    // Pairwise at-most-one over the new relaxation variables.
    for (std::size_t i = 0; i < relax_vars.size(); ++i) {
      for (std::size_t j = i + 1; j < relax_vars.size(); ++j) {
        solver_.add_clause({~relax_vars[i], ~relax_vars[j]});
      }
    }
  }
}

bool MaxSatSolver::soft_satisfied(std::size_t index) const {
  const Clause& clause = soft_original_[index];
  return std::any_of(clause.begin(), clause.end(),
                     [&](Lit l) { return model_.value(l); });
}

}  // namespace manthan::maxsat
