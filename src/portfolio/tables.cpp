#include "portfolio/tables.hpp"

#include <iomanip>
#include <ostream>

namespace manthan::portfolio {

void print_cactus(std::ostream& out,
                  const std::vector<std::string>& series_names,
                  const std::vector<std::vector<double>>& series) {
  out << "# cactus: column k = cumulative time at which the k-th instance"
         " is solved\n";
  out << std::left << std::setw(10) << "solved";
  for (const std::string& name : series_names) {
    out << std::right << std::setw(18) << name;
  }
  out << '\n';
  std::size_t max_len = 0;
  for (const auto& s : series) max_len = std::max(max_len, s.size());
  for (std::size_t k = 0; k < max_len; ++k) {
    out << std::left << std::setw(10) << (k + 1);
    for (const auto& s : series) {
      if (k < s.size()) {
        out << std::right << std::setw(18) << std::fixed
            << std::setprecision(4) << s[k];
      } else {
        out << std::right << std::setw(18) << "-";
      }
    }
    out << '\n';
  }
  out << "# totals:";
  for (std::size_t i = 0; i < series.size(); ++i) {
    out << ' ' << series_names[i] << '=' << series[i].size();
  }
  out << '\n';
}

void print_scatter(std::ostream& out, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<ScatterPoint>& points,
                   double timeout_value) {
  out << "# scatter: " << x_name << " (x) vs " << y_name << " (y); "
      << timeout_value << " marks timeout\n";
  out << std::left << std::setw(28) << "instance" << std::right
      << std::setw(14) << x_name.substr(0, 13) << std::setw(14)
      << y_name.substr(0, 13) << '\n';
  std::size_t x_wins = 0;
  std::size_t y_wins = 0;
  std::size_t x_only = 0;
  std::size_t y_only = 0;
  for (const ScatterPoint& p : points) {
    out << std::left << std::setw(28) << p.instance << std::right
        << std::setw(14) << std::fixed << std::setprecision(4) << p.x_seconds
        << std::setw(14) << p.y_seconds << '\n';
    const bool xs = p.x_seconds < timeout_value;
    const bool ys = p.y_seconds < timeout_value;
    if (xs && (!ys || p.x_seconds < p.y_seconds)) ++x_wins;
    if (ys && (!xs || p.y_seconds < p.x_seconds)) ++y_wins;
    if (xs && !ys) ++x_only;
    if (ys && !xs) ++y_only;
  }
  out << "# " << x_name << " faster on " << x_wins << " (exclusive "
      << x_only << "), " << y_name << " faster on " << y_wins
      << " (exclusive " << y_only << ") of " << points.size()
      << " instances\n";
}

void print_solved_counts(std::ostream& out, const SolvedCounts& c) {
  out << "# solved-counts summary (paper §6 headline numbers)\n";
  out << "total instances:                 " << c.total_instances << '\n';
  out << "solved by HqsLite:               " << c.solved_hqs << '\n';
  out << "solved by PedantLite:            " << c.solved_pedant << '\n';
  out << "solved by Manthan3:              " << c.solved_manthan3 << '\n';
  out << "VBS(HqsLite,PedantLite):         " << c.vbs_without_manthan3
      << '\n';
  out << "VBS(+Manthan3):                  " << c.vbs_with_manthan3 << '\n';
  out << "VBS improvement by Manthan3:     "
      << c.vbs_with_manthan3 - c.vbs_without_manthan3 << '\n';
  out << "Manthan3 unique solves:          " << c.manthan3_unique << '\n';
  out << "Manthan3 strictly fastest on:    " << c.manthan3_fastest << '\n';
  out << "Manthan3 solves, HqsLite not:    " << c.manthan3_not_hqs << '\n';
  out << "Manthan3 solves, PedantLite not: " << c.manthan3_not_pedant
      << '\n';
  out << "baselines solve, Manthan3 not:   " << c.others_not_manthan3
      << '\n';
  out << "  of which Manthan3 incomplete:  " << c.manthan3_incomplete
      << '\n';
  out << "  of which Manthan3 timed out:   " << c.manthan3_timeout << '\n';
  out << "instances proven False:          " << c.unrealizable_detected
      << '\n';
}

void print_run_records(std::ostream& out,
                       const std::vector<RunRecord>& records) {
  out << std::left << std::setw(28) << "instance" << std::setw(14)
      << "family" << std::setw(12) << "engine" << std::setw(14) << "status"
      << std::setw(6) << "cert" << std::right << std::setw(12) << "seconds"
      << '\n';
  for (const RunRecord& r : records) {
    out << std::left << std::setw(28) << r.instance << std::setw(14)
        << r.family << std::setw(12) << engine_name(r.engine)
        << std::setw(14) << status_name(r.status) << std::setw(6)
        << (r.solved() ? "yes" : (r.status ==
                                  core::SynthesisStatus::kRealizable
                                      ? "NO!"
                                      : "-"))
        << std::right << std::setw(12) << std::fixed << std::setprecision(4)
        << r.seconds << '\n';
  }
}

}  // namespace manthan::portfolio
