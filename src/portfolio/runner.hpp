// Multi-engine evaluation harness.
//
// Reproduces the paper's evaluation methodology (§6): run every engine on
// every instance under a per-instance budget, certify every returned
// vector with the independent checker, and derive Virtual Best Synthesizer
// (VBS) portfolios. "Solved" always means *synthesized and certified* —
// an engine never gets credit for an uncertified answer.
#pragma once

#include <string>
#include <vector>

#include "core/manthan3.hpp"
#include "engine/engine.hpp"
#include "engine/service.hpp"
#include "workloads/workloads.hpp"

namespace manthan::portfolio {

// The engine identity and naming live in the execution-engine subsystem
// (src/engine/); the portfolio layer re-exports them for its clients.
using EngineKind = engine::EngineKind;
using engine::engine_name;
using engine::status_name;

struct RunRecord {
  std::string instance;
  std::string family;
  EngineKind engine = EngineKind::kManthan3;
  core::SynthesisStatus status = core::SynthesisStatus::kLimit;
  /// Certificate-checker verdict for kRealizable results.
  bool certified = false;
  /// Answered from a service's tier-1 result cache (service-routed
  /// suites only; the direct paths always solve).
  bool cache_hit = false;
  double seconds = 0.0;
  core::SynthesisStats stats;

  /// Synthesized a Henkin vector that passed independent certification.
  bool solved() const {
    return status == core::SynthesisStatus::kRealizable && certified;
  }
};

struct RunnerOptions {
  /// Per-instance, per-engine wall-clock budget (the paper's 7200 s,
  /// scaled to laptop instances).
  double per_instance_seconds = 5.0;
  /// Options forwarded to Manthan3 (ablation benches override these).
  core::Manthan3Options manthan3;
  /// Suite-level seed. Every (instance, engine) job derives its own
  /// stream with util::derive_seed(seed, hash64(instance name), engine),
  /// so parallel and serial runs draw identical randomness per job — see
  /// the determinism contract in util/rng.hpp.
  std::uint64_t seed = 42;
};

/// Fan-out configuration for the parallel run_suite path.
struct ParallelOptions {
  /// Scheduler worker count; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options = {});

  /// Run one engine on one instance and certify the result. Thread-safe:
  /// only reads the runner's options.
  RunRecord run_one(const workloads::Instance& instance,
                    EngineKind engine) const;

  /// Run every engine on every instance, serially.
  std::vector<RunRecord> run_suite(
      const std::vector<workloads::Instance>& suite,
      const std::vector<EngineKind>& engines) const;

  /// Fan the instance×engine jobs across a scheduler thread pool.
  /// Records come back in the serial path's order (instance-major), and
  /// the per-job seed derivation makes them identical to a serial run
  /// (up to wall-clock fields and timing-dependent statuses — irrelevant
  /// when budgets are comfortable).
  std::vector<RunRecord> run_suite(
      const std::vector<workloads::Instance>& suite,
      const std::vector<EngineKind>& engines,
      const ParallelOptions& parallel) const;

  /// Route the suite through a synthesis service: every (instance,
  /// engine) pair is submitted with the engine forced, the service's
  /// pool provides the parallelism, and duplicate instances (including
  /// isomorphic renamings) are answered from the tier-1 cache —
  /// cache-served records carry cache_hit = true and the cached run's
  /// stats. Seeds derive from spec fingerprints (the service's
  /// contract), not instance names, so timings differ from the direct
  /// paths while statuses agree under comfortable budgets. The runner's
  /// per_instance_seconds overrides the service default budget.
  std::vector<RunRecord> run_suite(
      const std::vector<workloads::Instance>& suite,
      const std::vector<EngineKind>& engines,
      engine::Service& service) const;

 private:
  RunnerOptions options_;
};

// --- portfolio analytics ----------------------------------------------------

/// Runtime of the virtual best synthesizer on each instance: the minimum
/// solving time among `engines` (only instances solved by at least one).
/// Returned sorted ascending — exactly the series of a cactus plot.
std::vector<double> vbs_cactus_series(const std::vector<RunRecord>& records,
                                      const std::vector<EngineKind>& engines);

/// (x, y) pairs for a scatter plot: per instance, the solving time of each
/// engine (or `timeout_value` when unsolved). VBS of several engines can
/// be requested by passing multiple kinds on one axis.
struct ScatterPoint {
  std::string instance;
  double x_seconds;
  double y_seconds;
};
std::vector<ScatterPoint> scatter_points(
    const std::vector<RunRecord>& records,
    const std::vector<EngineKind>& x_engines,
    const std::vector<EngineKind>& y_engines, double timeout_value);

/// Headline counts of §6: per-tool solved, VBS with/without Manthan3,
/// fastest-tool counts, unique solves, and Manthan3's
/// incomplete-vs-timeout split.
struct SolvedCounts {
  std::size_t total_instances = 0;
  std::size_t solved_manthan3 = 0;
  std::size_t solved_hqs = 0;
  std::size_t solved_pedant = 0;
  std::size_t vbs_without_manthan3 = 0;
  std::size_t vbs_with_manthan3 = 0;
  std::size_t manthan3_unique = 0;       // solved by Manthan3 only
  std::size_t manthan3_fastest = 0;      // strictly fastest among solvers
  std::size_t manthan3_not_hqs = 0;      // Manthan3 yes, HQS no
  std::size_t manthan3_not_pedant = 0;   // Manthan3 yes, Pedant no
  std::size_t others_not_manthan3 = 0;   // some baseline yes, Manthan3 no
  std::size_t manthan3_incomplete = 0;   // of the misses: incompleteness
  std::size_t manthan3_timeout = 0;      // of the misses: budget
  std::size_t unrealizable_detected = 0; // False verdicts (any engine)
};
SolvedCounts compute_solved_counts(const std::vector<RunRecord>& records);

}  // namespace manthan::portfolio
