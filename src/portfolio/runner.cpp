#include "portfolio/runner.hpp"

#include <algorithm>
#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <thread>

#include "dqbf/certificate.hpp"
#include "engine/scheduler.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::portfolio {

Runner::Runner(RunnerOptions options) : options_(options) {}

RunRecord Runner::run_one(const workloads::Instance& instance,
                          EngineKind engine) const {
  RunRecord record;
  record.instance = instance.name;
  record.family = instance.family;
  record.engine = engine;

  aig::Aig manager;
  util::Timer timer;
  engine::EngineOptions engine_options;
  engine_options.time_limit_seconds = options_.per_instance_seconds;
  // Job-local stream: a function of the suite seed and the job identity
  // only, so the parallel fan-out replays the serial run exactly.
  engine_options.seed =
      util::derive_seed(options_.seed, util::hash64(instance.name),
                        static_cast<std::uint64_t>(engine));
  engine_options.manthan3 = options_.manthan3;
  const core::SynthesisResult result =
      engine::run_engine(instance.formula, manager, engine, engine_options);
  record.seconds = timer.seconds();
  record.status = result.status;
  record.stats = result.stats;
  if (result.status == core::SynthesisStatus::kRealizable) {
    const dqbf::CertificateResult cert =
        dqbf::check_certificate(instance.formula, manager, result.vector);
    record.certified = cert.status == dqbf::CertificateStatus::kValid;
  }
  return record;
}

std::vector<RunRecord> Runner::run_suite(
    const std::vector<workloads::Instance>& suite,
    const std::vector<EngineKind>& engines) const {
  std::vector<RunRecord> records;
  records.reserve(suite.size() * engines.size());
  for (const workloads::Instance& instance : suite) {
    for (const EngineKind engine : engines) {
      records.push_back(run_one(instance, engine));
    }
  }
  return records;
}

std::vector<RunRecord> Runner::run_suite(
    const std::vector<workloads::Instance>& suite,
    const std::vector<EngineKind>& engines,
    const ParallelOptions& parallel) const {
  const std::size_t total = suite.size() * engines.size();
  std::vector<RunRecord> records(total);
  if (total == 0) return records;

  std::size_t workers = parallel.workers != 0
                            ? parallel.workers
                            : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  workers = std::min(workers, total);

  engine::Scheduler pool(workers);
  std::vector<std::future<void>> futures;
  futures.reserve(total);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t e = 0; e < engines.size(); ++e) {
      // Slot addressing reproduces the serial instance-major order no
      // matter which worker finishes first.
      const std::size_t slot = i * engines.size() + e;
      futures.push_back(pool.submit([this, &suite, &engines, &records, i, e,
                                     slot]() {
        records[slot] = run_one(suite[i], engines[e]);
      }));
    }
  }
  for (std::future<void>& f : futures) f.get();
  return records;
}

std::vector<RunRecord> Runner::run_suite(
    const std::vector<workloads::Instance>& suite,
    const std::vector<EngineKind>& engines,
    engine::Service& service) const {
  // Submit everything up front (instance-major, matching the serial
  // order), then collect: the service queues the backlog across its own
  // workers, and duplicate specs coalesce or hit the result cache.
  std::vector<std::shared_future<engine::ServiceResponse>> futures;
  futures.reserve(suite.size() * engines.size());
  for (const workloads::Instance& instance : suite) {
    for (const EngineKind engine : engines) {
      engine::SolveOptions solve_options;
      solve_options.time_limit_seconds = options_.per_instance_seconds;
      solve_options.engine = engine;
      futures.push_back(service.submit(instance.formula, solve_options));
    }
  }

  std::vector<RunRecord> records;
  records.reserve(futures.size());
  std::size_t slot = 0;
  for (const workloads::Instance& instance : suite) {
    for (const EngineKind engine : engines) {
      const engine::ServiceResponse response = futures[slot++].get();
      RunRecord record;
      record.instance = instance.name;
      record.family = instance.family;
      record.engine = engine;
      record.status = response.status;
      record.certified = response.certified;
      record.cache_hit = response.cache_hit;
      record.seconds = response.solve_seconds;
      record.stats = response.stats;
      records.push_back(std::move(record));
    }
  }
  return records;
}

namespace {

/// instance -> engine -> solving time (only solved runs).
std::map<std::string, std::map<EngineKind, double>> solved_times(
    const std::vector<RunRecord>& records) {
  std::map<std::string, std::map<EngineKind, double>> times;
  for (const RunRecord& r : records) {
    if (r.solved()) times[r.instance][r.engine] = r.seconds;
  }
  return times;
}

std::vector<std::string> all_instances(const std::vector<RunRecord>& records) {
  std::vector<std::string> names;
  for (const RunRecord& r : records) names.push_back(r.instance);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// Min time of any engine in `engines` on `instance`; +inf when unsolved.
double best_time(const std::map<std::string, std::map<EngineKind, double>>& t,
                 const std::string& instance,
                 const std::vector<EngineKind>& engines) {
  double best = std::numeric_limits<double>::infinity();
  const auto it = t.find(instance);
  if (it == t.end()) return best;
  for (const EngineKind e : engines) {
    const auto et = it->second.find(e);
    if (et != it->second.end()) best = std::min(best, et->second);
  }
  return best;
}

}  // namespace

std::vector<double> vbs_cactus_series(const std::vector<RunRecord>& records,
                                      const std::vector<EngineKind>& engines) {
  const auto times = solved_times(records);
  std::vector<double> series;
  for (const std::string& instance : all_instances(records)) {
    const double t = best_time(times, instance, engines);
    if (t < std::numeric_limits<double>::infinity()) series.push_back(t);
  }
  std::sort(series.begin(), series.end());
  return series;
}

std::vector<ScatterPoint> scatter_points(
    const std::vector<RunRecord>& records,
    const std::vector<EngineKind>& x_engines,
    const std::vector<EngineKind>& y_engines, double timeout_value) {
  const auto times = solved_times(records);
  std::vector<ScatterPoint> points;
  for (const std::string& instance : all_instances(records)) {
    const double x = best_time(times, instance, x_engines);
    const double y = best_time(times, instance, y_engines);
    points.push_back(
        {instance, std::isfinite(x) ? x : timeout_value,
         std::isfinite(y) ? y : timeout_value});
  }
  return points;
}

SolvedCounts compute_solved_counts(const std::vector<RunRecord>& records) {
  SolvedCounts counts;
  const auto times = solved_times(records);
  const std::vector<std::string> instances = all_instances(records);
  counts.total_instances = instances.size();

  // Index Manthan3's non-solved statuses for the incompleteness split.
  std::map<std::string, core::SynthesisStatus> manthan3_status;
  for (const RunRecord& r : records) {
    if (r.engine == EngineKind::kManthan3) manthan3_status[r.instance] = r.status;
    if (r.status == core::SynthesisStatus::kUnrealizable) {
      // counted once per record; summarized below per instance
    }
  }
  std::map<std::string, bool> unrealizable;
  for (const RunRecord& r : records) {
    if (r.status == core::SynthesisStatus::kUnrealizable) {
      unrealizable[r.instance] = true;
    }
  }
  for (const auto& [instance, flag] : unrealizable) {
    (void)instance;
    if (flag) ++counts.unrealizable_detected;
  }

  const std::vector<EngineKind> m3{EngineKind::kManthan3};
  const std::vector<EngineKind> hqs{EngineKind::kHqsLite};
  const std::vector<EngineKind> pedant{EngineKind::kPedantLite};
  const std::vector<EngineKind> baselines{EngineKind::kHqsLite,
                                          EngineKind::kPedantLite};
  const std::vector<EngineKind> all{EngineKind::kManthan3,
                                    EngineKind::kHqsLite,
                                    EngineKind::kPedantLite};
  for (const std::string& instance : instances) {
    const double tm = best_time(times, instance, m3);
    const double th = best_time(times, instance, hqs);
    const double tp = best_time(times, instance, pedant);
    const double tb = best_time(times, instance, baselines);
    const bool sm = std::isfinite(tm);
    const bool sh = std::isfinite(th);
    const bool sp = std::isfinite(tp);
    const bool sb = std::isfinite(tb);
    if (sm) ++counts.solved_manthan3;
    if (sh) ++counts.solved_hqs;
    if (sp) ++counts.solved_pedant;
    if (sb) ++counts.vbs_without_manthan3;
    if (sm || sb) ++counts.vbs_with_manthan3;
    if (sm && !sb) ++counts.manthan3_unique;
    if (sm && !sh) ++counts.manthan3_not_hqs;
    if (sm && !sp) ++counts.manthan3_not_pedant;
    if (!sm && sb) {
      ++counts.others_not_manthan3;
      const auto it = manthan3_status.find(instance);
      if (it != manthan3_status.end()) {
        if (it->second == core::SynthesisStatus::kIncomplete) {
          ++counts.manthan3_incomplete;
        } else {
          ++counts.manthan3_timeout;
        }
      }
    }
    if (sm) {
      const double others = best_time(times, instance, baselines);
      if (tm < others) ++counts.manthan3_fastest;
    }
    (void)all;
  }
  return counts;
}

}  // namespace manthan::portfolio
