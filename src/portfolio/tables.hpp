// Text rendering of the paper's figures and tables.
//
// The benches print these to stdout; EXPERIMENTS.md records the output
// next to the paper's reported numbers.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "portfolio/runner.hpp"

namespace manthan::portfolio {

/// Cactus plot (Fig 6): "instances solved within t seconds" series, one
/// row per solved instance, for any number of named series.
void print_cactus(std::ostream& out,
                  const std::vector<std::string>& series_names,
                  const std::vector<std::vector<double>>& series);

/// Scatter plot (Figs 7-10): one row per instance with both runtimes;
/// `timeout_value` marks unsolved sides.
void print_scatter(std::ostream& out, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<ScatterPoint>& points,
                   double timeout_value);

/// Headline counts table (§6 text).
void print_solved_counts(std::ostream& out, const SolvedCounts& counts);

/// Per-run detail table (engine × instance with status and time).
void print_run_records(std::ostream& out,
                       const std::vector<RunRecord>& records);

}  // namespace manthan::portfolio
