#include "core/unique_def.hpp"

#include <algorithm>

namespace manthan::core {

UniqueDefExtractor::UniqueDefExtractor(const dqbf::DqbfFormula& formula,
                                       UniqueDefOptions options)
    : formula_(formula), options_(options) {}

bool UniqueDefExtractor::ensure_padoa_solver() {
  if (padoa_solver_.has_value()) return !padoa_broken_;
  padoa_solver_.emplace();
  sat::Solver& solver = *padoa_solver_;
  const cnf::CnfFormula& matrix = formula_.matrix();
  shift_ = matrix.num_vars();
  solver.ensure_vars(2 * shift_);

  // φ(V) and φ(V').
  for (const cnf::Clause& clause : matrix.clauses()) {
    solver.add_clause(clause);
    cnf::Clause shifted;
    shifted.reserve(clause.size());
    for (const cnf::Lit l : clause) {
      shifted.push_back(cnf::Lit(l.var() + shift_, l.negated()));
    }
    solver.add_clause(shifted);
  }
  // One activation selector per universal: s_x -> (x <-> x').
  universal_eq_selector_.clear();
  for (const cnf::Var x : formula_.universals()) {
    const cnf::Lit s = cnf::pos(solver.new_var());
    solver.add_clause({~s, cnf::neg(x), cnf::pos(x + shift_)});
    solver.add_clause({~s, cnf::pos(x), cnf::neg(x + shift_)});
    universal_eq_selector_.push_back(s);
  }
  padoa_broken_ = false;
  return true;
}

UniqueDefExtractor::Defined UniqueDefExtractor::is_defined(
    std::size_t i, const util::Deadline* deadline) {
  if (!ensure_padoa_solver()) return Defined::kUnknown;
  sat::Solver& solver = *padoa_solver_;
  const dqbf::Existential& e = formula_.existentials()[i];

  std::vector<cnf::Lit> assumptions;
  const std::vector<cnf::Var>& universals = formula_.universals();
  for (std::size_t pos = 0; pos < universals.size(); ++pos) {
    if (std::binary_search(e.deps.begin(), e.deps.end(), universals[pos])) {
      assumptions.push_back(universal_eq_selector_[pos]);
    }
  }
  assumptions.push_back(cnf::pos(e.var));
  assumptions.push_back(cnf::neg(e.var + shift_));

  const sat::Result result = deadline != nullptr
                                 ? solver.solve(assumptions, *deadline)
                                 : solver.solve(assumptions);
  switch (result) {
    case sat::Result::kUnsat: return Defined::kYes;
    case sat::Result::kSat: return Defined::kNo;
    case sat::Result::kUnknown: return Defined::kUnknown;
  }
  return Defined::kUnknown;
}

bool UniqueDefExtractor::ensure_matrix_bdd() {
  if (bdd_failed_) return false;
  if (bdd_.has_value()) return true;
  if (static_cast<std::size_t>(formula_.matrix().num_vars()) >
      options_.max_matrix_vars) {
    bdd_failed_ = true;
    return false;
  }
  bdd_.emplace();
  bdd_->set_abort_check(
      [this]() { return bdd_->num_nodes() > options_.max_bdd_nodes; });
  try {
    const std::optional<bdd::NodeId> built =
        bdd_->from_cnf_limited(formula_.matrix(), options_.max_bdd_nodes);
    if (!built.has_value()) {
      bdd_.reset();
      bdd_failed_ = true;
      return false;
    }
    matrix_bdd_ = *built;
  } catch (const bdd::BddAborted&) {
    bdd_.reset();
    bdd_failed_ = true;
    return false;
  }
  return true;
}

std::optional<aig::Ref> UniqueDefExtractor::extract(std::size_t i,
                                                    aig::Aig& manager) {
  if (!ensure_matrix_bdd()) return std::nullopt;
  const dqbf::Existential& e = formula_.existentials()[i];

  // Quantify out everything except H_i ∪ {y_i}, then cofactor y_i := 1.
  std::vector<std::int32_t> eliminate;
  for (cnf::Var v = 0; v < formula_.matrix().num_vars(); ++v) {
    if (v == e.var) continue;
    if (std::binary_search(e.deps.begin(), e.deps.end(), v)) continue;
    eliminate.push_back(v);
  }
  try {
    const bdd::NodeId projected = bdd_->exists(matrix_bdd_, eliminate);
    const bdd::NodeId definition =
        bdd_->restrict_var(projected, e.var, true);
    return bdd_to_aig(*bdd_, definition, manager);
  } catch (const bdd::BddAborted&) {
    return std::nullopt;
  }
}

}  // namespace manthan::core
