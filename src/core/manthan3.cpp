#include "core/manthan3.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <future>
#include <optional>
#include <unordered_map>

#include "core/dependency.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/incremental_refutation.hpp"
#include "maxsat/maxsat.hpp"
#include "sat/solver.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"

namespace manthan::core {

namespace {

using cnf::Lit;
using cnf::Var;

/// Unit-constraint literal: (v <-> value) as a single literal.
Lit unit_lit(Var v, bool value) {
  return value ? cnf::pos(v) : cnf::neg(v);
}

// Salt words separating the engine's derived RNG streams (see the
// determinism contract in util/rng.hpp): per-existential learning
// streams and per-round verify-solver reseeds must never collide.
constexpr std::uint64_t kLearnSalt = 0x4c4541524eULL;   // "LEARN"
constexpr std::uint64_t kVerifySalt = 0x564552494659ULL;  // "VERIFY"

}  // namespace

Manthan3::Manthan3(Manthan3Options options) : options_(options) {}

SynthesisResult Manthan3::synthesize(const dqbf::DqbfFormula& formula,
                                     aig::Aig& manager) {
  util::Timer total_timer;
  const util::Deadline deadline(options_.time_limit_seconds, options_.cancel);
  SynthesisResult result;
  SynthesisStats& stats = result.stats;
  const cnf::CnfFormula& matrix = formula.matrix();
  const std::vector<dqbf::Existential>& ex = formula.existentials();
  const std::size_t m = ex.size();

  // Persistent specification solver: extension checks (Algorithm 1,
  // line 13), repair queries G_k (Algorithm 3, line 9), and — in the
  // incremental pipeline — the per-counterexample MaxSAT rounds all run
  // on it with assumptions, sharing one matrix encoding and one learnt
  // clause database across the whole synthesis run.
  sat::Solver phi_solver;
  // Persistent verification solver (incremental pipeline): constructed
  // once before the verify/repair loop, lives in this scope so finish()
  // can snapshot its stats.
  std::optional<dqbf::IncrementalRefutation> verifier;

  const auto finish = [&](SynthesisStatus status) {
    result.status = status;
    stats.total_seconds = total_timer.seconds();
    const sat::SolverStats& phi_stats = phi_solver.stats();
    stats.phi_vars = static_cast<std::size_t>(phi_stats.vars_allocated);
    stats.phi_clauses_retired =
        static_cast<std::size_t>(phi_stats.retired_clauses);
    stats.activations_retired =
        static_cast<std::size_t>(phi_stats.retired_activations);
    if (verifier.has_value()) {
      const dqbf::IncrementalRefutation::Stats& vstats = verifier->stats();
      stats.cones_encoded = static_cast<std::size_t>(vstats.cones_encoded);
      stats.cones_reused = static_cast<std::size_t>(vstats.cones_reused);
      stats.aig_nodes_encoded =
          static_cast<std::size_t>(vstats.aig_nodes_encoded);
      stats.activations_retired +=
          static_cast<std::size_t>(vstats.activations_retired);
      const sat::SolverStats& vs = verifier->solver().stats();
      stats.verify_vars = static_cast<std::size_t>(vs.vars_allocated);
      stats.verify_clauses_retired =
          static_cast<std::size_t>(vs.retired_clauses);
    }
    return result;
  };

  if (!phi_solver.add_formula(matrix)) {
    // The matrix is unsatisfiable: no X-assignment extends, so the DQBF
    // is False (unless there are no universals either, still False).
    return finish(SynthesisStatus::kUnrealizable);
  }

  // ---- Data generation (Algorithm 1, line 1) ----------------------------
  util::Timer phase_timer;
  sampler::SamplerOptions sampler_options = options_.sampler;
  sampler_options.seed = options_.seed;
  sampler::Sampler sampler(sampler_options);
  std::vector<Var> y_vars;
  y_vars.reserve(m);
  for (const dqbf::Existential& e : ex) y_vars.push_back(e.var);
  std::vector<cnf::Assignment> samples =
      sampler.sample(matrix, y_vars, &deadline);
  stats.sampling_seconds = phase_timer.seconds();
  stats.samples = samples.size();
  if (samples.empty()) {
    // UNSAT matrix or the deadline hit before the first model.
    const sat::Result r = phi_solver.solve({}, deadline);
    if (r == sat::Result::kUnsat) return finish(SynthesisStatus::kUnrealizable);
    if (r == sat::Result::kUnknown) return finish(SynthesisStatus::kTimeout);
    samples.push_back(phi_solver.model());
    stats.samples = 1;
  }

  // ---- Static ordering constraints (Algorithm 1, lines 3-5) -------------
  DependencyManager dep(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      // H_j ⊂ H_i (strict): y_i may come to depend on y_j; pre-commit the
      // ordering edge so learning can never create a cycle.
      if (formula.deps_subset(j, i) && !formula.deps_equal(j, i) &&
          dep.can_use(i, j)) {
        dep.record_use(i, j);
      }
    }
  }

  std::vector<aig::Ref> f(m, aig::kFalseRef);
  std::vector<bool> fixed(m, false);

  // ---- UNIQUE-style preprocessing ---------------------------------------
  if (options_.use_unique_extraction) {
    UniqueDefExtractor unique(formula, options_.unique);
    for (std::size_t i = 0; i < m; ++i) {
      if (deadline.expired()) break;
      if (unique.is_defined(i, &deadline) !=
          UniqueDefExtractor::Defined::kYes) {
        continue;
      }
      const std::optional<aig::Ref> def = unique.extract(i, manager);
      if (def.has_value()) {
        f[i] = *def;
        fixed[i] = true;
        ++stats.unique_defined;
      }
    }
  }

  // ---- Candidate learning (Algorithm 2) ---------------------------------
  // Feature sets are pre-committed before any fitting so the fits are
  // mutually independent (parallelizable): y_j is an admissible feature
  // of y_i iff H_j ⊂ H_i strictly, or H_j == H_i and j < i. The fixed
  // orientation of equal-dependency pairs keeps the feature relation
  // acyclic without serializing feature selection on the learnt supports
  // (the pre-refactor code admitted whichever direction was fitted
  // first). Fitting itself is pure — rows, labels, and a derive_seed-split
  // DtreeOptions stream per existential — so any worker count produces
  // bit-identical trees; AIG construction and support recording stay
  // serial in index order.
  phase_timer.reset();
  const std::size_t learn_workers =
      std::max<std::size_t>(1, options_.learn_workers);
  stats.learn_workers = learn_workers;
  std::vector<std::vector<Var>> feature_vars(m);
  std::vector<std::vector<aig::Ref>> feature_refs(m);
  std::vector<std::size_t> jobs;
  jobs.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (fixed[i]) continue;
    feature_vars[i].assign(ex[i].deps.begin(), ex[i].deps.end());
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i || !formula.deps_subset(j, i)) continue;
      const bool strict = !formula.deps_equal(j, i);
      if ((strict || j < i) && dep.can_use(i, j)) {
        feature_vars[i].push_back(ex[j].var);
      }
    }
    feature_refs[i].reserve(feature_vars[i].size());
    for (const Var v : feature_vars[i]) {
      feature_refs[i].push_back(manager.input(v));
    }
    jobs.push_back(i);
  }

  const auto fit_one = [&](std::size_t i) {
    std::vector<std::vector<bool>> rows;
    rows.reserve(samples.size());
    std::vector<bool> labels;
    labels.reserve(samples.size());
    for (const cnf::Assignment& s : samples) {
      std::vector<bool> row;
      row.reserve(feature_vars[i].size());
      for (const Var v : feature_vars[i]) row.push_back(s.value(v));
      rows.push_back(std::move(row));
      labels.push_back(s.value(ex[i].var));
    }
    dtree::DtreeOptions dt = options_.dtree;
    dt.seed = util::derive_seed(options_.seed, kLearnSalt, i);
    return dtree::DecisionTree::fit(rows, labels, dt);
  };

  std::vector<dtree::DecisionTree> trees(m);
  if (learn_workers > 1 && jobs.size() > 1) {
    // The pool class lives in util precisely so this layer can use it;
    // the engine module (which links against core) re-exports it as
    // engine::Scheduler for the portfolio-facing clients.
    util::Scheduler pool(std::min(learn_workers, jobs.size()));
    std::vector<std::future<dtree::DecisionTree>> futures;
    futures.reserve(jobs.size());
    for (const std::size_t i : jobs) {
      futures.push_back(pool.submit([&fit_one, i]() { return fit_one(i); }));
    }
    for (std::size_t k = 0; k < jobs.size(); ++k) {
      trees[jobs[k]] = futures[k].get();
    }
  } else {
    for (const std::size_t i : jobs) trees[i] = fit_one(i);
  }

  for (const std::size_t i : jobs) {
    f[i] = trees[i].to_aig(manager, feature_refs[i]);
    ++stats.learned_candidates;
    // Record which existentials actually appear in the candidate
    // (Algorithm 2, lines 11-12).
    for (const std::int32_t id : manager.support(f[i])) {
      if (!formula.is_existential(static_cast<Var>(id))) continue;
      const std::size_t j = formula.existential_index(static_cast<Var>(id));
      if (dep.can_use(i, j)) dep.record_use(i, j);
    }
  }
  stats.learning_seconds = phase_timer.seconds();

  // ---- FindOrder (Algorithm 1, line 8) -----------------------------------
  const std::vector<std::size_t> order = dep.find_order();
  std::vector<std::size_t> order_pos(m, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    order_pos[order[pos]] = pos;
  }

  const auto substitute_and_return = [&]() {
    // Substitute (Algorithm 1, line 19): walk Order from its tail so that
    // every referenced existential is already expressed over universals.
    std::vector<aig::Ref> final_functions(m, aig::kFalseRef);
    std::unordered_map<std::int32_t, aig::Ref> substitution;
    for (std::size_t pos = order.size(); pos-- > 0;) {
      const std::size_t k = order[pos];
      final_functions[k] = manager.compose(f[k], substitution);
      substitution[ex[k].var] = final_functions[k];
    }
    result.vector.functions = std::move(final_functions);
    return finish(SynthesisStatus::kRealizable);
  };

  // ---- Verify / repair loop (Algorithm 1, lines 9-18) --------------------
  // The incremental pipeline keeps both oracles warm across rounds: the
  // verify solver re-encodes only repaired cones (activation literals
  // retire the stale output equivalences), and the MaxSAT rounds run as
  // activation-scoped Fu-Malik sessions on the φ solver, whose matrix
  // encoding and learnt clauses persist for the whole run.
  if (options_.incremental) {
    // Default solver options: the search RNG is reseeded from the round's
    // derived stream before every check(), so a construction seed would
    // never influence a solve.
    verifier.emplace(formula, manager);
  }
  maxsat::IncrementalMaxSat repair_maxsat(phi_solver);

  // Consecutive counterexamples for which no candidate could be repaired;
  // a fresh verification round may produce a different (repairable)
  // counterexample, so incompleteness is only declared after several
  // fruitless rounds in a row.
  std::size_t no_progress_rounds = 0;
  constexpr std::size_t kMaxNoProgressRounds = 12;
  while (true) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (stats.counterexamples >= options_.max_counterexamples) {
      return finish(SynthesisStatus::kLimit);
    }

    phase_timer.reset();
    // Vary the search seed per round so a stuck repair sees a different
    // counterexample next time instead of the same one forever.
    const std::uint64_t round_seed = util::derive_seed(
        options_.seed, kVerifySalt, stats.counterexamples + 1);
    const double round_branch_freq = no_progress_rounds > 0 ? 0.1 : 0.0;
    const bool round_random_polarity = no_progress_rounds > 0;
    sat::Result verify_result;
    std::optional<sat::Solver> oneshot_solver;  // oracle mode: owns δ
    if (options_.incremental) {
      sat::Solver& verify_solver = verifier->solver();
      verify_solver.reseed(round_seed);
      verify_solver.options().random_branch_freq = round_branch_freq;
      verify_solver.options().random_polarity = round_random_polarity;
      verify_result = verifier->check(dqbf::HenkinVector{f}, deadline);
    } else {
      const cnf::CnfFormula refutation =
          dqbf::build_refutation_cnf(formula, manager, dqbf::HenkinVector{f});
      sat::SolverOptions verify_options;
      verify_options.seed = round_seed;
      verify_options.random_branch_freq = round_branch_freq;
      verify_options.random_polarity = round_random_polarity;
      oneshot_solver.emplace(verify_options);
      if (!oneshot_solver->add_formula(refutation)) {
        verify_result = sat::Result::kUnsat;
      } else {
        verify_result = oneshot_solver->solve({}, deadline);
      }
    }
    stats.verify_seconds += phase_timer.seconds();
    if (verify_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (verify_result == sat::Result::kUnsat) return substitute_and_return();

    // δ: counterexample candidate-output assignment. Check whether δ[X]
    // extends to a model of φ at all (Algorithm 1, line 13).
    const cnf::Assignment& delta =
        options_.incremental ? verifier->model() : oneshot_solver->model();
    std::vector<Lit> x_assumptions;
    x_assumptions.reserve(formula.universals().size());
    for (const Var x : formula.universals()) {
      x_assumptions.push_back(unit_lit(x, delta.value(x)));
    }
    const sat::Result extend_result = phi_solver.solve(x_assumptions, deadline);
    if (extend_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (extend_result == sat::Result::kUnsat) {
      return finish(SynthesisStatus::kUnrealizable);
    }
    const cnf::Assignment pi = phi_solver.model();
    ++stats.counterexamples;

    // σ = π[X] + π[Y] + δ[Y'] (line 16). The working Y'-values are the
    // current candidate outputs; they are updated as repairs land.
    std::vector<bool> sigma_yp(m);
    for (std::size_t i = 0; i < m; ++i) sigma_yp[i] = delta.value(ex[i].var);

    // ---- RepairHkF (Algorithm 3) ----------------------------------------
    phase_timer.reset();
    // FindCandi: MaxSAT with φ ∧ (X ↔ σ[X]) hard, (Y ↔ σ[Y']) soft.
    ++stats.maxsat_calls;
    maxsat::MaxSatStatus ms_status;
    std::function<bool(std::size_t)> soft_satisfied;
    std::optional<maxsat::MaxSatSolver> oneshot_maxsat;  // oracle mode
    if (options_.incremental) {
      std::vector<Lit> hard_units;
      hard_units.reserve(formula.universals().size());
      for (const Var x : formula.universals()) {
        hard_units.push_back(unit_lit(x, pi.value(x)));
      }
      std::vector<Lit> soft_units;
      soft_units.reserve(m);
      for (std::size_t i = 0; i < m; ++i) {
        soft_units.push_back(unit_lit(ex[i].var, sigma_yp[i]));
      }
      ms_status = repair_maxsat.solve_round(hard_units, soft_units, &deadline);
      soft_satisfied = [&](std::size_t i) {
        return repair_maxsat.soft_satisfied(i);
      };
    } else {
      oneshot_maxsat.emplace();
      oneshot_maxsat->add_hard_formula(matrix);
      for (const Var x : formula.universals()) {
        oneshot_maxsat->add_hard({unit_lit(x, pi.value(x))});
      }
      for (std::size_t i = 0; i < m; ++i) {
        oneshot_maxsat->add_soft({unit_lit(ex[i].var, sigma_yp[i])});
      }
      ms_status = oneshot_maxsat->solve(&deadline);
      soft_satisfied = [&](std::size_t i) {
        return oneshot_maxsat->soft_satisfied(i);
      };
    }
    if (ms_status == maxsat::MaxSatStatus::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (ms_status == maxsat::MaxSatStatus::kUnsatisfiableHard) {
      // Cannot happen (π witnesses satisfiability); fail safe.
      return finish(SynthesisStatus::kIncomplete);
    }
    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < m; ++i) {
      if (!soft_satisfied(i)) queue.push_back(i);
    }

    std::vector<bool> processed(m, false);
    std::size_t repairs_this_cex = 0;
    while (!queue.empty()) {
      if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
      if (stats.repair_checks >= options_.max_repair_iterations) {
        return finish(SynthesisStatus::kLimit);
      }
      const std::size_t k = queue.front();
      queue.pop_front();
      if (processed[k]) continue;
      processed[k] = true;

      // Ŷ = {y_j : H_j ⊆ H_k, Order(y_j) > Order(y_k)} (line 6). Fixing
      // these lets the core mention admissible Y features (§5's example).
      std::vector<std::size_t> yhat;
      if (options_.use_yhat_in_repair) {
        for (std::size_t j = 0; j < m; ++j) {
          if (j != k && formula.deps_subset(j, k) &&
              order_pos[j] > order_pos[k]) {
            yhat.push_back(j);
          }
        }
      }
      std::vector<bool> in_yhat(m, false);
      for (const std::size_t j : yhat) in_yhat[j] = true;

      // G_k = (y_k ↔ σ[y'_k]) ∧ φ ∧ (H_k ↔ σ[H_k]) ∧ (Ŷ ↔ σ[Ŷ]) as
      // assumptions on the persistent φ solver (line 8).
      std::vector<Lit> assumptions;
      assumptions.push_back(unit_lit(ex[k].var, sigma_yp[k]));
      for (const Var x : ex[k].deps) {
        assumptions.push_back(unit_lit(x, pi.value(x)));
      }
      for (const std::size_t j : yhat) {
        assumptions.push_back(unit_lit(ex[j].var, sigma_yp[j]));
      }
      ++stats.repair_checks;
      const sat::Result gk_result = phi_solver.solve(assumptions, deadline);
      if (gk_result == sat::Result::kUnknown) {
        return finish(SynthesisStatus::kTimeout);
      }
      if (gk_result == sat::Result::kUnsat) {
        // Build β from the unit clauses in the UNSAT core (lines 11-12).
        std::vector<aig::Ref> beta_lits;
        for (const Lit l : phi_solver.core()) {
          if (l.var() == ex[k].var) continue;
          const aig::Ref in = manager.input(l.var());
          beta_lits.push_back(l.negated() ? aig::ref_not(in) : in);
        }
        if (beta_lits.empty()) {
          // β is empty: the documented repair failure mode (§5); nothing
          // to strengthen or weaken with.
          continue;
        }
        const aig::Ref beta = manager.and_all(beta_lits);
        // Strengthen or weaken (line 13).
        f[k] = sigma_yp[k] ? manager.and_gate(f[k], aig::ref_not(beta))
                           : manager.or_gate(f[k], beta);
        sigma_yp[k] = !sigma_yp[k];  // output on this counterexample flipped
        ++repairs_this_cex;
        ++stats.repairs;
        for (const std::int32_t id : manager.support(beta)) {
          if (!formula.is_existential(static_cast<Var>(id))) continue;
          const std::size_t j =
              formula.existential_index(static_cast<Var>(id));
          if (dep.can_use(k, j) && !dep.depends_on(k, j)) {
            dep.record_use(k, j);
          }
        }
      } else {
        // G_k is SAT: y_k can keep its output; some other candidate must
        // move. Enqueue every y_t whose model value disagrees with its
        // current output (lines 15-17).
        const cnf::Assignment& rho = phi_solver.model();
        for (std::size_t t = 0; t < m; ++t) {
          if (t == k || in_yhat[t] || processed[t]) continue;
          if (rho.value(ex[t].var) != sigma_yp[t]) queue.push_back(t);
        }
      }
    }
    stats.repair_seconds += phase_timer.seconds();
    if (repairs_this_cex == 0) {
      // No candidate could be repaired for this counterexample: the
      // engine's documented incompleteness (§5). Retry a few rounds with
      // randomized verification in case another counterexample is
      // repairable, then give up.
      if (++no_progress_rounds >= kMaxNoProgressRounds) {
        return finish(SynthesisStatus::kIncomplete);
      }
    } else {
      no_progress_rounds = 0;
    }
  }
}

}  // namespace manthan::core
