#include "core/manthan3.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "core/dependency.hpp"
#include "dqbf/certificate.hpp"
#include "maxsat/maxsat.hpp"
#include "sat/solver.hpp"
#include "util/log.hpp"

namespace manthan::core {

namespace {

using cnf::Lit;
using cnf::Var;

/// Unit-constraint literal: (v <-> value) as a single literal.
Lit unit_lit(Var v, bool value) {
  return value ? cnf::pos(v) : cnf::neg(v);
}

}  // namespace

Manthan3::Manthan3(Manthan3Options options) : options_(options) {}

SynthesisResult Manthan3::synthesize(const dqbf::DqbfFormula& formula,
                                     aig::Aig& manager) {
  util::Timer total_timer;
  const util::Deadline deadline(options_.time_limit_seconds, options_.cancel);
  SynthesisResult result;
  SynthesisStats& stats = result.stats;
  const cnf::CnfFormula& matrix = formula.matrix();
  const std::vector<dqbf::Existential>& ex = formula.existentials();
  const std::size_t m = ex.size();

  const auto finish = [&](SynthesisStatus status) {
    result.status = status;
    stats.total_seconds = total_timer.seconds();
    return result;
  };

  // Persistent specification solver: extension checks (Algorithm 1,
  // line 13) and repair queries G_k (Algorithm 3, line 9) run on it with
  // assumptions, sharing learnt clauses across the whole synthesis run.
  sat::Solver phi_solver;
  if (!phi_solver.add_formula(matrix)) {
    // The matrix is unsatisfiable: no X-assignment extends, so the DQBF
    // is False (unless there are no universals either, still False).
    return finish(SynthesisStatus::kUnrealizable);
  }

  // ---- Data generation (Algorithm 1, line 1) ----------------------------
  util::Timer phase_timer;
  sampler::SamplerOptions sampler_options = options_.sampler;
  sampler_options.seed = options_.seed;
  sampler::Sampler sampler(sampler_options);
  std::vector<Var> y_vars;
  y_vars.reserve(m);
  for (const dqbf::Existential& e : ex) y_vars.push_back(e.var);
  std::vector<cnf::Assignment> samples =
      sampler.sample(matrix, y_vars, &deadline);
  stats.sampling_seconds = phase_timer.seconds();
  stats.samples = samples.size();
  if (samples.empty()) {
    // UNSAT matrix or the deadline hit before the first model.
    const sat::Result r = phi_solver.solve({}, deadline);
    if (r == sat::Result::kUnsat) return finish(SynthesisStatus::kUnrealizable);
    if (r == sat::Result::kUnknown) return finish(SynthesisStatus::kTimeout);
    samples.push_back(phi_solver.model());
    stats.samples = 1;
  }

  // ---- Static ordering constraints (Algorithm 1, lines 3-5) -------------
  DependencyManager dep(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      // H_j ⊂ H_i (strict): y_i may come to depend on y_j; pre-commit the
      // ordering edge so learning can never create a cycle.
      if (formula.deps_subset(j, i) && !formula.deps_equal(j, i) &&
          dep.can_use(i, j)) {
        dep.record_use(i, j);
      }
    }
  }

  std::vector<aig::Ref> f(m, aig::kFalseRef);
  std::vector<bool> fixed(m, false);

  // ---- UNIQUE-style preprocessing ---------------------------------------
  if (options_.use_unique_extraction) {
    UniqueDefExtractor unique(formula, options_.unique);
    for (std::size_t i = 0; i < m; ++i) {
      if (deadline.expired()) break;
      if (unique.is_defined(i, &deadline) !=
          UniqueDefExtractor::Defined::kYes) {
        continue;
      }
      const std::optional<aig::Ref> def = unique.extract(i, manager);
      if (def.has_value()) {
        f[i] = *def;
        fixed[i] = true;
        ++stats.unique_defined;
      }
    }
  }

  // ---- Candidate learning (Algorithm 2) ---------------------------------
  phase_timer.reset();
  for (std::size_t i = 0; i < m; ++i) {
    if (fixed[i]) continue;
    // featset = H_i plus admissible existentials (H_j ⊆ H_i, no cycle).
    std::vector<Var> feature_vars(ex[i].deps.begin(), ex[i].deps.end());
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i) continue;
      if (formula.deps_subset(j, i) && dep.can_use(i, j)) {
        feature_vars.push_back(ex[j].var);
      }
    }
    std::vector<aig::Ref> feature_refs;
    feature_refs.reserve(feature_vars.size());
    for (const Var v : feature_vars) feature_refs.push_back(manager.input(v));

    std::vector<std::vector<bool>> rows;
    rows.reserve(samples.size());
    std::vector<bool> labels;
    labels.reserve(samples.size());
    for (const cnf::Assignment& s : samples) {
      std::vector<bool> row;
      row.reserve(feature_vars.size());
      for (const Var v : feature_vars) row.push_back(s.value(v));
      rows.push_back(std::move(row));
      labels.push_back(s.value(ex[i].var));
    }
    const dtree::DecisionTree tree =
        dtree::DecisionTree::fit(rows, labels, options_.dtree);
    f[i] = tree.to_aig(manager, feature_refs);
    ++stats.learned_candidates;

    // Record which existentials actually appear in the candidate
    // (Algorithm 2, lines 11-12).
    for (const std::int32_t id : manager.support(f[i])) {
      if (!formula.is_existential(static_cast<Var>(id))) continue;
      const std::size_t j =
          formula.existential_index(static_cast<Var>(id));
      if (dep.can_use(i, j)) dep.record_use(i, j);
    }
  }
  stats.learning_seconds = phase_timer.seconds();

  // ---- FindOrder (Algorithm 1, line 8) -----------------------------------
  const std::vector<std::size_t> order = dep.find_order();
  std::vector<std::size_t> order_pos(m, 0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    order_pos[order[pos]] = pos;
  }

  const auto substitute_and_return = [&]() {
    // Substitute (Algorithm 1, line 19): walk Order from its tail so that
    // every referenced existential is already expressed over universals.
    std::vector<aig::Ref> final_functions(m, aig::kFalseRef);
    std::unordered_map<std::int32_t, aig::Ref> substitution;
    for (std::size_t pos = order.size(); pos-- > 0;) {
      const std::size_t k = order[pos];
      final_functions[k] = manager.compose(f[k], substitution);
      substitution[ex[k].var] = final_functions[k];
    }
    result.vector.functions = std::move(final_functions);
    return finish(SynthesisStatus::kRealizable);
  };

  // ---- Verify / repair loop (Algorithm 1, lines 9-18) --------------------
  // Consecutive counterexamples for which no candidate could be repaired;
  // a fresh verification round may produce a different (repairable)
  // counterexample, so incompleteness is only declared after several
  // fruitless rounds in a row.
  std::size_t no_progress_rounds = 0;
  constexpr std::size_t kMaxNoProgressRounds = 12;
  while (true) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (stats.counterexamples >= options_.max_counterexamples) {
      return finish(SynthesisStatus::kLimit);
    }

    phase_timer.reset();
    dqbf::HenkinVector candidate{f};
    const cnf::CnfFormula refutation =
        dqbf::build_refutation_cnf(formula, manager, candidate);
    sat::SolverOptions verify_options;
    // Vary the search seed per round so a stuck repair sees a different
    // counterexample next time instead of the same one forever.
    verify_options.seed = options_.seed + 0x9e37 * (stats.counterexamples + 1);
    verify_options.random_branch_freq = no_progress_rounds > 0 ? 0.1 : 0.0;
    verify_options.random_polarity = no_progress_rounds > 0;
    sat::Solver verify_solver(verify_options);
    sat::Result verify_result;
    if (!verify_solver.add_formula(refutation)) {
      verify_result = sat::Result::kUnsat;
    } else {
      verify_result = verify_solver.solve({}, deadline);
    }
    stats.verify_seconds += phase_timer.seconds();
    if (verify_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (verify_result == sat::Result::kUnsat) return substitute_and_return();

    // δ: counterexample candidate-output assignment. Check whether δ[X]
    // extends to a model of φ at all (Algorithm 1, line 13).
    const cnf::Assignment& delta = verify_solver.model();
    std::vector<Lit> x_assumptions;
    x_assumptions.reserve(formula.universals().size());
    for (const Var x : formula.universals()) {
      x_assumptions.push_back(unit_lit(x, delta.value(x)));
    }
    const sat::Result extend_result = phi_solver.solve(x_assumptions, deadline);
    if (extend_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (extend_result == sat::Result::kUnsat) {
      return finish(SynthesisStatus::kUnrealizable);
    }
    const cnf::Assignment pi = phi_solver.model();
    ++stats.counterexamples;

    // σ = π[X] + π[Y] + δ[Y'] (line 16). The working Y'-values are the
    // current candidate outputs; they are updated as repairs land.
    std::vector<bool> sigma_yp(m);
    for (std::size_t i = 0; i < m; ++i) sigma_yp[i] = delta.value(ex[i].var);

    // ---- RepairHkF (Algorithm 3) ----------------------------------------
    phase_timer.reset();
    // FindCandi: MaxSAT with φ ∧ (X ↔ σ[X]) hard, (Y ↔ σ[Y']) soft.
    maxsat::MaxSatSolver maxsat;
    maxsat.add_hard_formula(matrix);
    for (const Var x : formula.universals()) {
      maxsat.add_hard({unit_lit(x, pi.value(x))});
    }
    for (std::size_t i = 0; i < m; ++i) {
      maxsat.add_soft({unit_lit(ex[i].var, sigma_yp[i])});
    }
    ++stats.maxsat_calls;
    const maxsat::MaxSatStatus ms_status = maxsat.solve(&deadline);
    if (ms_status == maxsat::MaxSatStatus::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (ms_status == maxsat::MaxSatStatus::kUnsatisfiableHard) {
      // Cannot happen (π witnesses satisfiability); fail safe.
      return finish(SynthesisStatus::kIncomplete);
    }
    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < m; ++i) {
      if (!maxsat.soft_satisfied(i)) queue.push_back(i);
    }

    std::vector<bool> processed(m, false);
    std::size_t repairs_this_cex = 0;
    while (!queue.empty()) {
      if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
      if (stats.repair_checks >= options_.max_repair_iterations) {
        return finish(SynthesisStatus::kLimit);
      }
      const std::size_t k = queue.front();
      queue.pop_front();
      if (processed[k]) continue;
      processed[k] = true;

      // Ŷ = {y_j : H_j ⊆ H_k, Order(y_j) > Order(y_k)} (line 6). Fixing
      // these lets the core mention admissible Y features (§5's example).
      std::vector<std::size_t> yhat;
      if (options_.use_yhat_in_repair) {
        for (std::size_t j = 0; j < m; ++j) {
          if (j != k && formula.deps_subset(j, k) &&
              order_pos[j] > order_pos[k]) {
            yhat.push_back(j);
          }
        }
      }
      std::vector<bool> in_yhat(m, false);
      for (const std::size_t j : yhat) in_yhat[j] = true;

      // G_k = (y_k ↔ σ[y'_k]) ∧ φ ∧ (H_k ↔ σ[H_k]) ∧ (Ŷ ↔ σ[Ŷ]) as
      // assumptions on the persistent φ solver (line 8).
      std::vector<Lit> assumptions;
      assumptions.push_back(unit_lit(ex[k].var, sigma_yp[k]));
      for (const Var x : ex[k].deps) {
        assumptions.push_back(unit_lit(x, pi.value(x)));
      }
      for (const std::size_t j : yhat) {
        assumptions.push_back(unit_lit(ex[j].var, sigma_yp[j]));
      }
      ++stats.repair_checks;
      const sat::Result gk_result = phi_solver.solve(assumptions, deadline);
      if (gk_result == sat::Result::kUnknown) {
        return finish(SynthesisStatus::kTimeout);
      }
      if (gk_result == sat::Result::kUnsat) {
        // Build β from the unit clauses in the UNSAT core (lines 11-12).
        std::vector<aig::Ref> beta_lits;
        for (const Lit l : phi_solver.core()) {
          if (l.var() == ex[k].var) continue;
          const aig::Ref in = manager.input(l.var());
          beta_lits.push_back(l.negated() ? aig::ref_not(in) : in);
        }
        if (beta_lits.empty()) {
          // β is empty: the documented repair failure mode (§5); nothing
          // to strengthen or weaken with.
          continue;
        }
        const aig::Ref beta = manager.and_all(beta_lits);
        // Strengthen or weaken (line 13).
        f[k] = sigma_yp[k] ? manager.and_gate(f[k], aig::ref_not(beta))
                           : manager.or_gate(f[k], beta);
        sigma_yp[k] = !sigma_yp[k];  // output on this counterexample flipped
        ++repairs_this_cex;
        ++stats.repairs;
        for (const std::int32_t id : manager.support(beta)) {
          if (!formula.is_existential(static_cast<Var>(id))) continue;
          const std::size_t j =
              formula.existential_index(static_cast<Var>(id));
          if (dep.can_use(k, j) && !dep.depends_on(k, j)) {
            dep.record_use(k, j);
          }
        }
      } else {
        // G_k is SAT: y_k can keep its output; some other candidate must
        // move. Enqueue every y_t whose model value disagrees with its
        // current output (lines 15-17).
        const cnf::Assignment& rho = phi_solver.model();
        for (std::size_t t = 0; t < m; ++t) {
          if (t == k || in_yhat[t] || processed[t]) continue;
          if (rho.value(ex[t].var) != sigma_yp[t]) queue.push_back(t);
        }
      }
    }
    stats.repair_seconds += phase_timer.seconds();
    if (repairs_this_cex == 0) {
      // No candidate could be repaired for this counterexample: the
      // engine's documented incompleteness (§5). Retry a few rounds with
      // randomized verification in case another counterexample is
      // repairable, then give up.
      if (++no_progress_rounds >= kMaxNoProgressRounds) {
        return finish(SynthesisStatus::kIncomplete);
      }
    } else {
      no_progress_rounds = 0;
    }
  }
}

}  // namespace manthan::core
