#include "core/manthan3.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "aig/aig_sim.hpp"
#include "cnf/sample_matrix.hpp"
#include "core/dependency.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/fingerprint.hpp"
#include "dqbf/incremental_refutation.hpp"
#include "maxsat/maxsat.hpp"
#include "obs/memory.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/scheduler.hpp"
#include "util/simd.hpp"

namespace manthan::core {

namespace {

using cnf::Lit;
using cnf::Var;

/// Unit-constraint literal: (v <-> value) as a single literal.
Lit unit_lit(Var v, bool value) {
  return value ? cnf::pos(v) : cnf::neg(v);
}

// Salt words separating the engine's derived RNG streams (see the
// determinism contract in util/rng.hpp): per-existential learning
// streams and per-round verify-solver reseeds must never collide.
// Learning salts are offset by the refit generation (kLearnSalt + g), so
// generation 0 reproduces the pre-reuse stream exactly and every refit
// pass draws a fresh — but worker-invariant — stream per existential.
constexpr std::uint64_t kLearnSalt = 0x4c4541524eULL;   // "LEARN"
constexpr std::uint64_t kVerifySalt = 0x564552494659ULL;  // "VERIFY"

/// Mismatches between a packed candidate simulation and the label column,
/// restricted to rows [from_row, num_samples). The refit screen passes the
/// sample count of the previous fit: disagreement with rows the candidate
/// was already fitted on (and deliberately traded away, or diverged from
/// via an UNSAT-core repair) is not staleness — only the rows appended
/// since then are fresh evidence.
std::size_t packed_mismatches_since(const std::vector<std::uint64_t>& sim,
                                    const std::uint64_t* label,
                                    const cnf::SampleMatrix& samples,
                                    std::size_t from_row) {
  // No tail masking needed: simulate_matrix returns its last word already
  // masked, and label column tail bits are zero by construction — so the
  // tail of (sim ^ label) is zero. Only the from_row head word is partial.
  const std::size_t words = samples.num_words();
  std::size_t w = from_row >> 6;
  if (w >= words) return 0;
  const util::simd::Kernels& kernels = util::simd::kernels();
  std::size_t count = 0;
  if ((from_row & 63) != 0) {
    const std::uint64_t diff =
        (sim[w] ^ label[w]) & ~((1ULL << (from_row & 63)) - 1);
    count += kernels.popcount(&diff, 1);
    ++w;
  }
  return count + kernels.popcount_xor(sim.data() + w, label + w, words - w);
}

}  // namespace

Manthan3::Manthan3(Manthan3Options options) : options_(options) {}

SynthesisResult Manthan3::synthesize(const dqbf::DqbfFormula& formula,
                                     aig::Aig& manager) {
  util::Timer total_timer;
  // Chaos-testing hook: replay a deterministic fault schedule for this
  // run. Counters reset here, so the schedule indexes polls from the
  // start of synthesize().
  if (!options_.fault_spec.empty()) util::fault::install(options_.fault_spec);
  const util::Deadline deadline(options_.time_limit_seconds, options_.cancel);
  // Telemetry only: spans tag every phase of this run with the caller's
  // trace id (the service passes the spec fingerprint). When tracing is
  // off each Span costs one relaxed atomic load.
  const std::uint64_t trace_id = options_.trace_id;
  obs::Span run_span("synthesize", "phase", trace_id);
  SynthesisResult result;
  SynthesisStats& stats = result.stats;
  const cnf::CnfFormula& matrix = formula.matrix();
  const std::vector<dqbf::Existential>& ex = formula.existentials();
  const std::size_t m = ex.size();

  // Persistent specification solver: extension checks (Algorithm 1,
  // line 13), repair queries G_k (Algorithm 3, line 9), and — in the
  // incremental pipeline — the per-counterexample MaxSAT rounds all run
  // on it with assumptions, sharing one matrix encoding and one learnt
  // clause database across the whole synthesis run.
  sat::Solver phi_solver;
  // Persistent verification solver (incremental pipeline): constructed
  // once before the verify/repair loop, lives in this scope so finish()
  // can snapshot its stats.
  std::optional<dqbf::IncrementalRefutation> verifier;
  // Training matrix; declared before finish() so the exit snapshot can
  // report its footprint. Filled by the sampling phase below.
  cnf::SampleMatrix samples;

  const auto finish = [&](SynthesisStatus status) {
    result.status = status;
    stats.total_seconds = total_timer.seconds();
    const sat::SolverStats& phi_stats = phi_solver.stats();
    stats.phi_vars = static_cast<std::size_t>(phi_stats.vars_allocated);
    stats.phi_clauses_retired =
        static_cast<std::size_t>(phi_stats.retired_clauses);
    stats.activations_retired =
        static_cast<std::size_t>(phi_stats.retired_activations);
    const auto add_maintenance = [&stats](const sat::SolverStats& s) {
      stats.inprocess_runs += static_cast<std::size_t>(s.inprocess_runs);
      stats.eliminated_vars += static_cast<std::size_t>(s.eliminated_vars);
      stats.subsumed_clauses += static_cast<std::size_t>(s.subsumed_clauses);
      stats.vivified_literals +=
          static_cast<std::size_t>(s.vivified_literals);
      stats.remapped_vars += static_cast<std::size_t>(s.remapped_vars);
    };
    add_maintenance(phi_stats);
    if (verifier.has_value()) {
      const dqbf::IncrementalRefutation::Stats& vstats = verifier->stats();
      stats.cones_encoded = static_cast<std::size_t>(vstats.cones_encoded);
      stats.cones_reused = static_cast<std::size_t>(vstats.cones_reused);
      stats.aig_nodes_encoded =
          static_cast<std::size_t>(vstats.aig_nodes_encoded);
      stats.activations_retired +=
          static_cast<std::size_t>(vstats.activations_retired);
      const sat::SolverStats& vs = verifier->solver().stats();
      stats.verify_vars = static_cast<std::size_t>(vs.vars_allocated);
      stats.verify_clauses_retired =
          static_cast<std::size_t>(vs.retired_clauses);
      stats.verify_arena_bytes = vs.arena_bytes;
      add_maintenance(vs);
    }
    // Memory snapshot (process-global values; see the stats doc).
    stats.peak_rss_bytes = obs::peak_rss_bytes();
    stats.sample_matrix_bytes = samples.bytes();
    stats.phi_arena_bytes = phi_stats.arena_bytes;
    stats.aig_nodes = manager.num_nodes();
    stats.aig_bytes = manager.node_bytes();
    // Publish run counters into the global registry (core_* series).
    // Instrument references are cached after the first run.
    auto& registry = obs::Registry::global();
    static obs::Counter& runs = registry.counter("core_runs_total");
    static obs::Counter& cex =
        registry.counter("core_counterexamples_total");
    static obs::Counter& repairs = registry.counter("core_repairs_total");
    static obs::Counter& maxsat_calls =
        registry.counter("core_maxsat_calls_total");
    static obs::Counter& refits = registry.counter("core_refit_rounds_total");
    static obs::Counter& streamed =
        registry.counter("core_streamed_samples_total");
    static obs::Counter& adaptive =
        registry.counter("core_adaptive_refits_total");
    static obs::Counter& samples_total =
        registry.counter("core_samples_total");
    static obs::Histogram& run_seconds =
        registry.histogram("core_synthesize_seconds");
    static obs::Gauge& matrix_peak =
        registry.gauge("core_sample_matrix_peak_bytes");
    static obs::Gauge& aig_peak = registry.gauge("core_aig_peak_bytes");
    runs.inc();
    cex.add(stats.counterexamples);
    repairs.add(stats.repairs);
    maxsat_calls.add(stats.maxsat_calls);
    refits.add(stats.refit_rounds);
    streamed.add(stats.gk_streamed_samples);
    adaptive.add(stats.adaptive_refits);
    samples_total.add(stats.samples + stats.samples_appended);
    run_seconds.observe(stats.total_seconds);
    matrix_peak.update_max(static_cast<double>(stats.sample_matrix_bytes));
    aig_peak.update_max(static_cast<double>(stats.aig_bytes));
    return result;
  };

  // The whole pipeline below runs inside one try: an OutOfBudgetError
  // thrown by any instrumented growth site (memory budget exceeded, real
  // or injected allocation failure) unwinds to the catch at the end of
  // this function and degrades into a kOutOfBudget result carrying the
  // stats accumulated so far — never process death. The body keeps the
  // function's base indentation; the catch is ~700 lines down.
  try {

  if (!phi_solver.add_formula(matrix)) {
    // The matrix is unsatisfiable: no X-assignment extends, so the DQBF
    // is False (unless there are no universals either, still False).
    return finish(SynthesisStatus::kUnrealizable);
  }

  // ---- Data generation (Algorithm 1, line 1) ----------------------------
  util::Timer phase_timer;
  sampler::SamplerOptions sampler_options = options_.sampler;
  sampler_options.seed = options_.seed;
  sampler::Sampler sampler(sampler_options);
  std::vector<Var> y_vars;
  y_vars.reserve(m);
  for (const dqbf::Existential& e : ex) y_vars.push_back(e.var);
  {
    obs::Span span("sample", "phase", trace_id);
    samples = sampler.sample_packed(matrix, y_vars, &deadline);
  }
  stats.sampling_seconds = phase_timer.seconds();
  stats.samples = samples.num_samples();
  if (samples.empty()) {
    // UNSAT matrix or the deadline hit before the first model.
    const sat::Result r = phi_solver.solve({}, deadline);
    if (r == sat::Result::kUnsat) return finish(SynthesisStatus::kUnrealizable);
    if (r == sat::Result::kUnknown) return finish(SynthesisStatus::kTimeout);
    samples.append(phi_solver.model());
    stats.samples = 1;
  }

  // Cross-round sample reuse: counterexample-derived models are appended
  // to the matrix (deduped against everything already in it) so refits
  // train on fresh data.
  std::unordered_set<std::uint64_t> sample_fps;
  if (options_.sample_reuse) {
    sample_fps.reserve(2 * samples.num_samples());
    for (std::size_t s = 0; s < samples.num_samples(); ++s) {
      sample_fps.insert(samples.row_fingerprint(s));
    }
  }
  const auto append_sample = [&](const cnf::Assignment& a) {
    // Truncate to matrix variables: solver models carry selector and
    // Tseitin variables above the matrix block.
    if (!sample_fps
             .insert(cnf::fingerprint(
                 a, static_cast<std::size_t>(samples.num_vars())))
             .second) {
      return false;
    }
    samples.append(a);
    ++stats.samples_appended;
    return true;
  };

  // ---- Tier-2 analysis cache lookups ------------------------------------
  // With a cache attached, the spec is canonicalized once and the static
  // analyses are answered from (or stored into) the cache. Cached values
  // equal what the cold computation below produces, so the synthesis
  // trajectory is identical either way.
  std::optional<dqbf::CanonicalForm> canon;
  std::shared_ptr<const DependencyRelations> dep_rel;
  if (options_.analysis_cache != nullptr) {
    canon.emplace(dqbf::canonicalize(formula));
    dep_rel = options_.analysis_cache->lookup_dependencies(canon->spec);
    if (dep_rel != nullptr) {
      ++stats.analysis_dependency_hits;
    } else {
      auto computed = std::make_shared<DependencyRelations>(
          DependencyRelations::compute(formula));
      options_.analysis_cache->store_dependencies(canon->spec, computed);
      dep_rel = std::move(computed);
    }
  }
  const auto deps_subset = [&](std::size_t j, std::size_t i) {
    return dep_rel != nullptr ? dep_rel->is_subset(j, i)
                              : formula.deps_subset(j, i);
  };
  const auto deps_equal = [&](std::size_t j, std::size_t i) {
    return dep_rel != nullptr ? dep_rel->is_equal(j, i)
                              : formula.deps_equal(j, i);
  };

  // ---- Static ordering constraints (Algorithm 1, lines 3-5) -------------
  DependencyManager dep(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      // H_j ⊂ H_i (strict): y_i may come to depend on y_j; pre-commit the
      // ordering edge so learning can never create a cycle.
      if (deps_subset(j, i) && !deps_equal(j, i) && dep.can_use(i, j)) {
        dep.record_use(i, j);
      }
    }
  }

  std::vector<aig::Ref> f(m, aig::kFalseRef);
  std::vector<bool> fixed(m, false);

  // ---- UNIQUE-style preprocessing ---------------------------------------
  if (options_.use_unique_extraction) {
    obs::Span span("unique_def", "phase", trace_id);
    UniqueDefExtractor unique(formula, options_.unique);
    for (std::size_t i = 0; i < m; ++i) {
      if (deadline.expired()) break;
      // Padoa check, answered from the tier-2 cache when a prior run
      // already decided this (matrix, y_i, H_i) triple — possibly under a
      // different spec or variable naming. Unknown (deadline) verdicts
      // are neither used nor stored.
      bool defined;
      std::optional<bool> cached;
      if (canon.has_value()) {
        cached =
            options_.analysis_cache->lookup_unique(canon->existential_keys[i]);
      }
      if (cached.has_value()) {
        ++stats.analysis_unique_hits;
        defined = *cached;
      } else {
        const UniqueDefExtractor::Defined verdict =
            unique.is_defined(i, &deadline);
        if (verdict == UniqueDefExtractor::Defined::kUnknown) continue;
        defined = verdict == UniqueDefExtractor::Defined::kYes;
        if (canon.has_value()) {
          options_.analysis_cache->store_unique(canon->existential_keys[i],
                                                defined);
        }
      }
      if (!defined) continue;
      const std::optional<aig::Ref> def = unique.extract(i, manager);
      if (def.has_value()) {
        f[i] = *def;
        fixed[i] = true;
        ++stats.unique_defined;
      }
    }
  }

  // ---- Candidate learning (Algorithm 2) ---------------------------------
  // Feature sets are pre-committed before any fitting so the fits are
  // mutually independent (parallelizable): y_j is an admissible feature
  // of y_i iff H_j ⊂ H_i strictly, or H_j == H_i and j < i. The fixed
  // orientation of equal-dependency pairs keeps the feature relation
  // acyclic without serializing feature selection on the learnt supports
  // (the pre-refactor code admitted whichever direction was fitted
  // first). Fitting itself is pure — rows, labels, and a derive_seed-split
  // DtreeOptions stream per existential — so any worker count produces
  // bit-identical trees; AIG construction and support recording stay
  // serial in index order.
  phase_timer.reset();
  const std::size_t learn_workers =
      std::max<std::size_t>(1, options_.learn_workers);
  stats.learn_workers = learn_workers;
  std::vector<std::vector<Var>> feature_vars(m);
  std::vector<std::vector<aig::Ref>> feature_refs(m);
  std::vector<std::size_t> jobs;
  jobs.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    if (fixed[i]) continue;
    feature_vars[i].assign(ex[i].deps.begin(), ex[i].deps.end());
    for (std::size_t j = 0; j < m; ++j) {
      if (j == i || !deps_subset(j, i)) continue;
      const bool strict = !deps_equal(j, i);
      if ((strict || j < i) && dep.can_use(i, j)) {
        feature_vars[i].push_back(ex[j].var);
      }
    }
    feature_refs[i].reserve(feature_vars[i].size());
    for (const Var v : feature_vars[i]) {
      feature_refs[i].push_back(manager.input(v));
    }
    jobs.push_back(i);
  }

  const auto fit_one = [&](std::size_t i, std::uint64_t generation) {
    dtree::DtreeOptions dt = options_.dtree;
    dt.seed = util::derive_seed(options_.seed, kLearnSalt + generation, i);
    if (options_.packed_learning) {
      // Popcount path: split statistics straight off the packed columns.
      return dtree::DecisionTree::fit(samples, feature_vars[i], ex[i].var,
                                      dt);
    }
    // Row-wise oracle: unpack the matrix into per-existential rows.
    const std::size_t n = samples.num_samples();
    std::vector<std::vector<bool>> rows;
    rows.reserve(n);
    std::vector<bool> labels;
    labels.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      std::vector<bool> row;
      row.reserve(feature_vars[i].size());
      for (const Var v : feature_vars[i]) row.push_back(samples.value(s, v));
      rows.push_back(std::move(row));
      labels.push_back(samples.value(s, ex[i].var));
    }
    return dtree::DecisionTree::fit(rows, labels, dt);
  };

  std::vector<dtree::DecisionTree> trees(m);
  // One pool for the initial fit and every refit round (created lazily:
  // serial runs and single-job batches never spawn threads). The pool
  // class lives in util precisely so this layer can use it; the engine
  // module (which links against core) re-exports it as engine::Scheduler
  // for the portfolio-facing clients.
  std::optional<util::Scheduler> learn_pool;
  const auto run_fits = [&](const std::vector<std::size_t>& fit_jobs,
                            std::uint64_t generation) {
    if (learn_workers > 1 && fit_jobs.size() > 1) {
      if (!learn_pool.has_value()) learn_pool.emplace(learn_workers);
      std::vector<std::future<dtree::DecisionTree>> futures;
      futures.reserve(fit_jobs.size());
      // The request budget is thread-local; re-install it inside each
      // worker closure so fits charge the same budget as the main thread
      // (an OutOfBudgetError rethrows from the future below).
      util::ResourceBudget* budget = util::current_budget();
      for (const std::size_t i : fit_jobs) {
        futures.push_back(
            learn_pool->submit([&fit_one, i, generation, budget]() {
              util::BudgetScope scope(budget);
              return fit_one(i, generation);
            }));
      }
      for (std::size_t k = 0; k < fit_jobs.size(); ++k) {
        trees[fit_jobs[k]] = futures[k].get();
      }
    } else {
      for (const std::size_t i : fit_jobs) trees[i] = fit_one(i, generation);
    }
  };

  // Extract the fitted trees to AIG candidates and record the existential
  // features they actually use (Algorithm 2, lines 11-12). Serial, in
  // index order — worker counts never influence the AIG or the
  // dependency state.
  const auto adopt_trees = [&](const std::vector<std::size_t>& fit_jobs) {
    for (const std::size_t i : fit_jobs) {
      f[i] = trees[i].to_aig(manager, feature_refs[i]);
      for (const std::int32_t id : manager.support(f[i])) {
        if (!formula.is_existential(static_cast<Var>(id))) continue;
        const std::size_t j = formula.existential_index(static_cast<Var>(id));
        if (dep.can_use(i, j) && !dep.depends_on(i, j)) dep.record_use(i, j);
      }
    }
  };

  {
    obs::Span span("learn", "phase", trace_id);
    run_fits(jobs, 0);
    adopt_trees(jobs);
  }
  stats.learned_candidates = jobs.size();
  stats.learning_seconds = phase_timer.seconds();

  // ---- FindOrder (Algorithm 1, line 8) -----------------------------------
  std::vector<std::size_t> order;
  std::vector<std::size_t> order_pos(m, 0);
  const auto refresh_order = [&]() {
    order = dep.find_order();
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
      order_pos[order[pos]] = pos;
    }
  };
  refresh_order();

  const auto substitute_and_return = [&]() {
    obs::Span span("substitute", "phase", trace_id);
    // Substitute (Algorithm 1, line 19): walk Order from its tail so that
    // every referenced existential is already expressed over universals.
    std::vector<aig::Ref> final_functions(m, aig::kFalseRef);
    std::unordered_map<std::int32_t, aig::Ref> substitution;
    for (std::size_t pos = order.size(); pos-- > 0;) {
      const std::size_t k = order[pos];
      final_functions[k] = manager.compose(f[k], substitution);
      substitution[ex[k].var] = final_functions[k];
    }
    result.vector.functions = std::move(final_functions);
    return finish(SynthesisStatus::kRealizable);
  };

  // ---- Verify / repair loop (Algorithm 1, lines 9-18) --------------------
  // The incremental pipeline keeps both oracles warm across rounds: the
  // verify solver re-encodes only repaired cones (activation literals
  // retire the stale output equivalences), and the MaxSAT rounds run as
  // activation-scoped Fu-Malik sessions on the φ solver, whose matrix
  // encoding and learnt clauses persist for the whole run.
  if (options_.incremental) {
    // Default solver options: the search RNG is reseeded from the round's
    // derived stream before every check(), so a construction seed would
    // never influence a solve.
    verifier.emplace(formula, manager);
  }
  maxsat::IncrementalMaxSat repair_maxsat(phi_solver);

  // Inter-round solver maintenance (incremental pipeline only): both
  // persistent solvers inprocess + compact every inprocess_interval
  // counterexamples. The φ solver's matrix block is its interface —
  // extension checks assume X units and G_k queries assume H_k/Ŷ units
  // over it every round — so it stays out of variable elimination.
  const bool maintain_solvers = options_.incremental && options_.inprocess &&
                                options_.inprocess_interval > 0;
  if (maintain_solvers) phi_solver.freeze_range(0, matrix.num_vars());
  std::size_t next_maintenance =
      maintain_solvers ? options_.inprocess_interval : 0;
  const auto maybe_maintain = [&] {
    if (!maintain_solvers || stats.counterexamples < next_maintenance) return;
    next_maintenance = stats.counterexamples + options_.inprocess_interval;
    obs::Span span("inprocess", "phase", trace_id);
    verifier->maintain(options_.cancel);
    repair_maxsat.maintain(options_.cancel);
  };

  // Cross-round sample reuse, refit side: batch-evaluate live candidates
  // over the packed matrix with the 64-way AIG simulator and refit exactly
  // those that now disagree with the data. Two trigger policies:
  //   * adaptive (default): each candidate tracks the row count of its own
  //     last fit; once adaptive_refit_min_fresh rows arrived since then,
  //     its error rate over those fresh rows is measured every round (the
  //     batch simulation is cheap), and clearing adaptive_refit_error_rate
  //     triggers a refit of exactly the drifted candidates;
  //   * legacy (adaptive_refit = false): wait until the whole matrix grew
  //     ~50% since the last global screen, then refit any candidate that
  //     disagrees with a fresh row.
  // The refreshed candidates re-enter verification unchanged in soundness
  // terms — only a verify-UNSAT certifies the vector.
  std::size_t last_fit_samples = samples.num_samples();
  // Per-candidate watermark: matrix row count at the candidate's last
  // (re)fit or last clean screen (adaptive policy only).
  std::vector<std::size_t> last_fit_rows(m, samples.num_samples());
  const auto maybe_refit = [&](bool force) {
    if (!options_.sample_reuse) return;
    const std::size_t now = samples.num_samples();
    if (force || !options_.adaptive_refit) {
      const std::size_t grown = now - last_fit_samples;
      if (grown == 0) return;
      // Periodic legacy refits wait for ~50% fresh data; a stuck round
      // refits on whatever arrived.
      if (!force && 2 * grown < last_fit_samples) return;
    }
    obs::Span span("refit", "phase", trace_id);
    // Staleness screen. Periodic refits only touch candidates that
    // mis-predict rows appended since their last fit: mismatches on older
    // rows are either inherent (φ has several Y per X, so the matrix is
    // not a function) or the work of UNSAT-core repairs that a routine
    // refit must not throw away. A no-progress round inverts the calculus
    // — repair is stuck by definition, so there the screen widens to the
    // whole matrix and disagreeing candidates are relearned outright (the
    // escape hatch that converts budget-exhausting families into
    // certified ones; see bench/micro_core BM_ReuseRefit*).
    std::vector<std::size_t> refit_jobs;
    bool adaptive_trigger = false;
    if (!force && options_.adaptive_refit) {
      for (const std::size_t i : jobs) {
        // A screen pass is real work (matrix simulations); keep the PR-3
        // contract that cancellation/timeout is observed with bounded
        // extra work by polling between candidates. Bailing out leaves
        // the watermarks untouched — the loop head reports kTimeout next.
        if (deadline.expired()) return;
        const std::size_t fresh = now - last_fit_rows[i];
        if (fresh < options_.adaptive_refit_min_fresh) continue;
        const std::vector<std::uint64_t> sim =
            aig::simulate_matrix(manager, f[i], samples);
        const std::size_t mismatches = packed_mismatches_since(
            sim, samples.column(ex[i].var), samples, last_fit_rows[i]);
        if (mismatches == 0) {
          // Clean screen: advance the watermark so the next error rate is
          // measured only over rows this candidate has not yet absorbed.
          last_fit_rows[i] = now;
        } else if (static_cast<double>(mismatches) >=
                   options_.adaptive_refit_error_rate *
                       static_cast<double>(fresh)) {
          refit_jobs.push_back(i);
        }
      }
      adaptive_trigger = !refit_jobs.empty();
    } else {
      const std::size_t screen_from = force ? 0 : last_fit_samples;
      for (const std::size_t i : jobs) {
        if (deadline.expired()) return;
        const std::vector<std::uint64_t> sim =
            aig::simulate_matrix(manager, f[i], samples);
        if (packed_mismatches_since(sim, samples.column(ex[i].var), samples,
                                    screen_from) != 0) {
          refit_jobs.push_back(i);
        }
      }
      last_fit_samples = now;
    }
    if (refit_jobs.empty()) return;
    // Repair recorded dependency edges the pre-committed feature relation
    // knows nothing about (a β may mention any Ŷ member), so a feature
    // that was admissible at the previous fit can be cyclic now. Drop it
    // before fitting — admissibility is monotone (edges only accumulate
    // and every record site is can_use-guarded), so the shrunken set
    // stays correct for every later refit too.
    for (const std::size_t i : refit_jobs) {
      std::size_t keep = 0;
      for (std::size_t t = 0; t < feature_vars[i].size(); ++t) {
        const Var v = feature_vars[i][t];
        if (formula.is_existential(v)) {
          const std::size_t j = formula.existential_index(v);
          if (!dep.depends_on(i, j) && !dep.can_use(i, j)) continue;
        }
        feature_vars[i][keep] = v;
        feature_refs[i][keep] = feature_refs[i][t];
        ++keep;
      }
      feature_vars[i].resize(keep);
      feature_refs[i].resize(keep);
    }
    ++stats.refit_rounds;
    if (adaptive_trigger) ++stats.adaptive_refits;
    run_fits(refit_jobs, stats.refit_rounds);
    // Adopt with a cycle guard: edges recorded while adopting earlier
    // batch-mates can invalidate a feature this tree was fitted with; a
    // candidate whose support became unrecordable is rejected (the
    // repaired predecessor stays in place — still sound, the verify
    // loop re-examines everything).
    for (const std::size_t i : refit_jobs) {
      const aig::Ref refit_f = trees[i].to_aig(manager, feature_refs[i]);
      bool admissible = true;
      for (const std::int32_t id : manager.support(refit_f)) {
        if (!formula.is_existential(static_cast<Var>(id))) continue;
        const std::size_t j = formula.existential_index(static_cast<Var>(id));
        if (!dep.depends_on(i, j) && !dep.can_use(i, j)) {
          admissible = false;
          break;
        }
      }
      if (!admissible) continue;
      f[i] = refit_f;
      ++stats.refit_candidates;
      for (const std::int32_t id : manager.support(f[i])) {
        if (!formula.is_existential(static_cast<Var>(id))) continue;
        const std::size_t j = formula.existential_index(static_cast<Var>(id));
        if (dep.can_use(i, j) && !dep.depends_on(i, j)) dep.record_use(i, j);
      }
    }
    // Every screened-and-refitted candidate starts a fresh error window
    // (watermarks advance whether or not the adoption guard kept the new
    // tree — re-refitting an inadmissible candidate on the same rows
    // would just thrash).
    for (const std::size_t i : refit_jobs) last_fit_rows[i] = now;
    refresh_order();
  };

  // Consecutive counterexamples for which no candidate could be repaired;
  // a fresh verification round may produce a different (repairable)
  // counterexample, so incompleteness is only declared after several
  // fruitless rounds in a row.
  std::size_t no_progress_rounds = 0;
  constexpr std::size_t kMaxNoProgressRounds = 12;
  while (true) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (stats.counterexamples >= options_.max_counterexamples) {
      return finish(SynthesisStatus::kLimit);
    }
    maybe_refit(/*force=*/false);
    maybe_maintain();

    phase_timer.reset();
    // Vary the search seed per round so a stuck repair sees a different
    // counterexample next time instead of the same one forever.
    const std::uint64_t round_seed = util::derive_seed(
        options_.seed, kVerifySalt, stats.counterexamples + 1);
    const double round_branch_freq = no_progress_rounds > 0 ? 0.1 : 0.0;
    const bool round_random_polarity = no_progress_rounds > 0;
    sat::Result verify_result;
    std::optional<sat::Solver> oneshot_solver;  // oracle mode: owns δ
    {
      obs::Span span("verify.round", "phase", trace_id);
      if (options_.incremental) {
        sat::Solver& verify_solver = verifier->solver();
        verify_solver.reseed(round_seed);
        verify_solver.options().random_branch_freq = round_branch_freq;
        verify_solver.options().random_polarity = round_random_polarity;
        verify_result = verifier->check(dqbf::HenkinVector{f}, deadline);
      } else {
        const cnf::CnfFormula refutation =
            dqbf::build_refutation_cnf(formula, manager,
                                       dqbf::HenkinVector{f});
        sat::SolverOptions verify_options;
        verify_options.seed = round_seed;
        verify_options.random_branch_freq = round_branch_freq;
        verify_options.random_polarity = round_random_polarity;
        oneshot_solver.emplace(verify_options);
        if (!oneshot_solver->add_formula(refutation)) {
          verify_result = sat::Result::kUnsat;
        } else {
          verify_result = oneshot_solver->solve({}, deadline);
        }
      }
    }
    stats.verify_seconds += phase_timer.seconds();
    if (verify_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (verify_result == sat::Result::kUnsat) return substitute_and_return();

    // δ: counterexample candidate-output assignment. Check whether δ[X]
    // extends to a model of φ at all (Algorithm 1, line 13).
    const cnf::Assignment& delta =
        options_.incremental ? verifier->model() : oneshot_solver->model();
    std::vector<Lit> x_assumptions;
    x_assumptions.reserve(formula.universals().size());
    for (const Var x : formula.universals()) {
      x_assumptions.push_back(unit_lit(x, delta.value(x)));
    }
    sat::Result extend_result;
    {
      obs::Span span("extend", "phase", trace_id);
      extend_result = phi_solver.solve(x_assumptions, deadline);
    }
    if (extend_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (extend_result == sat::Result::kUnsat) {
      return finish(SynthesisStatus::kUnrealizable);
    }
    const cnf::Assignment pi = phi_solver.model();
    ++stats.counterexamples;
    obs::trace_instant("counterexample", "event", trace_id);
    // π is a full model of φ — fresh training data (reuse).
    if (options_.sample_reuse) append_sample(pi);

    // σ = π[X] + π[Y] + δ[Y'] (line 16). The working Y'-values are the
    // current candidate outputs; they are updated as repairs land.
    std::vector<bool> sigma_yp(m);
    for (std::size_t i = 0; i < m; ++i) sigma_yp[i] = delta.value(ex[i].var);

    // ---- RepairHkF (Algorithm 3) ----------------------------------------
    phase_timer.reset();
    // FindCandi: MaxSAT with φ ∧ (X ↔ σ[X]) hard, (Y ↔ σ[Y']) soft.
    ++stats.maxsat_calls;
    maxsat::MaxSatStatus ms_status;
    std::function<bool(std::size_t)> soft_satisfied;
    std::optional<maxsat::MaxSatSolver> oneshot_maxsat;  // oracle mode
    {
      obs::Span span("maxsat.round", "phase", trace_id);
      if (options_.incremental) {
        std::vector<Lit> hard_units;
        hard_units.reserve(formula.universals().size());
        for (const Var x : formula.universals()) {
          hard_units.push_back(unit_lit(x, pi.value(x)));
        }
        std::vector<Lit> soft_units;
        soft_units.reserve(m);
        for (std::size_t i = 0; i < m; ++i) {
          soft_units.push_back(unit_lit(ex[i].var, sigma_yp[i]));
        }
        ms_status =
            repair_maxsat.solve_round(hard_units, soft_units, &deadline);
        soft_satisfied = [&](std::size_t i) {
          return repair_maxsat.soft_satisfied(i);
        };
      } else {
        oneshot_maxsat.emplace();
        oneshot_maxsat->add_hard_formula(matrix);
        for (const Var x : formula.universals()) {
          oneshot_maxsat->add_hard({unit_lit(x, pi.value(x))});
        }
        for (std::size_t i = 0; i < m; ++i) {
          oneshot_maxsat->add_soft({unit_lit(ex[i].var, sigma_yp[i])});
        }
        ms_status = oneshot_maxsat->solve(&deadline);
        soft_satisfied = [&](std::size_t i) {
          return oneshot_maxsat->soft_satisfied(i);
        };
      }
    }
    if (ms_status == maxsat::MaxSatStatus::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (ms_status == maxsat::MaxSatStatus::kUnsatisfiableHard) {
      // Cannot happen (π witnesses satisfiability); fail safe.
      return finish(SynthesisStatus::kIncomplete);
    }
    // The MaxSAT-corrected σ is a model of φ ∧ (X ↔ π[X]) closest to the
    // candidate outputs — exactly the data point the learner was missing
    // on this counterexample (reuse).
    if (options_.sample_reuse) {
      append_sample(options_.incremental ? repair_maxsat.model()
                                         : oneshot_maxsat->model());
    }
    std::deque<std::size_t> queue;
    for (std::size_t i = 0; i < m; ++i) {
      if (!soft_satisfied(i)) queue.push_back(i);
    }

    std::vector<bool> processed(m, false);
    std::size_t repairs_this_cex = 0;
    std::optional<obs::Span> repair_span;
    repair_span.emplace("repair", "phase", trace_id);
    while (!queue.empty()) {
      if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
      if (stats.repair_checks >= options_.max_repair_iterations) {
        return finish(SynthesisStatus::kLimit);
      }
      const std::size_t k = queue.front();
      queue.pop_front();
      if (processed[k]) continue;
      processed[k] = true;

      // Ŷ = {y_j : H_j ⊆ H_k, Order(y_j) > Order(y_k)} (line 6). Fixing
      // these lets the core mention admissible Y features (§5's example).
      std::vector<std::size_t> yhat;
      if (options_.use_yhat_in_repair) {
        for (std::size_t j = 0; j < m; ++j) {
          if (j != k && formula.deps_subset(j, k) &&
              order_pos[j] > order_pos[k]) {
            yhat.push_back(j);
          }
        }
      }
      std::vector<bool> in_yhat(m, false);
      for (const std::size_t j : yhat) in_yhat[j] = true;

      // G_k = (y_k ↔ σ[y'_k]) ∧ φ ∧ (H_k ↔ σ[H_k]) ∧ (Ŷ ↔ σ[Ŷ]) as
      // assumptions on the persistent φ solver (line 8).
      std::vector<Lit> assumptions;
      assumptions.push_back(unit_lit(ex[k].var, sigma_yp[k]));
      for (const Var x : ex[k].deps) {
        assumptions.push_back(unit_lit(x, pi.value(x)));
      }
      for (const std::size_t j : yhat) {
        assumptions.push_back(unit_lit(ex[j].var, sigma_yp[j]));
      }
      ++stats.repair_checks;
      const sat::Result gk_result = phi_solver.solve(assumptions, deadline);
      if (gk_result == sat::Result::kUnknown) {
        return finish(SynthesisStatus::kTimeout);
      }
      if (gk_result == sat::Result::kUnsat) {
        // Build β from the unit clauses in the UNSAT core (lines 11-12).
        std::vector<aig::Ref> beta_lits;
        for (const Lit l : phi_solver.core()) {
          if (l.var() == ex[k].var) continue;
          const aig::Ref in = manager.input(l.var());
          beta_lits.push_back(l.negated() ? aig::ref_not(in) : in);
        }
        if (beta_lits.empty()) {
          // β is empty: the documented repair failure mode (§5); nothing
          // to strengthen or weaken with.
          continue;
        }
        const aig::Ref beta = manager.and_all(beta_lits);
        // Strengthen or weaken (line 13).
        f[k] = sigma_yp[k] ? manager.and_gate(f[k], aig::ref_not(beta))
                           : manager.or_gate(f[k], beta);
        sigma_yp[k] = !sigma_yp[k];  // output on this counterexample flipped
        ++repairs_this_cex;
        ++stats.repairs;
        for (const std::int32_t id : manager.support(beta)) {
          if (!formula.is_existential(static_cast<Var>(id))) continue;
          const std::size_t j =
              formula.existential_index(static_cast<Var>(id));
          if (dep.can_use(k, j) && !dep.depends_on(k, j)) {
            dep.record_use(k, j);
          }
        }
      } else {
        // G_k is SAT: y_k can keep its output; some other candidate must
        // move. Enqueue every y_t whose model value disagrees with its
        // current output (lines 15-17).
        const cnf::Assignment& rho = phi_solver.model();
        // ρ is a full model of φ harvested from the already-hot G_k
        // session — stream it into the training matrix so the next refit
        // sees the repair neighborhood, not just the per-counterexample
        // MaxSAT points.
        if (options_.sample_reuse && options_.stream_gk_samples &&
            append_sample(rho)) {
          ++stats.gk_streamed_samples;
        }
        for (std::size_t t = 0; t < m; ++t) {
          if (t == k || in_yhat[t] || processed[t]) continue;
          if (rho.value(ex[t].var) != sigma_yp[t]) queue.push_back(t);
        }
      }
    }
    repair_span.reset();
    stats.repair_seconds += phase_timer.seconds();
    if (repairs_this_cex == 0) {
      // No candidate could be repaired for this counterexample: the
      // engine's documented incompleteness (§5). Refit from whatever
      // counterexample data accumulated — a relearned candidate often
      // escapes where core-guided patching is stuck — then retry a few
      // rounds with randomized verification in case another
      // counterexample is repairable, and only then give up.
      maybe_refit(/*force=*/true);
      if (++no_progress_rounds >= kMaxNoProgressRounds) {
        return finish(SynthesisStatus::kIncomplete);
      }
    } else {
      no_progress_rounds = 0;
    }
  }

  } catch (const util::OutOfBudgetError&) {
    return finish(SynthesisStatus::kOutOfBudget);
  }
}

}  // namespace manthan::core
