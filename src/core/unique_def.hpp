// Detection and extraction of uniquely defined existential variables.
//
// Role in the paper: the UNIQUE preprocessor. An existential y_i is
// uniquely defined by its Henkin set H_i under φ when any two models of φ
// agreeing on H_i agree on y_i — decided by Padoa's method: the doubled
// formula  φ(V) ∧ φ(V') ∧ (H_i ↔ H_i') ∧ y_i ∧ ¬y_i'  is SAT iff y_i is
// NOT defined. For defined variables the definition itself is extracted
// through the BDD engine:  def_i(H_i) = (∃ V∖(H_i∪{y_i}) φ)|_{y_i=1}.
// Definitions are forced: every valid Henkin vector of a True DQBF agrees
// with them, so they are safe initial candidates that typically never need
// repair.
#pragma once

#include <optional>

#include "aig/aig.hpp"
#include "bdd/bdd.hpp"
#include "dqbf/dqbf.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace manthan::core {

struct UniqueDefOptions {
  /// Skip BDD extraction entirely above this matrix size.
  std::size_t max_matrix_vars = 96;
  /// Abort the matrix-BDD build beyond this node count.
  std::size_t max_bdd_nodes = 200000;
};

class UniqueDefExtractor {
 public:
  UniqueDefExtractor(const dqbf::DqbfFormula& formula,
                     UniqueDefOptions options = {});

  /// Padoa definability check for existential index `i`. kUnknown on
  /// deadline expiry.
  enum class Defined { kYes, kNo, kUnknown };
  Defined is_defined(std::size_t i, const util::Deadline* deadline = nullptr);

  /// Extract the definition of existential `i` as an AIG over H_i.
  /// Returns nullopt when the BDD budget is exceeded (caller falls back to
  /// learning). Only meaningful when is_defined(i) == kYes.
  std::optional<aig::Ref> extract(std::size_t i, aig::Aig& manager);

 private:
  bool ensure_padoa_solver();
  bool ensure_matrix_bdd();

  const dqbf::DqbfFormula& formula_;
  UniqueDefOptions options_;

  // Doubled formula for Padoa checks: copy 2 of variable v is v + shift.
  std::optional<sat::Solver> padoa_solver_;
  std::vector<cnf::Lit> universal_eq_selector_;  // indexed by universal pos
  cnf::Var shift_ = 0;
  bool padoa_broken_ = false;

  std::optional<bdd::Bdd> bdd_;
  bdd::NodeId matrix_bdd_ = bdd::kFalseNode;
  bool bdd_failed_ = false;
};

}  // namespace manthan::core
