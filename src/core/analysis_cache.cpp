#include "core/analysis_cache.hpp"

#include <algorithm>

namespace manthan::core {

DependencyRelations DependencyRelations::compute(
    const dqbf::DqbfFormula& formula) {
  DependencyRelations rel;
  rel.m = formula.num_existentials();
  rel.subset.assign(rel.m * rel.m, false);
  rel.equal.assign(rel.m * rel.m, false);
  for (std::size_t j = 0; j < rel.m; ++j) {
    for (std::size_t i = 0; i < rel.m; ++i) {
      if (i == j) continue;
      if (formula.deps_subset(j, i)) {
        rel.subset[j * rel.m + i] = true;
        if (formula.deps_equal(j, i)) rel.equal[j * rel.m + i] = true;
      }
    }
  }
  return rel;
}

std::optional<bool> AnalysisCache::lookup_unique(
    const dqbf::Fingerprint& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = unique_.find(key);
  if (it == unique_.end()) {
    ++stats_.unique_misses;
    return std::nullopt;
  }
  ++stats_.unique_hits;
  return it->second;
}

void AnalysisCache::store_unique(const dqbf::Fingerprint& key, bool defined) {
  const std::lock_guard<std::mutex> lock(mutex_);
  unique_.emplace(key, defined);
}

std::shared_ptr<const DependencyRelations> AnalysisCache::lookup_dependencies(
    const dqbf::Fingerprint& spec) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = dependencies_.find(spec);
  if (it == dependencies_.end()) {
    ++stats_.dependency_misses;
    return nullptr;
  }
  ++stats_.dependency_hits;
  return it->second;
}

void AnalysisCache::store_dependencies(
    const dqbf::Fingerprint& spec,
    std::shared_ptr<const DependencyRelations> rel) {
  const std::lock_guard<std::mutex> lock(mutex_);
  dependencies_.emplace(spec, std::move(rel));
}

AnalysisCache::Stats AnalysisCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats s = stats_;
  s.unique_entries = unique_.size();
  s.dependency_entries = dependencies_.size();
  return s;
}

}  // namespace manthan::core
