// Dependency bookkeeping among existential variables (the set D and the
// FindOrder subroutine of Algorithm 1).
//
// Manthan3 lets a candidate f_i use another existential y_j as a feature
// when H_j ⊆ H_i, provided this cannot create a cyclic definition. The
// manager maintains, for every y_j, the transitively closed set d_j of
// existentials that depend on y_j; a feature y_j is admissible for y_i iff
// y_j does not (transitively) depend on y_i. FindOrder produces a linear
// extension of the resulting partial order ≺d used by the repair step
// (the Ŷ set) and by the final Substitute pass.
#pragma once

#include <cstddef>
#include <vector>

namespace manthan::core {

class DependencyManager {
 public:
  explicit DependencyManager(std::size_t num_existentials);

  /// True iff y_i (transitively) depends on y_j.
  bool depends_on(std::size_t i, std::size_t j) const;

  /// Whether candidate f_i may use y_j as a feature (no cycle; i != j).
  bool can_use(std::size_t i, std::size_t j) const;

  /// Record that f_i uses y_j: d_j gains y_i and everything that depends
  /// on y_i (Algorithm 2, lines 11-12). Precondition: can_use(i, j).
  void record_use(std::size_t i, std::size_t j);

  /// Linear extension of ≺d: if y_i depends on y_j then i appears before
  /// j. Deterministic (ties broken by index). Returns existential indices.
  std::vector<std::size_t> find_order() const;

  std::size_t size() const { return dependents_.size(); }

 private:
  /// dependents_[j][i] == true  iff  y_i depends on y_j (i ∈ d_j).
  std::vector<std::vector<bool>> dependents_;
};

}  // namespace manthan::core
