// Tier-2 cache of sub-instance analyses, shared across synthesis runs.
//
// The service's tier-1 cache answers whole requests (certified result by
// spec fingerprint); this tier salvages the expensive *pieces* of a run
// when the whole doesn't match — near-duplicate specs (same matrix,
// some dependency sets changed; renamed variables; an extra existential)
// redo identical per-existential work today:
//
//   * Unique-definability (Padoa) verdicts. is_defined(y_i) is a SAT
//     query over the doubled matrix that depends only on
//     (matrix, y_i, H_i). Keyed by the canonical sub-instance fingerprint
//     (dqbf::CanonicalForm::existential_keys), a verdict computed for one
//     spec answers the same question for every spec sharing that triple —
//     including specs whose OTHER existentials differ arbitrarily.
//
//   * Dependency relations. The ⊆/= relation over the Henkin sets (the
//     pre-committed ordering edges and feature admissibility of
//     Algorithm 2) is an O(m²·|H|) sweep recomputed per run; keyed by the
//     spec fingerprint it is shared by duplicate requests racing through
//     different engines or re-entering after eviction from tier 1.
//
// Thread-safety: one mutex over both maps. Lookups happen a handful of
// times per *request* (not per counterexample), so contention is nil even
// with every service worker hitting the cache; entries are immutable once
// stored (shared_ptr for the relations), so readers hold no locks while
// using them.
//
// A cached verdict is advisory, never load-bearing for soundness: a
// colliding key could at worst seed the engine with a wrong "defined"
// hint, whose extracted definition then fails verification and is
// repaired like any bad candidate — final vectors are still certified
// independently.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dqbf/dqbf.hpp"
#include "dqbf/fingerprint.hpp"

namespace manthan::core {

/// The ⊆ / = relation over Henkin dependency sets, precomputed once per
/// spec: the static inputs of ordering-edge commitment and feature-set
/// assembly. Immutable after compute().
struct DependencyRelations {
  std::size_t m = 0;
  /// subset[j * m + i]  iff  H_j ⊆ H_i.
  std::vector<bool> subset;
  /// equal[j * m + i]   iff  H_j == H_i.
  std::vector<bool> equal;

  bool is_subset(std::size_t j, std::size_t i) const {
    return subset[j * m + i];
  }
  bool is_equal(std::size_t j, std::size_t i) const {
    return equal[j * m + i];
  }

  static DependencyRelations compute(const dqbf::DqbfFormula& formula);
};

class AnalysisCache {
 public:
  AnalysisCache() = default;
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  struct Stats {
    std::size_t unique_hits = 0;
    std::size_t unique_misses = 0;
    std::size_t dependency_hits = 0;
    std::size_t dependency_misses = 0;
    std::size_t unique_entries = 0;
    std::size_t dependency_entries = 0;
  };

  /// Cached Padoa verdict for a (matrix, y, H) sub-instance key; nullopt
  /// on miss. Only definite verdicts are ever stored (kUnknown — deadline
  /// expiry — must not poison future runs).
  std::optional<bool> lookup_unique(const dqbf::Fingerprint& key);
  void store_unique(const dqbf::Fingerprint& key, bool defined);

  /// Cached dependency relations for a spec fingerprint; null on miss.
  std::shared_ptr<const DependencyRelations> lookup_dependencies(
      const dqbf::Fingerprint& spec);
  void store_dependencies(const dqbf::Fingerprint& spec,
                          std::shared_ptr<const DependencyRelations> rel);

  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unordered_map<dqbf::Fingerprint, bool, dqbf::FingerprintHasher>
      unique_;
  std::unordered_map<dqbf::Fingerprint,
                     std::shared_ptr<const DependencyRelations>,
                     dqbf::FingerprintHasher>
      dependencies_;
  Stats stats_;
};

}  // namespace manthan::core
