#include "core/dependency.hpp"

#include <cassert>

namespace manthan::core {

DependencyManager::DependencyManager(std::size_t num_existentials)
    : dependents_(num_existentials,
                  std::vector<bool>(num_existentials, false)) {}

bool DependencyManager::depends_on(std::size_t i, std::size_t j) const {
  return dependents_[j][i];
}

bool DependencyManager::can_use(std::size_t i, std::size_t j) const {
  return i != j && !depends_on(j, i);
}

void DependencyManager::record_use(std::size_t i, std::size_t j) {
  assert(can_use(i, j));
  const std::size_t m = dependents_.size();
  // d_j ∪= {y_i} ∪ d_i, transitively: everything y_j is depended on by
  // (nothing here: d_j grows) — and every variable y_j itself depends on
  // inherits the new dependents as well.
  std::vector<std::size_t> gained;
  if (!dependents_[j][i]) gained.push_back(i);
  for (std::size_t k = 0; k < m; ++k) {
    if (dependents_[i][k] && !dependents_[j][k]) gained.push_back(k);
  }
  for (const std::size_t g : gained) dependents_[j][g] = true;
  // Transitive closure: whatever y_j depends on also gains the new
  // dependents. y_j depends on y_t iff dependents_[t][j].
  for (std::size_t t = 0; t < m; ++t) {
    if (!dependents_[t][j]) continue;
    for (const std::size_t g : gained) dependents_[t][g] = true;
  }
}

std::vector<std::size_t> DependencyManager::find_order() const {
  // Kahn's algorithm on edges i -> j whenever y_i depends on y_j
  // (dependent first, dependency later). Ties resolved by smallest index.
  const std::size_t m = dependents_.size();
  std::vector<std::size_t> in_degree(m, 0);
  for (std::size_t j = 0; j < m; ++j) {
    for (std::size_t i = 0; i < m; ++i) {
      if (dependents_[j][i]) ++in_degree[j];  // edge i -> j
    }
  }
  std::vector<std::size_t> order;
  order.reserve(m);
  std::vector<bool> emitted(m, false);
  for (std::size_t step = 0; step < m; ++step) {
    std::size_t pick = m;
    for (std::size_t j = 0; j < m; ++j) {
      if (!emitted[j] && in_degree[j] == 0) {
        pick = j;
        break;
      }
    }
    assert(pick < m && "dependency relation must be acyclic");
    emitted[pick] = true;
    order.push_back(pick);
    for (std::size_t j = 0; j < m; ++j) {
      if (dependents_[j][pick] && !emitted[j]) --in_degree[j];
    }
  }
  return order;
}

}  // namespace manthan::core
