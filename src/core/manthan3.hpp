// Manthan3 — data-driven Henkin function synthesis (the paper's core
// contribution; Algorithms 1-3).
//
// Pipeline:
//   1. GetSamples      — constrained sampling of models of φ (sampler/).
//   2. CandidateHkF    — per-existential decision-tree learning restricted
//                        to Henkin-admissible features (dtree/, dependency
//                        manager).
//   3. Verification    — SAT check of E(X,Y') = ¬φ(X,Y') ∧ (Y' ↔ f).
//   4. RepairHkF       — MaxSAT selection of repair candidates plus
//                        UNSAT-core-guided strengthening/weakening.
//   5. Substitute      — expand candidates so each f_i mentions only H_i.
//
// The engine is sound (returns only certified vectors) but not complete:
// on instances where no admissible repair exists (paper §5) it reports
// kIncomplete.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "core/analysis_cache.hpp"
#include "core/unique_def.hpp"
#include "dqbf/dqbf.hpp"
#include "dtree/decision_tree.hpp"
#include "sampler/sampler.hpp"
#include "util/cancel.hpp"
#include "util/timer.hpp"

namespace manthan::core {

struct Manthan3Options {
  sampler::SamplerOptions sampler;
  dtree::DtreeOptions dtree;
  /// Run the UNIQUE-style preprocessing pass (ablation: abl3_unique_def).
  bool use_unique_extraction = true;
  UniqueDefOptions unique;
  /// Constrain Ŷ in the repair formula G_k (ablation: abl1_repair_yhat;
  /// §5 argues this is required for many repairs to succeed).
  bool use_yhat_in_repair = true;
  /// Give up after this many candidate-repair attempts in total.
  std::size_t max_repair_iterations = 20000;
  /// Give up after this many verification counterexamples.
  std::size_t max_counterexamples = 2000;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Cooperative stop flag (composed into the internal Deadline, which
  /// the SAT/MaxSAT/sampler layers poll): when cancelled mid-run the
  /// engine returns kTimeout within a bounded number of decisions and
  /// propagations. Null = not cancellable; must outlive synthesize().
  const util::CancelToken* cancel = nullptr;
  /// Workers for per-existential candidate learning: decision-tree
  /// fitting fans across an engine::Scheduler pool. Fitting is pure and
  /// each existential draws a util::derive_seed-split stream, so results
  /// are bit-identical at every worker count. 1 = in-thread.
  std::size_t learn_workers = 1;
  /// Use the persistent incremental verify/repair pipeline (one
  /// IncrementalRefutation verify solver for the whole run; the φ solver
  /// shared with an activation-scoped MaxSAT). false = re-encode both
  /// from scratch every round — kept as the differential-testing oracle
  /// and benchmark baseline. (Seeding also moved to derive_seed streams,
  /// so the oracle reproduces the old pipeline's *cost structure*, not
  /// its exact pre-refactor search trajectories.)
  bool incremental = true;
  /// Fit decision trees straight from the bit-packed SampleMatrix
  /// (popcount split counting). false = unpack per-existential rows and
  /// run the row-wise learner — the differential oracle; both paths
  /// produce bit-identical trees, so the whole synthesis trajectory
  /// matches field-for-field at a fixed seed.
  bool packed_learning = true;
  /// Cross-round sample reuse: append every repair counterexample's
  /// φ-extension π and each MaxSAT-corrected σ to the training matrix
  /// (fingerprint-deduped), and refit candidates that disagree with the
  /// refreshed data — screened by 64-way AIG simulation over the matrix —
  /// when the matrix has grown substantially or a verification round made
  /// no repair progress. Later refits therefore train on
  /// counterexample-corrected data instead of the stale round-0 samples.
  bool sample_reuse = true;
  /// Streaming sample harvest (sample_reuse only): when a repair G_k query
  /// comes back SAT, its model ρ is a full model of φ produced by a solver
  /// session that is already hot — append it to the training matrix
  /// (fingerprint-deduped) instead of discarding it. Later refits then see
  /// the repair neighborhood of the counterexample, not just the one
  /// MaxSAT-corrected point per round.
  bool stream_gk_samples = true;
  /// Refit trigger policy (sample_reuse only). true = adaptive: every
  /// round, each candidate with at least adaptive_refit_min_fresh rows
  /// appended since its own last fit is batch-simulated over the matrix
  /// (cheap — the SIMD data path), and is refit when its error rate over
  /// those fresh rows reaches adaptive_refit_error_rate. false = legacy
  /// global policy: screen only after the whole matrix grew ~50% since
  /// the previous screen. No-progress rounds force a full-matrix screen
  /// under either policy.
  bool adaptive_refit = true;
  /// Minimum fresh rows before a candidate's error rate is measured.
  std::size_t adaptive_refit_min_fresh = 16;
  /// Fresh-row error rate at which a candidate is refit.
  double adaptive_refit_error_rate = 0.05;
  /// Inter-round maintenance on the persistent solvers (incremental
  /// pipeline only): every `inprocess_interval` counterexamples, run SAT
  /// inprocessing (occurrence-list subsumption + self-subsumption,
  /// bounded variable elimination, clause vivification) and variable-range
  /// compaction on the verify solver and the shared φ/MaxSAT solver.
  /// Retired activation scopes, dead Tseitin cones, and recycled MaxSAT
  /// round variables are reclaimed, so daemon-length runs stop leaking
  /// variable ids. Sound by construction: interface variables are frozen
  /// and the remapper translates models/cores back to stable numbering.
  bool inprocess = true;
  std::size_t inprocess_interval = 32;
  /// Cross-instance analysis cache (the service's tier 2): unique-def
  /// Padoa verdicts and the dependency ⊆/= relations are looked up by
  /// canonical fingerprints before being recomputed, and computed results
  /// are stored for later runs — including runs on *near-duplicate* specs
  /// (the unique-def keys only see (matrix, y_i, H_i)). Cached values are
  /// exactly what a cold run would compute, so warm runs stay
  /// field-for-field identical at a fixed seed. Null = no caching. The
  /// cache is thread-safe and shared across concurrent syntheses; it must
  /// outlive the run.
  AnalysisCache* analysis_cache = nullptr;
  std::uint64_t seed = 42;
  /// Tag every obs trace span emitted by this run (args.trace_id in the
  /// Chrome trace). The service sets it to the spec fingerprint so spans
  /// of concurrent requests can be told apart; 0 = untagged. Telemetry
  /// only — never feeds the derive_seed streams.
  std::uint64_t trace_id = 0;
  /// Fault-injection schedule (util/fault.hpp spec grammar) installed
  /// into the process-global injector at the start of synthesize(),
  /// resetting its poll counters — so a single run replays the schedule
  /// deterministically. Empty = leave the injector alone (it may still be
  /// active via fault::install() or MANTHAN_FAULTS). Chaos testing only;
  /// concurrent runs share the one global injector.
  std::string fault_spec;
};

enum class SynthesisStatus {
  kRealizable,    // Henkin vector synthesized and verified
  kUnrealizable,  // the DQBF is False
  kIncomplete,    // engine's documented incompleteness: repair got stuck
  kLimit,         // iteration limits exhausted
  kTimeout,       // wall-clock budget exhausted
  kOutOfBudget,   // per-request ResourceBudget tripped (memory/conflicts/
                  // wall time/alloc failure); stats are truncated but valid
  kInternalError, // unexpected exception surfaced by the service layer;
                  // never produced by the engines themselves
};

struct SynthesisStats {
  std::size_t samples = 0;
  std::size_t unique_defined = 0;
  std::size_t learned_candidates = 0;
  std::size_t counterexamples = 0;
  std::size_t repairs = 0;
  std::size_t repair_checks = 0;   // G_k satisfiability queries
  std::size_t maxsat_calls = 0;
  double sampling_seconds = 0.0;
  double learning_seconds = 0.0;
  double verify_seconds = 0.0;
  double repair_seconds = 0.0;
  double total_seconds = 0.0;
  // --- incremental-pipeline counters. The verify-solver block (cones,
  // aig nodes, verify_*) is zero when incremental = false; learn_workers
  // and the φ-solver fields are reported for every run — the persistent
  // φ solver exists in both pipelines (the oracle just never retires
  // anything on it). -------------------------------------------------------
  /// Worker count used for candidate learning.
  std::size_t learn_workers = 1;
  /// Candidate output equivalences (re-)encoded into the verify solver.
  std::size_t cones_encoded = 0;
  /// Per-round candidates whose cached cone encoding was reused as-is.
  std::size_t cones_reused = 0;
  /// Fresh AIG nodes Tseitin-encoded by the verify solver's cone cache.
  std::size_t aig_nodes_encoded = 0;
  /// Activation guards retired across the verify and φ/MaxSAT solvers.
  std::size_t activations_retired = 0;
  /// Variables allocated in the persistent verify solver.
  std::size_t verify_vars = 0;
  /// Clause records reclaimed by retirement in the verify solver.
  std::size_t verify_clauses_retired = 0;
  /// Variables allocated in the shared φ/MaxSAT solver.
  std::size_t phi_vars = 0;
  /// Clause records reclaimed by retirement in the φ/MaxSAT solver.
  std::size_t phi_clauses_retired = 0;
  // --- solver maintenance (zero when inprocess = false or the oracle
  // pipeline runs) ---------------------------------------------------------
  /// Inprocessing passes across the verify and φ/MaxSAT solvers.
  std::size_t inprocess_runs = 0;
  /// Variables removed by bounded variable elimination (both solvers).
  std::size_t eliminated_vars = 0;
  /// Clauses removed by occurrence-list subsumption (both solvers).
  std::size_t subsumed_clauses = 0;
  /// Literals removed by clause vivification (both solvers).
  std::size_t vivified_literals = 0;
  /// Internal variable slots reclaimed by compaction (both solvers).
  std::size_t remapped_vars = 0;
  // --- cross-round sample reuse (zero when sample_reuse = false) ----------
  /// Counterexample-derived samples appended to the training matrix
  /// (π extensions and MaxSAT-corrected σ, deduped by fingerprint).
  std::size_t samples_appended = 0;
  /// Refit passes triggered by matrix growth / no-progress rounds.
  std::size_t refit_rounds = 0;
  /// Refit candidates adopted across all passes. Screened twice: only
  /// candidates whose packed-sim predictions disagree with rows appended
  /// since their last fit are refit, and a refit whose support would
  /// create a dependency cycle is rejected (its predecessor stays).
  std::size_t refit_candidates = 0;
  /// G_k-SAT models streamed into the matrix (stream_gk_samples; subset
  /// of samples_appended).
  std::size_t gk_streamed_samples = 0;
  /// Refit passes triggered by the adaptive per-candidate error-rate
  /// policy (subset of refit_rounds; forced no-progress refits and legacy
  /// growth-triggered refits are not counted here).
  std::size_t adaptive_refits = 0;
  // --- tier-2 analysis cache (zero when analysis_cache is null) -----------
  /// Padoa verdicts answered from the cache (SAT checks skipped).
  std::size_t analysis_unique_hits = 0;
  /// Dependency ⊆/= relations answered from the cache (1 per warm run).
  std::size_t analysis_dependency_hits = 0;
  // --- memory accounting (snapshots at run end; process-global values are
  // non-deterministic and excluded from determinism comparisons) -----------
  /// Process-wide peak resident set size in bytes.
  std::uint64_t peak_rss_bytes = 0;
  /// Heap bytes of the bit-packed training matrix at run end.
  std::uint64_t sample_matrix_bytes = 0;
  /// Clause-arena bytes of the persistent verify solver (incremental
  /// pipeline; 0 for the oracle).
  std::uint64_t verify_arena_bytes = 0;
  /// Clause-arena bytes of the shared φ/MaxSAT solver.
  std::uint64_t phi_arena_bytes = 0;
  /// AND/input nodes in the shared AIG manager at run end.
  std::uint64_t aig_nodes = 0;
  /// Heap bytes of the AIG node table at run end.
  std::uint64_t aig_bytes = 0;
};

struct SynthesisResult {
  SynthesisStatus status = SynthesisStatus::kLimit;
  /// Valid when kRealizable: functions over H_i only (post-Substitute),
  /// indexed like formula.existentials().
  dqbf::HenkinVector vector;
  SynthesisStats stats;
};

class Manthan3 {
 public:
  explicit Manthan3(Manthan3Options options = {});

  /// Synthesize a Henkin vector for `formula`; functions are built in
  /// `manager` (universal variables as input ids).
  SynthesisResult synthesize(const dqbf::DqbfFormula& formula,
                             aig::Aig& manager);

 private:
  Manthan3Options options_;
};

}  // namespace manthan::core
