#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/timer.hpp"

namespace manthan::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

/// Per-thread buffer cap: ~48 MB of events at sizeof(TraceEvent)==48.
/// Phase-level spans run at a few thousand per second, so this covers
/// hours of tracing before truncation.
constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

struct TraceEvent {
  const char* name;
  const char* category;
  std::uint64_t ts_ns;
  std::uint64_t dur_ns;
  std::uint64_t trace_id;
  char phase;  // 'X' complete, 'i' instant
};

/// One thread's event buffer. The owning thread is the only writer; the
/// mutex serializes it against collector-side reads (write_trace_json,
/// clear) — uncontended in the steady state.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

class Collector {
 public:
  static Collector& instance() {
    // Leaked: worker threads may still record (harmlessly, into buffers
    // nobody will read) while static destructors run.
    static Collector* collector = new Collector();
    return *collector;
  }

  std::shared_ptr<ThreadBuffer> register_thread() {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_shared<ThreadBuffer>();
    buffer->tid = next_tid_++;
    buffers_.push_back(buffer);
    return buffer;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      buffer->events.clear();
    }
    dropped_.store(0, std::memory_order_relaxed);
  }

  std::size_t event_count() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      total += buffer->events.size();
    }
    return total;
  }

  /// Copy of every buffered event tagged with its thread id, sorted by
  /// timestamp (Chrome does not require the order, humans reading the
  /// JSON do).
  std::vector<std::pair<TraceEvent, std::uint32_t>> collect() {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<TraceEvent, std::uint32_t>> all;
    for (const auto& buffer : buffers_) {
      const std::lock_guard<std::mutex> buffer_lock(buffer->mutex);
      all.reserve(all.size() + buffer->events.size());
      for (const TraceEvent& e : buffer->events) {
        all.emplace_back(e, buffer->tid);
      }
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      return a.first.ts_ns < b.first.ts_ns;
    });
    return all;
  }

  void note_dropped() { dropped_.fetch_add(1, std::memory_order_relaxed); }
  std::size_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::size_t> dropped_{0};
};

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buffer =
      Collector::instance().register_thread();
  return *buffer;
}

void record_event(const TraceEvent& event) {
  ThreadBuffer& buffer = thread_buffer();
  const std::lock_guard<std::mutex> lock(buffer.mutex);
  if (buffer.events.size() >= kMaxEventsPerThread) {
    Collector::instance().note_dropped();
    return;
  }
  buffer.events.push_back(event);
}

}  // namespace

void start_tracing() {
  Collector::instance().clear();
  detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

void clear_trace() { Collector::instance().clear(); }

std::size_t trace_event_count() { return Collector::instance().event_count(); }

std::size_t trace_dropped_events() { return Collector::instance().dropped(); }

void Span::begin(const char* name, const char* category,
                 std::uint64_t trace_id) {
  active_ = true;
  name_ = name;
  category_ = category;
  trace_id_ = trace_id;
  start_ns_ = util::monotonic_ns();
}

void Span::end() {
  // A span that outlives stop_tracing() still records: it was sampled
  // while tracing was on, and a half-open interval would be worse than a
  // slightly-late close.
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.ts_ns = start_ns_;
  event.dur_ns = util::monotonic_ns() - start_ns_;
  event.trace_id = trace_id_;
  event.phase = 'X';
  record_event(event);
}

void trace_instant(const char* name, const char* category,
                   std::uint64_t trace_id) {
  if (!tracing_enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.ts_ns = util::monotonic_ns();
  event.dur_ns = 0;
  event.trace_id = trace_id;
  event.phase = 'i';
  record_event(event);
}

void write_trace_json(std::ostream& os) {
  const auto events = Collector::instance().collect();
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  char buf[64];
  for (const auto& [event, tid] : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\": \"" << event.name << "\", \"cat\": \""
       << event.category << "\", \"ph\": \"" << event.phase
       << "\", \"pid\": 1, \"tid\": " << tid;
    std::snprintf(buf, sizeof(buf), "%.3f",
                  static_cast<double>(event.ts_ns) / 1000.0);
    os << ", \"ts\": " << buf;
    if (event.phase == 'X') {
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(event.dur_ns) / 1000.0);
      os << ", \"dur\": " << buf;
    } else {
      os << ", \"s\": \"t\"";  // instant scope: thread
    }
    if (event.trace_id != 0) {
      std::snprintf(buf, sizeof(buf), "%016" PRIx64, event.trace_id);
      os << ", \"args\": {\"trace_id\": \"" << buf << "\"}";
    }
    os << '}';
  }
  os << "\n]}\n";
}

bool write_trace_json_atomic(const std::string& path) {
  std::ostringstream out;
  write_trace_json(out);
  return write_file_atomic(path, out.str());
}

}  // namespace manthan::obs
