// Process memory accounting: peak and current RSS, plus registration of
// the process-level callback gauges every metrics export includes.
//
// Subsystem byte gauges (clause arenas, sample matrices, AIG nodes) are
// owned by their subsystems and published as registry gauges; this
// header covers the one thing only the OS knows — the process's resident
// set — so benches and the Prometheus export can track memory alongside
// time.
#pragma once

#include <cstddef>

namespace manthan::obs {

class Registry;

/// High-water-mark resident set size in bytes (getrusage ru_maxrss).
/// Monotonic over the process lifetime; 0 if unavailable.
std::size_t peak_rss_bytes();

/// Current resident set size in bytes (/proc/self/statm); 0 on platforms
/// without procfs.
std::size_t current_rss_bytes();

/// Register `process_peak_rss_bytes` / `process_rss_bytes` as callback
/// gauges on `registry` (done automatically for Registry::global()).
void register_process_metrics(Registry& registry);

}  // namespace manthan::obs
