// Unified metrics registry — the one place every subsystem publishes its
// operational counters to, and the one place an operator reads them from.
//
// The pipeline's performance story used to live in ten scattered ad-hoc
// `*Stats` structs (SolverStats, SynthesisStats, ServiceStats, …) with no
// common export. Those structs remain the *typed views* — cheap,
// per-run, returned by value — while this registry is the *aggregated
// export*: named instruments that accumulate across runs, threads, and
// requests, snapshotted to JSON or Prometheus text format so `manthan3d`
// (and any embedding process) can serve a /metrics-style endpoint. Until
// the socket front end lands, transport is file-based: callers write
// `Registry::global().to_prometheus()` through write_file_atomic() on
// whatever cadence they like (manthan3d rewrites per drain cycle).
//
// Instruments:
//   * Counter   — monotonic uint64, lock-free relaxed adds.
//   * Gauge     — double, set/add/update_max via CAS; update_max is what
//                 peak-byte tracking uses (sample matrix, clause arenas).
//   * Histogram — log2-bucketed distribution of doubles (latencies in
//                 seconds, sizes in bytes): 42 power-of-two buckets from
//                 2^-20 (~1 µs / 1 B) to 2^20 (~12 days / 1 MiB) plus
//                 overflow, exported in native Prometheus histogram form.
//
// Naming scheme (documented in README §Observability):
//   <module>_<what>[_<unit>][_total]     e.g. service_requests_total,
//   manthan3_verify_seconds_total, sat_arena_peak_bytes,
//   process_peak_rss_bytes. Counters end in _total; peak gauges carry
//   _peak_; histograms are bare (<module>_<what>_seconds).
//
// Concurrency contract: instrument lookups (counter()/gauge()/…) take a
// registration mutex and return a reference that stays valid for the
// registry's lifetime — call sites cache it in a static. Updates through
// the returned reference are lock-free atomics; snapshot()/to_json()/
// to_prometheus() may run concurrently with any number of writers
// (readers see each instrument's latest relaxed value). The TSan suite
// in tests/test_obs.cpp hammers exactly this pattern.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace manthan::obs {

/// Monotonic event count. Lock-free.
class Counter {
 public:
  void add(std::uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void inc() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Double-valued level (byte sizes, cumulative seconds). Lock-free via
/// compare-exchange (std::atomic<double>::fetch_add is C++20).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  /// Raise the gauge to `v` if it is below — peak tracking.
  void update_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale (power-of-two bucket) histogram of non-negative doubles.
class Histogram {
 public:
  /// Bucket i holds values in (2^(kMinExp+i-1), 2^(kMinExp+i)]; bucket 0
  /// additionally absorbs everything at or below 2^kMinExp, and the last
  /// bucket everything above 2^kMaxExp.
  static constexpr int kMinExp = -20;
  static constexpr int kMaxExp = 20;
  static constexpr std::size_t kNumBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) + 2;

  void observe(double v);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (+inf for the overflow bucket).
  static double bucket_bound(std::size_t i);

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered instrument.
struct MetricsSnapshot {
  struct HistogramValue {
    std::string name;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::array<std::uint64_t, Histogram::kNumBuckets> buckets{};
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;  // includes callbacks
  std::vector<HistogramValue> histograms;
};

class Registry {
 public:
  /// The process-wide registry every subsystem publishes into. Process
  /// gauges (RSS) are pre-registered on first use.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name. The returned reference is valid for the
  /// registry's lifetime; cache it at the call site. Throws
  /// std::logic_error if `name` is already registered as another kind.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  /// Gauge evaluated lazily at snapshot/export time (process RSS and
  /// friends — values that are queries, not accumulations). Re-registering
  /// the same name replaces the callback.
  void register_callback_gauge(const std::string& name,
                               std::function<double()> fn);

  /// Sorted-by-name copy of everything; safe against concurrent writers.
  MetricsSnapshot snapshot() const;
  /// {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string to_json() const;
  /// Prometheus text exposition format (# TYPE lines + samples).
  std::string to_prometheus() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallback };
  struct Entry {
    Kind kind;
    std::size_t index;  // into the matching storage deque
  };

  // Instruments live in deques so the references handed out stay stable
  // across registrations; the sorted map drives deterministic export
  // order. The mutex guards registration and iteration only — instrument
  // updates are lock-free through the returned references.
  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::deque<std::function<double()>> callbacks_;
};

/// Write `text` to `path` via temp-file + rename so readers (and crashes)
/// never observe a half-written file. The standard transport for metrics
/// / trace / stats files until a socket front end exists.
bool write_file_atomic(const std::string& path, const std::string& text);

}  // namespace manthan::obs
