#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/memory.hpp"

namespace manthan::obs {

namespace {

/// Format a double the way both exports want it: integral values without
/// a fraction, everything else with enough digits to round-trip.
std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

void Histogram::observe(double v) {
  std::size_t idx;
  if (!(v > 0.0) || std::isnan(v)) {
    idx = 0;
  } else {
    int exp = 0;
    std::frexp(v, &exp);  // v in [2^(exp-1), 2^exp)
    if (exp <= kMinExp) {
      idx = 0;
    } else if (exp > kMaxExp) {
      idx = kNumBuckets - 1;
    } else {
      idx = static_cast<std::size_t>(exp - kMinExp);
    }
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (
      !sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

double Histogram::bucket_bound(std::size_t i) {
  if (i + 1 >= kNumBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

Registry& Registry::global() {
  static Registry* registry = [] {
    auto* r = new Registry();  // leaked: outlives every static destructor
    register_process_metrics(*r);
    return r;
  }();
  return *registry;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCounter) {
      throw std::logic_error("metric '" + name +
                             "' already registered as a different kind");
    }
    return counters_[it->second.index];
  }
  counters_.emplace_back();
  entries_.emplace(name, Entry{Kind::kCounter, counters_.size() - 1});
  return counters_.back();
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kGauge) {
      throw std::logic_error("metric '" + name +
                             "' already registered as a different kind");
    }
    return gauges_[it->second.index];
  }
  gauges_.emplace_back();
  entries_.emplace(name, Entry{Kind::kGauge, gauges_.size() - 1});
  return gauges_.back();
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kHistogram) {
      throw std::logic_error("metric '" + name +
                             "' already registered as a different kind");
    }
    return histograms_[it->second.index];
  }
  histograms_.emplace_back();
  entries_.emplace(name, Entry{Kind::kHistogram, histograms_.size() - 1});
  return histograms_.back();
}

void Registry::register_callback_gauge(const std::string& name,
                                       std::function<double()> fn) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (it->second.kind != Kind::kCallback) {
      throw std::logic_error("metric '" + name +
                             "' already registered as a different kind");
    }
    callbacks_[it->second.index] = std::move(fn);
    return;
  }
  callbacks_.push_back(std::move(fn));
  entries_.emplace(name, Entry{Kind::kCallback, callbacks_.size() - 1});
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(name, counters_[entry.index].value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(name, gauges_[entry.index].value());
        break;
      case Kind::kCallback:
        snap.gauges.emplace_back(name, callbacks_[entry.index]());
        break;
      case Kind::kHistogram: {
        const Histogram& h = histograms_[entry.index];
        MetricsSnapshot::HistogramValue hv;
        hv.name = name;
        // Count/sum/buckets are read individually relaxed: a snapshot
        // racing an observe() may be off by the in-flight observation,
        // which is fine for an advisory export.
        hv.count = h.count();
        hv.sum = h.sum();
        for (std::size_t i = 0; i < Histogram::kNumBuckets; ++i) {
          hv.buckets[i] = h.bucket(i);
        }
        snap.histograms.push_back(std::move(hv));
        break;
      }
    }
  }
  return snap;
}

std::string Registry::to_json() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << snap.counters[i].first
        << "\": " << snap.counters[i].second;
  }
  out << (snap.counters.empty() ? "}" : "\n  }") << ",\n  \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out << (i ? ",\n    " : "\n    ") << '"' << snap.gauges[i].first
        << "\": " << format_double(snap.gauges[i].second);
  }
  out << (snap.gauges.empty() ? "}" : "\n  }") << ",\n  \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    out << (i ? ",\n    " : "\n    ") << '"' << h.name
        << "\": {\"count\": " << h.count << ", \"sum\": " << format_double(h.sum)
        << ", \"buckets\": [";
    // Sparse export: [le, count] pairs for non-empty buckets only.
    bool first = true;
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      const double bound = Histogram::bucket_bound(b);
      out << (first ? "[" : ", [")
          << (std::isinf(bound) ? std::string("\"+inf\"")
                                : format_double(bound))
          << ", " << h.buckets[b] << ']';
      first = false;
    }
    out << "]}";
  }
  out << (snap.histograms.empty() ? "}" : "\n  }") << "\n}\n";
  return out.str();
}

std::string Registry::to_prometheus() const {
  const MetricsSnapshot snap = snapshot();
  std::ostringstream out;
  for (const auto& [name, value] : snap.counters) {
    out << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    out << "# TYPE " << name << " gauge\n"
        << name << ' ' << format_double(value) << '\n';
  }
  for (const auto& h : snap.histograms) {
    out << "# TYPE " << h.name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kNumBuckets; ++b) {
      cumulative += h.buckets[b];
      // Keep the exposition compact: only emit buckets that change the
      // cumulative count, plus the mandatory +Inf bucket.
      if (h.buckets[b] == 0 && b + 1 < Histogram::kNumBuckets) continue;
      const double bound = Histogram::bucket_bound(b);
      out << h.name << "_bucket{le=\""
          << (std::isinf(bound) ? std::string("+Inf") : format_double(bound))
          << "\"} " << cumulative << '\n';
    }
    out << h.name << "_sum " << format_double(h.sum) << '\n';
    out << h.name << "_count " << h.count << '\n';
  }
  return out.str();
}

bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out.flush()) return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  return !ec;
}

}  // namespace manthan::obs
