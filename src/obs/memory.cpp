#include "obs/memory.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/simd.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#include <unistd.h>
#endif

namespace manthan::obs {

std::size_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return static_cast<std::size_t>(usage.ru_maxrss);
#else
  // Linux reports kilobytes.
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

std::size_t current_rss_bytes() {
#if defined(__linux__)
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long size_pages = 0;
  unsigned long resident_pages = 0;
  const int matched = std::fscanf(f, "%lu %lu", &size_pages, &resident_pages);
  std::fclose(f);
  if (matched != 2) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page > 0 ? page : 4096);
#else
  return 0;
#endif
}

void register_process_metrics(Registry& registry) {
  registry.register_callback_gauge("process_peak_rss_bytes", [] {
    return static_cast<double>(peak_rss_bytes());
  });
  registry.register_callback_gauge("process_rss_bytes", [] {
    return static_cast<double>(current_rss_bytes());
  });
  // Active SIMD dispatch tier of the packed data path (0 = scalar,
  // 1 = AVX2, 2 = AVX-512) — lets dashboards and archived bench snapshots
  // tell machine tiers apart.
  registry.register_callback_gauge("simd_active_tier", [] {
    return static_cast<double>(
        static_cast<int>(util::simd::active_tier()));
  });
}

}  // namespace manthan::obs
