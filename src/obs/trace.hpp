// Phase-span tracing: RAII spans emitted into thread-local buffers and
// written out as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev).
//
// Every pipeline phase in Manthan3::synthesize (sample, learn, verify
// round, repair, MaxSAT round, inprocess, refit, substitute) and every
// service boundary (job start, cache hit, race lanes) opens a Span; the
// span records {name, category, start, duration, thread, trace id} when
// it closes. Trace ids are derived from the canonical spec fingerprint,
// so all spans of one request correlate across threads — race lanes and
// scheduler workers included.
//
// Cost model: tracing is off by default and every Span construction is
// exactly one relaxed atomic load + branch while it stays off — cheap
// enough to leave instrumentation in release hot paths (phase-level, not
// per-propagation). When on, a span close is one steady-clock read and a
// push into a per-thread buffer guarded by an uncontended mutex (the
// owning thread is the only writer; the mutex exists so a concurrent
// trace write can snapshot safely).
//
// Buffers are bounded (kMaxEventsPerThread); once a thread fills its
// buffer, further events are dropped and counted — a daemon left tracing
// for days degrades to a truncated trace, never to unbounded memory.
//
// Timestamps come from util::monotonic_ns(), the same epoch the log
// prefix uses, so `[  12.345678] [T03] [DEBUG] …` lines line up with
// trace spans at ts≈12345678µs.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace manthan::obs {

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True while spans are being collected. The one branch every disabled
/// span pays.
inline bool tracing_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Drop any buffered events and start collecting. Thread-safe.
void start_tracing();
/// Stop collecting; buffered events remain available for writing.
void stop_tracing();
/// Drop all buffered events (does not change the enabled flag).
void clear_trace();

/// Events currently buffered across all threads.
std::size_t trace_event_count();
/// Events dropped because a thread buffer hit kMaxEventsPerThread.
std::size_t trace_dropped_events();

/// Write everything buffered so far as Chrome trace-event JSON. May be
/// called while tracing is live (the daemon rewrites its trace file every
/// drain cycle); events are not consumed.
void write_trace_json(std::ostream& os);
/// write_trace_json via temp-file + rename.
bool write_trace_json_atomic(const std::string& path);

/// RAII span: records [construction, destruction) under `name`.
/// `name` and `category` must be string literals (or otherwise outlive
/// the trace) — events store the pointers, not copies.
class Span {
 public:
  explicit Span(const char* name, const char* category = "phase",
                std::uint64_t trace_id = 0) {
    if (tracing_enabled()) begin(name, category, trace_id);
  }
  ~Span() {
    if (active_) end();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(const char* name, const char* category, std::uint64_t trace_id);
  void end();

  bool active_ = false;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t trace_id_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// Zero-duration marker (Chrome "instant" event) — race-lane
/// cancellations, cache hits, drain-cycle boundaries.
void trace_instant(const char* name, const char* category = "event",
                   std::uint64_t trace_id = 0);

}  // namespace manthan::obs
