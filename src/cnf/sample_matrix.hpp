// Bit-packed training matrix for the sample -> learn data path.
//
// The sampler harvests thousands of models and the decision-tree learner
// scans them feature-by-feature; storing each model as a vector<bool> row
// makes both sides pay per-bit. SampleMatrix stores the data column-major
// instead: one std::uint64_t word per 64 samples per variable, so
//   * the sampler appends a model with one bit-set pass,
//   * the learner counts split statistics with popcount over masked words
//     (decision_tree.cpp), 64 samples per instruction,
//   * the AIG simulator batch-evaluates a candidate over the whole matrix
//     with its existing 64-way words (aig_sim.cpp), and
//   * the synthesis loop appends repair counterexamples across rounds
//     without re-packing anything (cross-round sample reuse).
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"
#include "util/simd.hpp"

namespace manthan::cnf {

class SampleMatrix {
 public:
  SampleMatrix() = default;
  explicit SampleMatrix(Var num_vars)
      : num_vars_(static_cast<std::size_t>(num_vars)) {}

  Var num_vars() const { return static_cast<Var>(num_vars_); }
  std::size_t num_samples() const { return num_samples_; }
  bool empty() const { return num_samples_ == 0; }
  /// Words per column: ceil(num_samples / 64).
  std::size_t num_words() const { return (num_samples_ + 63) / 64; }

  /// Append one sample row. `a` must assign at least num_vars() variables;
  /// anything above (solver-internal selectors, Tseitin variables) is
  /// ignored.
  void append(const Assignment& a);

  /// Bit (sample, v): sample's value of variable v.
  bool value(std::size_t sample, Var v) const {
    return (column(v)[sample >> 6] >> (sample & 63)) & 1u;
  }

  /// Unpack one sample into a full Assignment over num_vars() variables.
  Assignment row(std::size_t sample) const;

  /// fingerprint(row(sample)) without materializing the Assignment.
  std::uint64_t row_fingerprint(std::size_t sample) const;

  /// The packed column of variable `v`: num_words() words, sample s at bit
  /// (s % 64) of word (s / 64). Bits at positions >= num_samples() in the
  /// last word are always zero, so popcounts over (column & column) terms
  /// need no masking; complemented terms must be masked with tail_mask().
  /// Every column pointer is 64-byte aligned (storage is aligned and
  /// words_cap_ is kept a multiple of 8), so vector kernels never straddle
  /// a cache line.
  const std::uint64_t* column(Var v) const {
    return data_.data() + static_cast<std::size_t>(v) * words_cap_;
  }

  /// Valid-bit mask of the last word (all-ones when num_samples() is a
  /// multiple of 64, or for the empty matrix).
  std::uint64_t tail_mask() const {
    const std::size_t rem = num_samples_ & 63;
    return rem == 0 ? ~0ULL : (1ULL << rem) - 1;
  }

  void reserve(std::size_t samples);

  /// Heap bytes held by the packed matrix (capacity, not size: this is
  /// what the process actually pays). Feeds the memory-accounting gauges.
  std::size_t bytes() const {
    return data_.capacity() * sizeof(std::uint64_t);
  }

 private:
  void grow_words(std::size_t words);

  std::size_t num_vars_ = 0;
  std::size_t num_samples_ = 0;
  /// Words allocated per column; column v occupies
  /// data_[v * words_cap_ .. v * words_cap_ + words_cap_). Always a
  /// multiple of 8 (one 64-byte line) so every column starts aligned.
  std::size_t words_cap_ = 0;
  util::simd::AlignedVector<std::uint64_t> data_;
};

/// 64-bit fingerprint of the first `num_vars` values of `a` (splitmix64
/// chained over the packed words). Used for model deduplication: equal
/// fingerprints drop a candidate sample, so a collision loses one model in
/// ~2^64 — negligible against sample budgets — while distinct fingerprints
/// guarantee distinct models, so surviving samples stay pairwise distinct.
std::uint64_t fingerprint(const Assignment& a, std::size_t num_vars);
/// Fingerprint over all of `a`.
std::uint64_t fingerprint(const Assignment& a);

}  // namespace manthan::cnf
