#include "cnf/dimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace manthan::cnf {

CnfFormula parse_dimacs(std::istream& in) {
  CnfFormula formula;
  bool saw_header = false;
  Var declared_vars = 0;
  std::string token;
  Clause current;
  while (in >> token) {
    if (token == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (token == "p") {
      std::string fmt;
      Var num_vars = 0;
      std::size_t num_clauses = 0;
      if (!(in >> fmt >> num_vars >> num_clauses) || fmt != "cnf" ||
          num_vars < 0) {
        throw std::runtime_error("dimacs: malformed problem line");
      }
      formula.ensure_vars(num_vars);
      declared_vars = num_vars;
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      throw std::runtime_error("dimacs: clause before problem line");
    }
    std::int32_t value = 0;
    try {
      value = std::stoi(token);
    } catch (const std::exception&) {
      throw std::runtime_error("dimacs: unexpected token '" + token + "'");
    }
    if (value == 0) {
      formula.add_clause(current);
      current.clear();
    } else {
      if (value > declared_vars || value < -declared_vars) {
        throw std::runtime_error("dimacs: literal " + token +
                                 " out of declared variable range");
      }
      current.push_back(Lit::from_dimacs(value));
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("dimacs: clause not terminated by 0");
  }
  if (!saw_header) {
    throw std::runtime_error("dimacs: missing problem line");
  }
  return formula;
}

CnfFormula parse_dimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dimacs(in);
}

void write_dimacs(std::ostream& out, const CnfFormula& formula) {
  out << "p cnf " << formula.num_vars() << ' ' << formula.num_clauses()
      << '\n';
  for (const Clause& c : formula.clauses()) {
    for (const Lit l : c) out << l.to_dimacs() << ' ';
    out << "0\n";
  }
}

}  // namespace manthan::cnf
