// Variables and literals.
//
// Variables are 0-based indices. A literal packs (variable, sign) into one
// integer: lit = 2*var + (negated ? 1 : 0). This is the classic MiniSat
// encoding; it makes watch lists and polarity arrays plain vectors.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

namespace manthan::cnf {

using Var = std::int32_t;

inline constexpr Var kNoVar = -1;

class Lit {
 public:
  constexpr Lit() : code_(-2) {}
  constexpr Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  static constexpr Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  /// Build from a DIMACS-style non-zero integer: +v / -v with v >= 1.
  static constexpr Lit from_dimacs(std::int32_t dimacs) {
    return Lit(dimacs > 0 ? dimacs - 1 : -dimacs - 1, dimacs < 0);
  }

  constexpr Var var() const { return code_ >> 1; }
  constexpr bool negated() const { return (code_ & 1) != 0; }
  constexpr std::int32_t code() const { return code_; }
  constexpr std::int32_t to_dimacs() const {
    return negated() ? -(var() + 1) : (var() + 1);
  }

  constexpr Lit operator~() const { return from_code(code_ ^ 1); }
  /// This literal with the given sign applied on top (xor of polarities).
  constexpr Lit operator^(bool flip) const {
    return from_code(code_ ^ (flip ? 1 : 0));
  }

  constexpr bool operator==(const Lit& o) const { return code_ == o.code_; }
  constexpr bool operator!=(const Lit& o) const { return code_ != o.code_; }
  constexpr bool operator<(const Lit& o) const { return code_ < o.code_; }

  constexpr bool valid() const { return code_ >= 0; }

 private:
  std::int32_t code_;
};

inline constexpr Lit kUndefLit = Lit();

/// Positive / negative literal helpers.
inline constexpr Lit pos(Var v) { return Lit(v, false); }
inline constexpr Lit neg(Var v) { return Lit(v, true); }

/// Ternary logic value used by solver assignments.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
inline LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return lbool_from((v == LBool::kTrue) != flip);
}

}  // namespace manthan::cnf

template <>
struct std::hash<manthan::cnf::Lit> {
  std::size_t operator()(const manthan::cnf::Lit& l) const {
    return std::hash<std::int32_t>()(l.code());
  }
};
