#include "cnf/sample_matrix.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "util/budget.hpp"
#include "util/simd.hpp"

namespace manthan::cnf {

namespace {

/// Shared mixer behind fingerprint() and SampleMatrix::row_fingerprint():
/// packs bits 64 at a time and chains each word through the one
/// simd::fingerprint_chain implementation. Both entry points MUST hash
/// equal assignments equally — the synthesis loop dedups solver models
/// (via fingerprint) against matrix rows (via row_fingerprint) — and
/// sharing the feeder enforces that structurally.
template <typename BitAt>
std::uint64_t fingerprint_bits(std::size_t num_vars, BitAt bit_at) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ num_vars;
  std::uint64_t word = 0;
  for (std::size_t v = 0; v < num_vars; ++v) {
    if (bit_at(v)) word |= 1ULL << (v & 63);
    if ((v & 63) == 63) {
      h = util::simd::fingerprint_chain(h, &word, 1);
      word = 0;
    }
  }
  if ((num_vars & 63) != 0) h = util::simd::fingerprint_chain(h, &word, 1);
  return h;
}

}  // namespace

void SampleMatrix::grow_words(std::size_t words) {
  if (words <= words_cap_) return;
  // Capacity stays a multiple of 8 words (one 64-byte line): the storage
  // is 64-byte aligned, so every column pointer stays aligned as well.
  std::size_t cap = words_cap_ == 0 ? 8 : words_cap_;
  while (cap < words) cap *= 2;
  // Matrix growth is an instrumented hazard point: the byte delta is
  // charged to the thread's ResourceBudget and a (real or injected)
  // bad_alloc becomes OutOfBudgetError instead of process death.
  util::simd::AlignedVector<std::uint64_t> grown;
  util::guarded_grow(
      util::fault::Site::kSampleMatrixGrow,
      num_vars_ * (cap - words_cap_) * sizeof(std::uint64_t), [&] {
        grown = util::simd::AlignedVector<std::uint64_t>(num_vars_ * cap, 0);
      });
  for (std::size_t v = 0; v < num_vars_; ++v) {
    const std::uint64_t* src = data_.data() + v * words_cap_;
    std::uint64_t* dst = grown.data() + v * cap;
    for (std::size_t w = 0; w < words_cap_; ++w) dst[w] = src[w];
  }
  data_ = std::move(grown);
  words_cap_ = cap;
}

void SampleMatrix::reserve(std::size_t samples) {
  grow_words((samples + 63) / 64);
}

void SampleMatrix::append(const Assignment& a) {
  // Callers hand in solver models sized to a possibly different variable
  // range; an undersized assignment would read out of bounds below, so
  // the precondition must hold in Release builds too.
  if (a.size() < num_vars_) {
    throw std::invalid_argument(
        "SampleMatrix::append: assignment covers " +
        std::to_string(a.size()) + " variables, matrix needs " +
        std::to_string(num_vars_));
  }
  const std::size_t s = num_samples_++;
  grow_words((s >> 6) + 1);
  const std::size_t word = s >> 6;
  const std::uint64_t bit = 1ULL << (s & 63);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    if (a.value(static_cast<Var>(v))) data_[v * words_cap_ + word] |= bit;
  }
}

Assignment SampleMatrix::row(std::size_t sample) const {
  assert(sample < num_samples_);
  Assignment a(num_vars_);
  for (std::size_t v = 0; v < num_vars_; ++v) {
    a.set(static_cast<Var>(v), value(sample, static_cast<Var>(v)));
  }
  return a;
}

std::uint64_t SampleMatrix::row_fingerprint(std::size_t sample) const {
  return fingerprint_bits(num_vars_, [&](std::size_t v) {
    return value(sample, static_cast<Var>(v));
  });
}

std::uint64_t fingerprint(const Assignment& a, std::size_t num_vars) {
  return fingerprint_bits(num_vars, [&](std::size_t v) {
    return a.value(static_cast<Var>(v));
  });
}

std::uint64_t fingerprint(const Assignment& a) {
  return fingerprint(a, a.size());
}

}  // namespace manthan::cnf
