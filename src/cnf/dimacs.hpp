// DIMACS CNF reading and writing.
#pragma once

#include <iosfwd>
#include <string>

#include "cnf/cnf.hpp"

namespace manthan::cnf {

/// Parse DIMACS CNF from a stream. Throws std::runtime_error on malformed
/// input. Comment lines ('c ...') are ignored.
CnfFormula parse_dimacs(std::istream& in);

/// Parse DIMACS CNF from a string (convenience for tests).
CnfFormula parse_dimacs_string(const std::string& text);

/// Write DIMACS CNF.
void write_dimacs(std::ostream& out, const CnfFormula& formula);

}  // namespace manthan::cnf
