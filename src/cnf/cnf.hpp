// CNF formulas and total/partial assignments.
//
// CnfFormula is the common currency between the DQBF container, the SAT /
// MaxSAT solvers, the sampler, and the Tseitin encoder.
#pragma once

#include <string>
#include <vector>

#include "cnf/lit.hpp"

namespace manthan::cnf {

using Clause = std::vector<Lit>;

/// A complete assignment over variables [0, size).
class Assignment {
 public:
  Assignment() = default;
  explicit Assignment(std::size_t num_vars, bool value = false)
      : values_(num_vars, value) {}

  std::size_t size() const { return values_.size(); }
  void resize(std::size_t n, bool value = false) { values_.resize(n, value); }

  bool value(Var v) const { return values_[static_cast<std::size_t>(v)]; }
  void set(Var v, bool value) { values_[static_cast<std::size_t>(v)] = value; }

  /// Truth value of a literal under this assignment.
  bool value(Lit l) const { return value(l.var()) != l.negated(); }

  bool operator==(const Assignment& o) const { return values_ == o.values_; }

  /// Packed key for hashing / dedup of samples.
  std::vector<bool> const& bits() const { return values_; }

 private:
  std::vector<bool> values_;
};

/// A CNF formula: clause list plus a variable count.
class CnfFormula {
 public:
  CnfFormula() = default;
  explicit CnfFormula(Var num_vars) : num_vars_(num_vars) {}

  Var num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return clauses_.size(); }

  /// Allocate a fresh variable and return it.
  Var new_var() { return num_vars_++; }
  /// Ensure at least `n` variables exist.
  void ensure_vars(Var n) {
    if (n > num_vars_) num_vars_ = n;
  }

  void add_clause(Clause clause);
  void add_unit(Lit a) { add_clause({a}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }
  void add_ternary(Lit a, Lit b, Lit c) { add_clause({a, b, c}); }

  /// Append all clauses of `other` (same variable numbering).
  void append(const CnfFormula& other);

  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(std::size_t i) const { return clauses_[i]; }

  /// True iff the assignment satisfies every clause.
  bool satisfied_by(const Assignment& a) const;

  /// Human-readable dump for debugging and error messages.
  std::string to_string() const;

 private:
  Var num_vars_ = 0;
  std::vector<Clause> clauses_;
};

/// Encode (lhs <-> rhs) as two binary clauses into `out`.
void add_equivalence(CnfFormula& out, Lit lhs, Lit rhs);

/// Encode (lhs <-> value) as a unit clause into `out`.
void add_fixed(CnfFormula& out, Lit lhs, bool value);

}  // namespace manthan::cnf
