// Canonical (permutation- and renaming-invariant) hashing of clause sets.
//
// cnf::fingerprint (sample_matrix.hpp) identifies *assignments*; this
// module generalizes the idea to whole formulas, the keying primitive of
// the synthesis service's cross-instance result cache. Two ingredients:
//
//   * Color refinement (1-dimensional Weisfeiler-Leman) over the
//     variable/clause incidence graph: every variable starts from a
//     caller-chosen color (its quantifier role, occurrence counts, ...)
//     and is iteratively re-colored by the multiset of signatures of the
//     clauses it occurs in, with polarity. After a few rounds, variables
//     that play structurally different roles in the formula carry
//     different colors, while a renamed copy of the formula reproduces
//     the colors exactly.
//
//   * A commutative clause-set hash under a variable labeling: each
//     clause hashes the *sorted* multiset of its literal labels, and the
//     clause hashes combine by commutative accumulation — so neither
//     clause order, literal order, nor (via the labels) variable names
//     affect the result.
//
// Refinement is not a complete isomorphism test: structurally symmetric
// (automorphic) variables keep equal colors forever, which is harmless —
// any consistent labeling of an orbit hashes identically — and distinct
// but WL-equivalent formulas may collide, which the 128-bit fingerprint
// consumers treat like any hash collision (vanishingly rare on real
// instances; the cache layers tolerate it by construction).
#pragma once

#include <cstdint>
#include <vector>

#include "cnf/cnf.hpp"

namespace manthan::cnf {

/// One round of color refinement: recolor every variable by its previous
/// color plus the multiset of (clause signature, polarity) pairs of its
/// occurrences. `colors` must have one entry per variable of `formula`
/// (callers seed it with role/occurrence information). `extra` may add a
/// per-variable salt mixed in each round (the DQBF layer feeds dependency
/// -edge accumulators through it); pass an empty vector for none.
void refine_colors(const CnfFormula& formula,
                   std::vector<std::uint64_t>& colors,
                   const std::vector<std::uint64_t>& extra = {});

/// Number of distinct values in `colors` (partition size — refinement has
/// stabilized once two consecutive rounds report the same count).
std::size_t count_colors(const std::vector<std::uint64_t>& colors);

/// Commutative hash of the clause set under the labeling `labels`
/// (one label per variable): invariant under clause reordering, literal
/// reordering within clauses, and any renaming that preserves labels.
/// `seed` decorrelates independent hash planes (the fingerprint's hi and
/// lo halves use different seeds over the same labeling).
std::uint64_t clause_set_hash(const CnfFormula& formula,
                              const std::vector<std::uint64_t>& labels,
                              std::uint64_t seed);

/// Per-variable positive/negative occurrence counts — the standard
/// renaming-invariant ingredient of initial colors.
struct OccurrenceCounts {
  std::vector<std::uint32_t> positive;
  std::vector<std::uint32_t> negative;
};
OccurrenceCounts count_occurrences(const CnfFormula& formula);

}  // namespace manthan::cnf
