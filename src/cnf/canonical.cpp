#include "cnf/canonical.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/rng.hpp"

namespace manthan::cnf {

namespace {

// Domain-separation salts for the mixers: literal polarity inside clause
// signatures, polarity of the clause->variable feedback, and the
// per-round extra salt. Arbitrary odd constants.
constexpr std::uint64_t kPosLit = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kNegLit = 0xc2b2ae3d27d4eb4fULL;
constexpr std::uint64_t kPosOcc = 0x165667b19e3779f9ULL;
constexpr std::uint64_t kNegOcc = 0x27d4eb2f165667c5ULL;
constexpr std::uint64_t kExtra = 0x85ebca77c2b2ae63ULL;

}  // namespace

void refine_colors(const CnfFormula& formula,
                   std::vector<std::uint64_t>& colors,
                   const std::vector<std::uint64_t>& extra) {
  // Clause signatures: commutative accumulation over literal colors, so a
  // literal permutation inside the clause cannot matter. Length is mixed
  // in to separate e.g. (a a b) from (a b) style coincidences — the
  // formula cannot contain duplicate literals, but subset clauses with
  // equal accumulated sums should not collide silently.
  const std::vector<Clause>& clauses = formula.clauses();
  std::vector<std::uint64_t> clause_sig(clauses.size());
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    std::uint64_t acc = 0;
    for (const Lit l : clauses[c]) {
      const std::uint64_t color = colors[static_cast<std::size_t>(l.var())];
      acc += util::splitmix64(color ^ (l.negated() ? kNegLit : kPosLit));
    }
    clause_sig[c] = util::splitmix64(acc ^ clauses[c].size());
  }

  // Variable update: previous color + commutative multiset of occurrence
  // signatures + the caller's extra salt (dependency edges at the DQBF
  // layer).
  std::vector<std::uint64_t> acc(colors.size(), 0);
  for (std::size_t c = 0; c < clauses.size(); ++c) {
    for (const Lit l : clauses[c]) {
      acc[static_cast<std::size_t>(l.var())] += util::splitmix64(
          clause_sig[c] ^ (l.negated() ? kNegOcc : kPosOcc));
    }
  }
  for (std::size_t v = 0; v < colors.size(); ++v) {
    std::uint64_t h = colors[v] ^ util::splitmix64(acc[v]);
    if (!extra.empty()) h ^= util::splitmix64(extra[v] ^ kExtra);
    colors[v] = util::splitmix64(h);
  }
}

std::size_t count_colors(const std::vector<std::uint64_t>& colors) {
  std::unordered_set<std::uint64_t> distinct(colors.begin(), colors.end());
  return distinct.size();
}

std::uint64_t clause_set_hash(const CnfFormula& formula,
                              const std::vector<std::uint64_t>& labels,
                              std::uint64_t seed) {
  // Clause hash: sorted literal labels chained through splitmix64 (the
  // sort restores a canonical literal order); clause hashes combine by
  // commutative sum+xor so clause order is immaterial.
  std::uint64_t sum = 0;
  std::uint64_t sym = 0;
  std::vector<std::uint64_t> lit_labels;
  for (const Clause& clause : formula.clauses()) {
    lit_labels.clear();
    for (const Lit l : clause) {
      lit_labels.push_back(util::splitmix64(
          labels[static_cast<std::size_t>(l.var())] ^
          (l.negated() ? kNegLit : kPosLit)));
    }
    std::sort(lit_labels.begin(), lit_labels.end());
    std::uint64_t h = seed ^ clause.size();
    for (const std::uint64_t label : lit_labels) {
      h = util::splitmix64(h ^ label);
    }
    sum += h;
    sym ^= util::splitmix64(h);
  }
  return util::splitmix64(seed ^ sum) ^ sym;
}

OccurrenceCounts count_occurrences(const CnfFormula& formula) {
  OccurrenceCounts counts;
  const std::size_t n = static_cast<std::size_t>(formula.num_vars());
  counts.positive.assign(n, 0);
  counts.negative.assign(n, 0);
  for (const Clause& clause : formula.clauses()) {
    for (const Lit l : clause) {
      if (l.negated()) {
        ++counts.negative[static_cast<std::size_t>(l.var())];
      } else {
        ++counts.positive[static_cast<std::size_t>(l.var())];
      }
    }
  }
  return counts;
}

}  // namespace manthan::cnf
