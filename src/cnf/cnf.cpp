#include "cnf/cnf.hpp"

#include <algorithm>
#include <sstream>

namespace manthan::cnf {

void CnfFormula::add_clause(Clause clause) {
  for (const Lit l : clause) {
    assert(l.valid());
    ensure_vars(l.var() + 1);
  }
  clauses_.push_back(std::move(clause));
}

void CnfFormula::append(const CnfFormula& other) {
  ensure_vars(other.num_vars());
  clauses_.insert(clauses_.end(), other.clauses_.begin(),
                  other.clauses_.end());
}

bool CnfFormula::satisfied_by(const Assignment& a) const {
  for (const Clause& c : clauses_) {
    const bool sat = std::any_of(c.begin(), c.end(),
                                 [&](Lit l) { return a.value(l); });
    if (!sat) return false;
  }
  return true;
}

std::string CnfFormula::to_string() const {
  std::ostringstream os;
  os << "p cnf " << num_vars_ << ' ' << clauses_.size() << '\n';
  for (const Clause& c : clauses_) {
    for (const Lit l : c) os << l.to_dimacs() << ' ';
    os << "0\n";
  }
  return os.str();
}

void add_equivalence(CnfFormula& out, Lit lhs, Lit rhs) {
  out.add_binary(~lhs, rhs);
  out.add_binary(lhs, ~rhs);
}

void add_fixed(CnfFormula& out, Lit lhs, bool value) {
  out.add_unit(lhs ^ !value);
}

}  // namespace manthan::cnf
