#include "baselines/hqs_lite.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "util/timer.hpp"

namespace manthan::baselines {

using core::SynthesisResult;
using core::SynthesisStatus;
using cnf::Var;

HqsLite::HqsLite(HqsLiteOptions options) : options_(options) {}

SynthesisResult HqsLite::synthesize(const dqbf::DqbfFormula& formula,
                                    aig::Aig& manager) {
  util::Timer total_timer;
  const util::Deadline deadline(options_.time_limit_seconds, options_.cancel);
  SynthesisResult result;
  const auto finish = [&](SynthesisStatus status) {
    result.status = status;
    result.stats.total_seconds = total_timer.seconds();
    return result;
  };

  const std::vector<dqbf::Existential>& ex = formula.existentials();
  const std::size_t m = ex.size();
  const std::vector<Var>& universals = formula.universals();

  // X_common = ∩ H_i (all of X when there are no existentials).
  std::vector<Var> x_common;
  if (m == 0) {
    x_common = universals;
  } else {
    x_common = ex[0].deps;
    for (std::size_t i = 1; i < m; ++i) {
      std::vector<Var> next;
      std::set_intersection(x_common.begin(), x_common.end(),
                            ex[i].deps.begin(), ex[i].deps.end(),
                            std::back_inserter(next));
      x_common = std::move(next);
    }
  }
  std::vector<Var> x_expand;
  for (const Var x : universals) {
    if (!std::binary_search(x_common.begin(), x_common.end(), x)) {
      x_expand.push_back(x);
    }
  }
  if (x_expand.size() > options_.max_expansion_vars) {
    // Expansion would blow up: the realistic failure mode of
    // elimination-based solvers on strongly non-linear instances.
    return finish(SynthesisStatus::kLimit);
  }
  std::unordered_map<Var, std::size_t> expand_pos;
  for (std::size_t p = 0; p < x_expand.size(); ++p) {
    expand_pos.emplace(x_expand[p], p);
  }

  // Per existential: the expanded part E_i of H_i (positions into
  // x_expand) and a copy variable per assignment of E_i.
  std::vector<std::vector<std::size_t>> e_positions(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (const Var x : ex[i].deps) {
      const auto it = expand_pos.find(x);
      if (it != expand_pos.end()) e_positions[i].push_back(it->second);
    }
  }
  cnf::CnfFormula expanded(formula.matrix().num_vars());
  std::vector<std::unordered_map<std::uint64_t, Var>> copy_var(m);
  std::vector<Var> copies;  // all copy variables, in allocation order
  const auto copy_of = [&](std::size_t i, std::uint64_t alpha) -> Var {
    // Key: assignment alpha restricted to E_i, packed densely.
    std::uint64_t key = 0;
    for (std::size_t b = 0; b < e_positions[i].size(); ++b) {
      key |= ((alpha >> e_positions[i][b]) & 1) << b;
    }
    const auto it = copy_var[i].find(key);
    if (it != copy_var[i].end()) return it->second;
    const Var v = expanded.new_var();
    copy_var[i].emplace(key, v);
    copies.push_back(v);
    return v;
  };

  // Instantiate the matrix for every assignment of the expanded block.
  const std::uint64_t num_blocks = 1ULL << x_expand.size();
  for (std::uint64_t alpha = 0; alpha < num_blocks; ++alpha) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    for (const cnf::Clause& clause : formula.matrix().clauses()) {
      cnf::Clause instantiated;
      bool satisfied = false;
      for (const cnf::Lit l : clause) {
        const Var v = l.var();
        const auto it = expand_pos.find(v);
        if (it != expand_pos.end()) {
          const bool value = ((alpha >> it->second) & 1) != 0;
          if (value != l.negated()) {
            satisfied = true;
            break;
          }
          continue;  // literal false under alpha: drop
        }
        if (formula.is_existential(v)) {
          const std::size_t i = formula.existential_index(v);
          instantiated.push_back(
              cnf::Lit(copy_of(i, alpha), l.negated()));
        } else {
          instantiated.push_back(l);  // X_common literal
        }
      }
      if (!satisfied) expanded.add_clause(std::move(instantiated));
    }
  }

  // Build the expanded matrix as a BDD: X_common on top, copies below.
  // The abort hook bounds every individual BDD operation (a single
  // ite/exists on a blown-up graph could otherwise overrun the budget).
  bdd::Bdd bdd;
  bdd.set_abort_check([&]() {
    return deadline.expired() || bdd.num_nodes() > options_.max_bdd_nodes;
  });
  std::vector<std::int32_t> order;
  for (const Var x : x_common) order.push_back(x);
  for (const Var c : copies) order.push_back(c);
  bdd.declare_order(order);
  try {
  const std::optional<bdd::NodeId> built =
      bdd.from_cnf_limited(expanded, options_.max_bdd_nodes);
  if (!built.has_value()) return finish(SynthesisStatus::kLimit);
  bdd::NodeId phi = *built;
  if (deadline.expired()) return finish(SynthesisStatus::kTimeout);

  // Realizability: ∃Y' φ' must be a tautology over X_common.
  {
    std::vector<std::int32_t> copy_ids(copies.begin(), copies.end());
    const bdd::NodeId projected = bdd.exists(phi, copy_ids);
    if (projected != bdd::kTrueNode) {
      return finish(SynthesisStatus::kUnrealizable);
    }
  }
  if (bdd.num_nodes() > options_.max_bdd_nodes) {
    return finish(SynthesisStatus::kLimit);
  }

  // Skolem extraction over the copies: cofactor-and-compose in sequence.
  std::unordered_map<Var, bdd::NodeId> skolem;
  bdd::NodeId current = phi;
  for (std::size_t c = 0; c < copies.size(); ++c) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (bdd.num_nodes() > options_.max_bdd_nodes) {
      return finish(SynthesisStatus::kLimit);
    }
    std::vector<std::int32_t> later(copies.begin() +
                                        static_cast<std::ptrdiff_t>(c) + 1,
                                    copies.end());
    const bdd::NodeId projected = bdd.exists(current, later);
    // Candidate: output 1 exactly when extending with 1 keeps φ' holdable.
    const bdd::NodeId f_c = bdd.restrict_var(projected, copies[c], true);
    skolem.emplace(copies[c], f_c);
    current = bdd.compose(current, copies[c], f_c);
  }
  // `current` is now φ' with all copies substituted; True instance iff it
  // is the constant-true function of X_common.
  if (current != bdd::kTrueNode) {
    return finish(SynthesisStatus::kUnrealizable);
  }

  // Reassemble Henkin functions: a multiplexer tree over E_i selects the
  // copy's Skolem function (support ⊆ X_common ⊆ H_i).
  result.vector.functions.resize(m, aig::kFalseRef);
  for (std::size_t i = 0; i < m; ++i) {
    const std::vector<std::size_t>& positions = e_positions[i];
    const std::function<aig::Ref(std::size_t, std::uint64_t)> build =
        [&](std::size_t depth, std::uint64_t key) -> aig::Ref {
      if (depth == positions.size()) {
        const auto it = copy_var[i].find(key);
        // Copies are created lazily by clause instantiation; an absent
        // copy means the variable was unconstrained there — any function
        // works, use constant false.
        if (it == copy_var[i].end()) return aig::kFalseRef;
        return bdd_to_aig(bdd, skolem.at(it->second), manager);
      }
      const aig::Ref lo = build(depth + 1, key);
      const aig::Ref hi = build(depth + 1, key | (1ULL << depth));
      const aig::Ref selector =
          manager.input(x_expand[positions[depth]]);
      return manager.ite_gate(selector, hi, lo);
    };
    result.vector.functions[i] = build(0, 0);
  }
  return finish(SynthesisStatus::kRealizable);
  } catch (const bdd::BddAborted&) {
    return finish(deadline.expired() ? SynthesisStatus::kTimeout
                                     : SynthesisStatus::kLimit);
  }
}

}  // namespace manthan::baselines
