// PedantLite — a definition-extraction-based Henkin synthesizer in the
// spirit of Pedant (Reichl, Slivovsky, Szeider, SAT 2021).
//
// Strategy: for every existential y_i, decide with Padoa's method whether
// φ uniquely defines y_i in terms of H_i; extract definitions for defined
// variables. For the remaining variables, Pedant's arbiter variables —
// one per relevant assignment of the dependency set — are realized here
// as a counterexample-driven *arbiter table*: a decision list of
// (H_i-cube → value) entries layered over a default function. Every
// verification counterexample either inserts or flips a table entry, so
// the loop makes progress; oscillating entries signal an instance the
// approach cannot finish (bounded by max_iterations).
//
// This reproduces Pedant's profile: instant on definition-rich instances
// (e.g. equivalence checking), weak when outputs are heavily
// underconstrained over large dependency sets.
#pragma once

#include "aig/aig.hpp"
#include "core/manthan3.hpp"  // SynthesisResult / SynthesisStatus
#include "core/unique_def.hpp"
#include "dqbf/dqbf.hpp"
#include "util/cancel.hpp"

namespace manthan::baselines {

struct PedantLiteOptions {
  core::UniqueDefOptions unique;
  /// Cap on verification counterexamples.
  std::size_t max_iterations = 3000;
  /// Cap on total arbiter-table entries across all outputs.
  std::size_t max_table_entries = 50000;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Cooperative stop flag composed into the internal Deadline (polled in
  /// the counterexample loop and every SAT query). Null = not
  /// cancellable; must outlive synthesize().
  const util::CancelToken* cancel = nullptr;
};

class PedantLite {
 public:
  explicit PedantLite(PedantLiteOptions options = {});

  core::SynthesisResult synthesize(const dqbf::DqbfFormula& formula,
                                   aig::Aig& manager);

 private:
  PedantLiteOptions options_;
};

}  // namespace manthan::baselines
