// HqsLite — an elimination-based Henkin synthesizer in the spirit of HQS2
// (Gitina et al., DATE 2015; Wimmer et al., ATVA 2016).
//
// Strategy: reduce the DQBF to an equal-dependency (Skolem) problem by
// *universal expansion* of every universal variable outside the common
// dependency core  X_common = ∩_i H_i :  the matrix is instantiated for
// all assignments of the expanded variables, and each existential y_i
// splits into one copy per assignment of H_i's expanded part. The
// resulting ∀X_common ∃Y' problem is solved with the BDD engine, Skolem
// functions are extracted by cofactor-and-compose, and Henkin functions
// are reassembled as multiplexer trees over the expanded variables.
//
// This reproduces HQS2's characteristic profile: excellent on instances
// with small non-linear parts, hopeless when the expansion blows up —
// which is precisely the orthogonality the paper's Figures 7-10 measure.
#pragma once

#include "aig/aig.hpp"
#include "core/manthan3.hpp"  // SynthesisResult / SynthesisStatus
#include "dqbf/dqbf.hpp"
#include "util/cancel.hpp"

namespace manthan::baselines {

struct HqsLiteOptions {
  /// Refuse to expand more than this many universal variables
  /// (2^k matrix copies).
  std::size_t max_expansion_vars = 12;
  /// Abort when the BDD manager exceeds this node count.
  std::size_t max_bdd_nodes = 2000000;
  /// Wall-clock budget in seconds; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Cooperative stop flag composed into the internal Deadline (polled in
  /// the expansion loop and the BDD node-limit callback). Null = not
  /// cancellable; must outlive synthesize().
  const util::CancelToken* cancel = nullptr;
};

class HqsLite {
 public:
  explicit HqsLite(HqsLiteOptions options = {});

  core::SynthesisResult synthesize(const dqbf::DqbfFormula& formula,
                                   aig::Aig& manager);

 private:
  HqsLiteOptions options_;
};

}  // namespace manthan::baselines
