#include "baselines/pedant_lite.hpp"

#include <map>
#include <vector>

#include "dqbf/certificate.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace manthan::baselines {

using core::SynthesisResult;
using core::SynthesisStatus;
using cnf::Var;

PedantLite::PedantLite(PedantLiteOptions options) : options_(options) {}

SynthesisResult PedantLite::synthesize(const dqbf::DqbfFormula& formula,
                                       aig::Aig& manager) {
  util::Timer total_timer;
  const util::Deadline deadline(options_.time_limit_seconds, options_.cancel);
  SynthesisResult result;
  const auto finish = [&](SynthesisStatus status) {
    result.status = status;
    result.stats.total_seconds = total_timer.seconds();
    return result;
  };

  const std::vector<dqbf::Existential>& ex = formula.existentials();
  const std::size_t m = ex.size();
  const cnf::CnfFormula& matrix = formula.matrix();

  sat::Solver phi_solver;
  if (!phi_solver.add_formula(matrix)) {
    return finish(SynthesisStatus::kUnrealizable);
  }

  // Phase 1: definition extraction.
  std::vector<aig::Ref> f(m, aig::kFalseRef);
  std::vector<bool> defined(m, false);
  core::UniqueDefExtractor unique(formula, options_.unique);
  for (std::size_t i = 0; i < m; ++i) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (unique.is_defined(i, &deadline) !=
        core::UniqueDefExtractor::Defined::kYes) {
      continue;
    }
    const std::optional<aig::Ref> def = unique.extract(i, manager);
    if (def.has_value()) {
      f[i] = *def;
      defined[i] = true;
      ++result.stats.unique_defined;
    }
  }

  // Phase 2: arbiter tables for the undefined outputs. Each table maps an
  // H_i valuation (packed bits over the sorted dependency set) to the
  // output value; the function is default-false overridden by entries.
  std::vector<std::map<std::vector<bool>, bool>> table(m);
  std::size_t total_entries = 0;
  std::size_t flips = 0;

  const auto rebuild = [&](std::size_t i) {
    aig::Ref acc = aig::kFalseRef;  // default
    for (const auto& [cube_bits, value] : table[i]) {
      std::vector<aig::Ref> lits;
      lits.reserve(cube_bits.size());
      for (std::size_t b = 0; b < cube_bits.size(); ++b) {
        const aig::Ref in = manager.input(ex[i].deps[b]);
        lits.push_back(cube_bits[b] ? in : aig::ref_not(in));
      }
      const aig::Ref cube = manager.and_all(lits);
      acc = manager.ite_gate(cube, aig::Aig::constant(value), acc);
    }
    f[i] = acc;
  };

  for (std::size_t iteration = 0;; ++iteration) {
    if (deadline.expired()) return finish(SynthesisStatus::kTimeout);
    if (iteration >= options_.max_iterations ||
        total_entries > options_.max_table_entries) {
      return finish(SynthesisStatus::kLimit);
    }
    ++result.stats.counterexamples;

    dqbf::HenkinVector candidate{f};
    const cnf::CnfFormula refutation =
        dqbf::build_refutation_cnf(formula, manager, candidate);
    sat::Solver verify_solver;
    sat::Result verify_result;
    if (!verify_solver.add_formula(refutation)) {
      verify_result = sat::Result::kUnsat;
    } else {
      verify_result = verify_solver.solve({}, deadline);
    }
    if (verify_result == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (verify_result == sat::Result::kUnsat) {
      result.vector.functions = f;
      return finish(SynthesisStatus::kRealizable);
    }
    const cnf::Assignment& delta = verify_solver.model();

    // Does δ[X] extend to a model at all?
    std::vector<cnf::Lit> assumptions;
    for (const Var x : formula.universals()) {
      assumptions.push_back(delta.value(x) ? cnf::pos(x) : cnf::neg(x));
    }
    const sat::Result extend = phi_solver.solve(assumptions, deadline);
    if (extend == sat::Result::kUnknown) {
      return finish(SynthesisStatus::kTimeout);
    }
    if (extend == sat::Result::kUnsat) {
      return finish(SynthesisStatus::kUnrealizable);
    }
    const cnf::Assignment& pi = phi_solver.model();

    // Correct every undefined output that disagrees with the extension.
    bool changed = false;
    for (std::size_t i = 0; i < m; ++i) {
      if (defined[i]) continue;
      const bool current = manager.evaluate(f[i], delta);
      const bool wanted = pi.value(ex[i].var);
      if (current == wanted) continue;
      std::vector<bool> cube_bits;
      cube_bits.reserve(ex[i].deps.size());
      for (const Var d : ex[i].deps) cube_bits.push_back(delta.value(d));
      const auto it = table[i].find(cube_bits);
      if (it == table[i].end()) {
        table[i].emplace(std::move(cube_bits), wanted);
        ++total_entries;
      } else {
        // Entry flip: the previously recorded value turned out to block a
        // different counterexample. Bounded to avoid oscillation.
        it->second = wanted;
        if (++flips > options_.max_iterations) {
          return finish(SynthesisStatus::kIncomplete);
        }
      }
      rebuild(i);
      changed = true;
    }
    if (!changed) {
      // Counterexample touches only defined outputs: cannot happen for
      // correct definitions; fail safe rather than loop.
      return finish(SynthesisStatus::kIncomplete);
    }
  }
}

}  // namespace manthan::baselines
