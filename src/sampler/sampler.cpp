#include "sampler/sampler.hpp"

#include <unordered_set>

#include "obs/trace.hpp"
#include "sat/solver.hpp"
#include "util/simd.hpp"

namespace manthan::sampler {

namespace {

/// Population count of variable `v`'s packed column (tail bits are zero by
/// construction, so no masking is needed).
std::size_t column_popcount(const cnf::SampleMatrix& m, Var v) {
  return util::simd::kernels().popcount(m.column(v), m.num_words());
}

}  // namespace

Sampler::Sampler(SamplerOptions options) : options_(options) {}

cnf::SampleMatrix Sampler::sample_packed(const CnfFormula& formula,
                                         const std::vector<Var>& bias_vars,
                                         const util::Deadline* deadline) {
  cnf::SampleMatrix matrix(formula.num_vars());
  stats_ = SamplerStats{};
  // Randomized branching can rediscover the same model; the training set
  // must contain distinct assignments, so repeats are dropped (by 64-bit
  // model fingerprint — see cnf::fingerprint on the collision odds) and
  // the draw loop tops itself up. A duplicate budget bounds the extra
  // descents when the formula has fewer models than requested.
  std::unordered_set<std::uint64_t> seen;

  const auto draw = [&](sat::Solver& solver, std::size_t count) {
    if (count == 0) return;
    std::size_t duplicates = 0;
    const std::size_t max_duplicates = 16 + 4 * count;
    if (options_.enumerate) {
      // Persistent enumerating session: the deadline/duplicate budget is
      // polled inside the harvest loop, one check per descent.
      const sat::ModelSink sink = [&](const Assignment& model) {
        if (deadline != nullptr && deadline->expired()) return false;
        if (seen.insert(cnf::fingerprint(model, matrix.num_vars()))
                .second) {
          matrix.append(model);
          return --count > 0;
        }
        ++stats_.duplicates;
        return ++duplicates < max_duplicates;
      };
      solver.enumerate(sink, {}, deadline);
      return;
    }
    // Legacy loop: one full CDCL solve per model (distribution oracle).
    while (count > 0) {
      if (deadline != nullptr && deadline->expired()) break;
      const sat::Result result =
          deadline != nullptr ? solver.solve({}, *deadline) : solver.solve();
      if (result != sat::Result::kSat) break;
      if (seen.insert(cnf::fingerprint(solver.model(), matrix.num_vars()))
              .second) {
        matrix.append(solver.model());
        --count;
      } else {
        ++stats_.duplicates;
        if (++duplicates >= max_duplicates) break;
      }
    }
  };

  // Probe round: unbiased random polarities.
  sat::SolverOptions probe_options;
  probe_options.random_polarity = true;
  probe_options.random_branch_freq = options_.random_branch_freq;
  probe_options.seed = options_.seed;
  sat::Solver solver(probe_options);
  if (!solver.add_formula(formula)) return matrix;
  const std::size_t probe_count =
      options_.adaptive ? std::min(options_.probe_samples,
                                   options_.num_samples)
                        : options_.num_samples;
  {
    obs::Span span("sample.probe");
    draw(solver, probe_count);
  }
  stats_.probe_samples = matrix.num_samples();
  if (matrix.empty()) return matrix;
  // An expired deadline must short-circuit here: the old code broke out
  // of the probe draw only to spin up (and immediately abandon) the
  // main-round solver.
  if (deadline != nullptr && deadline->expired()) return matrix;
  if (!options_.adaptive || matrix.num_samples() >= options_.num_samples) {
    return matrix;
  }

  // Estimate skew of each bias variable across the probe models: one
  // popcount pass over the packed column.
  std::vector<double> bias(static_cast<std::size_t>(formula.num_vars()), 0.5);
  for (const Var v : bias_vars) {
    const double fraction =
        static_cast<double>(column_popcount(matrix, v)) /
        static_cast<double>(matrix.num_samples());
    if (fraction >= options_.skew_high) {
      bias[static_cast<std::size_t>(v)] = options_.strong_bias;
    } else if (fraction <= options_.skew_low) {
      bias[static_cast<std::size_t>(v)] = 1.0 - options_.strong_bias;
    }
  }

  // Main round with the learned biases.
  stats_.main_round = true;
  obs::Span main_span("sample.main");
  const std::uint64_t main_seed = options_.seed ^ 0x5deece66dULL;
  if (options_.enumerate) {
    // Same session keeps its learnt clauses; only the polarity bias and
    // the decision RNG stream change between rounds.
    solver.options().polarity_bias = bias;
    solver.reseed(main_seed);
    draw(solver, options_.num_samples - matrix.num_samples());
  } else {
    sat::SolverOptions main_options = probe_options;
    main_options.seed = main_seed;
    main_options.polarity_bias = bias;
    sat::Solver main_solver(main_options);
    if (!main_solver.add_formula(formula)) return matrix;
    draw(main_solver, options_.num_samples - matrix.num_samples());
  }
  stats_.main_samples = matrix.num_samples() - stats_.probe_samples;
  return matrix;
}

std::vector<Assignment> Sampler::sample(const CnfFormula& formula,
                                        const std::vector<Var>& bias_vars,
                                        const util::Deadline* deadline) {
  const cnf::SampleMatrix matrix =
      sample_packed(formula, bias_vars, deadline);
  std::vector<Assignment> samples;
  samples.reserve(matrix.num_samples());
  for (std::size_t s = 0; s < matrix.num_samples(); ++s) {
    samples.push_back(matrix.row(s));
  }
  return samples;
}

}  // namespace manthan::sampler
