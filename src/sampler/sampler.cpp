#include "sampler/sampler.hpp"

#include <unordered_set>

#include "sat/solver.hpp"

namespace manthan::sampler {

Sampler::Sampler(SamplerOptions options) : options_(options) {}

std::vector<Assignment> Sampler::sample(const CnfFormula& formula,
                                        const std::vector<Var>& bias_vars,
                                        const util::Deadline* deadline) {
  std::vector<Assignment> samples;
  // Randomized branching can rediscover the same model; the training set
  // must contain distinct assignments, so repeats are dropped and the
  // draw loop tops itself up. A duplicate budget bounds the extra solver
  // calls when the formula has fewer models than requested.
  std::unordered_set<std::vector<bool>> seen;

  const auto draw = [&](sat::Solver& solver, std::size_t count) {
    std::size_t duplicates = 0;
    const std::size_t max_duplicates = 16 + 4 * count;
    while (count > 0) {
      if (deadline != nullptr && deadline->expired()) break;
      const sat::Result result =
          deadline != nullptr ? solver.solve({}, *deadline) : solver.solve();
      if (result != sat::Result::kSat) break;
      if (seen.insert(solver.model().bits()).second) {
        samples.push_back(solver.model());
        --count;
      } else if (++duplicates >= max_duplicates) {
        break;
      }
    }
  };

  // Probe round: unbiased random polarities.
  sat::SolverOptions probe_options;
  probe_options.random_polarity = true;
  probe_options.random_branch_freq = options_.random_branch_freq;
  probe_options.seed = options_.seed;
  sat::Solver probe_solver(probe_options);
  if (!probe_solver.add_formula(formula)) return {};
  const std::size_t probe_count =
      options_.adaptive ? std::min(options_.probe_samples,
                                   options_.num_samples)
                        : options_.num_samples;
  draw(probe_solver, probe_count);
  if (samples.empty()) return {};
  if (!options_.adaptive || samples.size() >= options_.num_samples) {
    return samples;
  }

  // Estimate skew of each bias variable across the probe models.
  std::vector<double> bias(static_cast<std::size_t>(formula.num_vars()), 0.5);
  for (const Var v : bias_vars) {
    std::size_t trues = 0;
    for (const Assignment& a : samples) {
      if (a.value(v)) ++trues;
    }
    const double fraction =
        static_cast<double>(trues) / static_cast<double>(samples.size());
    if (fraction >= options_.skew_high) {
      bias[static_cast<std::size_t>(v)] = options_.strong_bias;
    } else if (fraction <= options_.skew_low) {
      bias[static_cast<std::size_t>(v)] = 1.0 - options_.strong_bias;
    }
  }

  // Main round with the learned biases.
  sat::SolverOptions main_options = probe_options;
  main_options.seed = options_.seed ^ 0x5deece66dULL;
  main_options.polarity_bias = bias;
  sat::Solver main_solver(main_options);
  if (!main_solver.add_formula(formula)) return samples;
  draw(main_solver, options_.num_samples - samples.size());
  return samples;
}

}  // namespace manthan::sampler
