// Constrained sampling of satisfying assignments.
//
// Role in the paper: CMSGen. GetSamples (Algorithm 1, line 1) draws
// quasi-uniform models of the specification to serve as training data for
// candidate learning.
//
// Front end (default): one persistent *enumerating* solver session per
// sampling run — the CDCL search hands back a model per phase-scrambled
// descent (sat::Solver::enumerate) instead of paying a full solve() call
// per model, duplicates are dropped by 64-bit model fingerprint instead of
// hashing whole vector<bool> keys, and models land directly in a
// column-major bit-packed cnf::SampleMatrix (one uint64_t word per 64
// samples per variable) that the decision-tree learner and the AIG
// batch simulator consume without re-packing. The pre-existing
// one-solve-per-model loop is kept behind `enumerate = false` as the
// distribution oracle and benchmark baseline.
//
// Adaptive weighting (as in Manthan): a small probe round with unbiased
// polarities measures, for each output variable, the fraction of models in
// which it is true (a popcount over the packed column); variables with a
// strong skew get their polarity bias pushed towards the majority value
// (0.9/0.1), which concentrates the data in the region the learner must
// fit, dramatically reducing repair load on skewed specifications.
#pragma once

#include <vector>

#include "cnf/cnf.hpp"
#include "cnf/sample_matrix.hpp"
#include "util/timer.hpp"

namespace manthan::sampler {

using cnf::Assignment;
using cnf::CnfFormula;
using cnf::Var;

struct SamplerOptions {
  std::size_t num_samples = 500;
  /// Probe-round size used to estimate per-variable skew.
  std::size_t probe_samples = 64;
  /// Enable the adaptive bias stage (ablation knob: abl2_sampling).
  bool adaptive = true;
  /// Bias applied to skewed variables in the main round.
  double strong_bias = 0.9;
  /// Skew thresholds: fraction of true above/below which bias kicks in.
  double skew_high = 0.65;
  double skew_low = 0.35;
  /// Fraction of random decisions in the underlying solver (legacy
  /// one-solve-per-model path only; the enumerating session branches on a
  /// fresh random permutation every descent instead).
  double random_branch_freq = 0.2;
  /// Harvest models from a persistent enumerating solver session (one
  /// phase-scrambled descent per model). false = the legacy loop running
  /// one full CDCL solve() per model — kept as the distribution oracle
  /// and the before/after benchmark baseline.
  bool enumerate = true;
  std::uint64_t seed = 42;
};

/// Counters of the most recent sample()/sample_packed() call.
struct SamplerStats {
  /// Distinct models drawn in the probe round (== all models when the
  /// adaptive stage is disabled).
  std::size_t probe_samples = 0;
  /// Distinct models added by the biased main round.
  std::size_t main_samples = 0;
  /// Whether a main-round draw ran at all. Stays false when the deadline
  /// expired during the probe round (the caller-facing fix for the old
  /// bug where an expired deadline still spun up the main-round solver).
  bool main_round = false;
  /// Rediscovered models dropped by fingerprint.
  std::size_t duplicates = 0;
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});

  /// Draw up to options.num_samples models of `formula` into a bit-packed
  /// matrix over the formula's variables. `bias_vars` are the variables
  /// subject to adaptive weighting (the Y variables in Manthan3). Returns
  /// an empty matrix iff the formula is UNSAT (or the deadline expired
  /// before the first model). Samples are pairwise distinct: repeated
  /// models are dropped by fingerprint and the draw loop tops itself up,
  /// bounded by a duplicate budget when the formula has fewer models than
  /// requested.
  cnf::SampleMatrix sample_packed(const CnfFormula& formula,
                                  const std::vector<Var>& bias_vars,
                                  const util::Deadline* deadline = nullptr);

  /// Row-unpacked convenience wrapper around sample_packed().
  std::vector<Assignment> sample(const CnfFormula& formula,
                                 const std::vector<Var>& bias_vars,
                                 const util::Deadline* deadline = nullptr);

  const SamplerStats& stats() const { return stats_; }

 private:
  SamplerOptions options_;
  SamplerStats stats_;
};

}  // namespace manthan::sampler
