// Constrained sampling of satisfying assignments.
//
// Role in the paper: CMSGen. GetSamples (Algorithm 1, line 1) draws
// quasi-uniform models of the specification to serve as training data for
// candidate learning. We run our CDCL solver with randomized branching and
// randomized decision polarities; each call yields one model, and fresh
// randomness decorrelates successive models.
//
// Adaptive weighting (as in Manthan): a small probe round with unbiased
// polarities measures, for each output variable, the fraction of models in
// which it is true; variables with a strong skew get their polarity bias
// pushed towards the majority value (0.9/0.1), which concentrates the data
// in the region the learner must fit, dramatically reducing repair load on
// skewed specifications.
#pragma once

#include <vector>

#include "cnf/cnf.hpp"
#include "util/timer.hpp"

namespace manthan::sampler {

using cnf::Assignment;
using cnf::CnfFormula;
using cnf::Var;

struct SamplerOptions {
  std::size_t num_samples = 500;
  /// Probe-round size used to estimate per-variable skew.
  std::size_t probe_samples = 64;
  /// Enable the adaptive bias stage (ablation knob: abl2_sampling).
  bool adaptive = true;
  /// Bias applied to skewed variables in the main round.
  double strong_bias = 0.9;
  /// Skew thresholds: fraction of true above/below which bias kicks in.
  double skew_high = 0.65;
  double skew_low = 0.35;
  /// Fraction of random decisions in the underlying solver.
  double random_branch_freq = 0.2;
  std::uint64_t seed = 42;
};

class Sampler {
 public:
  explicit Sampler(SamplerOptions options = {});

  /// Draw up to options.num_samples models of `formula`. `bias_vars` are
  /// the variables subject to adaptive weighting (the Y variables in
  /// Manthan3). Returns an empty vector iff the formula is UNSAT.
  /// The returned assignments are pairwise distinct: repeated models are
  /// dropped and redrawn, so fewer than num_samples samples may come back
  /// when the formula has fewer models than requested.
  std::vector<Assignment> sample(const CnfFormula& formula,
                                 const std::vector<Var>& bias_vars,
                                 const util::Deadline* deadline = nullptr);

 private:
  SamplerOptions options_;
};

}  // namespace manthan::sampler
