#include "dqbf/dqdimacs.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace manthan::dqbf {

DqbfFormula parse_dqdimacs(std::istream& in) {
  DqbfFormula formula;
  std::vector<Var> universals_so_far;
  bool saw_header = false;
  Var declared_vars = 0;
  std::string line;
  cnf::Clause current;
  // 1-based DIMACS literal within the declared range of the problem line.
  const auto check_lit = [&](std::int32_t v) {
    if (v > declared_vars || v < -declared_vars) {
      throw std::runtime_error("dqdimacs: variable " + std::to_string(v) +
                               " out of declared range");
    }
  };
  // Quantifier declarations name plain (positive) variables.
  const auto check_quant_var = [&](std::int32_t v) {
    if (v < 1 || v > declared_vars) {
      throw std::runtime_error("dqdimacs: quantified variable " +
                               std::to_string(v) + " out of declared range");
    }
  };
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;
    if (head == "c") continue;
    if (head == "p") {
      std::string fmt;
      Var num_vars = 0;
      std::size_t num_clauses = 0;
      if (!(ls >> fmt >> num_vars >> num_clauses) || fmt != "cnf" ||
          num_vars < 0) {
        throw std::runtime_error("dqdimacs: malformed problem line");
      }
      formula.matrix().ensure_vars(num_vars);
      declared_vars = num_vars;
      saw_header = true;
      continue;
    }
    if (!saw_header) {
      throw std::runtime_error("dqdimacs: '" + head +
                               "' line before problem line");
    }
    if (head == "a") {
      std::int32_t v = 0;
      while (ls >> v && v != 0) {
        check_quant_var(v);
        formula.add_universal(v - 1);
        universals_so_far.push_back(v - 1);
      }
      continue;
    }
    if (head == "e") {
      // Plain existential: depends on every universal declared so far.
      std::int32_t v = 0;
      while (ls >> v && v != 0) {
        check_quant_var(v);
        formula.add_existential(v - 1, universals_so_far);
      }
      continue;
    }
    if (head == "d") {
      // d y x1 x2 ... 0 : explicit Henkin dependency set.
      std::int32_t y = 0;
      if (!(ls >> y) || y == 0) {
        throw std::runtime_error("dqdimacs: malformed d-line");
      }
      check_quant_var(y);
      std::vector<Var> deps;
      std::int32_t x = 0;
      while (ls >> x && x != 0) {
        check_quant_var(x);
        deps.push_back(x - 1);
      }
      formula.add_existential(y - 1, std::move(deps));
      continue;
    }
    // Otherwise the line starts a clause (head is the first literal).
    std::int32_t value = 0;
    try {
      value = std::stoi(head);
    } catch (const std::exception&) {
      throw std::runtime_error("dqdimacs: unexpected token '" + head + "'");
    }
    while (true) {
      if (value == 0) {
        formula.matrix().add_clause(current);
        current.clear();
        break;
      }
      check_lit(value);
      current.push_back(cnf::Lit::from_dimacs(value));
      if (!(ls >> value)) break;  // clause may continue on the next line
    }
  }
  if (!current.empty()) {
    throw std::runtime_error("dqdimacs: clause not terminated by 0");
  }
  if (!saw_header) throw std::runtime_error("dqdimacs: missing problem line");
  const std::string problems = formula.validate();
  if (!problems.empty()) {
    throw std::runtime_error("dqdimacs: " + problems);
  }
  return formula;
}

DqbfFormula parse_dqdimacs_string(const std::string& text) {
  std::istringstream in(text);
  return parse_dqdimacs(in);
}

void write_dqdimacs(std::ostream& out, const DqbfFormula& formula) {
  out << "p cnf " << formula.matrix().num_vars() << ' '
      << formula.matrix().num_clauses() << '\n';
  if (!formula.universals().empty()) {
    out << 'a';
    for (const Var v : formula.universals()) out << ' ' << v + 1;
    out << " 0\n";
  }
  for (const Existential& e : formula.existentials()) {
    out << "d " << e.var + 1;
    for (const Var d : e.deps) out << ' ' << d + 1;
    out << " 0\n";
  }
  for (const cnf::Clause& c : formula.matrix().clauses()) {
    for (const cnf::Lit l : c) out << l.to_dimacs() << ' ';
    out << "0\n";
  }
}

std::string to_dqdimacs_string(const DqbfFormula& formula) {
  std::ostringstream out;
  write_dqdimacs(out, formula);
  return out.str();
}

}  // namespace manthan::dqbf
