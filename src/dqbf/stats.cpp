#include "dqbf/stats.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace manthan::dqbf {

InstanceStats compute_stats(const DqbfFormula& formula) {
  InstanceStats stats;
  stats.num_universals = formula.num_universals();
  stats.num_existentials = formula.num_existentials();
  stats.num_clauses = formula.matrix().num_clauses();
  for (const cnf::Clause& c : formula.matrix().clauses()) {
    stats.num_literals += c.size();
  }

  const auto& ex = formula.existentials();
  const std::size_t m = ex.size();

  // X_common.
  std::vector<Var> common;
  if (m == 0) {
    common = formula.universals();
  } else {
    common = ex[0].deps;
    for (std::size_t i = 1; i < m; ++i) {
      std::vector<Var> next;
      std::set_intersection(common.begin(), common.end(),
                            ex[i].deps.begin(), ex[i].deps.end(),
                            std::back_inserter(next));
      common = std::move(next);
    }
  }
  stats.common_dependency_core = common.size();
  stats.nonlinear_universals = formula.num_universals() - common.size();

  double density_sum = 0.0;
  for (std::size_t i = 0; i < m; ++i) {
    if (ex[i].deps.size() == formula.num_universals()) {
      ++stats.full_dependency_outputs;
    }
    if (formula.num_universals() > 0) {
      density_sum += static_cast<double>(ex[i].deps.size()) /
                     static_cast<double>(formula.num_universals());
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (formula.deps_subset(i, j)) ++stats.subset_pairs;
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i + 1; j < m; ++j) {
      if (!formula.deps_subset(i, j) && !formula.deps_subset(j, i)) {
        ++stats.incomparable_pairs;
      }
    }
  }
  stats.dependency_density = m > 0 ? density_sum / static_cast<double>(m)
                                   : 0.0;
  return stats;
}

void print_stats_header(std::ostream& out) {
  out << std::left << std::setw(28) << "instance" << std::right
      << std::setw(6) << "|X|" << std::setw(6) << "|Y|" << std::setw(8)
      << "clauses" << std::setw(8) << "common" << std::setw(8) << "nonlin"
      << std::setw(8) << "subset" << std::setw(8) << "incomp"
      << std::setw(8) << "full" << std::setw(9) << "density" << '\n';
}

void print_stats_row(std::ostream& out, const std::string& label,
                     const InstanceStats& s) {
  out << std::left << std::setw(28) << label << std::right << std::setw(6)
      << s.num_universals << std::setw(6) << s.num_existentials
      << std::setw(8) << s.num_clauses << std::setw(8)
      << s.common_dependency_core << std::setw(8) << s.nonlinear_universals
      << std::setw(8) << s.subset_pairs << std::setw(8)
      << s.incomparable_pairs << std::setw(8) << s.full_dependency_outputs
      << std::setw(9) << std::fixed << std::setprecision(3)
      << s.dependency_density << '\n';
}

}  // namespace manthan::dqbf
