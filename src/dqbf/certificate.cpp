#include "dqbf/certificate.hpp"

#include <algorithm>

#include "aig/aig_cnf.hpp"
#include "sat/solver.hpp"

namespace manthan::dqbf {

cnf::CnfFormula build_refutation_cnf(const DqbfFormula& formula,
                                     const aig::Aig& manager,
                                     const HenkinVector& vector) {
  const cnf::CnfFormula& matrix = formula.matrix();
  cnf::CnfFormula out(matrix.num_vars());

  // ¬φ: one selector per clause asserting that the clause is falsified;
  // at least one selector must fire. (One-sided Tseitin suffices for
  // satisfiability-preserving negation.)
  cnf::Clause selectors;
  selectors.reserve(matrix.num_clauses());
  for (const cnf::Clause& clause : matrix.clauses()) {
    const cnf::Lit selector = cnf::pos(out.new_var());
    for (const cnf::Lit l : clause) out.add_binary(~selector, ~l);
    selectors.push_back(selector);
  }
  out.add_clause(selectors);

  // Y ↔ f: encode every function cone and tie it to the Y variable.
  // Functions may reference other Y variables (pre-Substitute candidates);
  // those inputs map onto the corresponding Y variable, so the conjunction
  // of equivalences realizes the composition.
  for (std::size_t i = 0; i < formula.existentials().size(); ++i) {
    const cnf::Lit root = aig::encode_cone(manager, vector.functions[i], out);
    cnf::add_equivalence(out, cnf::pos(formula.existentials()[i].var), root);
  }
  return out;
}

CertificateResult check_certificate(const DqbfFormula& formula,
                                    const aig::Aig& manager,
                                    const HenkinVector& vector,
                                    const util::Deadline* deadline) {
  CertificateResult result;
  if (vector.functions.size() != formula.existentials().size()) {
    result.status = CertificateStatus::kDependencyError;
    return result;
  }
  // Structural dependency check: support(f_i) ⊆ H_i.
  for (std::size_t i = 0; i < vector.functions.size(); ++i) {
    const std::vector<std::int32_t> ids =
        manager.support(vector.functions[i]);
    const std::vector<Var>& deps = formula.existentials()[i].deps;
    for (const std::int32_t id : ids) {
      if (!std::binary_search(deps.begin(), deps.end(),
                              static_cast<Var>(id))) {
        result.status = CertificateStatus::kDependencyError;
        return result;
      }
    }
  }

  const cnf::CnfFormula refutation =
      build_refutation_cnf(formula, manager, vector);
  sat::Solver solver;
  if (!solver.add_formula(refutation)) {
    result.status = CertificateStatus::kValid;
    return result;
  }
  const sat::Result sat_result = deadline != nullptr
                                     ? solver.solve({}, *deadline)
                                     : solver.solve();
  switch (sat_result) {
    case sat::Result::kUnsat:
      result.status = CertificateStatus::kValid;
      break;
    case sat::Result::kSat: {
      result.status = CertificateStatus::kInvalid;
      cnf::Assignment cex(
          static_cast<std::size_t>(formula.matrix().num_vars()));
      for (Var v = 0; v < formula.matrix().num_vars(); ++v) {
        cex.set(v, solver.model().value(v));
      }
      result.counterexample = std::move(cex);
      break;
    }
    case sat::Result::kUnknown:
      result.status = CertificateStatus::kUnknown;
      break;
  }
  return result;
}

}  // namespace manthan::dqbf
