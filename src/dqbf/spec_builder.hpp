// SpecBuilder — a human-friendly front end for constructing DQBF
// specifications from named variables and infix Boolean expressions,
// without writing DQDIMACS by hand.
//
//   SpecBuilder b;
//   b.add_universal("x1");  b.add_universal("x2");
//   b.add_existential("y1", {"x1"});
//   b.add_constraint("y1 <-> (x1 & !x2)");
//   dqbf::DqbfFormula f = b.build();
//
// Expression grammar (precedence low to high):
//   equiv  := impl ( "<->" impl )*
//   impl   := or ( "->" or )*          (right-associative)
//   or     := xor ( "|" xor )*
//   xor    := and ( "^" and )*
//   and    := unary ( "&" unary )*
//   unary  := "!" unary | primary
//   primary:= "0" | "1" | identifier | "(" equiv ")"
//
// Constraints are conjoined and Tseitin-encoded; auxiliary variables are
// declared as existentials over all universals (they are deterministic
// functions of the circuit's inputs).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "aig/aig.hpp"
#include "dqbf/dqbf.hpp"

namespace manthan::dqbf {

class SpecBuilder {
 public:
  SpecBuilder();

  /// Declare a universal variable. Throws on duplicate names.
  Var add_universal(const std::string& name);
  /// Declare an existential with named Henkin dependencies (must already
  /// be declared universals).
  Var add_existential(const std::string& name,
                      const std::vector<std::string>& deps);

  /// Parse and record a constraint. Throws std::runtime_error with a
  /// position-annotated message on syntax errors or unknown identifiers.
  void add_constraint(const std::string& expression);

  /// Matrix variable of a declared name.
  Var var(const std::string& name) const;

  /// Number of constraints recorded so far.
  std::size_t num_constraints() const { return constraints_.size(); }

  /// Assemble the DQBF (conjunction of all constraints, Tseitin-encoded).
  DqbfFormula build() const;

 private:
  aig::Ref parse_expression(const std::string& text) const;

  std::vector<std::pair<std::string, Var>> universals_;
  std::vector<std::pair<std::string, std::vector<Var>>> existentials_;
  std::unordered_map<std::string, Var> var_of_name_;
  Var next_var_ = 0;
  mutable aig::Aig manager_;
  std::vector<aig::Ref> constraints_;
};

}  // namespace manthan::dqbf
