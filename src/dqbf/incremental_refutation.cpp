#include "dqbf/incremental_refutation.hpp"

namespace manthan::dqbf {

IncrementalRefutation::IncrementalRefutation(const DqbfFormula& formula,
                                             const aig::Aig& manager,
                                             sat::SolverOptions options)
    : formula_(formula),
      solver_(options),
      encoder_(
          manager, [this]() { return solver_.new_var(); },
          [this](const cnf::Clause& c) { solver_.add_clause(c); }) {
  const cnf::CnfFormula& matrix = formula.matrix();
  // The matrix variable block comes first so cone inputs (universal and
  // existential variables) land on their own CNF variables.
  solver_.reserve_vars(matrix.num_vars());
  // Counterexamples are read off these variables every round; keep them
  // out of variable elimination during maintain().
  solver_.freeze_range(0, matrix.num_vars());

  // ¬φ, encoded once: one selector per clause asserting that the clause
  // is falsified; at least one selector must fire. (One-sided Tseitin
  // suffices for satisfiability-preserving negation.)
  cnf::Clause selectors;
  selectors.reserve(matrix.num_clauses());
  for (const cnf::Clause& clause : matrix.clauses()) {
    const cnf::Lit selector = cnf::pos(solver_.new_var());
    for (const cnf::Lit l : clause) solver_.add_clause({~selector, ~l});
    selectors.push_back(selector);
  }
  // An empty matrix has no falsifiable clause: the empty selector clause
  // makes the solver root-unsatisfiable, i.e. every candidate certifies.
  solver_.add_clause(selectors);

  const std::size_t m = formula.existentials().size();
  current_.assign(m, aig::kFalseRef);
  activation_.assign(m, cnf::kUndefLit);
  linked_.assign(m, false);
}

void IncrementalRefutation::relink(const HenkinVector& candidate) {
  ++stats_.rounds;
  const std::vector<Existential>& ex = formula_.existentials();
  // Retire the stale guards of every changed cone in one batch, so one
  // learnt-database sweep covers the whole round regardless of how many
  // candidates a counterexample repaired.
  std::vector<std::size_t> changed;
  std::vector<cnf::Lit> stale;
  for (std::size_t i = 0; i < ex.size(); ++i) {
    if (linked_[i] && current_[i] == candidate.functions[i]) {
      ++stats_.cones_reused;
      continue;
    }
    changed.push_back(i);
    if (linked_[i]) stale.push_back(activation_[i]);
  }
  if (!stale.empty()) {
    solver_.retire(stale);
    stats_.activations_retired += stale.size();
  }
  for (const std::size_t i : changed) {
    // The cone definition is permanent (cached by the encoder); only
    // the output equivalence y_i ↔ root is guarded, so a later repair
    // can retire it without touching the shared definitions.
    const cnf::Lit root = encoder_.encode(candidate.functions[i]);
    const cnf::Lit act = cnf::pos(solver_.new_var());
    const cnf::Lit y = cnf::pos(ex[i].var);
    solver_.add_clause_activated({~y, root}, act);
    solver_.add_clause_activated({y, ~root}, act);
    activation_[i] = act;
    current_[i] = candidate.functions[i];
    linked_[i] = true;
    ++stats_.cones_encoded;
  }
  assumptions_.clear();
  for (std::size_t i = 0; i < ex.size(); ++i) {
    assumptions_.push_back(activation_[i]);
  }
}

sat::Result IncrementalRefutation::check(const HenkinVector& candidate,
                                         const util::Deadline& deadline) {
  relink(candidate);
  return solver_.solve(assumptions_, deadline);
}

sat::Result IncrementalRefutation::check(const HenkinVector& candidate) {
  relink(candidate);
  return solver_.solve(assumptions_);
}

void IncrementalRefutation::maintain(const util::CancelToken* cancel) {
  ++stats_.maintenance_runs;
  sat::InprocessOptions options;
  options.cancel = cancel;
  // UNSAT here means the current guard set refutes at the root — check()
  // will report it; maintenance itself has nothing more to do.
  if (!solver_.inprocess(options)) return;
  if (cancel != nullptr && cancel->cancelled()) return;
  solver_.compact();
}

const IncrementalRefutation::Stats& IncrementalRefutation::stats() const {
  stats_.aig_nodes_encoded = encoder_.stats().nodes_encoded;
  return stats_;
}

}  // namespace manthan::dqbf
