// Structural statistics of DQBF instances.
//
// The evaluation narrative of the paper rests on instance structure:
// elimination-based solving is sensitive to the *non-linear* part of the
// dependency lattice (variables that must be expanded), definition
// extraction to how many outputs are uniquely determined, and learning to
// output distribution skew. This module quantifies the structural side so
// the per-family benchmark breakdown can relate engine behaviour to
// instance shape.
#pragma once

#include <cstddef>
#include <iosfwd>

#include "dqbf/dqbf.hpp"

namespace manthan::dqbf {

struct InstanceStats {
  std::size_t num_universals = 0;
  std::size_t num_existentials = 0;
  std::size_t num_clauses = 0;
  std::size_t num_literals = 0;
  /// Size of X_common = ∩ H_i (what elimination may keep).
  std::size_t common_dependency_core = 0;
  /// Universals outside X_common (what elimination must expand).
  std::size_t nonlinear_universals = 0;
  /// Ordered pairs (i, j), i != j, with H_i ⊆ H_j (the admissible
  /// Y-feature edges of Manthan3's candidate learning).
  std::size_t subset_pairs = 0;
  /// Unordered pairs with incomparable dependency sets (the structures
  /// behind the paper's incompleteness discussion).
  std::size_t incomparable_pairs = 0;
  /// Existentials depending on every universal (Skolem-like outputs).
  std::size_t full_dependency_outputs = 0;
  /// Mean |H_i| / |X| (1.0 for a plain QBF; 0 when X is empty).
  double dependency_density = 0.0;
};

InstanceStats compute_stats(const DqbfFormula& formula);

/// One-line rendering used by the suite-statistics bench.
void print_stats_row(std::ostream& out, const std::string& label,
                     const InstanceStats& stats);
void print_stats_header(std::ostream& out);

}  // namespace manthan::dqbf
