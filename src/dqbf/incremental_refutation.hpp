// Persistent, incrementally updated refutation check for the verify loop.
//
// Manthan3's verification solves  E(X,Y') = ¬φ(X,Y') ∧ (Y' ↔ f)  once per
// counterexample. The one-shot path (build_refutation_cnf + a fresh
// sat::Solver) re-encodes the whole matrix negation and every candidate
// cone each round and throws away all learnt clauses. This class owns one
// verify solver for the whole synthesis run instead:
//
//   * the matrix negation (per-clause falsification selectors + the
//     "some clause falsified" disjunction) is encoded exactly once;
//   * candidate cones are Tseitin-encoded through an
//     aig::IncrementalCnfEncoder, whose node cache persists — a repair
//     that conjoins onto an old root only encodes the new nodes;
//   * the per-candidate output equivalence  y_i ↔ f_i  is guarded by an
//     activation literal. check() assumes the current guards; when a
//     repair changes candidate i, the old guard is retired (its clauses —
//     and any learnt clauses that recorded it — are reclaimed by the
//     solver's arena GC) and a fresh guarded equivalence is added.
//
// Learnt clauses over the matrix/selector/cone variables survive across
// rounds, so each verification resumes from everything the previous
// rounds proved. Per-round work is O(changed cones + search), independent
// of the formula size.
#pragma once

#include <cstdint>
#include <vector>

#include "aig/incremental_cnf.hpp"
#include "dqbf/dqbf.hpp"
#include "sat/solver.hpp"
#include "util/timer.hpp"

namespace manthan::dqbf {

class IncrementalRefutation {
 public:
  struct Stats {
    /// check() calls (verification rounds).
    std::uint64_t rounds = 0;
    /// Candidate output equivalences freshly (re-)encoded.
    std::uint64_t cones_encoded = 0;
    /// Round-candidates whose cached encoding was reused as-is.
    std::uint64_t cones_reused = 0;
    /// Old candidate guards retired (one per repaired candidate).
    std::uint64_t activations_retired = 0;
    /// From the cone encoder: fresh AIG nodes Tseitin-encoded.
    std::uint64_t aig_nodes_encoded = 0;
    /// maintain() calls (inprocessing + variable compaction).
    std::uint64_t maintenance_runs = 0;
  };

  /// `formula` and `manager` must outlive the object. The solver is
  /// seeded from `options`; callers may retune search randomization and
  /// reseed between rounds via solver().
  IncrementalRefutation(const DqbfFormula& formula, const aig::Aig& manager,
                        sat::SolverOptions options = {});

  /// Swap in `candidate` (retiring the guards of changed cones only) and
  /// solve the refutation. kSat means the candidate vector is wrong and
  /// model() holds the counterexample; kUnsat certifies it.
  sat::Result check(const HenkinVector& candidate,
                    const util::Deadline& deadline);
  sat::Result check(const HenkinVector& candidate);

  const cnf::Assignment& model() const { return solver_.model(); }
  sat::Solver& solver() { return solver_; }

  /// Inter-round maintenance: run SAT inprocessing (subsumption, bounded
  /// variable elimination, vivification) and compact the variable range.
  /// Matrix variables are frozen at construction, guard variables are
  /// protected by the solver itself, and retired guards / dead Tseitin
  /// cone variables are reclaimed — daemon-length runs stop leaking
  /// variable ids. Call between check() rounds only. `cancel` (nullable)
  /// is polled between per-item inprocessing steps: a cancelled token
  /// skips the remaining simplification work, leaving a sound database.
  void maintain(const util::CancelToken* cancel = nullptr);

  const Stats& stats() const;

 private:
  void relink(const HenkinVector& candidate);

  const DqbfFormula& formula_;
  sat::Solver solver_;
  aig::IncrementalCnfEncoder encoder_;
  std::vector<aig::Ref> current_;      // last-linked candidate roots
  std::vector<cnf::Lit> activation_;   // current guard per existential
  std::vector<bool> linked_;
  std::vector<cnf::Lit> assumptions_;  // scratch, rebuilt per check()
  mutable Stats stats_;
};

}  // namespace manthan::dqbf
