#include "dqbf/spec_builder.hpp"

#include <cctype>
#include <stdexcept>

#include "aig/aig_cnf.hpp"

namespace manthan::dqbf {

namespace {

/// Minimal recursive-descent parser over a string view with position
/// tracking for error messages.
class Parser {
 public:
  Parser(const std::string& text, aig::Aig& manager,
         const std::unordered_map<std::string, Var>& vars)
      : text_(text), manager_(manager), vars_(vars) {}

  aig::Ref parse() {
    const aig::Ref result = parse_equiv();
    skip_space();
    if (pos_ != text_.size()) fail("trailing input");
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("spec: " + what + " at position " +
                             std::to_string(pos_) + " in '" + text_ + "'");
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool match(const std::string& token) {
    skip_space();
    if (text_.compare(pos_, token.size(), token) != 0) return false;
    // "->" must not consume the prefix of "<->" handled by caller order;
    // "-" is never a standalone token here.
    pos_ += token.size();
    return true;
  }

  aig::Ref parse_equiv() {
    aig::Ref lhs = parse_impl();
    while (match("<->")) lhs = manager_.equiv_gate(lhs, parse_impl());
    return lhs;
  }

  aig::Ref parse_impl() {
    const aig::Ref lhs = parse_or();
    // Right-associative: a -> b -> c == a -> (b -> c).
    skip_space();
    if (match("->")) return manager_.implies_gate(lhs, parse_impl());
    return lhs;
  }

  aig::Ref parse_or() {
    aig::Ref lhs = parse_xor();
    while (true) {
      skip_space();
      // Don't confuse '|' with nothing else; single char.
      if (pos_ < text_.size() && text_[pos_] == '|') {
        ++pos_;
        lhs = manager_.or_gate(lhs, parse_xor());
      } else {
        return lhs;
      }
    }
  }

  aig::Ref parse_xor() {
    aig::Ref lhs = parse_and();
    while (match("^")) lhs = manager_.xor_gate(lhs, parse_and());
    return lhs;
  }

  aig::Ref parse_and() {
    aig::Ref lhs = parse_unary();
    while (true) {
      skip_space();
      if (pos_ < text_.size() && text_[pos_] == '&') {
        ++pos_;
        lhs = manager_.and_gate(lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  aig::Ref parse_unary() {
    skip_space();
    if (match("!")) return aig::ref_not(parse_unary());
    return parse_primary();
  }

  aig::Ref parse_primary() {
    skip_space();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      const aig::Ref inner = parse_equiv();
      skip_space();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        fail("expected ')'");
      }
      ++pos_;
      return inner;
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return aig::Aig::constant(c == '1');
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[end])) ||
              text_[end] == '_')) {
        ++end;
      }
      const std::string name = text_.substr(pos_, end - pos_);
      const auto it = vars_.find(name);
      if (it == vars_.end()) fail("unknown variable '" + name + "'");
      pos_ = end;
      return manager_.input(it->second);
    }
    fail(std::string("unexpected character '") + c + "'");
  }

  const std::string& text_;
  aig::Aig& manager_;
  const std::unordered_map<std::string, Var>& vars_;
  std::size_t pos_ = 0;
};

}  // namespace

SpecBuilder::SpecBuilder() = default;

Var SpecBuilder::add_universal(const std::string& name) {
  if (var_of_name_.count(name) != 0) {
    throw std::runtime_error("spec: duplicate variable '" + name + "'");
  }
  const Var v = next_var_++;
  var_of_name_.emplace(name, v);
  universals_.emplace_back(name, v);
  return v;
}

Var SpecBuilder::add_existential(const std::string& name,
                                 const std::vector<std::string>& deps) {
  if (var_of_name_.count(name) != 0) {
    throw std::runtime_error("spec: duplicate variable '" + name + "'");
  }
  std::vector<Var> dep_vars;
  dep_vars.reserve(deps.size());
  for (const std::string& d : deps) {
    const auto it = var_of_name_.find(d);
    if (it == var_of_name_.end()) {
      throw std::runtime_error("spec: unknown dependency '" + d + "'");
    }
    dep_vars.push_back(it->second);
  }
  const Var v = next_var_++;
  var_of_name_.emplace(name, v);
  existentials_.emplace_back(name, std::move(dep_vars));
  return v;
}

Var SpecBuilder::var(const std::string& name) const {
  const auto it = var_of_name_.find(name);
  if (it == var_of_name_.end()) {
    throw std::runtime_error("spec: unknown variable '" + name + "'");
  }
  return it->second;
}

void SpecBuilder::add_constraint(const std::string& expression) {
  Parser parser(expression, manager_, var_of_name_);
  constraints_.push_back(parser.parse());
}

DqbfFormula SpecBuilder::build() const {
  DqbfFormula formula;
  std::vector<Var> universal_vars;
  for (const auto& [name, v] : universals_) {
    (void)name;
    formula.add_universal(v);
    universal_vars.push_back(v);
  }
  std::unordered_map<std::string, Var> dummy;
  for (const auto& [name, deps] : existentials_) {
    formula.add_existential(var(name), deps);
  }
  const aig::Ref all = manager_.and_all(constraints_);
  const Var before = formula.matrix().num_vars();
  const cnf::Lit root = aig::encode_cone(manager_, all, formula.matrix());
  const Var after = formula.matrix().num_vars();
  for (Var v = before; v < after; ++v) {
    formula.add_existential(v, universal_vars);
  }
  formula.matrix().add_unit(root);
  return formula;
}

}  // namespace manthan::dqbf
