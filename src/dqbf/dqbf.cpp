#include "dqbf/dqbf.hpp"

#include <algorithm>
#include <sstream>

namespace manthan::dqbf {

void DqbfFormula::grow(Var v) {
  if (static_cast<std::size_t>(v) >= kind_.size()) {
    kind_.resize(static_cast<std::size_t>(v) + 1, 0);
    exist_index_.resize(static_cast<std::size_t>(v) + 1, -1);
  }
  matrix_.ensure_vars(v + 1);
}

void DqbfFormula::add_universal(Var v) {
  grow(v);
  kind_[static_cast<std::size_t>(v)] = 1;
  universals_.push_back(v);
}

void DqbfFormula::add_existential(Var v, std::vector<Var> deps) {
  grow(v);
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  kind_[static_cast<std::size_t>(v)] = 2;
  exist_index_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(existentials_.size());
  existentials_.push_back({v, std::move(deps)});
}

bool DqbfFormula::is_universal(Var v) const {
  return static_cast<std::size_t>(v) < kind_.size() &&
         kind_[static_cast<std::size_t>(v)] == 1;
}

bool DqbfFormula::is_existential(Var v) const {
  return static_cast<std::size_t>(v) < kind_.size() &&
         kind_[static_cast<std::size_t>(v)] == 2;
}

std::size_t DqbfFormula::existential_index(Var v) const {
  return static_cast<std::size_t>(
      exist_index_[static_cast<std::size_t>(v)]);
}

bool DqbfFormula::deps_subset(std::size_t a, std::size_t b) const {
  const auto& da = existentials_[a].deps;
  const auto& db = existentials_[b].deps;
  return std::includes(db.begin(), db.end(), da.begin(), da.end());
}

bool DqbfFormula::deps_equal(std::size_t a, std::size_t b) const {
  return existentials_[a].deps == existentials_[b].deps;
}

bool DqbfFormula::is_skolem() const {
  for (std::size_t i = 0; i < existentials_.size(); ++i) {
    if (existentials_[i].deps.size() != universals_.size()) return false;
  }
  return true;
}

std::string DqbfFormula::validate() const {
  std::ostringstream problems;
  for (const Var v : universals_) {
    if (is_existential(v)) {
      problems << "variable " << v + 1 << " quantified both ways; ";
    }
  }
  for (const Existential& e : existentials_) {
    for (const Var d : e.deps) {
      if (!is_universal(d)) {
        problems << "dependency " << d + 1 << " of " << e.var + 1
                 << " is not universal; ";
      }
    }
  }
  for (const cnf::Clause& c : matrix_.clauses()) {
    for (const cnf::Lit l : c) {
      if (!is_universal(l.var()) && !is_existential(l.var())) {
        problems << "matrix variable " << l.var() + 1 << " unquantified; ";
      }
    }
  }
  return problems.str();
}

}  // namespace manthan::dqbf
