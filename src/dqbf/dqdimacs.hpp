// DQDIMACS parsing and writing — the input format of the DQBF track of
// QBFEval (a-lines for universals, e-lines for plain existentials that
// depend on all universals declared so far, d-lines for explicit Henkin
// dependencies).
#pragma once

#include <iosfwd>
#include <string>

#include "dqbf/dqbf.hpp"

namespace manthan::dqbf {

/// Parse DQDIMACS. Throws std::runtime_error on malformed input.
DqbfFormula parse_dqdimacs(std::istream& in);
DqbfFormula parse_dqdimacs_string(const std::string& text);

void write_dqdimacs(std::ostream& out, const DqbfFormula& formula);
std::string to_dqdimacs_string(const DqbfFormula& formula);

}  // namespace manthan::dqbf
