// Dependency Quantified Boolean Formulas.
//
// A DQBF  ∀x1…xn ∃^{H1}y1 … ∃^{Hm}ym . φ(X,Y)  is stored as a CNF matrix
// plus the universal block X and, per existential y_i, its Henkin
// dependency set H_i ⊆ X. This is the input type of every synthesis
// engine in the library and of the DQDIMACS parser.
#pragma once

#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "cnf/cnf.hpp"

namespace manthan::dqbf {

using cnf::CnfFormula;
using cnf::Var;

struct Existential {
  Var var = cnf::kNoVar;
  /// Henkin dependency set, sorted ascending.
  std::vector<Var> deps;
};

class DqbfFormula {
 public:
  DqbfFormula() = default;

  CnfFormula& matrix() { return matrix_; }
  const CnfFormula& matrix() const { return matrix_; }

  void add_universal(Var v);
  /// Add an existential with explicit Henkin dependencies (deduplicated
  /// and sorted internally).
  void add_existential(Var v, std::vector<Var> deps);

  const std::vector<Var>& universals() const { return universals_; }
  const std::vector<Existential>& existentials() const {
    return existentials_;
  }
  std::size_t num_universals() const { return universals_.size(); }
  std::size_t num_existentials() const { return existentials_.size(); }

  bool is_universal(Var v) const;
  bool is_existential(Var v) const;
  /// Index into existentials() for variable v (must be existential).
  std::size_t existential_index(Var v) const;

  /// True iff H_a ⊆ H_b (indices into existentials()).
  bool deps_subset(std::size_t a, std::size_t b) const;
  /// True iff H_a == H_b.
  bool deps_equal(std::size_t a, std::size_t b) const;

  /// True iff every existential depends on all universals (plain ∀∃ QBF).
  bool is_skolem() const;

  /// Check well-formedness: quantifier blocks disjoint, dependencies are
  /// universal variables, every matrix variable is quantified. Returns an
  /// empty string when valid, else a diagnostic.
  std::string validate() const;

 private:
  CnfFormula matrix_;
  std::vector<Var> universals_;
  std::vector<Existential> existentials_;
  std::vector<std::int8_t> kind_;           // 0 unknown, 1 universal, 2 exist
  std::vector<std::int32_t> exist_index_;   // var -> index or -1
  void grow(Var v);
};

/// A synthesized Henkin function vector: functions_[i] is an edge in
/// `manager` for existentials()[i], with universal variables as AIG input
/// ids.
struct HenkinVector {
  std::vector<aig::Ref> functions;
};

}  // namespace manthan::dqbf
