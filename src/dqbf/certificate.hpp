// Independent certificate checking for Henkin function vectors.
//
// Lemma 1 of the paper: f is a Henkin function vector iff
// ¬φ(X,Y) ∧ (Y ↔ f) is UNSAT. The checker additionally enforces the
// *structural* side condition that each f_i only mentions its Henkin
// dependencies H_i. Every engine's output is validated through this module
// in tests and in the portfolio harness, so correctness never rests on the
// engine's own verification loop.
#pragma once

#include <optional>

#include "aig/aig.hpp"
#include "cnf/cnf.hpp"
#include "dqbf/dqbf.hpp"
#include "util/timer.hpp"

namespace manthan::dqbf {

enum class CertificateStatus {
  kValid,
  kInvalid,          // a counterexample X-assignment exists
  kDependencyError,  // some f_i structurally depends outside H_i
  kUnknown,          // deadline expired
};

struct CertificateResult {
  CertificateStatus status = CertificateStatus::kUnknown;
  /// For kInvalid: a full assignment over matrix variables where the
  /// substituted specification fails.
  std::optional<cnf::Assignment> counterexample;
};

/// Check a candidate Henkin vector against the specification.
CertificateResult check_certificate(const DqbfFormula& formula,
                                    const aig::Aig& manager,
                                    const HenkinVector& vector,
                                    const util::Deadline* deadline = nullptr);

/// Build the CNF of  ¬φ(X,Y) ∧ (Y ↔ f)  over the matrix variable space
/// (auxiliary variables above). Exposed for reuse by the Manthan3
/// verification step, which solves exactly this formula.
cnf::CnfFormula build_refutation_cnf(const DqbfFormula& formula,
                                     const aig::Aig& manager,
                                     const HenkinVector& vector);

}  // namespace manthan::dqbf
