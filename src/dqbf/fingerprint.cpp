#include "dqbf/fingerprint.hpp"

#include <algorithm>

#include "cnf/canonical.hpp"
#include "util/rng.hpp"

namespace manthan::dqbf {

namespace {

using cnf::Var;

// Role tags and domain-separation salts. The two hash planes (hi/lo) use
// different seeds over the same stabilized coloring.
constexpr std::uint64_t kUniversalTag = 0x5851f42d4c957f2dULL;
constexpr std::uint64_t kExistentialTag = 0x14057b7ef767814fULL;
constexpr std::uint64_t kDepDown = 0xb5026f5aa96619e9ULL;  // exist -> dep
constexpr std::uint64_t kDepUp = 0xd6e8feb86659fd93ULL;    // universal -> observer
constexpr std::uint64_t kSeedLo = 0x2545f4914f6cdd1dULL;
constexpr std::uint64_t kSeedHi = 0x9e3779b97f4a7c15ULL;
constexpr std::uint64_t kKeyVar = 0xff51afd7ed558ccdULL;
constexpr std::uint64_t kKeyDep = 0xc4ceb9fe1a85ec53ULL;

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  return util::splitmix64(util::splitmix64(a) ^ b);
}

/// Refine `colors` over the clause graph until the partition stabilizes
/// (bounded rounds). `extra_fn`, when set, recomputes the per-variable
/// dependency-edge accumulator from the current colors each round.
template <typename ExtraFn>
void refine_until_stable(const cnf::CnfFormula& matrix,
                         std::vector<std::uint64_t>& colors,
                         ExtraFn&& extra_fn, bool with_extra) {
  constexpr int kMaxRounds = 8;
  std::size_t classes = cnf::count_colors(colors);
  for (int round = 0; round < kMaxRounds; ++round) {
    if (with_extra) {
      cnf::refine_colors(matrix, colors, extra_fn());
    } else {
      cnf::refine_colors(matrix, colors);
    }
    const std::size_t next = cnf::count_colors(colors);
    // A stable class count means the partition stopped splitting (WL
    // partitions only ever refine); one extra round past stability buys
    // nothing.
    if (next == classes && round >= 1) break;
    classes = next;
  }
}

/// Commutative hash of the dependency structure under `colors`: one term
/// per existential binding its color to the multiset of its dependencies'
/// colors.
std::uint64_t dependency_hash(const DqbfFormula& formula,
                              const std::vector<std::uint64_t>& colors,
                              std::uint64_t seed) {
  std::uint64_t sum = 0;
  std::uint64_t sym = 0;
  for (const Existential& e : formula.existentials()) {
    std::uint64_t deps_acc = 0;
    for (const Var u : e.deps) {
      deps_acc +=
          util::splitmix64(colors[static_cast<std::size_t>(u)] ^ kDepDown);
    }
    const std::uint64_t h = mix2(
        seed ^ colors[static_cast<std::size_t>(e.var)], deps_acc ^ e.deps.size());
    sum += h;
    sym ^= util::splitmix64(h);
  }
  return util::splitmix64(seed ^ sum) ^ sym;
}

/// One hash plane of the full spec fingerprint.
std::uint64_t spec_plane(const DqbfFormula& formula,
                         const std::vector<std::uint64_t>& colors,
                         std::uint64_t seed) {
  std::uint64_t h = seed;
  h = mix2(h, formula.num_universals());
  h = mix2(h, formula.num_existentials());
  h = mix2(h, formula.matrix().num_clauses());
  h = mix2(h, static_cast<std::uint64_t>(formula.matrix().num_vars()));
  h = mix2(h, cnf::clause_set_hash(formula.matrix(), colors, seed));
  h = mix2(h, dependency_hash(formula, colors, seed));
  return h;
}

/// One hash plane of the role-free matrix fingerprint.
std::uint64_t matrix_plane(const cnf::CnfFormula& matrix,
                           const std::vector<std::uint64_t>& colors,
                           std::uint64_t seed) {
  std::uint64_t h = seed;
  h = mix2(h, matrix.num_clauses());
  h = mix2(h, static_cast<std::uint64_t>(matrix.num_vars()));
  h = mix2(h, cnf::clause_set_hash(matrix, colors, seed));
  return h;
}

}  // namespace

std::string to_string(const Fingerprint& fp) {
  static const char* digits = "0123456789abcdef";
  std::string s(32, '0');
  for (int i = 0; i < 16; ++i) {
    s[15 - i] = digits[(fp.hi >> (4 * i)) & 0xf];
    s[31 - i] = digits[(fp.lo >> (4 * i)) & 0xf];
  }
  return s;
}

CanonicalForm canonicalize(const DqbfFormula& formula) {
  const cnf::CnfFormula& matrix = formula.matrix();
  std::size_t n = static_cast<std::size_t>(matrix.num_vars());
  for (const Var v : formula.universals()) {
    n = std::max(n, static_cast<std::size_t>(v) + 1);
  }
  for (const Existential& e : formula.existentials()) {
    n = std::max(n, static_cast<std::size_t>(e.var) + 1);
  }

  const cnf::OccurrenceCounts occ = cnf::count_occurrences(matrix);
  const auto occ_mix = [&](std::size_t v) -> std::uint64_t {
    const std::uint64_t p = v < occ.positive.size() ? occ.positive[v] : 0;
    const std::uint64_t ng = v < occ.negative.size() ? occ.negative[v] : 0;
    return mix2(p, ng);
  };

  // --- full-spec coloring: roles + dependency sets + clause structure ---
  std::vector<std::uint64_t> colors(n, 0);
  for (std::size_t v = 0; v < n; ++v) colors[v] = util::splitmix64(occ_mix(v));
  for (const Var u : formula.universals()) {
    const std::size_t v = static_cast<std::size_t>(u);
    colors[v] = util::splitmix64(colors[v] ^ kUniversalTag);
  }
  // Existentials additionally carry their dependency-set size from round
  // zero; the set *contents* flow in through the per-round extra channel.
  for (const Existential& e : formula.existentials()) {
    const std::size_t v = static_cast<std::size_t>(e.var);
    colors[v] = util::splitmix64(mix2(colors[v] ^ kExistentialTag,
                                      e.deps.size()));
  }

  // Reverse dependency adjacency: universal -> existentials observing it.
  std::vector<std::vector<std::size_t>> observers(n);
  for (std::size_t i = 0; i < formula.num_existentials(); ++i) {
    for (const Var u : formula.existentials()[i].deps) {
      observers[static_cast<std::size_t>(u)].push_back(i);
    }
  }

  const auto dep_extra = [&]() {
    std::vector<std::uint64_t> extra(n, 0);
    for (const Existential& e : formula.existentials()) {
      std::uint64_t acc = 0;
      for (const Var u : e.deps) {
        acc += util::splitmix64(colors[static_cast<std::size_t>(u)] ^ kDepDown);
      }
      extra[static_cast<std::size_t>(e.var)] = acc;
    }
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t acc = 0;
      for (const std::size_t i : observers[v]) {
        const std::size_t y =
            static_cast<std::size_t>(formula.existentials()[i].var);
        acc += util::splitmix64(colors[y] ^ kDepUp);
      }
      if (acc != 0) extra[v] ^= util::splitmix64(acc);
    }
    return extra;
  };
  refine_until_stable(matrix, colors, dep_extra, /*with_extra=*/true);

  // --- role-free matrix coloring: pure clause structure -----------------
  // No quantifier information at all, so two specs over the same matrix
  // produce identical colors no matter how their dependency schemes
  // differ — the property the tier-2 keys need.
  std::vector<std::uint64_t> matrix_colors(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    matrix_colors[v] = util::splitmix64(occ_mix(v) ^ kSeedLo);
  }
  const auto no_extra = []() { return std::vector<std::uint64_t>(); };
  refine_until_stable(matrix, matrix_colors, no_extra, /*with_extra=*/false);

  CanonicalForm form;
  form.spec.lo = spec_plane(formula, colors, kSeedLo);
  form.spec.hi = spec_plane(formula, colors, kSeedHi);
  form.matrix.lo = matrix_plane(matrix, matrix_colors, kSeedLo);
  form.matrix.hi = matrix_plane(matrix, matrix_colors, kSeedHi);

  form.existential_keys.reserve(formula.num_existentials());
  for (const Existential& e : formula.existentials()) {
    const std::uint64_t y_color =
        matrix_colors[static_cast<std::size_t>(e.var)];
    std::uint64_t deps_acc = 0;
    for (const Var u : e.deps) {
      deps_acc += util::splitmix64(
          matrix_colors[static_cast<std::size_t>(u)] ^ kKeyDep);
    }
    Fingerprint key;
    key.lo = mix2(form.matrix.lo ^ util::splitmix64(y_color ^ kKeyVar),
                  deps_acc ^ e.deps.size());
    key.hi = mix2(form.matrix.hi ^ util::splitmix64(y_color ^ kKeyDep),
                  util::splitmix64(deps_acc) ^ e.deps.size());
    form.existential_keys.push_back(key);
  }
  return form;
}

Fingerprint fingerprint(const DqbfFormula& formula) {
  return canonicalize(formula).spec;
}

}  // namespace manthan::dqbf
