// Canonical 128-bit fingerprints of DQBF specifications.
//
// The synthesis service caches certified results across requests; the key
// must identify a *specification*, not a particular serialization of it.
// fingerprint(formula) is therefore stable under
//   * clause reordering and literal reordering within clauses,
//   * variable renaming within quantifier roles (any bijection that maps
//     universals to universals and existentials to existentials while
//     carrying the dependency sets along),
// and sensitive to everything semantic: the clause set, the quantifier
// partition, and every Henkin dependency set.
//
// Construction (on top of cnf/canonical.hpp): variables start from
// role/occurrence colors, are refined over the clause incidence graph
// with the dependency bipartite graph folded into every round (an
// existential sees the multiset of its dependencies' colors, a universal
// the multiset of colors of the existentials that may observe it), and
// the stabilized coloring labels a commutative clause-set hash combined
// with a commutative dependency-structure hash. Two independent hash
// planes give the 128 bits.
//
// Alongside the spec fingerprint, canonicalize() derives the keys of the
// second cache tier: a dependency-edge-free *matrix* fingerprint and a
// per-existential sub-instance key that identifies (matrix, y_i, H_i) —
// the exact inputs of the unique-definability analysis — so near-duplicate
// specs (same matrix, some other existential's dependency set changed)
// still share analysis outcomes.
//
// Like every fingerprint scheme, equality is evidence, not proof: WL
// refinement can merge non-isomorphic specs and 128 bits can collide.
// Both events are vanishingly rare; cache consumers inherit at most a
// wrong-but-certified-elsewhere entry, and the service's certificate
// checks keep end-to-end soundness independent of the hash.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "dqbf/dqbf.hpp"

namespace manthan::dqbf {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  bool operator==(const Fingerprint& o) const {
    return hi == o.hi && lo == o.lo;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }
  bool operator<(const Fingerprint& o) const {
    return hi != o.hi ? hi < o.hi : lo < o.lo;
  }
};

/// Hasher for unordered_map keys (the halves are already well-mixed).
struct FingerprintHasher {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// 32 hex digits, hi half first — for logs and result JSON.
std::string to_string(const Fingerprint& fp);

/// Full canonicalization of a spec: the service computes this once per
/// request and feeds the pieces to both cache tiers.
struct CanonicalForm {
  /// Tier-1 key: the whole specification.
  Fingerprint spec;
  /// Matrix-only fingerprint: clause structure under role-free colors —
  /// identical for specs that differ only in dependency sets.
  Fingerprint matrix;
  /// Tier-2 keys, indexed like formula.existentials(): identifies
  /// (matrix, y_i, H_i) up to renaming — the inputs of the per-existential
  /// unique-definability analysis.
  std::vector<Fingerprint> existential_keys;
};

CanonicalForm canonicalize(const DqbfFormula& formula);

/// Shorthand for canonicalize(formula).spec.
Fingerprint fingerprint(const DqbfFormula& formula);

}  // namespace manthan::dqbf
