// Wall-clock timing with an optional deadline, used by every engine to
// honour per-instance time budgets in the portfolio harness.
#pragma once

#include <chrono>

namespace manthan::util {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer();

  /// Restart the stopwatch.
  void reset();

  /// Seconds elapsed since construction / last reset().
  double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A time budget: constructed with a limit in seconds; expired() becomes
/// true once the limit is exceeded. A non-positive limit means "unlimited".
class Deadline {
 public:
  explicit Deadline(double limit_seconds = 0.0);

  bool expired() const;
  double remaining_seconds() const;
  double limit_seconds() const { return limit_; }

 private:
  Timer timer_;
  double limit_;
};

}  // namespace manthan::util
