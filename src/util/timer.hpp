// Wall-clock timing with an optional deadline, used by every engine to
// honour per-instance time budgets in the portfolio harness.
#pragma once

#include <chrono>

#include <cstdint>

namespace manthan::util {

class CancelToken;

/// Nanoseconds on the steady clock since a process-wide epoch fixed at
/// first use. The log prefix and the obs trace spans both stamp with
/// this, so a Debug log line at t=12.345s and a trace span at
/// ts=12345000µs describe the same instant.
std::uint64_t monotonic_ns();

/// Monotonic stopwatch.
class Timer {
 public:
  Timer();

  /// Restart the stopwatch.
  void reset();

  /// Seconds elapsed since construction / last reset().
  double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A time budget: constructed with a limit in seconds; expired() becomes
/// true once the limit is exceeded. A non-positive limit means "unlimited".
///
/// A Deadline optionally composes with a CancelToken: expired() then also
/// returns true once the token is cancelled, so every deadline poll site
/// in the stack doubles as a cancellation poll site. The token must
/// outlive the Deadline; a null token means "time limit only".
class Deadline {
 public:
  explicit Deadline(double limit_seconds = 0.0,
                    const CancelToken* cancel = nullptr);

  bool expired() const;
  /// Seconds left on the time limit; 0 once cancelled, +inf when
  /// unlimited and not cancelled.
  double remaining_seconds() const;
  double limit_seconds() const { return limit_; }
  /// True iff an attached token has been cancelled (time limit aside).
  bool cancelled() const;

 private:
  Timer timer_;
  double limit_;
  const CancelToken* cancel_;
};

}  // namespace manthan::util
