#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "util/timer.hpp"

namespace manthan::util {

namespace {
// The level is read on every log call, possibly from many scheduler
// workers at once; atomic keeps the check race-free (relaxed is enough —
// the threshold is advisory, not a synchronization point).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink writes so concurrent workers never interleave
// characters of two messages within one line.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

// Small stable per-thread ordinal for the line prefix (thread::id is
// opaque and unhelpfully wide). Assigned in first-log order.
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  // Stamp before taking the sink lock so queued writers carry the time
  // they logically logged at, not the time the lock freed up.
  const double seconds = static_cast<double>(monotonic_ns()) / 1e9;
  const std::uint32_t tid = thread_ordinal();
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[%12.6f] [T%02u] [%s] %s\n", seconds, tid,
               level_name(level), message.c_str());
}

}  // namespace manthan::util
