#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace manthan::util {

namespace {
// The level is read on every log call, possibly from many scheduler
// workers at once; atomic keeps the check race-free (relaxed is enough —
// the threshold is advisory, not a synchronization point).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes sink writes so concurrent workers never interleave
// characters of two messages within one line.
std::mutex& sink_mutex() {
  static std::mutex m;
  return m;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const std::lock_guard<std::mutex> lock(sink_mutex());
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace manthan::util
