// Internal: scalar reference implementations of every kernel, plus the
// per-tier table hooks. The scalar TU wraps these directly; the AVX2 /
// AVX-512 TUs call them for short ranges and vector-remainder tails, which
// is what keeps every tier bit-identical by construction (a popcount is a
// popcount — the contract is exact equality, not approximation).
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"

namespace manthan::util::simd::detail {

inline std::size_t popcount_ref(const std::uint64_t* a, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(a[i]));
  }
  return total;
}

inline std::size_t popcount_xor_ref(const std::uint64_t* a,
                                    const std::uint64_t* b, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += static_cast<std::size_t>(__builtin_popcountll(a[i] ^ b[i]));
  }
  return total;
}

inline void count_node_ref(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n, std::size_t* total,
                           std::size_t* pos) {
  std::size_t t = 0;
  std::size_t p = 0;
  for (std::size_t i = 0; i < n; ++i) {
    t += static_cast<std::size_t>(__builtin_popcountll(a[i]));
    p += static_cast<std::size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  *total = t;
  *pos = p;
}

inline void count_split_ref(const std::uint64_t* a, const std::uint64_t* b,
                            const std::uint64_t* c, std::size_t n,
                            std::size_t* hi, std::size_t* hi_pos) {
  std::size_t h = 0;
  std::size_t hp = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t ab = a[i] & b[i];
    h += static_cast<std::size_t>(__builtin_popcountll(ab));
    hp += static_cast<std::size_t>(__builtin_popcountll(ab & c[i]));
  }
  *hi = h;
  *hi_pos = hp;
}

inline void split_masks_ref(const std::uint64_t* a, const std::uint64_t* b,
                            std::uint64_t* hi, std::uint64_t* lo,
                            std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    hi[i] = a[i] & b[i];
    lo[i] = a[i] & ~b[i];
  }
}

inline void combine_ref(std::uint64_t* dst, const std::uint64_t* a,
                        std::uint64_t inv_a, const std::uint64_t* b,
                        std::uint64_t inv_b, std::uint64_t inv_out,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = ((a[i] ^ inv_a) & (b[i] ^ inv_b)) ^ inv_out;
  }
}

inline void xor_const_ref(std::uint64_t* dst, const std::uint64_t* src,
                          std::uint64_t inv, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] ^ inv;
}

}  // namespace manthan::util::simd::detail

namespace manthan::util::simd {

// Per-tier tables, defined one per TU. The vector hooks return nullptr when
// their TU was compiled without the matching ISA flags (non-x86 builds).
const Kernels* scalar_kernels_table();
const Kernels* avx2_kernels_table();
const Kernels* avx512_kernels_table();

}  // namespace manthan::util::simd
