#include "util/rng.hpp"

namespace manthan::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t hash64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt_a,
                          std::uint64_t salt_b) {
  std::uint64_t h = splitmix64(base);
  h = splitmix64(h ^ salt_a);
  h = splitmix64(h ^ salt_b);
  return h;
}

Rng::Rng(std::uint64_t seed) {
  // Seed the full 256-bit state from a splitmix64 stream, as recommended by
  // the xoshiro authors; guarantees a non-zero state for any seed.
  std::uint64_t state = seed;
  for (auto& s : s_) {
    s = splitmix64(state);
    state += 0x9e3779b97f4a7c15ULL;
  }
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased and branch-light.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  // 53 high-quality bits mapped to [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::flip(double p) { return next_double() < p; }

}  // namespace manthan::util
