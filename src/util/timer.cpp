#include "util/timer.hpp"

#include <limits>

#include "util/cancel.hpp"

namespace manthan::util {

std::uint64_t monotonic_ns() {
  // The epoch is whatever instant the first caller hits this function;
  // only differences between stamps are meaningful.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Timer::Timer() : start_(std::chrono::steady_clock::now()) {}

void Timer::reset() { start_ = std::chrono::steady_clock::now(); }

double Timer::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

Deadline::Deadline(double limit_seconds, const CancelToken* cancel)
    : limit_(limit_seconds), cancel_(cancel) {}

bool Deadline::expired() const {
  return cancelled() || (limit_ > 0.0 && timer_.seconds() >= limit_);
}

bool Deadline::cancelled() const {
  return cancel_ != nullptr && cancel_->cancelled();
}

double Deadline::remaining_seconds() const {
  if (cancelled()) return 0.0;
  if (limit_ <= 0.0) return std::numeric_limits<double>::infinity();
  const double rem = limit_ - timer_.seconds();
  return rem > 0.0 ? rem : 0.0;
}

}  // namespace manthan::util
