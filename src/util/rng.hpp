// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (sampler, workload generators,
// decision-tree tie-breaking) draw from this generator so that every run is
// reproducible from a single 64-bit seed.
#pragma once

#include <cstdint>

namespace manthan::util {

/// xoshiro256** by Blackman & Vigna: small state, excellent statistical
/// quality, much faster than std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of returning true.
  bool flip(double p = 0.5);

 private:
  std::uint64_t s_[4];
};

}  // namespace manthan::util
