// Deterministic, fast pseudo-random number generation (xoshiro256**).
//
// All stochastic components of the library (sampler, workload generators,
// decision-tree tie-breaking) draw from this generator so that every run is
// reproducible from a single 64-bit seed.
//
// Determinism contract (parallel execution engine):
//   * Rng holds no global or shared mutable state — every instance is a
//     self-contained 256-bit stream. Distinct instances may be used from
//     distinct threads concurrently; a single instance is NOT thread-safe
//     and must never be shared across scheduler workers.
//   * Every scheduled job derives its own seed with derive_seed() from
//     (base seed, stable job identity) — e.g. the portfolio runner uses
//     (suite seed, hash64(instance name), engine index) — and constructs
//     its own Rng (or engine, which constructs one) from that seed. The
//     derived stream depends only on those inputs, never on thread
//     interleaving, so a parallel run draws exactly the random sequences
//     of the serial run, job by job.
//   * hash64() and splitmix64() are fixed functions of their inputs
//     (FNV-1a and SplitMix64); derived seeds are stable across platforms,
//     worker counts, and runs.
#pragma once

#include <cstdint>
#include <string_view>

namespace manthan::util {

/// SplitMix64 output function (Steele, Lea & Flood): a high-quality
/// 64-bit mixer. Pure — no internal state.
std::uint64_t splitmix64(std::uint64_t x);

/// FNV-1a 64-bit hash of a byte string; stable across platforms/runs.
/// Used to fold textual job identity (instance names) into seeds.
std::uint64_t hash64(std::string_view s);

/// Derive an independent stream seed from a base seed and up to two
/// salt words by chaining splitmix64 over the concatenation. Equal
/// inputs give equal seeds; any differing word decorrelates the stream.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t salt_a,
                          std::uint64_t salt_b = 0);

/// xoshiro256** by Blackman & Vigna: small state, excellent statistical
/// quality, much faster than std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli draw with probability p of returning true.
  bool flip(double p = 0.5);

 private:
  std::uint64_t s_[4];
};

}  // namespace manthan::util
