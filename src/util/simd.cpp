// Tier detection, MANTHAN_SIMD resolution, and the active-kernel dispatch
// point. Detection uses __builtin_cpu_supports, which already folds in the
// OS XSAVE/XCR0 state for the wide register files, so a kernel is only
// offered when the vector registers will actually be preserved across
// context switches.
#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/rng.hpp"
#include "util/simd_detail.hpp"

namespace manthan::util::simd {
namespace {

const Kernels* table_for(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return scalar_kernels_table();
    case Tier::kAvx2: return avx2_kernels_table();
    case Tier::kAvx512: return avx512_kernels_table();
  }
  return nullptr;
}

bool cpu_supports(Tier tier) {
#if defined(__x86_64__) || defined(__i386__)
  switch (tier) {
    case Tier::kScalar:
      return true;
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("popcnt");
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512bw") &&
             __builtin_cpu_supports("avx512vpopcntdq");
  }
  return false;
#else
  return tier == Tier::kScalar;
#endif
}

/// Active tier, encoded as int(Tier); -1 until first resolution. Relaxed is
/// enough: resolution is deterministic, so a racing double-init stores the
/// same value.
std::atomic<int> g_active_tier{-1};

}  // namespace

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

bool tier_supported(Tier tier) {
  return table_for(tier) != nullptr && cpu_supports(tier);
}

Tier best_supported_tier() {
  if (tier_supported(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier resolve_tier(const char* override_value) {
  const Tier best = best_supported_tier();
  if (override_value == nullptr || *override_value == '\0') return best;
  Tier requested = best;
  if (std::strcmp(override_value, "scalar") == 0) {
    requested = Tier::kScalar;
  } else if (std::strcmp(override_value, "avx2") == 0) {
    requested = Tier::kAvx2;
  } else if (std::strcmp(override_value, "avx512") == 0) {
    requested = Tier::kAvx512;
  }
  // Clamp down to what this machine runs: asking for a wider tier than the
  // CPU supports silently degrades rather than crashing on SIGILL.
  return static_cast<int>(requested) <= static_cast<int>(best) ? requested
                                                               : best;
}

Tier active_tier() {
  int tier = g_active_tier.load(std::memory_order_relaxed);
  if (tier < 0) {
    tier = static_cast<int>(resolve_tier(std::getenv("MANTHAN_SIMD")));
    g_active_tier.store(tier, std::memory_order_relaxed);
  }
  return static_cast<Tier>(tier);
}

const Kernels& kernels() { return kernels_for(active_tier()); }

const Kernels& kernels_for(Tier tier) {
  const Kernels* table = table_for(tier);
  return table != nullptr ? *table : *scalar_kernels_table();
}

Tier set_active_tier_for_testing(Tier tier) {
  const Tier previous = active_tier();
  if (tier_supported(tier)) {
    g_active_tier.store(static_cast<int>(tier), std::memory_order_relaxed);
  }
  return previous;
}

std::uint64_t fingerprint_chain(std::uint64_t h, const std::uint64_t* words,
                                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) h = splitmix64(h ^ words[i]);
  return h;
}

void collect_set_bits(const std::uint64_t* words, std::size_t n,
                      std::vector<std::uint32_t>& out) {
  for (std::size_t w = 0; w < n; ++w) {
    const std::uint32_t base = static_cast<std::uint32_t>(w << 6);
    for (std::uint64_t bits = words[w]; bits != 0; bits &= bits - 1) {
      out.push_back(base +
                    static_cast<std::uint32_t>(__builtin_ctzll(bits)));
    }
  }
}

}  // namespace manthan::util::simd
