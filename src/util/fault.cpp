#include "util/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "util/rng.hpp"

namespace manthan::util::fault {

namespace {

constexpr std::size_t kNumSites = static_cast<std::size_t>(Site::kCount);

constexpr const char* kSiteNames[kNumSites] = {
    "sat.arena.grow",    "sat.inprocess.step", "sample_matrix.grow",
    "aig.node.alloc",    "service.job",        "daemon.read",
    "daemon.write",
};

constexpr const char* kKindNames[] = {"none", "alloc", "io", "stall",
                                      "cancel"};

// All mutable registry state behind one mutex. poll_slow() only runs when
// a schedule is installed (or on the very first poll, to consult the
// environment), so the lock is never on the idle path. The stall sleep
// happens outside the lock.
struct Registry {
  std::mutex mutex;
  Schedule schedule;
  std::string spec;
  std::uint64_t polls[kNumSites] = {};
  std::uint64_t fires[kNumSites] = {};
  std::vector<std::uint64_t> rule_fires;  // parallel to schedule.rules
  std::uint64_t total_fires = 0;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during shutdown
  return *r;
}

std::uint64_t parse_u64(const std::string& text, const std::string& where) {
  std::size_t pos = 0;
  std::uint64_t value = 0;
  try {
    value = std::stoull(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || text.empty()) {
    throw std::invalid_argument("fault spec: bad number '" + text + "' in " +
                                where);
  }
  return value;
}

double parse_prob(const std::string& text) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != text.size() || text.empty() || value < 0.0 || value > 1.0) {
    throw std::invalid_argument("fault spec: bad probability '" + text + "'");
  }
  return value;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

// Deterministic per-(seed, site, poll-index) coin for probabilistic rules.
bool coin(std::uint64_t seed, Site site, std::uint64_t index, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  std::uint64_t h = splitmix64(seed ^ (static_cast<std::uint64_t>(site) << 32)
                               ^ index);
  return (h >> 11) * 0x1.0p-53 < p;
}

}  // namespace

const char* site_name(Site site) {
  auto index = static_cast<std::size_t>(site);
  return index < kNumSites ? kSiteNames[index] : "invalid";
}

const char* kind_name(Kind kind) {
  auto index = static_cast<std::size_t>(kind);
  return index < sizeof(kKindNames) / sizeof(kKindNames[0])
             ? kKindNames[index]
             : "invalid";
}

std::optional<Site> site_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<Site>(i);
  }
  return std::nullopt;
}

Schedule parse_schedule(const std::string& spec) {
  Schedule schedule;
  for (const std::string& entry : split(spec, ';')) {
    if (entry.empty()) continue;
    if (entry.rfind("seed=", 0) == 0) {
      schedule.seed = parse_u64(entry.substr(5), "seed");
      continue;
    }
    std::vector<std::string> fields = split(entry, ':');
    if (fields.size() < 2) {
      throw std::invalid_argument("fault spec: entry '" + entry +
                                  "' needs site:kind");
    }
    Rule rule;
    std::optional<Site> site = site_from_name(fields[0]);
    if (!site) {
      throw std::invalid_argument("fault spec: unknown site '" + fields[0] +
                                  "'");
    }
    rule.site = *site;
    if (fields[1] == "alloc") {
      rule.kind = Kind::kAlloc;
    } else if (fields[1] == "io") {
      rule.kind = Kind::kIo;
    } else if (fields[1] == "stall") {
      rule.kind = Kind::kStall;
    } else if (fields[1] == "cancel") {
      rule.kind = Kind::kCancel;
    } else {
      throw std::invalid_argument("fault spec: unknown kind '" + fields[1] +
                                  "'");
    }
    for (std::size_t i = 2; i < fields.size(); ++i) {
      std::size_t eq = fields[i].find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("fault spec: expected key=value, got '" +
                                    fields[i] + "'");
      }
      std::string key = fields[i].substr(0, eq);
      std::string value = fields[i].substr(eq + 1);
      if (key == "after") {
        rule.after = parse_u64(value, entry);
        if (rule.after == 0) {
          throw std::invalid_argument("fault spec: after is 1-based");
        }
      } else if (key == "every") {
        rule.every = parse_u64(value, entry);
      } else if (key == "limit") {
        rule.limit = parse_u64(value, entry);
      } else if (key == "p") {
        rule.probability = parse_prob(value);
      } else if (key == "ms") {
        rule.stall_ms = static_cast<std::uint32_t>(parse_u64(value, entry));
      } else {
        throw std::invalid_argument("fault spec: unknown key '" + key + "'");
      }
    }
    schedule.rules.push_back(rule);
  }
  return schedule;
}

namespace detail {

std::atomic<int> g_state{-1};

namespace {

// First touch of the registry: consult MANTHAN_FAULTS once. A parse error
// here must not take the process down — the variable is ignored. Caller
// holds r.mutex.
int resolve_env_locked(Registry& r) {
  int state = g_state.load(std::memory_order_relaxed);
  if (state != -1) return state;
  const char* env = std::getenv("MANTHAN_FAULTS");
  if (env != nullptr && *env != '\0') {
    try {
      r.schedule = parse_schedule(env);
      r.spec = env;
    } catch (const std::invalid_argument&) {
      r.schedule = Schedule{};
      r.spec.clear();
    }
  }
  r.rule_fires.assign(r.schedule.rules.size(), 0);
  state = r.schedule.rules.empty() ? 0 : 1;
  g_state.store(state, std::memory_order_relaxed);
  return state;
}

}  // namespace

Kind poll_slow(Site site) {
  Registry& r = registry();
  std::uint32_t stall_ms = 0;
  Kind fired = Kind::kNone;
  {
    std::lock_guard<std::mutex> lock(r.mutex);
    if (resolve_env_locked(r) == 0) return Kind::kNone;

    std::size_t site_index = static_cast<std::size_t>(site);
    std::uint64_t index = ++r.polls[site_index];  // 1-based
    for (std::size_t i = 0; i < r.schedule.rules.size(); ++i) {
      const Rule& rule = r.schedule.rules[i];
      if (rule.site != site) continue;
      if (index < rule.after) continue;
      if (rule.every == 0 ? index != rule.after
                          : (index - rule.after) % rule.every != 0) {
        continue;
      }
      if (rule.limit != 0 && r.rule_fires[i] >= rule.limit) continue;
      if (!coin(r.schedule.seed, site, index, rule.probability)) continue;
      ++r.rule_fires[i];
      ++r.fires[site_index];
      ++r.total_fires;
      fired = rule.kind;
      if (fired == Kind::kStall) stall_ms = rule.stall_ms;
      break;  // first matching rule wins at each poll
    }
  }
  if (fired == Kind::kStall && stall_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
  }
  return fired;
}

}  // namespace detail

void install(const Schedule& schedule) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.schedule = schedule;
  r.spec.clear();
  r.rule_fires.assign(schedule.rules.size(), 0);
  for (std::size_t i = 0; i < kNumSites; ++i) {
    r.polls[i] = 0;
    r.fires[i] = 0;
  }
  r.total_fires = 0;
  detail::g_state.store(schedule.rules.empty() ? 0 : 1,
                        std::memory_order_relaxed);
}

void install(const std::string& spec) {
  Schedule schedule = parse_schedule(spec);  // throws before mutating state
  install(schedule);
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.spec = spec;
}

void clear() { install(Schedule{}); }

bool active() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return detail::resolve_env_locked(r) == 1;
}

std::string active_spec() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.spec;
}

SiteStats stats(Site site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  std::size_t index = static_cast<std::size_t>(site);
  SiteStats out;
  if (index < kNumSites) {
    out.polls = r.polls[index];
    out.fires = r.fires[index];
  }
  return out;
}

std::uint64_t total_fires() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.total_fires;
}

}  // namespace manthan::util::fault
