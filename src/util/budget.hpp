// Per-request resource budgets with graceful out-of-budget degradation.
//
// A ResourceBudget bounds one synthesis request along three axes — heap
// bytes at the instrumented growth sites (the PR-8 byte accounting),
// wall-clock time (enforced by the service watchdog), and SAT conflicts —
// and owns a CancelToken that trips when any limit is exceeded. The
// polling layers already observe that token through the Deadline chain,
// so a tripped budget unwinds through the normal cancellation path and
// the engine returns truncated-but-valid stats instead of dying.
//
// Memory charging is cooperative and cumulative: each instrumented growth
// site (SAT clause arena, SampleMatrix, AIG node table) charges its
// capacity delta through the thread-local current_budget() before
// allocating. Charges are monotonic for a given workload, so the trip
// point is deterministic. A real (or fault-injected) std::bad_alloc at a
// guarded site is converted into OutOfBudgetError — budget-exceeded
// cancellation instead of process death.
//
// BudgetScope installs a budget for the current thread (RAII, nestable).
// Worker fan-out must re-install the scope inside each job closure; the
// scope is thread-local precisely so concurrent requests on a shared
// scheduler charge their own budgets.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/cancel.hpp"
#include "util/fault.hpp"

namespace manthan::util {

class ResourceBudget {
 public:
  struct Limits {
    std::uint64_t memory_bytes = 0;  // 0 = unlimited
    double wall_seconds = 0.0;       // 0 = unlimited (watchdog-enforced)
    std::uint64_t conflicts = 0;     // 0 = unlimited
    bool any() const {
      return memory_bytes != 0 || wall_seconds > 0.0 || conflicts != 0;
    }
  };

  enum class Trip : std::uint8_t {
    kNone,
    kMemory,        // cumulative growth-site bytes exceeded memory_bytes
    kTime,          // watchdog observed wall_seconds exceeded
    kConflicts,     // SAT conflicts exceeded the conflict limit
    kAllocFailure,  // std::bad_alloc at an instrumented growth site
  };
  static const char* trip_name(Trip trip);

  ResourceBudget() = default;
  explicit ResourceBudget(const Limits& limits) : limits_(limits) {}

  /// Charge `delta` bytes of growth. Returns false (and trips) once the
  /// memory limit is exceeded or the budget already tripped.
  bool charge_bytes(std::uint64_t delta) {
    std::uint64_t total =
        bytes_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (limits_.memory_bytes != 0 && total > limits_.memory_bytes) {
      trip(Trip::kMemory);
    }
    return tripped() == Trip::kNone;
  }

  /// Add observed SAT conflicts. Returns false once over the limit.
  bool add_conflicts(std::uint64_t delta) {
    std::uint64_t total =
        conflicts_.fetch_add(delta, std::memory_order_relaxed) + delta;
    if (limits_.conflicts != 0 && total > limits_.conflicts) {
      trip(Trip::kConflicts);
    }
    return tripped() == Trip::kNone;
  }

  /// Record a trip; the first cause wins, later calls are no-ops. Always
  /// cancels the token so pollers unwind.
  void trip(Trip cause) {
    std::uint8_t expected = 0;
    trip_.compare_exchange_strong(expected, static_cast<std::uint8_t>(cause),
                                  std::memory_order_relaxed);
    token_.cancel();
  }

  Trip tripped() const {
    return static_cast<Trip>(trip_.load(std::memory_order_relaxed));
  }

  std::uint64_t charged_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t conflicts() const {
    return conflicts_.load(std::memory_order_relaxed);
  }
  const Limits& limits() const { return limits_; }

  /// Tripped-budget cancellation, composable under AnyOfCancelToken.
  const CancelToken& token() const { return token_; }

 private:
  Limits limits_;
  CancelToken token_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> conflicts_{0};
  std::atomic<std::uint8_t> trip_{0};
};

/// Thrown by instrumented growth sites when the active budget's memory
/// limit is exceeded or an allocation fails under a budget. Deliberately
/// NOT derived from std::bad_alloc: the growth-site guards convert
/// bad_alloc into this type exactly once, and engines catch it to return
/// kOutOfBudget.
class OutOfBudgetError : public std::runtime_error {
 public:
  OutOfBudgetError(ResourceBudget::Trip cause, const char* site)
      : std::runtime_error(std::string("resource budget exceeded (") +
                           ResourceBudget::trip_name(cause) + ") at " + site),
        cause_(cause) {}

  ResourceBudget::Trip cause() const { return cause_; }

 private:
  ResourceBudget::Trip cause_;
};

/// The budget charged by growth sites on this thread, or null.
ResourceBudget* current_budget();

/// RAII thread-local budget installation. Nesting restores the previous
/// budget on destruction; installing null clears the budget within the
/// scope (a request without a budget must not charge a neighbour's).
class BudgetScope {
 public:
  explicit BudgetScope(ResourceBudget* budget);
  ~BudgetScope();
  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

 private:
  ResourceBudget* previous_;
};

/// Growth-site guard: charge `bytes` against the thread's budget, poll
/// the fault site, then run the allocation. Throws OutOfBudgetError when
/// the budget is exhausted or when the allocation (real or fault-injected)
/// fails — bad_alloc is converted unconditionally, so an OOM at a guarded
/// site degrades into a kOutOfBudget result instead of process death even
/// for unbudgeted runs.
template <typename Alloc>
void guarded_grow(fault::Site site, std::uint64_t bytes, Alloc&& alloc) {
  ResourceBudget* budget = current_budget();
  if (budget != nullptr && !budget->charge_bytes(bytes)) {
    throw OutOfBudgetError(ResourceBudget::Trip::kMemory,
                           fault::site_name(site));
  }
  try {
    fault::on_alloc_site(site);
    alloc();
  } catch (const std::bad_alloc&) {
    if (budget != nullptr) {
      budget->trip(ResourceBudget::Trip::kAllocFailure);
    }
    throw OutOfBudgetError(ResourceBudget::Trip::kAllocFailure,
                           fault::site_name(site));
  }
}

}  // namespace manthan::util
