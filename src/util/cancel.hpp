// Cooperative cancellation for the parallel execution engine.
//
// A CancelToken is a single atomic flag shared between the party that
// requests a stop (the racing portfolio, a shutdown path, a signal
// handler) and the workers that must honour it. Workers never block on
// the token; they poll it at their existing budget checkpoints. The
// standard wiring is through util::Deadline: constructing a Deadline with
// a token makes every expired() poll across the stack — the SAT solver's
// decisions+propagations poll, the Manthan3 verify/repair loop, the
// baseline engines' outer loops, the sampler, MaxSAT — also observe
// cancellation, with no extra plumbing at the call sites.
#pragma once

#include <atomic>

namespace manthan::util {

/// Thread-safe cancellation flag. cancel() is sticky: once set, every
/// subsequent cancelled() poll (from any thread) returns true until
/// reset(). All operations are lock-free.
///
/// cancelled() is virtual so that composed tokens (AnyOfCancelToken) can
/// observe parent flags through the same `const CancelToken*` that every
/// Deadline poll site already carries. Polls happen on budget cadences
/// (thousands of decisions apart), so the virtual dispatch is free in
/// practice.
class CancelToken {
 public:
  CancelToken() = default;
  virtual ~CancelToken() = default;
  // The flag is the identity of the token; copying would silently split
  // cancellation into two independent flags.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  virtual bool cancelled() const {
    return flag_.load(std::memory_order_relaxed);
  }

  /// Re-arm the token for reuse (only safe once no worker polls it).
  void reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

/// Any-of composition: cancelled once its own flag OR any parent token is
/// cancelled. cancel() sets only the child's flag — a race winner stopping
/// its losers must not stop the service that issued the race, while a
/// service shutdown must stop every request composed under it. Parents
/// must outlive the child; null parents are allowed and ignored, so the
/// common "request token may be absent" wiring needs no branches.
class AnyOfCancelToken final : public CancelToken {
 public:
  explicit AnyOfCancelToken(const CancelToken* a = nullptr,
                            const CancelToken* b = nullptr,
                            const CancelToken* c = nullptr)
      : parent_a_(a), parent_b_(b), parent_c_(c) {}

  bool cancelled() const override {
    return CancelToken::cancelled() ||
           (parent_a_ != nullptr && parent_a_->cancelled()) ||
           (parent_b_ != nullptr && parent_b_->cancelled()) ||
           (parent_c_ != nullptr && parent_c_->cancelled());
  }

 private:
  const CancelToken* parent_a_;
  const CancelToken* parent_b_;
  const CancelToken* parent_c_;
};

}  // namespace manthan::util
