// Cooperative cancellation for the parallel execution engine.
//
// A CancelToken is a single atomic flag shared between the party that
// requests a stop (the racing portfolio, a shutdown path, a signal
// handler) and the workers that must honour it. Workers never block on
// the token; they poll it at their existing budget checkpoints. The
// standard wiring is through util::Deadline: constructing a Deadline with
// a token makes every expired() poll across the stack — the SAT solver's
// decisions+propagations poll, the Manthan3 verify/repair loop, the
// baseline engines' outer loops, the sampler, MaxSAT — also observe
// cancellation, with no extra plumbing at the call sites.
#pragma once

#include <atomic>

namespace manthan::util {

/// Thread-safe cancellation flag. cancel() is sticky: once set, every
/// subsequent cancelled() poll (from any thread) returns true until
/// reset(). All operations are lock-free.
class CancelToken {
 public:
  CancelToken() = default;
  // The flag is the identity of the token; copying would silently split
  // cancellation into two independent flags.
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() { flag_.store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_.load(std::memory_order_relaxed); }

  /// Re-arm the token for reuse (only safe once no worker polls it).
  void reset() { flag_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace manthan::util
