// Minimal leveled logging. Engines log progress at Debug level; the
// portfolio harness raises the level to keep benchmark output clean.
//
// Every line is prefixed with a monotonic timestamp (seconds since the
// process epoch shared with util::monotonic_ns — the same clock obs
// trace spans stamp with) and a small per-thread ordinal:
//
//   [  12.345678] [T03] [DEBUG] verify round 17
//
// so Debug logs correlate directly with trace-span timestamps and with
// each other across scheduler workers.
//
// Thread safety: log()/log_line() may be called concurrently from
// scheduler workers — sink writes are serialized by a mutex, so lines
// never interleave mid-message. set_log_level()/log_level() are atomic.
#pragma once

#include <sstream>
#include <string>

namespace manthan::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& value, const Rest&... rest) {
  os << value;
  append_all(os, rest...);
}
}  // namespace detail

/// Variadic convenience: LOG(kInfo, "solved ", n, " instances").
template <typename... Args>
void log(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_line(level, os.str());
}

}  // namespace manthan::util
