// Scalar kernel tier: the reference implementations, verbatim. Always
// compiled, always supported — the other tiers are checked against it.
#include "util/simd_detail.hpp"

namespace manthan::util::simd {

const Kernels* scalar_kernels_table() {
  static const Kernels table = {
      &detail::popcount_ref,  &detail::popcount_xor_ref,
      &detail::count_node_ref, &detail::count_split_ref,
      &detail::split_masks_ref, &detail::combine_ref,
      &detail::xor_const_ref,
  };
  return &table;
}

}  // namespace manthan::util::simd
