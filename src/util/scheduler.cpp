#include "util/scheduler.hpp"

namespace manthan::util {

Scheduler::Scheduler(std::size_t workers) {
  const std::size_t count = workers == 0 ? 1 : workers;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

Scheduler::~Scheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void Scheduler::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

}  // namespace manthan::util
