// AVX2 kernel tier: 256-bit lanes, 4 packed words per step. Popcounts use
// the Mula nibble-shuffle (two PSHUFB table lookups + PSADBW horizontal
// byte sums), which beats four scalar POPCNTs once the data is already in
// vector registers. This TU is compiled with -mavx2 -mpopcnt (see
// src/util/CMakeLists.txt) and self-gates on the predefined macros so
// non-x86 builds degrade to a nullptr table.
#include "util/simd_detail.hpp"

#if defined(__AVX2__) && defined(__POPCNT__)

#include <immintrin.h>

namespace manthan::util::simd {
namespace {

inline __m256i load(const std::uint64_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint64_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Per-64-bit-lane popcount of v (Mula): nibble table lookups summed with
/// _mm256_sad_epu8 into four word-lane counts.
inline __m256i popcnt_lanes(__m256i v) {
  const __m256i table = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(table, lo),
                                         _mm256_shuffle_epi8(table, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

inline std::size_t horizontal_sum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(_mm_extract_epi64(sum, 1));
}

std::size_t popcount_avx2(const std::uint64_t* a, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(acc, popcnt_lanes(load(a + i)));
  }
  return horizontal_sum(acc) + detail::popcount_ref(a + i, n - i);
}

std::size_t popcount_xor_avx2(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcnt_lanes(_mm256_xor_si256(load(a + i), load(b + i))));
  }
  return horizontal_sum(acc) + detail::popcount_xor_ref(a + i, b + i, n - i);
}

void count_node_avx2(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n, std::size_t* total, std::size_t* pos) {
  __m256i acc_t = _mm256_setzero_si256();
  __m256i acc_p = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = load(a + i);
    acc_t = _mm256_add_epi64(acc_t, popcnt_lanes(va));
    acc_p = _mm256_add_epi64(
        acc_p, popcnt_lanes(_mm256_and_si256(va, load(b + i))));
  }
  std::size_t tail_t = 0;
  std::size_t tail_p = 0;
  detail::count_node_ref(a + i, b + i, n - i, &tail_t, &tail_p);
  *total = horizontal_sum(acc_t) + tail_t;
  *pos = horizontal_sum(acc_p) + tail_p;
}

void count_split_avx2(const std::uint64_t* a, const std::uint64_t* b,
                      const std::uint64_t* c, std::size_t n, std::size_t* hi,
                      std::size_t* hi_pos) {
  __m256i acc_h = _mm256_setzero_si256();
  __m256i acc_hp = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i ab = _mm256_and_si256(load(a + i), load(b + i));
    acc_h = _mm256_add_epi64(acc_h, popcnt_lanes(ab));
    acc_hp = _mm256_add_epi64(
        acc_hp, popcnt_lanes(_mm256_and_si256(ab, load(c + i))));
  }
  std::size_t tail_h = 0;
  std::size_t tail_hp = 0;
  detail::count_split_ref(a + i, b + i, c + i, n - i, &tail_h, &tail_hp);
  *hi = horizontal_sum(acc_h) + tail_h;
  *hi_pos = horizontal_sum(acc_hp) + tail_hp;
}

void split_masks_avx2(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* hi, std::uint64_t* lo, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = load(a + i);
    const __m256i vb = load(b + i);
    store(hi + i, _mm256_and_si256(va, vb));
    store(lo + i, _mm256_andnot_si256(vb, va));
  }
  detail::split_masks_ref(a + i, b + i, hi + i, lo + i, n - i);
}

void combine_avx2(std::uint64_t* dst, const std::uint64_t* a,
                  std::uint64_t inv_a, const std::uint64_t* b,
                  std::uint64_t inv_b, std::uint64_t inv_out, std::size_t n) {
  const __m256i va_inv = _mm256_set1_epi64x(static_cast<long long>(inv_a));
  const __m256i vb_inv = _mm256_set1_epi64x(static_cast<long long>(inv_b));
  const __m256i vo_inv = _mm256_set1_epi64x(static_cast<long long>(inv_out));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va = _mm256_xor_si256(load(a + i), va_inv);
    const __m256i vb = _mm256_xor_si256(load(b + i), vb_inv);
    store(dst + i, _mm256_xor_si256(_mm256_and_si256(va, vb), vo_inv));
  }
  detail::combine_ref(dst + i, a + i, inv_a, b + i, inv_b, inv_out, n - i);
}

void xor_const_avx2(std::uint64_t* dst, const std::uint64_t* src,
                    std::uint64_t inv, std::size_t n) {
  const __m256i v_inv = _mm256_set1_epi64x(static_cast<long long>(inv));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    store(dst + i, _mm256_xor_si256(load(src + i), v_inv));
  }
  detail::xor_const_ref(dst + i, src + i, inv, n - i);
}

}  // namespace

const Kernels* avx2_kernels_table() {
  static const Kernels table = {
      &popcount_avx2,    &popcount_xor_avx2, &count_node_avx2,
      &count_split_avx2, &split_masks_avx2,  &combine_avx2,
      &xor_const_avx2,
  };
  return &table;
}

}  // namespace manthan::util::simd

#else  // !(__AVX2__ && __POPCNT__)

namespace manthan::util::simd {
const Kernels* avx2_kernels_table() { return nullptr; }
}  // namespace manthan::util::simd

#endif
