// Runtime-dispatched SIMD kernels for the packed sample->learn data path.
//
// The bit-packed pipeline (cnf::SampleMatrix columns, dtree split counting,
// aig::simulate_matrix, fingerprint dedup) spends its time in a handful of
// word-range primitives: masked popcounts, two-input combines, fingerprint
// chaining, and set-bit iteration. This module compiles those primitives
// three times — scalar, AVX2, AVX-512 — in separate translation units with
// per-TU compile flags, and selects one table of function pointers at
// startup via CPUID. The `MANTHAN_SIMD=scalar|avx2|avx512` environment
// variable overrides the choice (clamped down to what the CPU supports), so
// committed benches and CI stay portable and differential tests can force a
// tier per process.
//
// Contract: every tier is bit-identical to the scalar reference. Kernels
// use unaligned-encoded vector loads (same speed as aligned loads on
// aligned data, safe everywhere); callers that own storage should still
// 64-byte-align it (see AlignedVector) so cache-line splits never happen.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace manthan::util::simd {

/// Alignment (bytes) for packed-word storage: one AVX-512 lane.
inline constexpr std::size_t kAlignBytes = 64;

/// Dispatch tiers, ordered: higher value = wider lanes.
enum class Tier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

/// Human-readable tier name ("scalar" / "avx2" / "avx512").
const char* tier_name(Tier tier);

/// One table of word-range primitives; all counts are in 64-bit words.
/// Every pointer is non-null in every table.
struct Kernels {
  /// popcount over a[0..n).
  std::size_t (*popcount)(const std::uint64_t* a, std::size_t n);

  /// popcount of (a ^ b) over [0..n) — packed row-range mismatch count.
  std::size_t (*popcount_xor)(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t n);

  /// Fused node counts: *total = popcount(a), *pos = popcount(a & b).
  void (*count_node)(const std::uint64_t* a, const std::uint64_t* b,
                     std::size_t n, std::size_t* total, std::size_t* pos);

  /// Fused split counts: *hi = popcount(a & b), *hi_pos = popcount(a & b & c).
  void (*count_split)(const std::uint64_t* a, const std::uint64_t* b,
                      const std::uint64_t* c, std::size_t n, std::size_t* hi,
                      std::size_t* hi_pos);

  /// hi[i] = a[i] & b[i]; lo[i] = a[i] & ~b[i] (child mask split).
  void (*split_masks)(const std::uint64_t* a, const std::uint64_t* b,
                      std::uint64_t* hi, std::uint64_t* lo, std::size_t n);

  /// dst[i] = ((a[i] ^ inv_a) & (b[i] ^ inv_b)) ^ inv_out.
  /// With inv_* drawn from {0, ~0} this expresses AND, ANDNOT, NOR, OR and
  /// NAND (De Morgan via inv_out) — the full gate set simulate_matrix needs.
  /// dst may alias a or b.
  void (*combine)(std::uint64_t* dst, const std::uint64_t* a,
                  std::uint64_t inv_a, const std::uint64_t* b,
                  std::uint64_t inv_b, std::uint64_t inv_out, std::size_t n);

  /// dst[i] = src[i] ^ inv (copy when inv == 0, complement when inv == ~0).
  /// dst may alias src.
  void (*xor_const)(std::uint64_t* dst, const std::uint64_t* src,
                    std::uint64_t inv, std::size_t n);
};

/// Chain a fingerprint over a word range: h = splitmix64(h ^ word) per word.
/// Inherently sequential, so there is exactly one implementation, shared by
/// every tier — cnf::fingerprint / row_fingerprint route through it.
std::uint64_t fingerprint_chain(std::uint64_t h, const std::uint64_t* words,
                                std::size_t n);

/// Append the index (word*64 + bit) of every set bit in words[0..n) to out.
/// The shared sparse-unpack used by the dtree sparse fitting path.
void collect_set_bits(const std::uint64_t* words, std::size_t n,
                      std::vector<std::uint32_t>& out);

/// True when `tier` both compiled into this binary and runs on this CPU.
bool tier_supported(Tier tier);

/// Widest supported tier on this machine (>= kScalar always).
Tier best_supported_tier();

/// Resolve an override string against the supported set: "scalar"/"avx2"/
/// "avx512" clamp down to best_supported_tier(); null/empty/unknown values
/// resolve to best_supported_tier(). Pure function, exposed for tests — the
/// process-wide choice applies it to getenv("MANTHAN_SIMD") once.
Tier resolve_tier(const char* override_value);

/// The process-wide active tier (resolved once, on first use).
Tier active_tier();

/// Kernel table for the active tier.
const Kernels& kernels();

/// Kernel table for a specific tier; `tier` must be supported.
const Kernels& kernels_for(Tier tier);

/// Force the active tier (differential tests). Returns the previous tier.
/// `tier` must be supported; thread-safe, but callers should only flip it
/// while no kernel users are running.
Tier set_active_tier_for_testing(Tier tier);

/// Minimal C++17 allocator yielding kAlignBytes-aligned storage.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(kAlignBytes)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(kAlignBytes));
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U>&) const noexcept {
    return false;
  }
};

/// std::vector with 64-byte-aligned storage (packed columns, node masks).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace manthan::util::simd
