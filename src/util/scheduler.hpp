// Fixed-size thread-pool scheduler — the execution substrate of the
// parallel portfolio (suite fan-out, racing engines), of Manthan3's
// per-existential candidate learning, and of every future
// sharding/batching layer.
//
// Design: a fixed worker count chosen at construction, one global FIFO
// job queue guarded by a mutex + condition variable, and std::future
// results via packaged_task. Deliberately work-stealing-free: jobs here
// are coarse (one engine × one instance, or one decision-tree fit —
// milliseconds to seconds), so a single FIFO queue is contention-free in
// practice and keeps completion order comprehensible. Determinism is the
// client's job — scheduled work must derive its own RNG stream from a
// stable job identity (util::derive_seed) and never depend on
// interleaving.
//
// Layering: the class lives in util (below sat/core) so the synthesis
// engine can fan work across it without a link cycle through the engine
// module, which depends on core. engine/scheduler.hpp aliases it back
// into manthan::engine, where the portfolio-facing clients know it from.
//
// Shutdown semantics: the destructor drains — already-submitted jobs all
// run to completion before the workers join. Cancellation of in-flight
// work is cooperative, via util::CancelToken observed by the jobs
// themselves; the scheduler never kills a thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace manthan::util {

class Scheduler {
 public:
  /// Start `workers` threads (at least 1; 0 is clamped to 1).
  explicit Scheduler(std::size_t workers);
  /// Drains the queue: blocks until every submitted job has run.
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Enqueue a nullary callable; returns a future for its result.
  /// Exceptions thrown by the job are captured into the future. Safe to
  /// call from any thread, including from inside a running job (but a
  /// job blocking on a future of a job queued *behind* it can deadlock a
  /// fully-busy pool — submit dependent stages from the outside instead).
  template <typename F>
  auto submit(F&& job) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(job));
    std::future<R> future = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool stopping_ = false;                    // guarded by mutex_
  std::vector<std::thread> workers_;
};

}  // namespace manthan::util
