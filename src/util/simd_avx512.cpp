// AVX-512 kernel tier: 512-bit lanes, 8 packed words per step, native
// per-lane popcount via VPOPCNTQ (AVX512VPOPCNTDQ — Ice Lake and later).
// Compiled with -mavx512f -mavx512bw -mavx512vpopcntdq (see
// src/util/CMakeLists.txt); self-gates on the predefined macros.
#include "util/simd_detail.hpp"

#if defined(__AVX512F__) && defined(__AVX512VPOPCNTDQ__)

#include <immintrin.h>

namespace manthan::util::simd {
namespace {

inline __m512i load(const std::uint64_t* p) {
  return _mm512_loadu_si512(reinterpret_cast<const void*>(p));
}

inline void store(std::uint64_t* p, __m512i v) {
  _mm512_storeu_si512(reinterpret_cast<void*>(p), v);
}

/// Sum of the eight 64-bit lanes. Spelled as store + scalar sum instead of
/// _mm512_reduce_add_epi64: gcc's inline expansion of the latter trips a
/// -Wuninitialized false positive via _mm256_undefined_si256.
inline std::size_t horizontal_sum(__m512i acc) {
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(reinterpret_cast<void*>(lanes), acc);
  std::size_t total = 0;
  for (int i = 0; i < 8; ++i) total += static_cast<std::size_t>(lanes[i]);
  return total;
}

std::size_t popcount_avx512(const std::uint64_t* a, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(load(a + i)));
  }
  return horizontal_sum(acc) +
         detail::popcount_ref(a + i, n - i);
}

std::size_t popcount_xor_avx512(const std::uint64_t* a,
                                const std::uint64_t* b, std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_xor_si512(load(a + i), load(b + i))));
  }
  return horizontal_sum(acc) +
         detail::popcount_xor_ref(a + i, b + i, n - i);
}

void count_node_avx512(const std::uint64_t* a, const std::uint64_t* b,
                       std::size_t n, std::size_t* total, std::size_t* pos) {
  __m512i acc_t = _mm512_setzero_si512();
  __m512i acc_p = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = load(a + i);
    acc_t = _mm512_add_epi64(acc_t, _mm512_popcnt_epi64(va));
    acc_p = _mm512_add_epi64(
        acc_p, _mm512_popcnt_epi64(_mm512_and_si512(va, load(b + i))));
  }
  std::size_t tail_t = 0;
  std::size_t tail_p = 0;
  detail::count_node_ref(a + i, b + i, n - i, &tail_t, &tail_p);
  *total = horizontal_sum(acc_t) + tail_t;
  *pos = horizontal_sum(acc_p) + tail_p;
}

void count_split_avx512(const std::uint64_t* a, const std::uint64_t* b,
                        const std::uint64_t* c, std::size_t n,
                        std::size_t* hi, std::size_t* hi_pos) {
  __m512i acc_h = _mm512_setzero_si512();
  __m512i acc_hp = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i ab = _mm512_and_si512(load(a + i), load(b + i));
    acc_h = _mm512_add_epi64(acc_h, _mm512_popcnt_epi64(ab));
    acc_hp = _mm512_add_epi64(
        acc_hp, _mm512_popcnt_epi64(_mm512_and_si512(ab, load(c + i))));
  }
  std::size_t tail_h = 0;
  std::size_t tail_hp = 0;
  detail::count_split_ref(a + i, b + i, c + i, n - i, &tail_h, &tail_hp);
  *hi = horizontal_sum(acc_h) + tail_h;
  *hi_pos =
      horizontal_sum(acc_hp) + tail_hp;
}

void split_masks_avx512(const std::uint64_t* a, const std::uint64_t* b,
                        std::uint64_t* hi, std::uint64_t* lo, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = load(a + i);
    const __m512i vhi = _mm512_and_si512(va, load(b + i));
    store(hi + i, vhi);
    // a & ~b == a ^ (a & b); avoids _mm512_andnot_si512, whose gcc inline
    // expansion trips the same -Wmaybe-uninitialized false positive as the
    // reduce intrinsics.
    store(lo + i, _mm512_xor_si512(va, vhi));
  }
  detail::split_masks_ref(a + i, b + i, hi + i, lo + i, n - i);
}

void combine_avx512(std::uint64_t* dst, const std::uint64_t* a,
                    std::uint64_t inv_a, const std::uint64_t* b,
                    std::uint64_t inv_b, std::uint64_t inv_out,
                    std::size_t n) {
  const __m512i va_inv = _mm512_set1_epi64(static_cast<long long>(inv_a));
  const __m512i vb_inv = _mm512_set1_epi64(static_cast<long long>(inv_b));
  const __m512i vo_inv = _mm512_set1_epi64(static_cast<long long>(inv_out));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_xor_si512(load(a + i), va_inv);
    const __m512i vb = _mm512_xor_si512(load(b + i), vb_inv);
    store(dst + i, _mm512_xor_si512(_mm512_and_si512(va, vb), vo_inv));
  }
  detail::combine_ref(dst + i, a + i, inv_a, b + i, inv_b, inv_out, n - i);
}

void xor_const_avx512(std::uint64_t* dst, const std::uint64_t* src,
                      std::uint64_t inv, std::size_t n) {
  const __m512i v_inv = _mm512_set1_epi64(static_cast<long long>(inv));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    store(dst + i, _mm512_xor_si512(load(src + i), v_inv));
  }
  detail::xor_const_ref(dst + i, src + i, inv, n - i);
}

}  // namespace

const Kernels* avx512_kernels_table() {
  static const Kernels table = {
      &popcount_avx512,    &popcount_xor_avx512, &count_node_avx512,
      &count_split_avx512, &split_masks_avx512,  &combine_avx512,
      &xor_const_avx512,
  };
  return &table;
}

}  // namespace manthan::util::simd

#else  // !(__AVX512F__ && __AVX512VPOPCNTDQ__)

namespace manthan::util::simd {
const Kernels* avx512_kernels_table() { return nullptr; }
}  // namespace manthan::util::simd

#endif
