#include "util/budget.hpp"

namespace manthan::util {

namespace {
thread_local ResourceBudget* t_current_budget = nullptr;
}  // namespace

const char* ResourceBudget::trip_name(Trip trip) {
  switch (trip) {
    case Trip::kNone:
      return "none";
    case Trip::kMemory:
      return "memory";
    case Trip::kTime:
      return "time";
    case Trip::kConflicts:
      return "conflicts";
    case Trip::kAllocFailure:
      return "alloc_failure";
  }
  return "invalid";
}

ResourceBudget* current_budget() { return t_current_budget; }

BudgetScope::BudgetScope(ResourceBudget* budget)
    : previous_(t_current_budget) {
  t_current_budget = budget;
}

BudgetScope::~BudgetScope() { t_current_budget = previous_; }

}  // namespace manthan::util
