// Deterministic fault injection for robustness testing.
//
// A process-global registry of *fault rules* attached to named sites that
// the production code polls at its natural hazard points: allocation
// growth in the SAT clause arena / SampleMatrix / AIG node table, service
// job execution, and daemon file I/O. A rule fires an injected fault —
// allocation failure (std::bad_alloc), I/O error, a bounded stall, or a
// forced cancellation — at poll indices chosen by a seed-driven schedule,
// so a chaos run is exactly reproducible from its spec string: the poll
// counters are per-site and advance identically on every run of the same
// workload, which makes outcomes schedule-deterministic.
//
// The injector is compiled in always, with the PR-8 span discipline for
// the idle path: when no schedule is installed, poll() is one relaxed
// atomic load and a predictable branch. Enable programmatically with
// install(), per run via Manthan3Options::fault_spec, or for a whole
// process via the MANTHAN_FAULTS environment variable (read once, on the
// first poll).
//
// Spec grammar (semicolon-separated entries):
//   spec  := entry (';' entry)*
//   entry := "seed=" N | rule
//   rule  := site ':' kind (':' key '=' value)*
//   site  := sat.arena.grow | sat.inprocess.step | sample_matrix.grow |
//            aig.node.alloc | service.job | daemon.read | daemon.write
//   kind  := alloc | io | stall | cancel
//   keys  := after (first eligible 1-based poll index, default 1)
//            every (also fire each Nth poll after `after`; 0 = once)
//            limit (max fires, 0 = unlimited, default 1)
//            p     (probability per eligible poll, seeded coin, default 1)
//            ms    (stall duration in milliseconds, default 10)
//
// Example: "seed=7;sat.arena.grow:alloc:after=3;daemon.write:io:limit=2"
#pragma once

#include <atomic>
#include <cstdint>
#include <new>
#include <optional>
#include <string>
#include <vector>

namespace manthan::util::fault {

enum class Site : std::uint8_t {
  kSatArenaGrow,      // sat::Solver clause-arena capacity growth
  kSatInprocessStep,  // per-item step inside Solver::inprocess passes
  kSampleMatrixGrow,  // cnf::SampleMatrix column growth
  kAigNodeAlloc,      // aig::Aig node-table / strash growth
  kServiceJob,        // engine::Service worker at job start
  kDaemonRead,        // daemon request-file read
  kDaemonWrite,       // daemon result-file write
  kCount
};

enum class Kind : std::uint8_t {
  kNone,    // no fault fired at this poll
  kAlloc,   // injected allocation failure (helpers throw std::bad_alloc)
  kIo,      // injected I/O failure (callers fail the read/write)
  kStall,   // bounded sleep, applied inside poll() itself
  kCancel,  // forced cooperative cancellation (callers stop early)
};

const char* site_name(Site site);
const char* kind_name(Kind kind);
std::optional<Site> site_from_name(const std::string& name);

struct Rule {
  Site site = Site::kCount;
  Kind kind = Kind::kNone;
  std::uint64_t after = 1;    // first eligible poll index (1-based)
  std::uint64_t every = 0;    // 0 = fire only at `after`
  std::uint64_t limit = 1;    // max fires; 0 = unlimited
  double probability = 1.0;   // seeded coin at each eligible poll
  std::uint32_t stall_ms = 10;
};

struct Schedule {
  std::uint64_t seed = 1;
  std::vector<Rule> rules;
};

/// Parse a spec string (grammar above). Throws std::invalid_argument on
/// unknown sites/kinds/keys or malformed numbers.
Schedule parse_schedule(const std::string& spec);

/// Install a schedule process-wide, resetting all poll and fire counters.
/// An empty rule list (or empty spec) is equivalent to clear().
void install(const Schedule& schedule);
void install(const std::string& spec);

/// Remove any installed schedule; poll() returns to the idle fast path.
void clear();

/// True when a non-empty schedule is installed.
bool active();

/// The spec string most recently passed to install(), or "" — used by
/// callers that want install-if-changed semantics.
std::string active_spec();

struct SiteStats {
  std::uint64_t polls = 0;
  std::uint64_t fires = 0;
};
SiteStats stats(Site site);

/// Total injected faults since the last install().
std::uint64_t total_fires();

namespace detail {
// -1 = env not consulted yet, 0 = idle, 1 = schedule installed.
extern std::atomic<int> g_state;
Kind poll_slow(Site site);
}  // namespace detail

/// Poll a fault site. Idle cost: one relaxed atomic load + branch. When a
/// schedule is installed, advances the site's poll counter and fires the
/// first matching eligible rule. A kStall fire sleeps inside this call
/// and then reports kStall; other kinds are returned for the caller to
/// act on.
inline Kind poll(Site site) {
  if (detail::g_state.load(std::memory_order_relaxed) == 0) {
    return Kind::kNone;
  }
  return detail::poll_slow(site);
}

/// Allocation-site helper: poll `site` and throw std::bad_alloc when an
/// alloc fault fires (stalls are absorbed; io/cancel are meaningless at
/// allocation sites and ignored).
inline void on_alloc_site(Site site) {
  if (poll(site) == Kind::kAlloc) {
    throw std::bad_alloc();
  }
}

/// I/O-site helper: true when the caller should fail this read/write.
inline bool io_should_fail(Site site) { return poll(site) == Kind::kIo; }

}  // namespace manthan::util::fault
