// Figure 7: scatter of Manthan3 vs VBS(HqsLite+PedantLite).
//
// Paper shape: performance is orthogonal — a cloud on both sides of the
// diagonal, a set of instances only Manthan3 solves (points on the x
// timeout gutter), and a band of instances where Manthan3 is within a few
// seconds of the VBS.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& records = manthan::bench::bench_records();
  const double timeout = manthan::bench::timeout_marker();

  const auto points = manthan::portfolio::scatter_points(
      records, {EngineKind::kHqsLite, EngineKind::kPedantLite},
      {EngineKind::kManthan3}, timeout);

  std::cout << "== Figure 7: Manthan3 vs VBS(HqsLite+PedantLite) ==\n";
  manthan::portfolio::print_scatter(std::cout, "VBS(baselines)",
                                    "Manthan3", points, timeout);

  // The paper highlights instances where Manthan3 is within +10 s of the
  // VBS; our budget is smaller, so scale the window to 10% of it.
  const double window = manthan::bench::env_budget() * 0.1;
  std::size_t near_vbs = 0;
  for (const auto& p : points) {
    if (p.y_seconds < timeout && p.x_seconds < timeout &&
        p.y_seconds <= p.x_seconds + window) {
      ++near_vbs;
    }
  }
  std::cout << "instances where Manthan3 is within +" << window
            << " s of the VBS: " << near_vbs << "\n";
  return 0;
}
