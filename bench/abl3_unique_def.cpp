// Ablation 3: UNIQUE-style definition extraction on vs off.
//
// On definition-rich instances (PEC; auxiliary Tseitin variables are all
// uniquely defined) extraction replaces learning+repair with forced
// definitions. We report solve counts, counterexample counts, and how
// many outputs were extracted.
#include <iostream>

#include "bench_common.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"

namespace {

struct Outcome {
  std::size_t solved = 0;
  std::size_t total_cex = 0;
  std::size_t total_defined = 0;
  double total_seconds = 0.0;
};

Outcome evaluate(bool unique,
                 const std::vector<manthan::workloads::Instance>& suite) {
  Outcome outcome;
  for (const auto& instance : suite) {
    manthan::aig::Aig manager;
    manthan::core::Manthan3Options options;
    options.use_unique_extraction = unique;
    options.time_limit_seconds = manthan::bench::env_budget();
    manthan::core::Manthan3 engine(options);
    const auto result = engine.synthesize(instance.formula, manager);
    outcome.total_cex += result.stats.counterexamples;
    outcome.total_defined += result.stats.unique_defined;
    outcome.total_seconds += result.stats.total_seconds;
    if (result.status == manthan::core::SynthesisStatus::kRealizable &&
        manthan::dqbf::check_certificate(instance.formula, manager,
                                         result.vector)
                .status == manthan::dqbf::CertificateStatus::kValid) {
      ++outcome.solved;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::vector<manthan::workloads::Instance> suite;
  for (const auto& instance : manthan::bench::bench_suite()) {
    if (instance.family == "pec") suite.push_back(instance);
  }
  std::cout << "== Ablation 3: unique-definition extraction on/off ==\n";
  std::cout << "slice: " << suite.size()
            << " partial-equivalence instances\n\n";

  const Outcome with_unique = evaluate(true, suite);
  const Outcome without_unique = evaluate(false, suite);
  const auto row = [](const char* name, const Outcome& o) {
    std::cout << name << ": solved=" << o.solved
              << " extracted=" << o.total_defined
              << " counterexamples=" << o.total_cex << " time="
              << o.total_seconds << "s\n";
  };
  row("with extraction   ", with_unique);
  row("without extraction", without_unique);
  return 0;
}
