// Core synthesis-pipeline micro-benchmark: per-round verify latency and
// whole-run verify/repair throughput of the persistent incremental
// pipeline against the from-scratch re-encode oracle
// (Manthan3Options::incremental = false — the pre-refactor *cost
// structure*: fresh solvers and full re-encoding per round; seeding now
// flows through derive_seed streams on both sides), the incremental
// MaxSAT round against a fresh Fu-Malik solver per counterexample, and
// candidate-learning scaling across scheduler workers.
//
// The headline series is BM_Pipeline*: the same multi-round planted/pec
// instances run through both pipelines — the incremental one re-encodes
// only repaired cones and keeps all solver state warm, so its per-round
// cost is O(changed cones) instead of O(formula). The committed
// BENCH_core.json snapshot shows ≥2x end-to-end on every multi-round
// instance (7-9x on the counterexample-heavy ones).
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/incremental_refutation.hpp"
#include "maxsat/maxsat.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using manthan::core::Manthan3;
using manthan::core::Manthan3Options;
using manthan::core::SynthesisResult;

double host_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1.0 : static_cast<double>(n);
}

/// Nested-dependency planted instance that drives a long verify/repair
/// loop (hundreds of counterexamples at the capped budget).
manthan::dqbf::DqbfFormula multi_round_planted() {
  manthan::workloads::PlantedParams params;
  params.num_universals = 12;
  params.num_existentials = 6;
  params.dep_size = 4;
  params.function_gates = 6;
  params.num_clauses = 80;
  params.seed = 7;
  params.nested_deps = true;
  params.dep_size_max = 10;
  return manthan::workloads::gen_planted(params);
}

/// Partial-equivalence-checking instance: repair-dominated (dozens of
/// G_k queries and MaxSAT rounds per counterexample).
manthan::dqbf::DqbfFormula repair_heavy_pec() {
  return manthan::workloads::gen_pec({10, 4, 3, 4, 40, 3});
}

void run_pipeline(benchmark::State& state,
                  const manthan::dqbf::DqbfFormula& formula,
                  bool incremental) {
  SynthesisResult last;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    Manthan3Options options;
    options.time_limit_seconds = 120.0;
    options.max_counterexamples = 300;
    options.incremental = incremental;
    options.seed = 42;
    last = Manthan3(options).synthesize(formula, manager);
    benchmark::DoNotOptimize(last.status);
  }
  state.counters["counterexamples"] =
      static_cast<double>(last.stats.counterexamples);
  state.counters["repairs"] = static_cast<double>(last.stats.repairs);
  state.counters["cones_reused"] =
      static_cast<double>(last.stats.cones_reused);
  state.counters["activations_retired"] =
      static_cast<double>(last.stats.activations_retired);
}

void BM_PipelineIncrementalPlanted(benchmark::State& state) {
  const auto f = multi_round_planted();
  run_pipeline(state, f, /*incremental=*/true);
}
BENCHMARK(BM_PipelineIncrementalPlanted)->Unit(benchmark::kMillisecond);

void BM_PipelineRebuildPlanted(benchmark::State& state) {
  const auto f = multi_round_planted();
  run_pipeline(state, f, /*incremental=*/false);
}
BENCHMARK(BM_PipelineRebuildPlanted)->Unit(benchmark::kMillisecond);

void BM_PipelineIncrementalPec(benchmark::State& state) {
  const auto f = repair_heavy_pec();
  run_pipeline(state, f, /*incremental=*/true);
}
BENCHMARK(BM_PipelineIncrementalPec)->Unit(benchmark::kMillisecond);

void BM_PipelineRebuildPec(benchmark::State& state) {
  const auto f = repair_heavy_pec();
  run_pipeline(state, f, /*incremental=*/false);
}
BENCHMARK(BM_PipelineRebuildPec)->Unit(benchmark::kMillisecond);

// --- isolated verify-round latency -----------------------------------------
// A fixed repair-like mutation sweep over candidate vectors, verified
// either through the persistent IncrementalRefutation or by re-encoding
// build_refutation_cnf into a fresh solver every round.

struct MutationSweep {
  manthan::dqbf::DqbfFormula formula;
  manthan::aig::Aig manager;
  std::vector<manthan::dqbf::HenkinVector> rounds;
};

MutationSweep make_sweep(std::size_t num_rounds) {
  MutationSweep sweep;
  sweep.formula = multi_round_planted();
  manthan::util::Rng rng(13);
  const std::size_t m = sweep.formula.num_existentials();
  manthan::dqbf::HenkinVector candidate;
  candidate.functions.assign(m, manthan::aig::kFalseRef);
  for (std::size_t r = 0; r < num_rounds; ++r) {
    sweep.rounds.push_back(candidate);
    const std::size_t k = rng.next_below(m);
    const auto& deps = sweep.formula.existentials()[k].deps;
    manthan::aig::Ref cube = manthan::aig::kTrueRef;
    for (const manthan::cnf::Var x : deps) {
      if (rng.flip()) continue;
      manthan::aig::Ref in = sweep.manager.input(x);
      if (rng.flip()) in = manthan::aig::ref_not(in);
      cube = sweep.manager.and_gate(cube, in);
    }
    candidate.functions[k] =
        rng.flip()
            ? sweep.manager.and_gate(candidate.functions[k],
                                     manthan::aig::ref_not(cube))
            : sweep.manager.or_gate(candidate.functions[k], cube);
  }
  return sweep;
}

void BM_VerifyRoundsIncremental(benchmark::State& state) {
  const MutationSweep sweep = make_sweep(64);
  for (auto _ : state) {
    manthan::dqbf::IncrementalRefutation verifier(sweep.formula,
                                                  sweep.manager);
    for (const auto& candidate : sweep.rounds) {
      benchmark::DoNotOptimize(verifier.check(candidate));
    }
  }
  state.counters["rounds"] = static_cast<double>(sweep.rounds.size());
}
BENCHMARK(BM_VerifyRoundsIncremental)->Unit(benchmark::kMillisecond);

void BM_VerifyRoundsRebuild(benchmark::State& state) {
  const MutationSweep sweep = make_sweep(64);
  for (auto _ : state) {
    for (const auto& candidate : sweep.rounds) {
      const manthan::cnf::CnfFormula refutation =
          manthan::dqbf::build_refutation_cnf(sweep.formula, sweep.manager,
                                              candidate);
      manthan::sat::Solver solver;
      if (solver.add_formula(refutation)) {
        benchmark::DoNotOptimize(solver.solve());
      }
    }
  }
  state.counters["rounds"] = static_cast<double>(sweep.rounds.size());
}
BENCHMARK(BM_VerifyRoundsRebuild)->Unit(benchmark::kMillisecond);

// --- MaxSAT round latency ---------------------------------------------------
// The repair loop's FindCandi query: φ ∧ X-units hard, Y-units soft,
// driven R rounds with varying polarities — incremental activation-scoped
// rounds on one warm solver vs. a fresh Fu-Malik solver per round.

void BM_MaxSatRoundsIncremental(benchmark::State& state) {
  const auto formula = multi_round_planted();
  const auto& matrix = formula.matrix();
  for (auto _ : state) {
    manthan::sat::Solver shared;
    shared.add_formula(matrix);
    manthan::maxsat::IncrementalMaxSat inc(shared);
    manthan::util::Rng rng(5);
    for (int round = 0; round < 32; ++round) {
      std::vector<manthan::cnf::Lit> hard;
      for (const manthan::cnf::Var x : formula.universals()) {
        hard.push_back(manthan::cnf::Lit(x, rng.flip()));
      }
      std::vector<manthan::cnf::Lit> soft;
      for (const auto& e : formula.existentials()) {
        soft.push_back(manthan::cnf::Lit(e.var, rng.flip()));
      }
      benchmark::DoNotOptimize(inc.solve_round(hard, soft));
    }
  }
}
BENCHMARK(BM_MaxSatRoundsIncremental)->Unit(benchmark::kMillisecond);

void BM_MaxSatRoundsRebuild(benchmark::State& state) {
  const auto formula = multi_round_planted();
  const auto& matrix = formula.matrix();
  for (auto _ : state) {
    manthan::util::Rng rng(5);
    for (int round = 0; round < 32; ++round) {
      manthan::maxsat::MaxSatSolver fresh;
      fresh.add_hard_formula(matrix);
      for (const manthan::cnf::Var x : formula.universals()) {
        fresh.add_hard({manthan::cnf::Lit(x, rng.flip())});
      }
      for (const auto& e : formula.existentials()) {
        fresh.add_soft({manthan::cnf::Lit(e.var, rng.flip())});
      }
      benchmark::DoNotOptimize(fresh.solve());
    }
  }
}
BENCHMARK(BM_MaxSatRoundsRebuild)->Unit(benchmark::kMillisecond);

// --- parallel candidate learning --------------------------------------------
// Learning-dominated instance (many existentials, verify passes quickly):
// decision-tree fitting fans across the scheduler; results are identical
// at every worker count, so only wall-clock moves. CPU-bound — the
// speedup follows physical cores (`cores` counter), as with the engine
// benchmarks.

void BM_LearnWorkers(benchmark::State& state) {
  manthan::workloads::PlantedParams params;
  params.num_universals = 20;
  params.num_existentials = 16;
  params.dep_size = 10;
  params.function_gates = 6;
  params.num_clauses = 120;
  params.seed = 9;
  params.xor_functions = false;
  const auto formula = manthan::workloads::gen_planted(params);
  SynthesisResult last;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    Manthan3Options options;
    options.time_limit_seconds = 120.0;
    options.learn_workers = static_cast<std::size_t>(state.range(0));
    options.sampler.num_samples = 4096;
    options.seed = 42;
    last = Manthan3(options).synthesize(formula, manager);
    benchmark::DoNotOptimize(last.status);
  }
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["cores"] = host_cores();
  state.counters["learning_ms"] = last.stats.learning_seconds * 1e3;
}
BENCHMARK(BM_LearnWorkers)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
