// Core synthesis-pipeline micro-benchmark: per-round verify latency and
// whole-run verify/repair throughput of the persistent incremental
// pipeline against the from-scratch re-encode oracle
// (Manthan3Options::incremental = false — the pre-refactor *cost
// structure*: fresh solvers and full re-encoding per round; seeding now
// flows through derive_seed streams on both sides), the incremental
// MaxSAT round against a fresh Fu-Malik solver per counterexample, and
// candidate-learning scaling across scheduler workers.
//
// The headline series is BM_Pipeline*: the same multi-round planted/pec
// instances run through both pipelines — the incremental one re-encodes
// only repaired cones and keeps all solver state warm, so its per-round
// cost is O(changed cones) instead of O(formula). The committed
// BENCH_core.json snapshot shows ≥2x end-to-end on every multi-round
// instance (7-9x on the counterexample-heavy ones).
#include <benchmark/benchmark.h>

#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_common.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/incremental_refutation.hpp"
#include "maxsat/maxsat.hpp"
#include "sampler/sampler.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using manthan::core::Manthan3;
using manthan::core::Manthan3Options;
using manthan::core::SynthesisResult;

double host_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1.0 : static_cast<double>(n);
}

/// Nested-dependency planted instance that drives a long verify/repair
/// loop (hundreds of counterexamples at the capped budget).
manthan::dqbf::DqbfFormula multi_round_planted() {
  manthan::workloads::PlantedParams params;
  params.num_universals = 12;
  params.num_existentials = 6;
  params.dep_size = 4;
  params.function_gates = 6;
  params.num_clauses = 80;
  params.seed = 7;
  params.nested_deps = true;
  params.dep_size_max = 10;
  return manthan::workloads::gen_planted(params);
}

/// Partial-equivalence-checking instance: repair-dominated (dozens of
/// G_k queries and MaxSAT rounds per counterexample).
manthan::dqbf::DqbfFormula repair_heavy_pec() {
  return manthan::workloads::gen_pec({10, 4, 3, 4, 40, 3});
}

void run_pipeline(benchmark::State& state,
                  const manthan::dqbf::DqbfFormula& formula,
                  bool incremental) {
  SynthesisResult last;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    Manthan3Options options;
    options.time_limit_seconds = 120.0;
    options.max_counterexamples = 300;
    options.incremental = incremental;
    // Pin the PR-5 front end off: these benches exist to compare the
    // incremental vs re-encode *verify/repair* machinery, and under the
    // enumerating sampler + reuse defaults the planted instance certifies
    // in round 0 — the comparison would be vacuous (the counterexamples
    // counter guards this).
    options.sampler.enumerate = false;
    options.sample_reuse = false;
    options.seed = 42;
    last = Manthan3(options).synthesize(formula, manager);
    benchmark::DoNotOptimize(last.status);
  }
  state.counters["counterexamples"] =
      static_cast<double>(last.stats.counterexamples);
  state.counters["repairs"] = static_cast<double>(last.stats.repairs);
  state.counters["cones_reused"] =
      static_cast<double>(last.stats.cones_reused);
  state.counters["activations_retired"] =
      static_cast<double>(last.stats.activations_retired);
  state.counters["verify_arena_bytes"] =
      static_cast<double>(last.stats.verify_arena_bytes);
  state.counters["sample_matrix_bytes"] =
      static_cast<double>(last.stats.sample_matrix_bytes);
  manthan::bench::report_memory_counters(state);
  manthan::bench::report_simd_tier(state);
}

void BM_PipelineIncrementalPlanted(benchmark::State& state) {
  const auto f = multi_round_planted();
  run_pipeline(state, f, /*incremental=*/true);
}
BENCHMARK(BM_PipelineIncrementalPlanted)->Unit(benchmark::kMillisecond);

void BM_PipelineRebuildPlanted(benchmark::State& state) {
  const auto f = multi_round_planted();
  run_pipeline(state, f, /*incremental=*/false);
}
BENCHMARK(BM_PipelineRebuildPlanted)->Unit(benchmark::kMillisecond);

void BM_PipelineIncrementalPec(benchmark::State& state) {
  const auto f = repair_heavy_pec();
  run_pipeline(state, f, /*incremental=*/true);
}
BENCHMARK(BM_PipelineIncrementalPec)->Unit(benchmark::kMillisecond);

void BM_PipelineRebuildPec(benchmark::State& state) {
  const auto f = repair_heavy_pec();
  run_pipeline(state, f, /*incremental=*/false);
}
BENCHMARK(BM_PipelineRebuildPec)->Unit(benchmark::kMillisecond);

// --- isolated verify-round latency -----------------------------------------
// A fixed repair-like mutation sweep over candidate vectors, verified
// either through the persistent IncrementalRefutation or by re-encoding
// build_refutation_cnf into a fresh solver every round.

struct MutationSweep {
  manthan::dqbf::DqbfFormula formula;
  manthan::aig::Aig manager;
  std::vector<manthan::dqbf::HenkinVector> rounds;
};

MutationSweep make_sweep(std::size_t num_rounds) {
  MutationSweep sweep;
  sweep.formula = multi_round_planted();
  manthan::util::Rng rng(13);
  const std::size_t m = sweep.formula.num_existentials();
  manthan::dqbf::HenkinVector candidate;
  candidate.functions.assign(m, manthan::aig::kFalseRef);
  for (std::size_t r = 0; r < num_rounds; ++r) {
    sweep.rounds.push_back(candidate);
    const std::size_t k = rng.next_below(m);
    const auto& deps = sweep.formula.existentials()[k].deps;
    manthan::aig::Ref cube = manthan::aig::kTrueRef;
    for (const manthan::cnf::Var x : deps) {
      if (rng.flip()) continue;
      manthan::aig::Ref in = sweep.manager.input(x);
      if (rng.flip()) in = manthan::aig::ref_not(in);
      cube = sweep.manager.and_gate(cube, in);
    }
    candidate.functions[k] =
        rng.flip()
            ? sweep.manager.and_gate(candidate.functions[k],
                                     manthan::aig::ref_not(cube))
            : sweep.manager.or_gate(candidate.functions[k], cube);
  }
  return sweep;
}

void BM_VerifyRoundsIncremental(benchmark::State& state) {
  const MutationSweep sweep = make_sweep(64);
  for (auto _ : state) {
    manthan::dqbf::IncrementalRefutation verifier(sweep.formula,
                                                  sweep.manager);
    for (const auto& candidate : sweep.rounds) {
      benchmark::DoNotOptimize(verifier.check(candidate));
    }
  }
  state.counters["rounds"] = static_cast<double>(sweep.rounds.size());
}
BENCHMARK(BM_VerifyRoundsIncremental)->Unit(benchmark::kMillisecond);

void BM_VerifyRoundsRebuild(benchmark::State& state) {
  const MutationSweep sweep = make_sweep(64);
  for (auto _ : state) {
    for (const auto& candidate : sweep.rounds) {
      const manthan::cnf::CnfFormula refutation =
          manthan::dqbf::build_refutation_cnf(sweep.formula, sweep.manager,
                                              candidate);
      manthan::sat::Solver solver;
      if (solver.add_formula(refutation)) {
        benchmark::DoNotOptimize(solver.solve());
      }
    }
  }
  state.counters["rounds"] = static_cast<double>(sweep.rounds.size());
}
BENCHMARK(BM_VerifyRoundsRebuild)->Unit(benchmark::kMillisecond);

// --- MaxSAT round latency ---------------------------------------------------
// The repair loop's FindCandi query: φ ∧ X-units hard, Y-units soft,
// driven R rounds with varying polarities — incremental activation-scoped
// rounds on one warm solver vs. a fresh Fu-Malik solver per round.

void BM_MaxSatRoundsIncremental(benchmark::State& state) {
  const auto formula = multi_round_planted();
  const auto& matrix = formula.matrix();
  for (auto _ : state) {
    manthan::sat::Solver shared;
    shared.add_formula(matrix);
    manthan::maxsat::IncrementalMaxSat inc(shared);
    manthan::util::Rng rng(5);
    for (int round = 0; round < 32; ++round) {
      std::vector<manthan::cnf::Lit> hard;
      for (const manthan::cnf::Var x : formula.universals()) {
        hard.push_back(manthan::cnf::Lit(x, rng.flip()));
      }
      std::vector<manthan::cnf::Lit> soft;
      for (const auto& e : formula.existentials()) {
        soft.push_back(manthan::cnf::Lit(e.var, rng.flip()));
      }
      benchmark::DoNotOptimize(inc.solve_round(hard, soft));
    }
  }
}
BENCHMARK(BM_MaxSatRoundsIncremental)->Unit(benchmark::kMillisecond);

void BM_MaxSatRoundsRebuild(benchmark::State& state) {
  const auto formula = multi_round_planted();
  const auto& matrix = formula.matrix();
  for (auto _ : state) {
    manthan::util::Rng rng(5);
    for (int round = 0; round < 32; ++round) {
      manthan::maxsat::MaxSatSolver fresh;
      fresh.add_hard_formula(matrix);
      for (const manthan::cnf::Var x : formula.universals()) {
        fresh.add_hard({manthan::cnf::Lit(x, rng.flip())});
      }
      for (const auto& e : formula.existentials()) {
        fresh.add_soft({manthan::cnf::Lit(e.var, rng.flip())});
      }
      benchmark::DoNotOptimize(fresh.solve());
    }
  }
}
BENCHMARK(BM_MaxSatRoundsRebuild)->Unit(benchmark::kMillisecond);

// --- parallel candidate learning --------------------------------------------
// Learning-dominated instance (many existentials, verify passes quickly):
// decision-tree fitting fans across the scheduler; results are identical
// at every worker count, so only wall-clock moves. CPU-bound — the
// speedup follows physical cores (`cores` counter), as with the engine
// benchmarks.

// --- bit-packed sampling + learning front end --------------------------------
// The PR-5 data path: enumerating solver session -> packed SampleMatrix ->
// popcount decision trees, against the pre-PR path (one full solve() per
// model, row-wise vector<bool> learning). BM_Sampling* isolates the model
// harvest (samples/sec); BM_SampleLearnPhase* times the whole front half
// of Algorithm 1 (GetSamples + CandidateSkF) on a learning-dominated
// instance through Manthan3 itself.

manthan::dqbf::DqbfFormula learning_heavy() {
  manthan::workloads::PlantedParams params;
  params.num_universals = 20;
  params.num_existentials = 16;
  params.dep_size = 10;
  params.function_gates = 6;
  params.num_clauses = 120;
  params.seed = 9;
  params.xor_functions = false;
  return manthan::workloads::gen_planted(params);
}

constexpr std::size_t kSampleBudget = 4096;

std::vector<manthan::cnf::Var> existential_vars(
    const manthan::dqbf::DqbfFormula& formula) {
  std::vector<manthan::cnf::Var> y_vars;
  for (const auto& e : formula.existentials()) y_vars.push_back(e.var);
  return y_vars;
}

/// The pre-PR GetSamples, verbatim: one full solve() per model on a
/// probe + biased-main solver pair, duplicate detection through an
/// unordered_set<vector<bool>> of whole models, results accumulated as
/// vector<Assignment> rows. This is the benchmarked baseline for the
/// packed front end — not the in-library `enumerate = false` oracle,
/// which already benefits from fingerprint dedup and packed storage.
std::vector<manthan::cnf::Assignment> sample_pre_pr(
    const manthan::cnf::CnfFormula& formula,
    const std::vector<manthan::cnf::Var>& bias_vars, std::uint64_t seed) {
  std::vector<manthan::cnf::Assignment> samples;
  std::unordered_set<std::vector<bool>> seen;
  const auto draw = [&](manthan::sat::Solver& solver, std::size_t count) {
    std::size_t duplicates = 0;
    const std::size_t max_duplicates = 16 + 4 * count;
    while (count > 0) {
      if (solver.solve() != manthan::sat::Result::kSat) break;
      if (seen.insert(solver.model().bits()).second) {
        samples.push_back(solver.model());
        --count;
      } else if (++duplicates >= max_duplicates) {
        break;
      }
    }
  };
  manthan::sat::SolverOptions probe_options;
  probe_options.random_polarity = true;
  probe_options.random_branch_freq = 0.2;
  probe_options.seed = seed;
  manthan::sat::Solver probe_solver(probe_options);
  if (!probe_solver.add_formula(formula)) return {};
  draw(probe_solver, std::min<std::size_t>(64, kSampleBudget));
  if (samples.empty() || samples.size() >= kSampleBudget) return samples;
  std::vector<double> bias(static_cast<std::size_t>(formula.num_vars()),
                           0.5);
  for (const manthan::cnf::Var v : bias_vars) {
    std::size_t trues = 0;
    for (const auto& a : samples) {
      if (a.value(v)) ++trues;
    }
    const double fraction =
        static_cast<double>(trues) / static_cast<double>(samples.size());
    if (fraction >= 0.65) {
      bias[static_cast<std::size_t>(v)] = 0.9;
    } else if (fraction <= 0.35) {
      bias[static_cast<std::size_t>(v)] = 0.1;
    }
  }
  manthan::sat::SolverOptions main_options = probe_options;
  main_options.seed = seed ^ 0x5deece66dULL;
  main_options.polarity_bias = bias;
  manthan::sat::Solver main_solver(main_options);
  if (!main_solver.add_formula(formula)) return samples;
  draw(main_solver, kSampleBudget - samples.size());
  return samples;
}

void BM_SamplingEnumerate(benchmark::State& state) {
  const auto formula = learning_heavy();
  const auto y_vars = existential_vars(formula);
  std::size_t samples = 0;
  for (auto _ : state) {
    manthan::sampler::SamplerOptions options;
    options.num_samples = kSampleBudget;
    options.seed = 42;
    manthan::sampler::Sampler sampler(options);
    samples = sampler.sample_packed(formula.matrix(), y_vars).num_samples();
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples));
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_SamplingEnumerate)->Unit(benchmark::kMillisecond);

void BM_SamplingSolvePerModelPrePr(benchmark::State& state) {
  const auto formula = learning_heavy();
  const auto y_vars = existential_vars(formula);
  std::size_t samples = 0;
  for (auto _ : state) {
    samples = sample_pre_pr(formula.matrix(), y_vars, 42).size();
    benchmark::DoNotOptimize(samples);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(samples));
  state.counters["samples"] = static_cast<double>(samples);
}
BENCHMARK(BM_SamplingSolvePerModelPrePr)->Unit(benchmark::kMillisecond);

// Whole front half of Algorithm 1 (GetSamples + CandidateSkF), isolated:
// per-existential features are the Henkin dependencies plus every earlier
// existential, as in Manthan3's pre-committed feature sets.

void BM_SampleLearnPhasePacked(benchmark::State& state) {
  const auto formula = learning_heavy();
  const auto y_vars = existential_vars(formula);
  for (auto _ : state) {
    manthan::sampler::SamplerOptions options;
    options.num_samples = kSampleBudget;
    options.seed = 42;
    manthan::sampler::Sampler sampler(options);
    const manthan::cnf::SampleMatrix samples =
        sampler.sample_packed(formula.matrix(), y_vars);
    for (std::size_t i = 0; i < formula.num_existentials(); ++i) {
      const auto& e = formula.existentials()[i];
      std::vector<manthan::cnf::Var> features(e.deps.begin(), e.deps.end());
      for (std::size_t j = 0; j < i; ++j) features.push_back(y_vars[j]);
      manthan::dtree::DtreeOptions dt;
      dt.seed = manthan::util::derive_seed(42, 0x4c4541524eULL, i);
      benchmark::DoNotOptimize(manthan::dtree::DecisionTree::fit(
          samples, features, e.var, dt));
    }
  }
}
BENCHMARK(BM_SampleLearnPhasePacked)->Unit(benchmark::kMillisecond);

void BM_SampleLearnPhasePrePr(benchmark::State& state) {
  const auto formula = learning_heavy();
  const auto y_vars = existential_vars(formula);
  for (auto _ : state) {
    const std::vector<manthan::cnf::Assignment> samples =
        sample_pre_pr(formula.matrix(), y_vars, 42);
    for (std::size_t i = 0; i < formula.num_existentials(); ++i) {
      const auto& e = formula.existentials()[i];
      std::vector<manthan::cnf::Var> features(e.deps.begin(), e.deps.end());
      for (std::size_t j = 0; j < i; ++j) features.push_back(y_vars[j]);
      std::vector<std::vector<bool>> rows;
      rows.reserve(samples.size());
      std::vector<bool> labels;
      labels.reserve(samples.size());
      for (const auto& s : samples) {
        std::vector<bool> row;
        row.reserve(features.size());
        for (const manthan::cnf::Var v : features) row.push_back(s.value(v));
        rows.push_back(std::move(row));
        labels.push_back(s.value(e.var));
      }
      manthan::dtree::DtreeOptions dt;
      dt.seed = manthan::util::derive_seed(42, 0x4c4541524eULL, i);
      benchmark::DoNotOptimize(
          manthan::dtree::DecisionTree::fit(rows, labels, dt));
    }
  }
}
BENCHMARK(BM_SampleLearnPhasePrePr)->Unit(benchmark::kMillisecond);

// --- cross-round sample reuse ------------------------------------------------
// Counterexample-heavy nested-dependency family (repair-hostile: the
// core-guided patcher alone burns its whole counterexample budget here):
// with reuse on, repair counterexamples and MaxSAT-corrected σ's feed
// refits, so the engine escapes with a fraction of the repair iterations
// — and typically actually certifies (`realized` counter).

manthan::dqbf::DqbfFormula repair_hostile_planted() {
  manthan::workloads::PlantedParams params;
  params.num_universals = 16;
  params.num_existentials = 6;
  params.dep_size = 5;
  params.function_gates = 5;
  params.num_clauses = 180;
  params.seed = 3;
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 12;
  return manthan::workloads::gen_planted(params);
}

void run_reuse(benchmark::State& state, bool reuse) {
  const auto formula = repair_hostile_planted();
  SynthesisResult last;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    Manthan3Options options;
    options.time_limit_seconds = 120.0;
    options.max_counterexamples = 300;
    options.sample_reuse = reuse;
    options.seed = 42;
    last = Manthan3(options).synthesize(formula, manager);
    benchmark::DoNotOptimize(last.status);
  }
  state.counters["counterexamples"] =
      static_cast<double>(last.stats.counterexamples);
  state.counters["repair_checks"] =
      static_cast<double>(last.stats.repair_checks);
  state.counters["repairs"] = static_cast<double>(last.stats.repairs);
  state.counters["refit_rounds"] =
      static_cast<double>(last.stats.refit_rounds);
  state.counters["samples_appended"] =
      static_cast<double>(last.stats.samples_appended);
  state.counters["realized"] =
      last.status == manthan::core::SynthesisStatus::kRealizable ? 1.0 : 0.0;
}

void BM_ReuseRefitOn(benchmark::State& state) {
  run_reuse(state, /*reuse=*/true);
}
BENCHMARK(BM_ReuseRefitOn)->Unit(benchmark::kMillisecond);

void BM_ReuseRefitOff(benchmark::State& state) {
  run_reuse(state, /*reuse=*/false);
}
BENCHMARK(BM_ReuseRefitOff)->Unit(benchmark::kMillisecond);

void BM_LearnWorkers(benchmark::State& state) {
  manthan::workloads::PlantedParams params;
  params.num_universals = 20;
  params.num_existentials = 16;
  params.dep_size = 10;
  params.function_gates = 6;
  params.num_clauses = 120;
  params.seed = 9;
  params.xor_functions = false;
  const auto formula = manthan::workloads::gen_planted(params);
  SynthesisResult last;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    Manthan3Options options;
    options.time_limit_seconds = 120.0;
    options.learn_workers = static_cast<std::size_t>(state.range(0));
    options.sampler.num_samples = 4096;
    options.seed = 42;
    last = Manthan3(options).synthesize(formula, manager);
    benchmark::DoNotOptimize(last.status);
  }
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["cores"] = host_cores();
  state.counters["learning_ms"] = last.stats.learning_seconds * 1e3;
}
BENCHMARK(BM_LearnWorkers)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
