// Ablation 4: HQSpre-style preprocessing per engine.
//
// The paper (§6, tool configuration) reports that HQS2 benefits from the
// HQSpre preprocessor while Pedant degrades with it and Manthan3 runs
// without it. We measure all three engines with and without HqspreLite on
// the standard suite: solved counts and total time.
#include <iostream>

#include "bench_common.hpp"
#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "preprocess/hqspre_lite.hpp"
#include "util/timer.hpp"

namespace {

using manthan::core::SynthesisResult;
using manthan::core::SynthesisStatus;

struct Outcome {
  std::size_t solved = 0;
  std::size_t proven_false = 0;
  double total_seconds = 0.0;
};

SynthesisResult run_engine(int engine, const manthan::dqbf::DqbfFormula& f,
                           manthan::aig::Aig& manager) {
  const double budget = manthan::bench::env_budget();
  switch (engine) {
    case 0: {
      manthan::core::Manthan3Options options;
      options.time_limit_seconds = budget;
      return manthan::core::Manthan3(options).synthesize(f, manager);
    }
    case 1: {
      manthan::baselines::HqsLiteOptions options;
      options.time_limit_seconds = budget;
      return manthan::baselines::HqsLite(options).synthesize(f, manager);
    }
    default: {
      manthan::baselines::PedantLiteOptions options;
      options.time_limit_seconds = budget;
      return manthan::baselines::PedantLite(options).synthesize(f, manager);
    }
  }
}

/// Every other instance: this ablation runs 6 full engine sweeps, so it
/// works on a stride-2 sample of the suite to stay affordable.
std::vector<manthan::workloads::Instance> sampled_suite() {
  std::vector<manthan::workloads::Instance> sample;
  const auto& suite = manthan::bench::bench_suite();
  for (std::size_t i = 0; i < suite.size(); i += 2) {
    sample.push_back(suite[i]);
  }
  return sample;
}

Outcome evaluate(int engine, bool preprocess,
                 const std::vector<manthan::workloads::Instance>& suite) {
  Outcome outcome;
  manthan::preprocess::HqspreLite preprocessor;
  for (const auto& instance : suite) {
    manthan::util::Timer timer;
    manthan::aig::Aig manager;
    if (preprocess) {
      const auto pre = preprocessor.run(instance.formula);
      if (pre.proven_false) {
        ++outcome.proven_false;
        outcome.total_seconds += timer.seconds();
        continue;
      }
      const SynthesisResult result =
          run_engine(engine, pre.simplified, manager);
      outcome.total_seconds += timer.seconds();
      if (result.status == SynthesisStatus::kRealizable) {
        const auto full = manthan::preprocess::HqspreLite::reconstruct(
            instance.formula, pre, result.vector.functions);
        manthan::dqbf::HenkinVector vector{full};
        if (manthan::dqbf::check_certificate(instance.formula, manager,
                                             vector)
                .status == manthan::dqbf::CertificateStatus::kValid) {
          ++outcome.solved;
        }
      } else if (result.status == SynthesisStatus::kUnrealizable) {
        ++outcome.proven_false;
      }
    } else {
      const SynthesisResult result =
          run_engine(engine, instance.formula, manager);
      outcome.total_seconds += timer.seconds();
      if (result.status == SynthesisStatus::kRealizable &&
          manthan::dqbf::check_certificate(instance.formula, manager,
                                           result.vector)
                  .status == manthan::dqbf::CertificateStatus::kValid) {
        ++outcome.solved;
      } else if (result.status == SynthesisStatus::kUnrealizable) {
        ++outcome.proven_false;
      }
    }
  }
  return outcome;
}

}  // namespace

int main() {
  const std::vector<manthan::workloads::Instance> suite = sampled_suite();
  std::cout << "== Ablation 4: HqspreLite preprocessing per engine ==\n";
  std::cout << "slice: " << suite.size()
            << " instances (stride-2 sample), budget "
            << manthan::bench::env_budget() << " s\n\n";
  const char* names[3] = {"Manthan3  ", "HqsLite   ", "PedantLite"};
  for (int engine = 0; engine < 3; ++engine) {
    const Outcome raw = evaluate(engine, false, suite);
    const Outcome pre = evaluate(engine, true, suite);
    std::cout << names[engine] << " raw:  solved=" << raw.solved
              << " false=" << raw.proven_false << " time="
              << raw.total_seconds << "s\n";
    std::cout << names[engine] << " pre:  solved=" << pre.solved
              << " false=" << pre.proven_false << " time="
              << pre.total_seconds << "s\n";
  }
  std::cout << "\npaper shape: preprocessing should help the elimination "
               "engine most (smaller matrices) and help the data-driven "
               "engines less.\n";
  return 0;
}
