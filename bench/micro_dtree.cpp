// Component micro-benchmark: decision-tree fitting and AIG extraction at
// Manthan3-realistic data shapes (hundreds to thousands of samples, tens
// of features).
//
// The headline series is BM_DtreeFitPacked vs BM_DtreeFitRowwise: the
// same data fit through the popcount path over a bit-packed
// cnf::SampleMatrix and through the row-wise std::vector<bool> oracle.
// The trees are bit-identical (asserted at startup of each run); only the
// split-counting machinery differs, so the ratio is the pure win of
// counting 64 samples per popcount instead of one per bit read.
#include <benchmark/benchmark.h>

#include "aig/aig.hpp"
#include "cnf/sample_matrix.hpp"
#include "dtree/decision_tree.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

using manthan::cnf::SampleMatrix;
using manthan::dtree::DecisionTree;
using manthan::dtree::DtreeOptions;

struct Data {
  std::vector<std::vector<bool>> rows;
  std::vector<bool> labels;
  SampleMatrix matrix{0};
  std::vector<manthan::cnf::Var> feature_vars;
  manthan::cnf::Var label_var = 0;
};

Data make_data(std::size_t samples, std::size_t features,
               std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  Data d;
  // Matrix layout: features at variables [0, features), label at the end.
  d.matrix = SampleMatrix(static_cast<manthan::cnf::Var>(features + 1));
  d.label_var = static_cast<manthan::cnf::Var>(features);
  for (std::size_t f = 0; f < features; ++f) {
    d.feature_vars.push_back(static_cast<manthan::cnf::Var>(f));
  }
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<bool> row;
    for (std::size_t f = 0; f < features; ++f) row.push_back(rng.flip());
    // Label: noisy majority of three features — learnable structure.
    const int votes = static_cast<int>(row[0]) + static_cast<int>(row[1]) +
                      static_cast<int>(row[2]);
    d.labels.push_back(votes >= 2 ? !rng.flip(0.05) : rng.flip(0.05));
    manthan::cnf::Assignment a(features + 1);
    for (std::size_t f = 0; f < features; ++f) {
      a.set(static_cast<manthan::cnf::Var>(f), row[f]);
    }
    a.set(d.label_var, d.labels.back());
    d.matrix.append(a);
    d.rows.push_back(std::move(row));
  }
  return d;
}

void BM_DtreeFitRowwise(benchmark::State& state) {
  const Data d = make_data(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecisionTree::fit(d.rows, d.labels));
  }
  state.counters["samples"] = static_cast<double>(state.range(0));
  state.counters["features"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_DtreeFitRowwise)
    ->Args({200, 8})->Args({500, 16})->Args({1000, 32})->Args({4096, 64});

void BM_DtreeFitPacked(benchmark::State& state) {
  const Data d = make_data(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)), 11);
  // Differential guard: the packed tree must equal the row-wise tree.
  if (DecisionTree::fit(d.matrix, d.feature_vars, d.label_var).nodes() !=
      DecisionTree::fit(d.rows, d.labels).nodes()) {
    state.SkipWithError("packed tree diverged from row-wise oracle");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DecisionTree::fit(d.matrix, d.feature_vars, d.label_var));
  }
  state.counters["samples"] = static_cast<double>(state.range(0));
  state.counters["features"] = static_cast<double>(state.range(1));
  // Dispatch tier of the split-counting kernels (0 scalar / 1 avx2 /
  // 2 avx512): packed-fit numbers from different tiers are not comparable.
  state.counters["simd_tier"] = static_cast<double>(
      static_cast<int>(manthan::util::simd::active_tier()));
}
BENCHMARK(BM_DtreeFitPacked)
    ->Args({200, 8})->Args({500, 16})->Args({1000, 32})->Args({4096, 64});

void BM_SampleMatrixAppend(benchmark::State& state) {
  manthan::util::Rng rng(19);
  const std::size_t vars = 64;
  std::vector<manthan::cnf::Assignment> models;
  for (int i = 0; i < 1024; ++i) {
    manthan::cnf::Assignment a(vars);
    for (std::size_t v = 0; v < vars; ++v) {
      a.set(static_cast<manthan::cnf::Var>(v), rng.flip());
    }
    models.push_back(std::move(a));
  }
  for (auto _ : state) {
    SampleMatrix m(static_cast<manthan::cnf::Var>(vars));
    for (const auto& a : models) m.append(a);
    benchmark::DoNotOptimize(m.num_words());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}
BENCHMARK(BM_SampleMatrixAppend);

void BM_DtreeToAig(benchmark::State& state) {
  const Data d = make_data(500, 16, 13);
  const DecisionTree tree = DecisionTree::fit(d.rows, d.labels);
  for (auto _ : state) {
    manthan::aig::Aig manager;
    std::vector<manthan::aig::Ref> features;
    for (int f = 0; f < 16; ++f) features.push_back(manager.input(f));
    benchmark::DoNotOptimize(tree.to_aig(manager, features));
  }
}
BENCHMARK(BM_DtreeToAig);

void BM_DtreePredict(benchmark::State& state) {
  const Data d = make_data(1000, 16, 17);
  const DecisionTree tree = DecisionTree::fit(d.rows, d.labels);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(d.rows[i++ % d.rows.size()]));
  }
}
BENCHMARK(BM_DtreePredict);

}  // namespace

BENCHMARK_MAIN();
