// Component micro-benchmark: decision-tree fitting and AIG extraction at
// Manthan3-realistic data shapes (hundreds of samples, tens of features).
#include <benchmark/benchmark.h>

#include "aig/aig.hpp"
#include "dtree/decision_tree.hpp"
#include "util/rng.hpp"

namespace {

using manthan::dtree::DecisionTree;
using manthan::dtree::DtreeOptions;

struct Data {
  std::vector<std::vector<bool>> rows;
  std::vector<bool> labels;
};

Data make_data(std::size_t samples, std::size_t features,
               std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  Data d;
  for (std::size_t s = 0; s < samples; ++s) {
    std::vector<bool> row;
    for (std::size_t f = 0; f < features; ++f) row.push_back(rng.flip());
    // Label: noisy majority of three features — learnable structure.
    const int votes = static_cast<int>(row[0]) + static_cast<int>(row[1]) +
                      static_cast<int>(row[2]);
    d.labels.push_back(votes >= 2 ? !rng.flip(0.05) : rng.flip(0.05));
    d.rows.push_back(std::move(row));
  }
  return d;
}

void BM_DtreeFit(benchmark::State& state) {
  const Data d = make_data(static_cast<std::size_t>(state.range(0)),
                           static_cast<std::size_t>(state.range(1)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecisionTree::fit(d.rows, d.labels));
  }
}
BENCHMARK(BM_DtreeFit)->Args({200, 8})->Args({500, 16})->Args({1000, 32});

void BM_DtreeToAig(benchmark::State& state) {
  const Data d = make_data(500, 16, 13);
  const DecisionTree tree = DecisionTree::fit(d.rows, d.labels);
  for (auto _ : state) {
    manthan::aig::Aig manager;
    std::vector<manthan::aig::Ref> features;
    for (int f = 0; f < 16; ++f) features.push_back(manager.input(f));
    benchmark::DoNotOptimize(tree.to_aig(manager, features));
  }
}
BENCHMARK(BM_DtreeToAig);

void BM_DtreePredict(benchmark::State& state) {
  const Data d = make_data(1000, 16, 17);
  const DecisionTree tree = DecisionTree::fit(d.rows, d.labels);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.predict(d.rows[i++ % d.rows.size()]));
  }
}
BENCHMARK(BM_DtreePredict);

}  // namespace

BENCHMARK_MAIN();
