// Parallel execution engine micro-benchmark: scheduler dispatch overhead,
// concurrency (overlap of blocking jobs), parallel suite throughput at
// 1/2/4/8 workers on the planted suite, and the racing portfolio.
//
// The worker-scaling series (BM_ParallelSuite) is the headline number:
// wall-clock per suite as the worker count doubles. Speedup tops out at
// the machine's core count — the `cores` counter records what the host
// actually had, so a 1-core container showing ~1x is expected, not a
// regression; CI's multi-core runners show the real curve.
#include <benchmark/benchmark.h>

#include <chrono>
#include <thread>
#include <vector>

#include "engine/race.hpp"
#include "engine/scheduler.hpp"
#include "portfolio/runner.hpp"
#include "workloads/workloads.hpp"

namespace {

using manthan::engine::EngineKind;
using manthan::engine::Scheduler;
using manthan::portfolio::ParallelOptions;
using manthan::portfolio::RunnerOptions;
using manthan::workloads::Instance;

double host_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1.0 : static_cast<double>(n);
}

/// The planted suite the scaling series runs: nested-dependency planted
/// instances at the 8x4 point — roughly 150 ms of Manthan3 work each
/// (sampling, learning, and a real verify/repair loop), heavy enough
/// that fan-out dominates scheduler overhead by orders of magnitude.
std::vector<Instance> planted_suite(std::size_t count) {
  std::vector<Instance> suite;
  suite.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    manthan::workloads::PlantedParams params;
    params.num_universals = 8;
    params.num_existentials = 4;
    params.dep_size = 3;
    params.function_gates = 5;
    params.num_clauses = 30;
    params.seed = 101 + i;
    params.nested_deps = true;
    params.dep_size_max = 6;
    suite.push_back({"planted_" + std::to_string(i), "planted",
                     manthan::workloads::gen_planted(params)});
  }
  return suite;
}

/// Scheduler dispatch overhead: trivial jobs through one worker.
void BM_SchedulerDispatch(benchmark::State& state) {
  Scheduler pool(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.submit([]() { return 1; }).get());
  }
}
BENCHMARK(BM_SchedulerDispatch);

/// Concurrency of blocking jobs: 16 x 2 ms sleeps on N workers must
/// overlap (~32/N ms wall), independent of the host's core count.
void BM_SchedulerOverlap(benchmark::State& state) {
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Scheduler pool(workers);
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 16; ++i) {
      futures.push_back(pool.submit([]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }));
    }
    for (auto& f : futures) f.get();
  }
  state.counters["workers"] = static_cast<double>(workers);
}
BENCHMARK(BM_SchedulerOverlap)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Headline scaling: the planted suite (8 instances x Manthan3) fanned
/// across 1/2/4/8 workers. CPU-bound: speedup follows physical cores.
void BM_ParallelSuite(benchmark::State& state) {
  const std::vector<Instance> suite = planted_suite(8);
  RunnerOptions options;
  options.per_instance_seconds = 60.0;
  const manthan::portfolio::Runner runner(options);
  const std::vector<EngineKind> engines{EngineKind::kManthan3};
  const ParallelOptions parallel{static_cast<std::size_t>(state.range(0))};
  std::size_t solved = 0;
  for (auto _ : state) {
    const auto records = runner.run_suite(suite, engines, parallel);
    solved = 0;
    for (const auto& r : records) solved += r.solved() ? 1 : 0;
    benchmark::DoNotOptimize(solved);
  }
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["cores"] = host_cores();
  state.counters["solved"] = static_cast<double>(solved);
}
BENCHMARK(BM_ParallelSuite)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Racing portfolio latency on an instance with strong engine asymmetry
/// (HqsLite wins, the others are cancelled) vs. the serial sum.
void BM_RacePortfolio(benchmark::State& state) {
  manthan::workloads::PlantedParams params{16, 6, 5, 5, 180, 3};
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 12;
  const manthan::dqbf::DqbfFormula formula =
      manthan::workloads::gen_planted(params);
  std::size_t cancelled = 0;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    manthan::engine::RaceOptions options;
    options.time_limit_seconds = 120.0;
    const manthan::engine::RaceOutcome outcome =
        manthan::engine::race(formula, manager, options);
    cancelled = 0;
    for (const auto& lane : outcome.lanes) cancelled += lane.cancelled;
    benchmark::DoNotOptimize(outcome.solved());
  }
  state.counters["lanes_cancelled"] = static_cast<double>(cancelled);
  state.counters["cores"] = host_cores();
}
BENCHMARK(BM_RacePortfolio)->UseRealTime()->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
