// Component micro-benchmark: AIG construction, composition, CNF encoding
// and bit-parallel simulation.
#include <benchmark/benchmark.h>

#include "aig/aig.hpp"
#include "aig/aig_cnf.hpp"
#include "aig/aig_sim.hpp"
#include "util/rng.hpp"

namespace {

using manthan::aig::Aig;
using manthan::aig::Ref;

Ref random_cone(Aig& m, int inputs, int gates, std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  std::vector<Ref> pool;
  for (int i = 0; i < inputs; ++i) pool.push_back(m.input(i));
  for (int g = 0; g < gates; ++g) {
    const Ref a = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    const Ref b = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    pool.push_back(m.and_gate(a, b));
  }
  return pool.back();
}

void BM_AigBuild(benchmark::State& state) {
  for (auto _ : state) {
    Aig m;
    benchmark::DoNotOptimize(
        random_cone(m, 16, static_cast<int>(state.range(0)), 3));
  }
}
BENCHMARK(BM_AigBuild)->Arg(100)->Arg(1000)->Arg(5000)->Arg(50000);

void BM_AigStrashHit(benchmark::State& state) {
  // Pure lookup load on the structural-hash table: the cone is built
  // once, then every and_gate call re-resolves an existing node. This is
  // the repair loop's profile — candidates are rebuilt from mostly-shared
  // subcones every round.
  Aig m;
  manthan::util::Rng rng(3);
  std::vector<Ref> pool;
  for (int i = 0; i < 16; ++i) pool.push_back(m.input(i));
  std::vector<std::pair<Ref, Ref>> pairs;
  for (int g = 0; g < static_cast<int>(state.range(0)); ++g) {
    const Ref a = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    const Ref b = pool[rng.next_below(pool.size())] ^
                  static_cast<Ref>(rng.flip());
    pairs.emplace_back(a, b);
    pool.push_back(m.and_gate(a, b));
  }
  for (auto _ : state) {
    Ref acc = 0;
    for (const auto& [a, b] : pairs) acc ^= m.and_gate(a, b);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_AigStrashHit)->Arg(1000)->Arg(50000);

void BM_AigCompose(benchmark::State& state) {
  Aig m;
  const Ref f = random_cone(m, 16, 500, 5);
  const Ref g = random_cone(m, 16, 50, 7);
  std::unordered_map<std::int32_t, Ref> sub{{0, g}, {3, manthan::aig::ref_not(g)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.compose(f, sub));
  }
}
BENCHMARK(BM_AigCompose);

void BM_AigEncodeCnf(benchmark::State& state) {
  Aig m;
  const Ref f = random_cone(m, 16, static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    manthan::cnf::CnfFormula out(16);
    benchmark::DoNotOptimize(manthan::aig::encode_cone(m, f, out));
  }
}
BENCHMARK(BM_AigEncodeCnf)->Arg(200)->Arg(2000);

void BM_AigSimulate64(benchmark::State& state) {
  Aig m;
  const Ref f = random_cone(m, 16, 2000, 11);
  manthan::util::Rng rng(13);
  std::unordered_map<std::int32_t, std::uint64_t> patterns;
  for (int i = 0; i < 16; ++i) patterns[i] = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(manthan::aig::simulate64(m, f, patterns));
  }
}
BENCHMARK(BM_AigSimulate64);

}  // namespace

BENCHMARK_MAIN();
