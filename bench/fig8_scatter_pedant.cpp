// Figure 8: scatter of Manthan3 vs PedantLite.
//
// Paper shape: incomparable tools — each has exclusive solves (points in
// the opposite timeout gutters). Definition-rich instances favour the
// Pedant approach; learnable underconstrained instances favour Manthan3.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& records = manthan::bench::bench_records();
  const double timeout = manthan::bench::timeout_marker();

  const auto points = manthan::portfolio::scatter_points(
      records, {EngineKind::kPedantLite}, {EngineKind::kManthan3}, timeout);

  std::cout << "== Figure 8: Manthan3 vs PedantLite ==\n";
  manthan::portfolio::print_scatter(std::cout, "PedantLite", "Manthan3",
                                    points, timeout);
  return 0;
}
