// Component micro-benchmark: BDD engine throughput — CNF conjunction
// builds, quantification, and composition on structured formulas.
#include <benchmark/benchmark.h>

#include "bdd/bdd.hpp"
#include "cnf/cnf.hpp"
#include "util/rng.hpp"

namespace {

using manthan::bdd::Bdd;
using manthan::bdd::NodeId;
using manthan::cnf::CnfFormula;
using manthan::cnf::Lit;
using manthan::cnf::Var;

CnfFormula chained_constraints(Var n, std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  CnfFormula f(n);
  for (Var v = 0; v + 2 < n; ++v) {
    // (v or v+1 or ~v+2) style local clauses: tractable BDDs.
    f.add_clause({Lit(v, rng.flip()), Lit(v + 1, rng.flip()),
                  Lit(v + 2, rng.flip())});
  }
  return f;
}

void BM_BddFromCnf(benchmark::State& state) {
  const CnfFormula f =
      chained_constraints(static_cast<Var>(state.range(0)), 3);
  for (auto _ : state) {
    Bdd b;
    benchmark::DoNotOptimize(b.from_cnf(f));
  }
}
BENCHMARK(BM_BddFromCnf)->Arg(16)->Arg(32)->Arg(64);

void BM_BddExists(benchmark::State& state) {
  const Var n = static_cast<Var>(state.range(0));
  const CnfFormula f = chained_constraints(n, 5);
  Bdd b;
  const NodeId root = b.from_cnf(f);
  std::vector<std::int32_t> half;
  for (Var v = 0; v < n; v += 2) half.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.exists(root, half));
  }
}
BENCHMARK(BM_BddExists)->Arg(16)->Arg(32)->Arg(64);

void BM_BddCompose(benchmark::State& state) {
  const Var n = static_cast<Var>(state.range(0));
  const CnfFormula f = chained_constraints(n, 7);
  Bdd b;
  const NodeId root = b.from_cnf(f);
  const NodeId g = b.xor_op(b.var_node(1), b.var_node(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.compose(root, 0, g));
  }
}
BENCHMARK(BM_BddCompose)->Arg(16)->Arg(32);

void BM_BddSatCount(benchmark::State& state) {
  const Var n = 32;
  const CnfFormula f = chained_constraints(n, 9);
  Bdd b;
  const NodeId root = b.from_cnf(f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.sat_count(root, static_cast<std::size_t>(n)));
  }
}
BENCHMARK(BM_BddSatCount);

}  // namespace

BENCHMARK_MAIN();
