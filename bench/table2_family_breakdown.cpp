// Table B: per-family breakdown — instance structure metrics and solved
// counts per engine.
//
// Supports the paper's orthogonality narrative quantitatively: the
// elimination engine tracks the non-linear universal count, the
// definition engine tracks unique-definedness-rich families, and Manthan3
// covers the learnable middle.
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "dqbf/stats.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& suite = manthan::bench::bench_suite();
  const auto& records = manthan::bench::bench_records();

  // Aggregate structure per family.
  struct FamilyAgg {
    std::size_t instances = 0;
    manthan::dqbf::InstanceStats sums;
    std::map<EngineKind, std::size_t> solved;
  };
  std::map<std::string, FamilyAgg> families;
  for (const auto& instance : suite) {
    FamilyAgg& agg = families[instance.family];
    ++agg.instances;
    const auto s = manthan::dqbf::compute_stats(instance.formula);
    agg.sums.num_universals += s.num_universals;
    agg.sums.num_existentials += s.num_existentials;
    agg.sums.num_clauses += s.num_clauses;
    agg.sums.nonlinear_universals += s.nonlinear_universals;
    agg.sums.incomparable_pairs += s.incomparable_pairs;
    agg.sums.subset_pairs += s.subset_pairs;
  }
  for (const auto& r : records) {
    if (r.solved()) {
      // Family lookup via the record's own field.
      ++families[r.family].solved[r.engine];
    }
  }

  std::cout << "== Table B: per-family structure and solved counts ==\n";
  std::cout << "family          inst   avg|X|  avg|Y|  avgCls  avgNonlin"
               "  avgIncomp   M3  HQS  PED\n";
  for (const auto& [name, agg] : families) {
    const double n = static_cast<double>(agg.instances);
    std::printf(
        "%-15s %4zu %8.1f %7.1f %7.1f %10.1f %10.1f %4zu %4zu %4zu\n",
        name.c_str(), agg.instances,
        static_cast<double>(agg.sums.num_universals) / n,
        static_cast<double>(agg.sums.num_existentials) / n,
        static_cast<double>(agg.sums.num_clauses) / n,
        static_cast<double>(agg.sums.nonlinear_universals) / n,
        static_cast<double>(agg.sums.incomparable_pairs) / n,
        agg.solved.count(EngineKind::kManthan3)
            ? agg.solved.at(EngineKind::kManthan3)
            : 0,
        agg.solved.count(EngineKind::kHqsLite)
            ? agg.solved.at(EngineKind::kHqsLite)
            : 0,
        agg.solved.count(EngineKind::kPedantLite)
            ? agg.solved.at(EngineKind::kPedantLite)
            : 0);
  }

  std::cout << "\nper-instance structure detail:\n";
  manthan::dqbf::print_stats_header(std::cout);
  for (const auto& instance : suite) {
    manthan::dqbf::print_stats_row(
        std::cout, instance.name,
        manthan::dqbf::compute_stats(instance.formula));
  }
  return 0;
}
