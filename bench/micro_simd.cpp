// Kernel-level micro-benchmark for the util/simd dispatch tiers.
//
// The end-to-end pipeline benches (micro_core) are SAT-dominated, so the
// vector kernels barely move them; this driver measures the kernels in
// isolation, per tier, via kernels_for — the honest per-primitive speedup
// the wider lanes buy on this machine. Unsupported tiers are skipped with
// a visible error so archived runs show what the host could not measure.
//
// Word counts cover the real call sites: 16 words = one simulate_matrix
// block (1024 samples), 64–512 words = split counting over 4k–32k-sample
// matrices.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/aig_sim.hpp"
#include "cnf/sample_matrix.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace {

namespace simd = manthan::util::simd;

simd::AlignedVector<std::uint64_t> random_words(std::size_t n,
                                                std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  simd::AlignedVector<std::uint64_t> words(n);
  for (auto& w : words) w = rng.next();
  return words;
}

simd::Tier tier_arg(benchmark::State& state) {
  return static_cast<simd::Tier>(state.range(0));
}

bool skip_unsupported(benchmark::State& state, simd::Tier tier) {
  if (simd::tier_supported(tier)) return false;
  state.SkipWithError("tier not supported on this CPU");
  return true;
}

void BM_KernelPopcount(benchmark::State& state) {
  const simd::Tier tier = tier_arg(state);
  if (skip_unsupported(state, tier)) return;
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto a = random_words(n, 3);
  const simd::Kernels& k = simd::kernels_for(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(k.popcount(a.data(), n));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 8));
  state.SetLabel(simd::tier_name(tier));
}

void BM_KernelCountSplit(benchmark::State& state) {
  const simd::Tier tier = tier_arg(state);
  if (skip_unsupported(state, tier)) return;
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto a = random_words(n, 5);
  const auto b = random_words(n, 7);
  const auto c = random_words(n, 11);
  const simd::Kernels& k = simd::kernels_for(tier);
  for (auto _ : state) {
    std::size_t hi = 0, hi_pos = 0;
    k.count_split(a.data(), b.data(), c.data(), n, &hi, &hi_pos);
    benchmark::DoNotOptimize(hi + hi_pos);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 24));
  state.SetLabel(simd::tier_name(tier));
}

void BM_KernelCombine(benchmark::State& state) {
  const simd::Tier tier = tier_arg(state);
  if (skip_unsupported(state, tier)) return;
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  const auto a = random_words(n, 13);
  const auto b = random_words(n, 17);
  simd::AlignedVector<std::uint64_t> dst(n);
  const simd::Kernels& k = simd::kernels_for(tier);
  for (auto _ : state) {
    k.combine(dst.data(), a.data(), ~0ULL, b.data(), 0, 0, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * 24));
  state.SetLabel(simd::tier_name(tier));
}

void kernel_args(benchmark::internal::Benchmark* b) {
  for (int tier = 0; tier <= 2; ++tier) {
    for (const int words : {16, 64, 512}) {
      b->Args({tier, words});
    }
  }
}

BENCHMARK(BM_KernelPopcount)->Apply(kernel_args);
BENCHMARK(BM_KernelCountSplit)->Apply(kernel_args);
BENCHMARK(BM_KernelCombine)->Apply(kernel_args);

// Batch simulation of a realistic candidate cone over a large matrix —
// the consumer where the combine kernel dominates (the refit screen).
void BM_SimulateMatrixTiered(benchmark::State& state) {
  const simd::Tier tier = tier_arg(state);
  if (skip_unsupported(state, tier)) return;
  manthan::util::Rng rng(23);
  manthan::aig::Aig manager;
  // Chained cone: each gate combines the running root with a fresh input
  // edge, so structural hashing cannot collapse it — all 300 gates stay in
  // the simulated cone (a free mix of random fanins would constant-fold).
  manthan::aig::Ref root = manager.input(0);
  for (int g = 0; g < 300; ++g) {
    const manthan::aig::Ref x =
        manager.input(static_cast<std::int32_t>(rng.next_below(24))) ^
        static_cast<manthan::aig::Ref>(rng.flip());
    root = manager.and_gate(root ^ static_cast<manthan::aig::Ref>(rng.flip()),
                            x);
  }
  manthan::cnf::SampleMatrix m(24);
  for (int s = 0; s < 16384; ++s) {
    manthan::cnf::Assignment a(24);
    for (manthan::cnf::Var v = 0; v < 24; ++v) a.set(v, rng.flip());
    m.append(a);
  }
  const simd::Tier previous = simd::set_active_tier_for_testing(tier);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manthan::aig::simulate_matrix(manager, root, m));
  }
  simd::set_active_tier_for_testing(previous);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          16384);
  state.SetLabel(simd::tier_name(tier));
}
BENCHMARK(BM_SimulateMatrixTiered)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
