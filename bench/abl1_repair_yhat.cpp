// Ablation 1: the Ŷ constraint in the repair formula G_k (paper §4/§5).
//
// The paper argues that fixing the admissible later-ordered existentials
// Ŷ in G_k is what lets the UNSAT core mention Y features and produce a
// working repair (the y1 <-> x1 xor y2 example). We run Manthan3 with and
// without the constraint on repair-heavy families and report solved
// counts and repair effort.
#include <iostream>

#include "bench_common.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"

namespace {

struct Outcome {
  std::size_t solved = 0;
  std::size_t incomplete = 0;
  std::size_t other = 0;
  std::size_t total_repairs = 0;
  std::size_t total_cex = 0;
};

Outcome evaluate(bool use_yhat,
                 const std::vector<manthan::workloads::Instance>& suite) {
  Outcome outcome;
  for (const auto& instance : suite) {
    manthan::aig::Aig manager;
    manthan::core::Manthan3Options options;
    options.use_yhat_in_repair = use_yhat;
    options.time_limit_seconds = manthan::bench::env_budget();
    manthan::core::Manthan3 engine(options);
    const auto result = engine.synthesize(instance.formula, manager);
    outcome.total_repairs += result.stats.repairs;
    outcome.total_cex += result.stats.counterexamples;
    if (result.status == manthan::core::SynthesisStatus::kRealizable &&
        manthan::dqbf::check_certificate(instance.formula, manager,
                                         result.vector)
                .status == manthan::dqbf::CertificateStatus::kValid) {
      ++outcome.solved;
    } else if (result.status ==
               manthan::core::SynthesisStatus::kIncomplete) {
      ++outcome.incomplete;
    } else {
      ++outcome.other;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  // Repair-heavy slice: XOR chains (both variants) and planted instances.
  std::vector<manthan::workloads::Instance> suite;
  for (const auto& instance : manthan::bench::bench_suite()) {
    if (instance.family == "xor_chain" || instance.family == "planted") {
      suite.push_back(instance);
    }
  }
  std::cout << "== Ablation 1: repair with vs without the Y-hat "
               "constraint in G_k ==\n";
  std::cout << "slice: " << suite.size()
            << " repair-heavy instances (xor_chain + planted)\n\n";

  const Outcome with_yhat = evaluate(true, suite);
  const Outcome without_yhat = evaluate(false, suite);

  const auto row = [](const char* name, const Outcome& o) {
    std::cout << name << ": solved=" << o.solved
              << " incomplete=" << o.incomplete << " other=" << o.other
              << " repairs=" << o.total_repairs
              << " counterexamples=" << o.total_cex << "\n";
  };
  row("with Y-hat   ", with_yhat);
  row("without Y-hat", without_yhat);
  std::cout << "\npaper shape check: solved(with) >= solved(without): "
            << (with_yhat.solved >= without_yhat.solved ? "YES" : "no")
            << "\n";
  return 0;
}
