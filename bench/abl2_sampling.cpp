// Ablation 2: adaptive-bias sampling vs uniform sampling.
//
// Manthan's adaptive weighting concentrates training data around skewed
// output distributions, producing candidates that need fewer repairs. We
// compare repair effort and solve counts across the learnable families.
#include <iostream>

#include "bench_common.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"

namespace {

struct Outcome {
  std::size_t solved = 0;
  std::size_t total_repairs = 0;
  std::size_t total_cex = 0;
  double total_seconds = 0.0;
};

Outcome evaluate(bool adaptive,
                 const std::vector<manthan::workloads::Instance>& suite) {
  Outcome outcome;
  for (const auto& instance : suite) {
    manthan::aig::Aig manager;
    manthan::core::Manthan3Options options;
    options.sampler.adaptive = adaptive;
    options.time_limit_seconds = manthan::bench::env_budget();
    manthan::core::Manthan3 engine(options);
    const auto result = engine.synthesize(instance.formula, manager);
    outcome.total_repairs += result.stats.repairs;
    outcome.total_cex += result.stats.counterexamples;
    outcome.total_seconds += result.stats.total_seconds;
    if (result.status == manthan::core::SynthesisStatus::kRealizable &&
        manthan::dqbf::check_certificate(instance.formula, manager,
                                         result.vector)
                .status == manthan::dqbf::CertificateStatus::kValid) {
      ++outcome.solved;
    }
  }
  return outcome;
}

}  // namespace

int main() {
  std::vector<manthan::workloads::Instance> suite;
  for (const auto& instance : manthan::bench::bench_suite()) {
    if (instance.family == "planted" || instance.family == "pec" ||
        instance.family == "controller") {
      suite.push_back(instance);
    }
  }
  std::cout << "== Ablation 2: adaptive-bias vs uniform sampling ==\n";
  std::cout << "slice: " << suite.size() << " learnable instances\n\n";

  const Outcome adaptive = evaluate(true, suite);
  const Outcome uniform = evaluate(false, suite);
  const auto row = [](const char* name, const Outcome& o) {
    std::cout << name << ": solved=" << o.solved
              << " repairs=" << o.total_repairs
              << " counterexamples=" << o.total_cex << " time="
              << o.total_seconds << "s\n";
  };
  row("adaptive", adaptive);
  row("uniform ", uniform);
  return 0;
}
