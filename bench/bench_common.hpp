// Shared setup for the figure/table benches: one full portfolio run over
// the standard suite, memoized per process AND cached on disk so that the
// six figure/table binaries of a bench sweep share a single evaluation.
//
// Environment knobs:
//   MANTHAN3_BENCH_SCALE   suite scale (default 1; 2 = larger evaluation)
//   MANTHAN3_BENCH_BUDGET  per-instance budget in seconds (default 2)
//   MANTHAN3_BENCH_CACHE   cache file path (default
//                          ./manthan3_bench_cache.tsv; set to "off" to
//                          disable; delete the file to force re-runs)
#pragma once

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/memory.hpp"
#include "portfolio/runner.hpp"
#include "util/simd.hpp"
#include "portfolio/tables.hpp"
#include "workloads/workloads.hpp"

namespace manthan::bench {

/// Attach the process-memory gauges to a Google Benchmark state (templated
/// so this header does not require benchmark.h). Peak RSS is cumulative
/// over the process — meaningful for the BENCH_*.json archives, where each
/// binary runs a known benchmark set.
template <typename State>
void report_memory_counters(State& state) {
  state.counters["peak_rss_bytes"] =
      static_cast<double>(obs::peak_rss_bytes());
  state.counters["rss_bytes"] = static_cast<double>(obs::current_rss_bytes());
}

/// Record the active SIMD dispatch tier (0 = scalar, 1 = AVX2, 2 = AVX-512)
/// so archived BENCH_*.json snapshots identify the data-path width they
/// were measured with — numbers from different tiers are not comparable.
template <typename State>
void report_simd_tier(State& state) {
  state.counters["simd_tier"] = static_cast<double>(
      static_cast<int>(util::simd::active_tier()));
}

inline std::size_t env_scale() {
  const char* s = std::getenv("MANTHAN3_BENCH_SCALE");
  return s != nullptr ? static_cast<std::size_t>(std::atoi(s)) : 1;
}

inline double env_budget() {
  const char* s = std::getenv("MANTHAN3_BENCH_BUDGET");
  return s != nullptr ? std::atof(s) : 2.0;
}

inline std::string cache_path() {
  const char* s = std::getenv("MANTHAN3_BENCH_CACHE");
  if (s == nullptr) return "manthan3_bench_cache.tsv";
  return s;
}

/// The suite used by every figure bench (fixed seed; scale from env).
inline const std::vector<workloads::Instance>& bench_suite() {
  static const std::vector<workloads::Instance> suite =
      workloads::standard_suite({env_scale(), 2023});
  return suite;
}

namespace detail {

inline const char* engine_token(portfolio::EngineKind kind) {
  switch (kind) {
    case portfolio::EngineKind::kManthan3: return "manthan3";
    case portfolio::EngineKind::kHqsLite: return "hqs";
    case portfolio::EngineKind::kPedantLite: return "pedant";
  }
  return "?";
}

inline bool parse_engine(const std::string& token,
                         portfolio::EngineKind& kind) {
  if (token == "manthan3") kind = portfolio::EngineKind::kManthan3;
  else if (token == "hqs") kind = portfolio::EngineKind::kHqsLite;
  else if (token == "pedant") kind = portfolio::EngineKind::kPedantLite;
  else return false;
  return true;
}

inline const char* status_token(core::SynthesisStatus status) {
  switch (status) {
    case core::SynthesisStatus::kRealizable: return "realizable";
    case core::SynthesisStatus::kUnrealizable: return "unrealizable";
    case core::SynthesisStatus::kIncomplete: return "incomplete";
    case core::SynthesisStatus::kLimit: return "limit";
    case core::SynthesisStatus::kTimeout: return "timeout";
  }
  return "?";
}

inline bool parse_status(const std::string& token,
                         core::SynthesisStatus& status) {
  if (token == "realizable") status = core::SynthesisStatus::kRealizable;
  else if (token == "unrealizable")
    status = core::SynthesisStatus::kUnrealizable;
  else if (token == "incomplete") status = core::SynthesisStatus::kIncomplete;
  else if (token == "limit") status = core::SynthesisStatus::kLimit;
  else if (token == "timeout") status = core::SynthesisStatus::kTimeout;
  else return false;
  return true;
}

/// Cache header: identifies (scale, budget, suite size) so a stale cache
/// is never silently reused for a different configuration.
inline std::string cache_header() {
  std::ostringstream os;
  os << "# manthan3-bench-cache v1 scale=" << env_scale()
     << " budget=" << env_budget() << " instances=" << bench_suite().size();
  return os.str();
}

inline bool load_cache(std::vector<portfolio::RunRecord>& records) {
  const std::string path = cache_path();
  if (path == "off") return false;
  std::ifstream in(path);
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header) || header != cache_header()) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    portfolio::RunRecord r;
    std::string engine_tok;
    std::string status_tok;
    int certified = 0;
    if (!(ls >> r.instance >> r.family >> engine_tok >> status_tok >>
          certified >> r.seconds)) {
      return false;
    }
    if (!parse_engine(engine_tok, r.engine)) return false;
    if (!parse_status(status_tok, r.status)) return false;
    r.certified = certified != 0;
    records.push_back(r);
  }
  // Sanity: one record per (instance, engine).
  return records.size() == bench_suite().size() * 3;
}

inline void save_cache(const std::vector<portfolio::RunRecord>& records) {
  const std::string path = cache_path();
  if (path == "off") return;
  std::ofstream out(path);
  if (!out) return;
  out << cache_header() << '\n';
  for (const portfolio::RunRecord& r : records) {
    out << r.instance << '\t' << r.family << '\t' << engine_token(r.engine)
        << '\t' << status_token(r.status) << '\t' << (r.certified ? 1 : 0)
        << '\t' << r.seconds << '\n';
  }
}

}  // namespace detail

/// One full portfolio evaluation, memoized in-process and cached on disk.
inline const std::vector<portfolio::RunRecord>& bench_records() {
  static const std::vector<portfolio::RunRecord> records = [] {
    std::vector<portfolio::RunRecord> loaded;
    if (detail::load_cache(loaded)) return loaded;
    portfolio::RunnerOptions options;
    options.per_instance_seconds = env_budget();
    portfolio::Runner runner(options);
    std::vector<portfolio::RunRecord> fresh = runner.run_suite(
        bench_suite(), {portfolio::EngineKind::kManthan3,
                        portfolio::EngineKind::kHqsLite,
                        portfolio::EngineKind::kPedantLite});
    detail::save_cache(fresh);
    return fresh;
  }();
  return records;
}

/// Scatter timeout marker: slightly above the budget, like the paper's
/// "Timeout" gutter.
inline double timeout_marker() { return env_budget() * 1.5; }

}  // namespace manthan::bench
