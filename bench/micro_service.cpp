// Synthesis service micro-benchmark: cold-solve vs warm cache-hit
// latency, fingerprint/canonicalization overhead (the tax every request
// pays), queue throughput at 1/2/4/8 workers, and the cache hit-rate on
// a duplicated suite.
//
// The headline pair is BM_ServiceColdSolve vs BM_ServiceWarmHit: the
// cold number is a full Manthan3 run (sampling, learning, verify/repair,
// certification), the warm number is a canonicalize + LRU lookup + cone
// import — three to four orders of magnitude apart. hit_rate on
// BM_ServiceDuplicatedSuite documents that every duplicate request is
// served from tier 1.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "dqbf/fingerprint.hpp"
#include "engine/service.hpp"
#include "workloads/workloads.hpp"

namespace {

using manthan::engine::EngineKind;
using manthan::engine::Service;
using manthan::engine::ServiceOptions;
using manthan::engine::ServiceResponse;
using manthan::engine::ServiceStats;

double host_cores() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1.0 : static_cast<double>(n);
}

/// Nested-dependency planted instance (~ms of Manthan3 work including a
/// real verify/repair loop) — the per-request unit of the suite benches.
manthan::dqbf::DqbfFormula planted(std::uint64_t seed) {
  manthan::workloads::PlantedParams params;
  params.num_universals = 10;
  params.num_existentials = 5;
  params.dep_size = 3;
  params.function_gates = 5;
  params.num_clauses = 60;
  params.seed = seed;
  params.xor_functions = false;
  params.nested_deps = true;
  params.dep_size_max = 8;
  return manthan::workloads::gen_planted(params);
}

ServiceOptions single_engine(std::size_t workers) {
  ServiceOptions options;
  options.workers = workers;
  options.admission = ServiceOptions::Admission::kSingle;
  options.single_engine = EngineKind::kManthan3;
  return options;
}

/// Canonicalization alone: the fixed per-request overhead added by the
/// service layer (WL refinement + clause-set hashing).
void BM_Canonicalize(benchmark::State& state) {
  const manthan::dqbf::DqbfFormula formula = planted(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(manthan::dqbf::canonicalize(formula));
  }
}
BENCHMARK(BM_Canonicalize)->Unit(benchmark::kMicrosecond);

/// Cold request: full solve + certification through a fresh service.
void BM_ServiceColdSolve(benchmark::State& state) {
  const manthan::dqbf::DqbfFormula formula = planted(7);
  for (auto _ : state) {
    Service service(single_engine(1));
    manthan::aig::Aig manager;
    benchmark::DoNotOptimize(service.solve(formula, manager).solved());
  }
  state.counters["cores"] = host_cores();
}
BENCHMARK(BM_ServiceColdSolve)->UseRealTime()->Unit(benchmark::kMillisecond);

/// Warm request: same spec against a populated cache — canonicalize,
/// tier-1 lookup, cone import into a fresh manager.
void BM_ServiceWarmHit(benchmark::State& state) {
  const manthan::dqbf::DqbfFormula formula = planted(7);
  Service service(single_engine(1));
  {
    manthan::aig::Aig manager;
    if (!service.solve(formula, manager).solved()) {
      state.SkipWithError("warm-up solve failed");
      return;
    }
  }
  std::size_t hits = 0;
  for (auto _ : state) {
    manthan::aig::Aig manager;
    const auto result = service.solve(formula, manager);
    hits += result.response.cache_hit ? 1 : 0;
    benchmark::DoNotOptimize(result.vector.functions.size());
  }
  state.counters["hits"] = static_cast<double>(hits);
  manthan::bench::report_memory_counters(state);
}
BENCHMARK(BM_ServiceWarmHit)->Unit(benchmark::kMicrosecond);

/// Queue throughput: 8 distinct requests submitted at once, drained by
/// 1/2/4/8 workers (kSingle admission — every worker takes a request).
void BM_ServiceQueueThroughput(benchmark::State& state) {
  // Seeds whose instances Manthan3 solves under the service's
  // fingerprint-derived streams (others hit the engine's documented
  // incompleteness and would make `solved` noisy).
  std::vector<manthan::dqbf::DqbfFormula> formulas;
  for (const std::uint64_t seed : {2, 3, 5, 6, 7, 8, 9, 11}) {
    formulas.push_back(planted(seed));
  }
  std::size_t solved = 0;
  for (auto _ : state) {
    ServiceOptions options = single_engine(
        static_cast<std::size_t>(state.range(0)));
    options.result_cache = false;  // measure solving, not caching
    Service service(options);
    std::vector<std::shared_future<ServiceResponse>> futures;
    for (const auto& formula : formulas) {
      futures.push_back(service.submit(formula));
    }
    solved = 0;
    for (auto& future : futures) {
      solved += future.get().solved() ? 1 : 0;
    }
  }
  state.counters["workers"] = static_cast<double>(state.range(0));
  state.counters["cores"] = host_cores();
  state.counters["solved"] = static_cast<double>(solved);
}
BENCHMARK(BM_ServiceQueueThroughput)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Duplicated suite: every instance submitted twice through one service.
/// The second pass is answered from tier 1 (or coalesced when still in
/// flight) — hit_rate records the cache's share of all requests.
void BM_ServiceDuplicatedSuite(benchmark::State& state) {
  // Solvable-seed suite (see BM_ServiceQueueThroughput): only definitive
  // verdicts enter the cache, so the expected hit_rate is exactly 0.5.
  std::vector<manthan::dqbf::DqbfFormula> formulas;
  for (const std::uint64_t seed : {2, 3, 5, 6, 7, 8}) {
    formulas.push_back(planted(seed));
  }
  double hit_rate = 0.0;
  double analysis_hits = 0.0;
  for (auto _ : state) {
    Service service(single_engine(2));
    // First pass: populate. Second pass: every request is a duplicate.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<std::shared_future<ServiceResponse>> futures;
      for (const auto& formula : formulas) {
        futures.push_back(service.submit(formula));
      }
      for (auto& future : futures) future.get();
    }
    const ServiceStats stats = service.stats();
    hit_rate = static_cast<double>(stats.tier1_hits + stats.coalesced) /
               static_cast<double>(stats.requests);
    analysis_hits = static_cast<double>(stats.analysis.unique_hits +
                                        stats.analysis.dependency_hits);
  }
  state.counters["hit_rate"] = hit_rate;
  state.counters["analysis_hits"] = analysis_hits;
  state.counters["cores"] = host_cores();
}
BENCHMARK(BM_ServiceDuplicatedSuite)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
