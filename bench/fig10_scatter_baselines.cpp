// Figure 10: scatter of PedantLite vs HqsLite.
//
// Paper shape: even among the existing tools there is no dominant one —
// they solve similar counts but different classes of instances.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& records = manthan::bench::bench_records();
  const double timeout = manthan::bench::timeout_marker();

  const auto points = manthan::portfolio::scatter_points(
      records, {EngineKind::kHqsLite}, {EngineKind::kPedantLite}, timeout);

  std::cout << "== Figure 10: PedantLite vs HqsLite ==\n";
  manthan::portfolio::print_scatter(std::cout, "HqsLite", "PedantLite",
                                    points, timeout);
  return 0;
}
