// Component micro-benchmark: CDCL solver throughput on random 3-SAT near
// and away from the phase transition, plus assumption-core extraction.
#include <benchmark/benchmark.h>

#include "cnf/cnf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace {

using manthan::cnf::CnfFormula;
using manthan::cnf::Lit;
using manthan::cnf::Var;

CnfFormula random_3sat(Var num_vars, double ratio, std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  CnfFormula f(num_vars);
  const auto num_clauses = static_cast<std::size_t>(
      ratio * static_cast<double>(num_vars));
  for (std::size_t c = 0; c < num_clauses; ++c) {
    manthan::cnf::Clause clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(static_cast<Var>(rng.next_below(
                               static_cast<std::uint64_t>(num_vars))),
                           rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

void BM_SatEasy(benchmark::State& state) {
  const CnfFormula f = random_3sat(static_cast<Var>(state.range(0)), 2.0, 7);
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatEasy)->Arg(50)->Arg(100)->Arg(200);

void BM_SatPhaseTransition(benchmark::State& state) {
  const CnfFormula f =
      random_3sat(static_cast<Var>(state.range(0)), 4.26, 11);
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPhaseTransition)->Arg(50)->Arg(75)->Arg(100);

void BM_SatAssumptionCores(benchmark::State& state) {
  const CnfFormula f = random_3sat(60, 3.0, 13);
  manthan::sat::Solver s;
  s.add_formula(f);
  manthan::util::Rng rng(17);
  for (auto _ : state) {
    std::vector<Lit> assumptions;
    for (Var v = 0; v < 12; ++v) assumptions.push_back(Lit(v, rng.flip()));
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
}
BENCHMARK(BM_SatAssumptionCores);

}  // namespace

BENCHMARK_MAIN();
