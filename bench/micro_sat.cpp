// Component micro-benchmark: CDCL solver throughput on random 3-SAT near
// and away from the phase transition, assumption-core extraction, pure
// propagation throughput (binary implication chains), and the matrices of
// the planted / xor-family workload generators.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "cnf/cnf.hpp"
#include "dqbf/dqbf.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace {

using manthan::cnf::CnfFormula;
using manthan::cnf::Lit;
using manthan::cnf::Var;

CnfFormula random_3sat(Var num_vars, double ratio, std::uint64_t seed) {
  manthan::util::Rng rng(seed);
  CnfFormula f(num_vars);
  const auto num_clauses = static_cast<std::size_t>(
      ratio * static_cast<double>(num_vars));
  for (std::size_t c = 0; c < num_clauses; ++c) {
    manthan::cnf::Clause clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(static_cast<Var>(rng.next_below(
                               static_cast<std::uint64_t>(num_vars))),
                           rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

void BM_SatEasy(benchmark::State& state) {
  const CnfFormula f = random_3sat(static_cast<Var>(state.range(0)), 2.0, 7);
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatEasy)->Arg(50)->Arg(100)->Arg(200);

void BM_SatPhaseTransition(benchmark::State& state) {
  const CnfFormula f =
      random_3sat(static_cast<Var>(state.range(0)), 4.26, 11);
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPhaseTransition)->Arg(50)->Arg(75)->Arg(100);

void BM_SatAssumptionCores(benchmark::State& state) {
  const CnfFormula f = random_3sat(60, 3.0, 13);
  manthan::sat::Solver s;
  s.add_formula(f);
  manthan::util::Rng rng(17);
  for (auto _ : state) {
    std::vector<Lit> assumptions;
    for (Var v = 0; v < 12; ++v) assumptions.push_back(Lit(v, rng.flip()));
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
}
BENCHMARK(BM_SatAssumptionCores);

// --- propagation throughput -------------------------------------------------

/// Binary implication chains driven by assumptions: every solve() call
/// re-propagates all chains from the assumed heads and backtracks, with
/// zero conflicts, so items/second reports raw watched-literal
/// propagation throughput (the solver is built once, outside the loop).
void BM_SatPropagationChains(benchmark::State& state) {
  const std::size_t chains = 16;
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  manthan::sat::Solver s;
  std::vector<Lit> assumptions;
  for (std::size_t c = 0; c < chains; ++c) {
    const Var base = static_cast<Var>(c * length);
    for (std::size_t i = 0; i + 1 < length; ++i) {
      s.add_clause({manthan::cnf::neg(base + static_cast<Var>(i)),
                    manthan::cnf::pos(base + static_cast<Var>(i + 1))});
    }
    assumptions.push_back(manthan::cnf::pos(base));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.stats().propagations));
}
BENCHMARK(BM_SatPropagationChains)->Arg(256)->Arg(2048);

/// Ternary-clause ladder driven by assumptions: each rung forces a
/// replacement-watch search, stressing the long-clause (non-binary)
/// propagation path.
void BM_SatPropagationTernary(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  manthan::sat::Solver s;
  for (std::size_t i = 0; i + 2 < length; ++i) {
    const Var v = static_cast<Var>(i);
    s.add_clause({manthan::cnf::neg(v), manthan::cnf::neg(v + 1),
                  manthan::cnf::pos(v + 2)});
  }
  const std::vector<Lit> assumptions{manthan::cnf::pos(0),
                                     manthan::cnf::pos(1)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.solve(assumptions));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(s.stats().propagations));
}
BENCHMARK(BM_SatPropagationTernary)->Arg(4096)->Arg(32768);

/// Formula loading: add_formula cost for a large binary-chain CNF
/// (clause normalization + arena append + watcher attachment).
void BM_SatAddFormula(benchmark::State& state) {
  const std::size_t length = static_cast<std::size_t>(state.range(0));
  CnfFormula f(static_cast<Var>(length));
  for (std::size_t i = 0; i + 1 < length; ++i) {
    f.add_binary(manthan::cnf::neg(static_cast<Var>(i)),
                 manthan::cnf::pos(static_cast<Var>(i + 1)));
  }
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.num_vars());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(length - 1));
}
BENCHMARK(BM_SatAddFormula)->Arg(32768);

// --- workload-family matrices ----------------------------------------------

/// Planted-family matrix (True by construction): structured clauses over
/// AND/XOR planted functions, solved with fresh solvers.
void BM_SatPlantedMatrix(benchmark::State& state) {
  manthan::workloads::PlantedParams params;
  params.num_universals = 20;
  params.num_existentials = 10;
  params.dep_size = 5;
  params.function_gates = 10;
  params.num_clauses = static_cast<std::size_t>(state.range(0));
  params.seed = 5;
  const manthan::dqbf::DqbfFormula dqbf =
      manthan::workloads::gen_planted(params);
  const CnfFormula& f = dqbf.matrix();
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatPlantedMatrix)->Arg(200)->Arg(800);

/// XOR-family matrix (split-dependency chains from the paper's §5): XOR
/// constraints keep the solver branching instead of propagating to a
/// model immediately.
void BM_SatXorFamilyMatrix(benchmark::State& state) {
  manthan::workloads::XorChainParams params;
  params.num_pairs = static_cast<std::size_t>(state.range(0));
  params.xor_with_shared = true;
  params.seed = 3;
  const manthan::dqbf::DqbfFormula dqbf =
      manthan::workloads::gen_xor_chain(params);
  const CnfFormula& f = dqbf.matrix();
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatXorFamilyMatrix)->Arg(64)->Arg(512);

// --- inter-solve inprocessing ----------------------------------------------

/// Inprocessing on/off series over the planted-family matrix: one session
/// loads the matrix, optionally runs an inprocess pass, then answers a
/// fixed batch of assumption queries (the verify/repair access pattern).
/// arena_bytes reports the post-session clause-database footprint so the
/// subsumption/BVE shrink is visible next to the time series.
void BM_SatInprocessPlanted(benchmark::State& state) {
  manthan::workloads::PlantedParams params;
  params.num_universals = 20;
  params.num_existentials = 10;
  params.dep_size = 5;
  params.function_gates = 10;
  params.num_clauses = static_cast<std::size_t>(state.range(0));
  params.seed = 5;
  const manthan::dqbf::DqbfFormula dqbf =
      manthan::workloads::gen_planted(params);
  const CnfFormula& f = dqbf.matrix();
  const bool inprocess = state.range(1) != 0;
  std::uint64_t arena_bytes = 0;
  for (auto _ : state) {
    manthan::util::Rng rng(23);
    manthan::sat::Solver s;
    s.add_formula(f);
    s.freeze_range(0, 8);
    if (inprocess) s.inprocess();
    for (int q = 0; q < 8; ++q) {
      std::vector<Lit> assumptions;
      for (Var v = 0; v < 8; ++v) assumptions.push_back(Lit(v, rng.flip()));
      benchmark::DoNotOptimize(s.solve(assumptions));
    }
    arena_bytes = s.stats().arena_bytes;
  }
  state.counters["arena_bytes"] = static_cast<double>(arena_bytes);
  manthan::bench::report_memory_counters(state);
}
BENCHMARK(BM_SatInprocessPlanted)
    ->Args({800, 0})
    ->Args({800, 1})
    ->Args({3200, 0})
    ->Args({3200, 1});

/// Inprocessing on/off series over the xor-family matrix: same session
/// shape as the planted series; xor chains leave little for subsumption
/// but vivification still trims implied tails.
void BM_SatInprocessXorFamily(benchmark::State& state) {
  manthan::workloads::XorChainParams params;
  params.num_pairs = static_cast<std::size_t>(state.range(0));
  params.xor_with_shared = true;
  params.seed = 3;
  const manthan::dqbf::DqbfFormula dqbf =
      manthan::workloads::gen_xor_chain(params);
  const CnfFormula& f = dqbf.matrix();
  const bool inprocess = state.range(1) != 0;
  std::uint64_t arena_bytes = 0;
  for (auto _ : state) {
    manthan::util::Rng rng(29);
    manthan::sat::Solver s;
    s.add_formula(f);
    s.freeze_range(0, 8);
    if (inprocess) s.inprocess();
    for (int q = 0; q < 8; ++q) {
      std::vector<Lit> assumptions;
      for (Var v = 0; v < 8; ++v) assumptions.push_back(Lit(v, rng.flip()));
      benchmark::DoNotOptimize(s.solve(assumptions));
    }
    arena_bytes = s.stats().arena_bytes;
  }
  state.counters["arena_bytes"] = static_cast<double>(arena_bytes);
  manthan::bench::report_memory_counters(state);
}
BENCHMARK(BM_SatInprocessXorFamily)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({512, 0})
    ->Args({512, 1});

/// Daemon-length variable churn: rounds of fresh selector variables with
/// guarded clauses, retire, and (when enabled) inprocess + compact. The
/// remapper keeps the live variable range bounded; without it the solver
/// drags every dead selector through watches and the order heap.
void BM_SatRetireCompactChurn(benchmark::State& state) {
  const bool maintain = state.range(0) != 0;
  std::uint64_t reclaimed = 0;
  for (auto _ : state) {
    manthan::sat::Solver s;
    const CnfFormula base = random_3sat(40, 3.0, 41);
    s.add_formula(base);
    s.freeze_range(0, 40);
    for (int round = 0; round < 64; ++round) {
      const Lit act = manthan::cnf::pos(s.new_var());
      for (Var v = 0; v < 6; ++v) {
        s.add_clause_activated({Lit(v, (round + v) % 2 == 0),
                                Lit(static_cast<Var>(v + 7), v % 2 == 0)},
                               act);
      }
      benchmark::DoNotOptimize(s.solve({act}));
      s.retire(act);
      if (maintain && round % 8 == 7) {
        s.inprocess();
        s.compact();
      }
    }
    reclaimed = s.stats().remapped_vars;
  }
  state.counters["reclaimed_vars"] = static_cast<double>(reclaimed);
}
BENCHMARK(BM_SatRetireCompactChurn)->Arg(0)->Arg(1);

/// Learnt-clause churn: an unsatisfiable over-constrained instance drives
/// thousands of conflicts through clause learning, database reduction and
/// (with the arena) garbage collection.
void BM_SatLearntChurn(benchmark::State& state) {
  const CnfFormula f =
      random_3sat(static_cast<Var>(state.range(0)), 5.2, 29);
  for (auto _ : state) {
    manthan::sat::Solver s;
    s.add_formula(f);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatLearntChurn)->Arg(90);

}  // namespace

BENCHMARK_MAIN();
