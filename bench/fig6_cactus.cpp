// Figure 6: cactus plot of VBS(HqsLite, PedantLite) vs VBS(+Manthan3).
//
// Paper shape: the portfolio *with* Manthan3 solves strictly more
// instances (204 vs 178 on QBFEval; here on the generated suite), because
// Manthan3 synthesizes vectors on instances both baselines miss.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& records = manthan::bench::bench_records();

  const std::vector<double> vbs_baselines =
      manthan::portfolio::vbs_cactus_series(
          records, {EngineKind::kHqsLite, EngineKind::kPedantLite});
  const std::vector<double> vbs_all = manthan::portfolio::vbs_cactus_series(
      records, {EngineKind::kManthan3, EngineKind::kHqsLite,
                EngineKind::kPedantLite});

  std::cout << "== Figure 6: Virtual Best Synthesizer with/without "
               "Manthan3 ==\n";
  std::cout << "suite: " << manthan::bench::bench_suite().size()
            << " instances, budget " << manthan::bench::env_budget()
            << " s/instance/engine\n";
  manthan::portfolio::print_cactus(std::cout, {"VBS", "VBS+Manthan3"},
                                   {vbs_baselines, vbs_all});
  std::cout << "paper shape check: VBS+Manthan3 total ("
            << vbs_all.size() << ") >= VBS total (" << vbs_baselines.size()
            << ") with a strict improvement expected: "
            << (vbs_all.size() > vbs_baselines.size() ? "YES" : "no")
            << "\n";
  return 0;
}
