// Figure 9: scatter of Manthan3 vs HqsLite.
//
// Paper shape: incomparable tools — elimination wins when the non-linear
// (expanded) part is small, and fails where expansion blows up; Manthan3
// is insensitive to that structure but pays for sampling and repair.
#include <iostream>

#include "bench_common.hpp"

int main() {
  using manthan::portfolio::EngineKind;
  const auto& records = manthan::bench::bench_records();
  const double timeout = manthan::bench::timeout_marker();

  const auto points = manthan::portfolio::scatter_points(
      records, {EngineKind::kHqsLite}, {EngineKind::kManthan3}, timeout);

  std::cout << "== Figure 9: Manthan3 vs HqsLite ==\n";
  manthan::portfolio::print_scatter(std::cout, "HqsLite", "Manthan3",
                                    points, timeout);
  return 0;
}
