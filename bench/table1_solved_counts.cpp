// Table A (§6 headline numbers): per-tool solved counts, the VBS
// improvement from adding Manthan3, fastest-tool and unique-solve counts,
// and the incomplete-vs-timeout split of Manthan3's misses.
//
// Paper values on QBFEval (563 instances): HQS2 148, Pedant 138,
// Manthan3 116 solved; VBS 178 -> 204 (+26 unique); Manthan3 fastest on
// 42; of 88 Manthan3 misses, 49 were incompleteness. The generated suite
// reproduces the *shape*: every tool has a niche, Manthan3 adds unique
// solves on top of the baseline portfolio, and a visible share of its
// misses are the documented incompleteness rather than timeouts.
#include <iostream>

#include "bench_common.hpp"

int main() {
  const auto& records = manthan::bench::bench_records();
  const manthan::portfolio::SolvedCounts counts =
      manthan::portfolio::compute_solved_counts(records);

  std::cout << "== Table A: solved counts (paper §6) ==\n";
  std::cout << "suite: " << manthan::bench::bench_suite().size()
            << " instances, budget " << manthan::bench::env_budget()
            << " s/instance/engine\n";
  manthan::portfolio::print_solved_counts(std::cout, counts);

  std::cout << "\nper-run detail:\n";
  manthan::portfolio::print_run_records(std::cout, records);
  return 0;
}
