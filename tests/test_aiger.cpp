// AIGER ASCII I/O: parsing, writing, semantic round-trips, malformed
// input rejection.
#include <gtest/gtest.h>

#include "aig/aig_sim.hpp"
#include "aig/aiger.hpp"
#include "util/rng.hpp"

namespace manthan::aig {
namespace {

TEST(Aiger, ParsesAndGate) {
  // aag: 3 vars, inputs 2 and 4, output 6, AND 6 = 2 & 4.
  Aig m;
  const AigerModule module =
      read_aiger_ascii_string("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n", m);
  EXPECT_EQ(module.num_inputs, 2u);
  ASSERT_EQ(module.outputs.size(), 1u);
  std::unordered_map<std::int32_t, bool> in{{0, true}, {1, true}};
  EXPECT_TRUE(m.evaluate(module.outputs[0], in));
  in[1] = false;
  EXPECT_FALSE(m.evaluate(module.outputs[0], in));
}

TEST(Aiger, ParsesComplementedEdges) {
  // Output = ~(2 & ~4) = ~in0 | in1.
  Aig m;
  const AigerModule module =
      read_aiger_ascii_string("aag 3 2 0 1 1\n2\n4\n7\n6 2 5\n", m);
  std::unordered_map<std::int32_t, bool> in{{0, true}, {1, false}};
  EXPECT_FALSE(m.evaluate(module.outputs[0], in));
  in[1] = true;
  EXPECT_TRUE(m.evaluate(module.outputs[0], in));
}

TEST(Aiger, ParsesConstants) {
  Aig m;
  const AigerModule module =
      read_aiger_ascii_string("aag 1 1 0 2 0\n2\n0\n1\n", m);
  ASSERT_EQ(module.outputs.size(), 2u);
  EXPECT_EQ(module.outputs[0], kFalseRef);
  EXPECT_EQ(module.outputs[1], kTrueRef);
}

TEST(Aiger, RejectsMalformedInput) {
  Aig m;
  EXPECT_THROW(read_aiger_ascii_string("aig 1 1 0 1 0\n2\n2\n", m),
               std::runtime_error);  // binary header
  EXPECT_THROW(read_aiger_ascii_string("aag 2 1 1 1 0\n2\n4 2\n2\n", m),
               std::runtime_error);  // latches
  EXPECT_THROW(read_aiger_ascii_string("aag 2 1 0 1 0\n3\n2\n", m),
               std::runtime_error);  // odd input literal
  EXPECT_THROW(read_aiger_ascii_string("aag 2 1 0 1 1\n2\n4\n4 6 2\n", m),
               std::runtime_error);  // fanin before definition
}

TEST(Aiger, RejectsTruncatedFile) {
  Aig m;
  // Header only, inputs missing.
  EXPECT_THROW(read_aiger_ascii_string("aag 1 1 0 1 0\n", m),
               std::runtime_error);
  // Outputs missing after the inputs.
  EXPECT_THROW(read_aiger_ascii_string("aag 1 1 0 1 0\n2\n", m),
               std::runtime_error);
  // AND line cut off mid-triple.
  EXPECT_THROW(read_aiger_ascii_string("aag 3 2 0 1 1\n2\n4\n6\n6 2\n", m),
               std::runtime_error);
}

TEST(Aiger, RejectsBadHeader) {
  Aig m;
  EXPECT_THROW(read_aiger_ascii_string("", m), std::runtime_error);
  EXPECT_THROW(read_aiger_ascii_string("aag 1 1 0\n", m),
               std::runtime_error);  // too few header fields
  EXPECT_THROW(read_aiger_ascii_string("aag x 1 0 1 0\n2\n2\n", m),
               std::runtime_error);  // non-numeric field
  // Maximum index smaller than inputs + ands.
  EXPECT_THROW(read_aiger_ascii_string("aag 1 1 0 1 1\n2\n4\n4 2 2\n", m),
               std::runtime_error);
}

TEST(Aiger, RejectsOutOfRangeLiteral) {
  Aig m;
  // Input literal 6 exceeds 2*max_index+1 with max_index 2.
  EXPECT_THROW(read_aiger_ascii_string("aag 2 2 0 1 0\n2\n6\n2\n", m),
               std::runtime_error);
  // Output literal out of range.
  EXPECT_THROW(read_aiger_ascii_string("aag 1 1 0 1 0\n2\n9\n", m),
               std::runtime_error);
  // AND fanin out of range.
  EXPECT_THROW(read_aiger_ascii_string("aag 2 1 0 1 1\n2\n4\n4 2 99\n", m),
               std::runtime_error);
}

TEST(Aiger, WriteProducesValidHeader) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const std::string text = to_aiger_ascii_string(m, {m.and_gate(a, b)});
  EXPECT_EQ(text.rfind("aag 3 2 0 1 1", 0), 0u);
}

TEST(Aiger, RoundTripPreservesSemantics) {
  util::Rng rng(123);
  for (int round = 0; round < 10; ++round) {
    // Random cone.
    Aig m;
    std::vector<Ref> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(m.input(i));
    for (int g = 0; g < 20; ++g) {
      const Ref a = pool[rng.next_below(pool.size())] ^
                    static_cast<Ref>(rng.flip());
      const Ref b = pool[rng.next_below(pool.size())] ^
                    static_cast<Ref>(rng.flip());
      pool.push_back(m.and_gate(a, b));
    }
    const Ref f = pool.back() ^ static_cast<Ref>(rng.flip());

    const std::string text = to_aiger_ascii_string(m, {f});
    Aig m2;
    const AigerModule module = read_aiger_ascii_string(text, m2);
    ASSERT_EQ(module.outputs.size(), 1u);

    // Input id k of the round-trip corresponds to the k-th smallest
    // original input id in the cone's support.
    const std::vector<std::int32_t> support = m.support(f);
    for (int bits = 0; bits < 32; ++bits) {
      std::unordered_map<std::int32_t, bool> in_original;
      std::unordered_map<std::int32_t, bool> in_roundtrip;
      for (int i = 0; i < 5; ++i) {
        in_original[i] = ((bits >> i) & 1) != 0;
      }
      for (std::size_t k = 0; k < support.size(); ++k) {
        in_roundtrip[static_cast<std::int32_t>(k)] =
            in_original[support[k]];
      }
      EXPECT_EQ(m2.evaluate(module.outputs[0], in_roundtrip),
                m.evaluate(f, in_original));
    }
  }
}

TEST(Aiger, MultipleOutputsShareCone) {
  Aig m;
  const Ref a = m.input(0);
  const Ref b = m.input(1);
  const Ref conj = m.and_gate(a, b);
  const std::string text =
      to_aiger_ascii_string(m, {conj, ref_not(conj)});
  Aig m2;
  const AigerModule module = read_aiger_ascii_string(text, m2);
  ASSERT_EQ(module.outputs.size(), 2u);
  EXPECT_EQ(module.outputs[0], ref_not(module.outputs[1]));
}

}  // namespace
}  // namespace manthan::aig
