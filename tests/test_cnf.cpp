// CNF data structures and DIMACS round-tripping.
#include <gtest/gtest.h>

#include <sstream>

#include "cnf/cnf.hpp"
#include "cnf/dimacs.hpp"

namespace manthan::cnf {
namespace {

TEST(Lit, EncodingRoundTrips) {
  const Lit a = pos(3);
  EXPECT_EQ(a.var(), 3);
  EXPECT_FALSE(a.negated());
  EXPECT_EQ((~a).var(), 3);
  EXPECT_TRUE((~a).negated());
  EXPECT_EQ(~~a, a);
}

TEST(Lit, DimacsConversion) {
  EXPECT_EQ(Lit::from_dimacs(5), pos(4));
  EXPECT_EQ(Lit::from_dimacs(-5), neg(4));
  EXPECT_EQ(pos(4).to_dimacs(), 5);
  EXPECT_EQ(neg(4).to_dimacs(), -5);
}

TEST(Lit, XorWithBoolFlipsSign) {
  EXPECT_EQ(pos(2) ^ true, neg(2));
  EXPECT_EQ(pos(2) ^ false, pos(2));
  EXPECT_EQ(neg(2) ^ true, pos(2));
}

TEST(LBoolOps, XorSemantics) {
  EXPECT_EQ(LBool::kTrue ^ true, LBool::kFalse);
  EXPECT_EQ(LBool::kFalse ^ true, LBool::kTrue);
  EXPECT_EQ(LBool::kUndef ^ true, LBool::kUndef);
}

TEST(Assignment, LiteralValues) {
  Assignment a(3);
  a.set(1, true);
  EXPECT_TRUE(a.value(pos(1)));
  EXPECT_FALSE(a.value(neg(1)));
  EXPECT_FALSE(a.value(pos(0)));
  EXPECT_TRUE(a.value(neg(0)));
}

TEST(CnfFormula, TracksVariableCount) {
  CnfFormula f;
  f.add_clause({pos(0), neg(4)});
  EXPECT_EQ(f.num_vars(), 5);
  EXPECT_EQ(f.num_clauses(), 1u);
  const Var v = f.new_var();
  EXPECT_EQ(v, 5);
  EXPECT_EQ(f.num_vars(), 6);
}

TEST(CnfFormula, SatisfiedBy) {
  CnfFormula f;
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(0), pos(1)});
  Assignment a(2);
  a.set(1, true);
  EXPECT_TRUE(f.satisfied_by(a));
  a.set(1, false);
  EXPECT_FALSE(f.satisfied_by(a));
}

TEST(CnfFormula, AppendMergesClauses) {
  CnfFormula a;
  a.add_clause({pos(0)});
  CnfFormula b;
  b.add_clause({pos(1), neg(2)});
  a.append(b);
  EXPECT_EQ(a.num_clauses(), 2u);
  EXPECT_EQ(a.num_vars(), 3);
}

TEST(Equivalence, EncodesBothDirections) {
  CnfFormula f(2);
  add_equivalence(f, pos(0), pos(1));
  Assignment a(2);
  a.set(0, true);
  a.set(1, true);
  EXPECT_TRUE(f.satisfied_by(a));
  a.set(1, false);
  EXPECT_FALSE(f.satisfied_by(a));
  a.set(0, false);
  EXPECT_TRUE(f.satisfied_by(a));
}

TEST(Dimacs, ParsesSimpleFormula) {
  const CnfFormula f = parse_dimacs_string(
      "c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(f.num_vars(), 3);
  ASSERT_EQ(f.num_clauses(), 2u);
  EXPECT_EQ(f.clause(0), (Clause{pos(0), neg(1)}));
  EXPECT_EQ(f.clause(1), (Clause{pos(1), pos(2)}));
}

TEST(Dimacs, RoundTrips) {
  CnfFormula f(4);
  f.add_clause({pos(0), neg(3)});
  f.add_clause({neg(1), pos(2), pos(3)});
  std::ostringstream os;
  write_dimacs(os, f);
  const CnfFormula g = parse_dimacs_string(os.str());
  EXPECT_EQ(g.num_vars(), f.num_vars());
  ASSERT_EQ(g.num_clauses(), f.num_clauses());
  for (std::size_t i = 0; i < f.num_clauses(); ++i) {
    EXPECT_EQ(g.clause(i), f.clause(i));
  }
}

TEST(Dimacs, RejectsMissingHeader) {
  EXPECT_THROW(parse_dimacs_string("1 2 0\n"), std::runtime_error);
}

TEST(Dimacs, RejectsTruncatedHeader) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p\n"), std::runtime_error);
}

TEST(Dimacs, RejectsBadHeader) {
  EXPECT_THROW(parse_dimacs_string("p dnf 2 1\n1 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf -3 1\n1 0\n"), std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf two 1\n1 0\n"),
               std::runtime_error);
}

TEST(Dimacs, RejectsOutOfRangeLiteral) {
  // Declared 2 variables; literal 3 (either sign) is out of range.
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 3 0\n"),
               std::runtime_error);
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n-3 2 0\n"),
               std::runtime_error);
}

TEST(Dimacs, AcceptsLiteralAtDeclaredBound) {
  const CnfFormula f = parse_dimacs_string("p cnf 3 1\n-3 1 0\n");
  EXPECT_EQ(f.num_vars(), 3);
  EXPECT_EQ(f.num_clauses(), 1u);
}

TEST(Dimacs, RejectsUnterminatedClause) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 2\n"), std::runtime_error);
}

TEST(Dimacs, RejectsGarbageToken) {
  EXPECT_THROW(parse_dimacs_string("p cnf 2 1\n1 frog 0\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace manthan::cnf
