// Budget / failure-injection behaviour across the stack: every component
// must degrade to an explicit "unknown/timeout" outcome, never hang or
// return wrong answers, when its deadline expires.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "core/manthan3.hpp"
#include "maxsat/maxsat.hpp"
#include "portfolio/runner.hpp"
#include "sat/solver.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace manthan {
namespace {

using cnf::CnfFormula;
using cnf::Lit;
using cnf::Var;

CnfFormula hard_random_3sat(Var n, std::uint64_t seed) {
  util::Rng rng(seed);
  CnfFormula f(n);
  const auto clauses = static_cast<std::size_t>(4.26 * n);
  for (std::size_t c = 0; c < clauses; ++c) {
    cnf::Clause clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(Lit(static_cast<Var>(rng.next_below(
                               static_cast<std::uint64_t>(n))),
                           rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

TEST(Deadlines, SolverReturnsUnknownNotWrongAnswer) {
  // Phase-transition instance large enough to exceed a microscopic
  // budget; the solver must return kUnknown (or finish legitimately).
  const CnfFormula f = hard_random_3sat(150, 1);
  sat::Solver s;
  s.add_formula(f);
  const util::Deadline deadline(1e-6);
  const sat::Result r = s.solve({}, deadline);
  if (r == sat::Result::kSat) {
    EXPECT_TRUE(f.satisfied_by(s.model()));
  }
  // After an interrupted solve the solver remains usable.
  const sat::Result r2 = s.solve({});
  EXPECT_NE(r2, sat::Result::kUnknown);
}

TEST(Deadlines, PurePropagationSolveHonoursDeadline) {
  // Regression: the deadline used to be polled only on conflicts, so a
  // conflict-free solve (pure unit propagation) ran to completion no
  // matter how tight the budget. Implication chains rooted in unit
  // clauses produce tens of thousands of propagations and zero
  // conflicts; with an already-expired deadline the solver must now
  // return kUnknown instead of kSat.
  sat::Solver s;
  const int chains = 10;
  const int length = 1000;
  for (int c = 0; c < chains; ++c) {
    const Var base = static_cast<Var>(c * length);
    for (int i = 0; i + 1 < length; ++i) {
      s.add_clause({cnf::neg(base + i), cnf::pos(base + i + 1)});
    }
  }
  for (int c = 0; c < chains; ++c) {
    s.add_clause({cnf::pos(static_cast<Var>(c * length))});
  }
  const util::Deadline deadline(1e-9);
  EXPECT_EQ(s.solve({}, deadline), sat::Result::kUnknown);
  // Without a deadline the same solver finishes and the model is total.
  EXPECT_EQ(s.solve({}), sat::Result::kSat);
}

TEST(Deadlines, MaxSatHonoursDeadline) {
  maxsat::MaxSatSolver ms;
  const CnfFormula f = hard_random_3sat(120, 3);
  ms.add_hard_formula(f);
  for (Var v = 0; v < 40; ++v) ms.add_soft({cnf::pos(v)});
  const util::Deadline deadline(1e-6);
  const maxsat::MaxSatStatus status = ms.solve(&deadline);
  EXPECT_TRUE(status == maxsat::MaxSatStatus::kUnknown ||
              status == maxsat::MaxSatStatus::kOptimal ||
              status == maxsat::MaxSatStatus::kUnsatisfiableHard);
}

TEST(Deadlines, EnginesReportTimeoutStatus) {
  const dqbf::DqbfFormula f =
      testutil::hard_planted(99);
  {
    core::Manthan3Options options;
    options.time_limit_seconds = 1e-5;
    core::Manthan3 engine(options);
    aig::Aig manager;
    const auto result = engine.synthesize(f, manager);
    EXPECT_TRUE(result.status == core::SynthesisStatus::kTimeout ||
                result.status == core::SynthesisStatus::kRealizable);
  }
  {
    baselines::HqsLiteOptions options;
    options.time_limit_seconds = 1e-5;
    baselines::HqsLite engine(options);
    aig::Aig manager;
    const auto result = engine.synthesize(f, manager);
    EXPECT_NE(result.status, core::SynthesisStatus::kUnrealizable);
  }
  {
    baselines::PedantLiteOptions options;
    options.time_limit_seconds = 1e-5;
    baselines::PedantLite engine(options);
    aig::Aig manager;
    const auto result = engine.synthesize(f, manager);
    EXPECT_NE(result.status, core::SynthesisStatus::kUnrealizable);
  }
}

TEST(Deadlines, RunnerRecordsTimeoutsAsUnsolved) {
  workloads::Instance instance;
  instance.name = "hard";
  instance.family = "test";
  instance.formula = testutil::hard_planted(7);
  portfolio::RunnerOptions options;
  options.per_instance_seconds = 1e-5;
  portfolio::Runner runner(options);
  const portfolio::RunRecord record =
      runner.run_one(instance, portfolio::EngineKind::kManthan3);
  if (record.status != core::SynthesisStatus::kRealizable) {
    EXPECT_FALSE(record.solved());
  }
}

TEST(Deadlines, EngineLimitsAreReportedDistinctly) {
  // HqsLite expansion cap yields kLimit, not timeout or a wrong verdict.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({10, false, 1});
  baselines::HqsLiteOptions options;
  options.max_expansion_vars = 3;
  baselines::HqsLite engine(options);
  aig::Aig manager;
  EXPECT_EQ(engine.synthesize(f, manager).status,
            core::SynthesisStatus::kLimit);
}

TEST(Deadlines, ManthanRepairLimitIsReported) {
  core::Manthan3Options options;
  options.max_repair_iterations = 1;
  options.max_counterexamples = 1;
  options.time_limit_seconds = 10.0;
  // XOR-with-shared usually needs more than one repair round.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({2, true, 5});
  core::Manthan3 engine(options);
  aig::Aig manager;
  const auto result = engine.synthesize(f, manager);
  EXPECT_TRUE(result.status == core::SynthesisStatus::kLimit ||
              result.status == core::SynthesisStatus::kIncomplete ||
              result.status == core::SynthesisStatus::kRealizable);
}

}  // namespace
}  // namespace manthan
