// Sanity checks for the xoshiro256** generator and utility types.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) ++differences;
  }
  EXPECT_GT(differences, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FlipRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.flip()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.05);
}

TEST(Rng, BiasedFlipTracksProbability) {
  Rng rng(19);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.flip(0.9)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.9, 0.05);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time (unsigned: the sum overflows an int, which is UB).
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < 100000; ++i) sink += i;
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

}  // namespace
}  // namespace manthan::util
