// Sanity checks for the xoshiro256** generator and utility types.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.hpp"
#include "util/timer.hpp"

namespace manthan::util {
namespace {

TEST(Rng, SplitmixIsAPureFixedFunction) {
  // Reference values of SplitMix64 (seed 0 / 1): the seed-derivation
  // contract promises stability across platforms and releases.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(splitmix64(42), splitmix64(42));
}

TEST(Rng, Hash64IsStableFnv1a) {
  EXPECT_EQ(hash64(""), 0xcbf29ce484222325ULL);  // FNV-1a offset basis
  EXPECT_EQ(hash64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(hash64("instance_1"), hash64("instance_1"));
  EXPECT_NE(hash64("instance_1"), hash64("instance_2"));
}

TEST(Rng, DerivedSeedsDecorrelateJobs) {
  // Same (base, identity) -> same stream; any differing component -> a
  // different stream. This is what makes parallel suite runs replay the
  // serial ones job for job.
  const std::uint64_t base = 2023;
  EXPECT_EQ(derive_seed(base, hash64("i1"), 0),
            derive_seed(base, hash64("i1"), 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t instance = 0; instance < 16; ++instance) {
    for (std::uint64_t engine = 0; engine < 3; ++engine) {
      seeds.insert(derive_seed(base, instance, engine));
    }
  }
  EXPECT_EQ(seeds.size(), 48u);
  Rng a(derive_seed(base, 1, 0));
  Rng b(derive_seed(base, 1, 1));
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a.next() != b.next()) ++differences;
  }
  EXPECT_GT(differences, 5);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, FlipRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.flip()) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.5, 0.05);
}

TEST(Rng, BiasedFlipTracksProbability) {
  Rng rng(19);
  int heads = 0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i) {
    if (rng.flip(0.9)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / trials, 0.9, 0.05);
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_seconds()));
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  // Burn a little time (unsigned: the sum overflows an int, which is UB).
  volatile unsigned sink = 0;
  for (unsigned i = 0; i < 100000; ++i) sink += i;
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_seconds(), 0.0);
}

}  // namespace
}  // namespace manthan::util
