// Cross-module integration: DQDIMACS -> engines -> certificate; all three
// engines on all generated families; certified vectors also checked by an
// engine-independent exhaustive evaluator on small instances.
#include <gtest/gtest.h>

#include <sstream>

#include "test_util.hpp"
#include "baselines/hqs_lite.hpp"
#include "baselines/pedant_lite.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqdimacs.hpp"
#include "workloads/workloads.hpp"

namespace manthan {
namespace {

using core::SynthesisResult;
using core::SynthesisStatus;

/// Exhaustive semantic validation (independent of the SAT-based
/// certificate): substitute the functions and check φ on every X.
void exhaustive_check(const dqbf::DqbfFormula& f, const aig::Aig& manager,
                      const dqbf::HenkinVector& vector) {
  const auto& universals = f.universals();
  ASSERT_LE(universals.size(), 14u);
  // Matrix may contain Tseitin existentials; they have functions too, so
  // evaluate ALL existentials through their synthesized functions after
  // ordering by... final vectors depend only on universals, so one pass.
  for (std::uint64_t bits = 0; bits < (1ULL << universals.size()); ++bits) {
    cnf::Assignment a(static_cast<std::size_t>(f.matrix().num_vars()));
    for (std::size_t i = 0; i < universals.size(); ++i) {
      a.set(universals[i], ((bits >> i) & 1) != 0);
    }
    for (std::size_t i = 0; i < f.existentials().size(); ++i) {
      a.set(f.existentials()[i].var,
            manager.evaluate(vector.functions[i], a));
    }
    EXPECT_TRUE(f.matrix().satisfied_by(a))
        << "counterexample at X bits " << bits;
  }
}

TEST(Integration, DqdimacsToCertifiedVector) {
  // Round-trip the paper example through the text format, then solve.
  const dqbf::DqbfFormula original = testutil::paper_example();
  const dqbf::DqbfFormula f =
      dqbf::parse_dqdimacs_string(dqbf::to_dqdimacs_string(original));

  aig::Aig manager;
  core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  core::Manthan3 engine(options);
  const SynthesisResult result = engine.synthesize(f, manager);
  ASSERT_EQ(result.status, SynthesisStatus::kRealizable);
  exhaustive_check(f, manager, result.vector);
}

struct EngineFamilyCase {
  int engine;  // 0 Manthan3, 1 HqsLite, 2 PedantLite
  int family;  // 0 planted, 1 pec, 2 controller(observable), 3 succinct
  std::uint64_t seed;
};

class AllEnginesAllFamilies
    : public ::testing::TestWithParam<EngineFamilyCase> {};

TEST_P(AllEnginesAllFamilies, OutcomeIsSoundAndCertified) {
  const EngineFamilyCase param = GetParam();
  dqbf::DqbfFormula f;
  bool known_true = false;
  switch (param.family) {
    case 0:
      f = testutil::tiny_planted(param.seed);
      known_true = true;
      break;
    case 1:
      f = workloads::gen_pec({5, 2, 2, 2, 8, param.seed});
      known_true = true;
      break;
    case 2:
      f = workloads::gen_controller({3, 2, 2, true, 4, param.seed});
      known_true = true;  // fully observable variant is realizable
      break;
    default:
      f = workloads::gen_succinct_sat({8, 3.0, param.seed});
      known_true = true;
      break;
  }
  aig::Aig manager;
  SynthesisResult result;
  switch (param.engine) {
    case 0: {
      core::Manthan3Options options;
      options.time_limit_seconds = 30.0;
      options.seed = param.seed;
      core::Manthan3 engine(options);
      result = engine.synthesize(f, manager);
      break;
    }
    case 1: {
      baselines::HqsLiteOptions options;
      options.time_limit_seconds = 30.0;
      baselines::HqsLite engine(options);
      result = engine.synthesize(f, manager);
      break;
    }
    default: {
      baselines::PedantLiteOptions options;
      options.time_limit_seconds = 30.0;
      baselines::PedantLite engine(options);
      result = engine.synthesize(f, manager);
      break;
    }
  }
  if (known_true) {
    EXPECT_NE(result.status, SynthesisStatus::kUnrealizable);
  }
  if (result.status == SynthesisStatus::kRealizable) {
    EXPECT_EQ(dqbf::check_certificate(f, manager, result.vector).status,
              dqbf::CertificateStatus::kValid);
    if (f.num_universals() <= 12) {
      exhaustive_check(f, manager, result.vector);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllEnginesAllFamilies,
    ::testing::Values(
        EngineFamilyCase{0, 0, 1}, EngineFamilyCase{0, 1, 1},
        EngineFamilyCase{0, 2, 1}, EngineFamilyCase{0, 3, 1},
        EngineFamilyCase{1, 0, 1}, EngineFamilyCase{1, 1, 1},
        EngineFamilyCase{1, 3, 1},
        EngineFamilyCase{2, 0, 1}, EngineFamilyCase{2, 1, 1},
        EngineFamilyCase{2, 2, 1},
        EngineFamilyCase{0, 0, 2}, EngineFamilyCase{1, 0, 2},
        EngineFamilyCase{2, 0, 2}));

TEST(Integration, BlindedControllerDetectedFalseOrHard) {
  // With one observed input removed, the controller usually cannot track
  // its correction target; engines must never return an uncertified
  // vector for it.
  const dqbf::DqbfFormula f =
      workloads::gen_controller({3, 2, 2, false, 5, 3});
  aig::Aig manager;
  baselines::HqsLiteOptions options;
  options.time_limit_seconds = 30.0;
  baselines::HqsLite engine(options);
  const SynthesisResult result = engine.synthesize(f, manager);
  if (result.status == SynthesisStatus::kRealizable) {
    EXPECT_EQ(dqbf::check_certificate(f, manager, result.vector).status,
              dqbf::CertificateStatus::kValid);
  }
}

TEST(Integration, EnginesAgreeOnXorChainTruth) {
  // HqsLite decides the paper's incompleteness family definitively; when
  // Manthan3 does answer, the answers must agree (both True here).
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({2, false, 1});
  aig::Aig m1;
  baselines::HqsLite hqs;
  const SynthesisResult rh = hqs.synthesize(f, m1);
  ASSERT_EQ(rh.status, SynthesisStatus::kRealizable);

  aig::Aig m2;
  core::Manthan3Options options;
  options.time_limit_seconds = 20.0;
  core::Manthan3 manthan(options);
  const SynthesisResult rm = manthan.synthesize(f, m2);
  EXPECT_NE(rm.status, SynthesisStatus::kUnrealizable);
}

}  // namespace
}  // namespace manthan
