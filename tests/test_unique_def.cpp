// Unique-definition detection (Padoa) and BDD-based extraction.
#include <gtest/gtest.h>

#include "aig/aig_sim.hpp"
#include "core/unique_def.hpp"

namespace manthan::core {
namespace {

using cnf::neg;
using cnf::pos;
using cnf::Var;

TEST(UniqueDef, DetectsDefinedVariable) {
  // y <-> (x0 & x1): uniquely defined by {x0, x1}.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.matrix().add_clause({neg(2), pos(0)});
  f.matrix().add_clause({neg(2), pos(1)});
  f.matrix().add_clause({pos(2), neg(0), neg(1)});
  UniqueDefExtractor u(f);
  EXPECT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kYes);
}

TEST(UniqueDef, DetectsUndefinedVariable) {
  // (x ∨ y): y unconstrained when x = 1.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({pos(0), pos(1)});
  UniqueDefExtractor u(f);
  EXPECT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kNo);
}

TEST(UniqueDef, DefinedOnlyWithFullDependencies) {
  // y <-> x0 xor x1, but H = {x0}: not defined by H alone.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0});
  f.matrix().add_clause({neg(2), neg(0), neg(1)});
  f.matrix().add_clause({neg(2), pos(0), pos(1)});
  f.matrix().add_clause({pos(2), neg(0), pos(1)});
  f.matrix().add_clause({pos(2), pos(0), neg(1)});
  UniqueDefExtractor u(f);
  EXPECT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kNo);
}

TEST(UniqueDef, ExtractedDefinitionIsCorrect) {
  // y <-> (x0 | x1).
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.matrix().add_clause({neg(2), pos(0), pos(1)});
  f.matrix().add_clause({pos(2), neg(0)});
  f.matrix().add_clause({pos(2), neg(1)});
  UniqueDefExtractor u(f);
  ASSERT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kYes);
  aig::Aig manager;
  const auto def = u.extract(0, manager);
  ASSERT_TRUE(def.has_value());
  const aig::Ref expected =
      manager.or_gate(manager.input(0), manager.input(1));
  EXPECT_TRUE(aig::semantically_equal(manager, *def, expected));
}

TEST(UniqueDef, DefinitionSupportWithinDeps) {
  // y defined through a chain: y <-> x0; another universal x1 is noise.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0});
  f.matrix().add_clause({neg(2), pos(0)});
  f.matrix().add_clause({pos(2), neg(0)});
  f.matrix().add_clause({pos(1), neg(1)});  // tautology touching x1
  UniqueDefExtractor u(f);
  ASSERT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kYes);
  aig::Aig manager;
  const auto def = u.extract(0, manager);
  ASSERT_TRUE(def.has_value());
  for (const std::int32_t id : manager.support(*def)) {
    EXPECT_EQ(id, 0);
  }
}

TEST(UniqueDef, DefinedThroughOtherExistential) {
  // y0 <-> x, y1 <-> x: both defined w.r.t. their deps {x}.
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.add_existential(2, {0});
  f.matrix().add_clause({neg(1), pos(0)});
  f.matrix().add_clause({pos(1), neg(0)});
  f.matrix().add_clause({neg(2), pos(1)});
  f.matrix().add_clause({pos(2), neg(1)});
  UniqueDefExtractor u(f);
  EXPECT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kYes);
  EXPECT_EQ(u.is_defined(1), UniqueDefExtractor::Defined::kYes);
}

TEST(UniqueDef, BddBudgetFallsBackGracefully) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({neg(1), pos(0)});
  f.matrix().add_clause({pos(1), neg(0)});
  UniqueDefOptions options;
  options.max_bdd_nodes = 0;  // force extraction failure
  UniqueDefExtractor u(f, options);
  ASSERT_EQ(u.is_defined(0), UniqueDefExtractor::Defined::kYes);
  aig::Aig manager;
  EXPECT_FALSE(u.extract(0, manager).has_value());
}

TEST(UniqueDef, MatrixVarCapDisablesExtraction) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({neg(1), pos(0)});
  f.matrix().add_clause({pos(1), neg(0)});
  UniqueDefOptions options;
  options.max_matrix_vars = 1;
  UniqueDefExtractor u(f, options);
  aig::Aig manager;
  EXPECT_FALSE(u.extract(0, manager).has_value());
}

}  // namespace
}  // namespace manthan::core
