// Independent certificate checker: valid vectors accepted, invalid ones
// refuted with counterexamples, dependency violations flagged.
#include <gtest/gtest.h>

#include "test_util.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/dqbf.hpp"

namespace manthan::dqbf {
namespace {

using cnf::neg;
using cnf::pos;
using testutil::identity_spec;

TEST(Certificate, AcceptsCorrectVector) {
  const DqbfFormula f = identity_spec();
  aig::Aig manager;
  HenkinVector v{{manager.input(0)}};
  const CertificateResult r = check_certificate(f, manager, v);
  EXPECT_EQ(r.status, CertificateStatus::kValid);
  EXPECT_FALSE(r.counterexample.has_value());
}

TEST(Certificate, RejectsWrongVectorWithCounterexample) {
  const DqbfFormula f = identity_spec();
  aig::Aig manager;
  HenkinVector v{{aig::ref_not(manager.input(0))}};  // y = ¬x1: wrong
  const CertificateResult r = check_certificate(f, manager, v);
  ASSERT_EQ(r.status, CertificateStatus::kInvalid);
  ASSERT_TRUE(r.counterexample.has_value());
  // On the counterexample, substituting f makes some clause false:
  // y-value = ¬x1 must violate y ↔ x1.
  const cnf::Assignment& cex = *r.counterexample;
  EXPECT_EQ(cex.value(cnf::Var{2}), !cex.value(cnf::Var{0}));
}

TEST(Certificate, FlagsDependencyViolation) {
  const DqbfFormula f = identity_spec();
  aig::Aig manager;
  // Function mentions x2 (var 1) which is outside H = {x1}.
  HenkinVector v{{manager.or_gate(manager.input(0), manager.input(1))}};
  const CertificateResult r = check_certificate(f, manager, v);
  EXPECT_EQ(r.status, CertificateStatus::kDependencyError);
}

TEST(Certificate, FlagsWrongArity) {
  const DqbfFormula f = identity_spec();
  aig::Aig manager;
  HenkinVector v{{}};  // no functions at all
  EXPECT_EQ(check_certificate(f, manager, v).status,
            CertificateStatus::kDependencyError);
}

TEST(Certificate, ConstantFunctionsWhereSufficient) {
  // ∀x ∃{}y. (y ∨ x ∨ ¬x) — any constant works; check y := false.
  DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {});
  f.matrix().add_clause({pos(1), pos(0), neg(0)});
  aig::Aig manager;
  HenkinVector v{{aig::kFalseRef}};
  EXPECT_EQ(check_certificate(f, manager, v).status,
            CertificateStatus::kValid);
}

TEST(Certificate, PaperExampleFinalVector) {
  // §5 example with the repaired functions f1=¬x1, f2=y1∨¬x2 (expanded to
  // ¬x1 ∨ ¬x2), f3=x3∨(¬x3∧x2).
  DqbfFormula f;
  for (Var x = 0; x < 3; ++x) f.add_universal(x);
  f.add_existential(3, {0});
  f.add_existential(4, {0, 1});
  f.add_existential(5, {1, 2});
  f.matrix().add_clause({pos(0), pos(3)});
  f.matrix().add_clause({neg(4), pos(3), neg(1)});
  f.matrix().add_clause({pos(4), neg(3)});
  f.matrix().add_clause({pos(4), pos(1)});
  f.matrix().add_clause({neg(5), pos(1), pos(2)});
  f.matrix().add_clause({pos(5), neg(1)});
  f.matrix().add_clause({pos(5), neg(2)});

  aig::Aig m;
  const aig::Ref f1 = aig::ref_not(m.input(0));
  const aig::Ref f2 = m.or_gate(aig::ref_not(m.input(0)),
                                aig::ref_not(m.input(1)));
  const aig::Ref f3 = m.or_gate(m.input(2),
                                m.and_gate(aig::ref_not(m.input(2)),
                                           m.input(1)));
  HenkinVector v{{f1, f2, f3}};
  EXPECT_EQ(check_certificate(f, m, v).status, CertificateStatus::kValid);

  // The pre-repair vector f2 = y1 (i.e. ¬x1) fails.
  HenkinVector bad{{f1, aig::ref_not(m.input(0)), f3}};
  EXPECT_EQ(check_certificate(f, m, bad).status,
            CertificateStatus::kInvalid);
}

TEST(Certificate, RefutationCnfHasSelectors) {
  const DqbfFormula f = identity_spec();
  aig::Aig manager;
  HenkinVector v{{manager.input(0)}};
  const cnf::CnfFormula refutation = build_refutation_cnf(f, manager, v);
  // More variables than the matrix (selectors + function ties).
  EXPECT_GT(refutation.num_vars(), f.matrix().num_vars());
  EXPECT_GT(refutation.num_clauses(), f.matrix().num_clauses());
}

}  // namespace
}  // namespace manthan::dqbf
