// The incremental verify/repair pipeline, differentially tested against
// the from-scratch oracles: the persistent cone encoder against exhaustive
// AIG evaluation, IncrementalRefutation against build_refutation_cnf with
// a fresh solver, and the full incremental Manthan3 pipeline against the
// re-encode-every-round oracle (options.incremental = false) — plus the
// parallel-learning determinism contract (any worker count, identical
// results field for field).
#include <gtest/gtest.h>

#include <algorithm>

#include "aig/incremental_cnf.hpp"
#include "core/manthan3.hpp"
#include "dqbf/certificate.hpp"
#include "dqbf/incremental_refutation.hpp"
#include "sat/solver.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace manthan {
namespace {

using cnf::neg;
using cnf::pos;
using cnf::Var;

// ---------------------------------------------------------------------------
// IncrementalCnfEncoder
// ---------------------------------------------------------------------------

/// Random AIG cone over inputs [0, num_inputs).
aig::Ref random_cone(aig::Aig& manager, std::int32_t num_inputs,
                     std::size_t gates, util::Rng& rng) {
  std::vector<aig::Ref> pool;
  for (std::int32_t i = 0; i < num_inputs; ++i) {
    pool.push_back(manager.input(i));
  }
  for (std::size_t g = 0; g < gates; ++g) {
    aig::Ref a = pool[rng.next_below(pool.size())];
    aig::Ref b = pool[rng.next_below(pool.size())];
    if (rng.flip()) a = aig::ref_not(a);
    if (rng.flip()) b = aig::ref_not(b);
    pool.push_back(rng.flip() ? manager.and_gate(a, b)
                              : manager.or_gate(a, b));
  }
  return pool.back();
}

class ConeOracle {
 public:
  ConeOracle()
      : encoder_(
            manager_, [this]() { return solver_.new_var(); },
            [this](const cnf::Clause& c) { solver_.add_clause(c); }) {
    solver_.reserve_vars(kInputs);
  }

  static constexpr std::int32_t kInputs = 6;

  /// Encode and exhaustively compare against manager_.evaluate.
  void check_cone(aig::Ref root) {
    const cnf::Lit lit = encoder_.encode(root);
    for (std::uint32_t bits = 0; bits < (1u << kInputs); ++bits) {
      std::vector<cnf::Lit> assumptions;
      std::unordered_map<std::int32_t, bool> inputs;
      for (std::int32_t i = 0; i < kInputs; ++i) {
        const bool value = ((bits >> i) & 1u) != 0;
        inputs[i] = value;
        assumptions.push_back(value ? pos(i) : neg(i));
      }
      ASSERT_EQ(solver_.solve(assumptions), sat::Result::kSat);
      EXPECT_EQ(solver_.model().value(lit), manager_.evaluate(root, inputs))
          << "input pattern " << bits;
    }
  }

  aig::Aig manager_;
  sat::Solver solver_;
  aig::IncrementalCnfEncoder encoder_;
};

TEST(IncrementalCnfEncoder, MatchesExhaustiveEvaluation) {
  util::Rng rng(17);
  ConeOracle oracle;
  for (int round = 0; round < 6; ++round) {
    const aig::Ref root =
        random_cone(oracle.manager_, ConeOracle::kInputs, 12, rng);
    oracle.check_cone(root);
  }
}

TEST(IncrementalCnfEncoder, CachesSharedStructure) {
  util::Rng rng(23);
  ConeOracle oracle;
  const aig::Ref base =
      random_cone(oracle.manager_, ConeOracle::kInputs, 20, rng);
  oracle.check_cone(base);
  const std::uint64_t encoded_after_base = oracle.encoder_.stats().nodes_encoded;
  // Re-encoding the same root is free.
  oracle.encoder_.encode(base);
  EXPECT_EQ(oracle.encoder_.stats().nodes_encoded, encoded_after_base);
  // A cone built on top of `base` only pays for the new gates.
  const aig::Ref grown = oracle.manager_.and_gate(
      base, aig::ref_not(oracle.manager_.input(0)));
  oracle.check_cone(grown);
  EXPECT_LE(oracle.encoder_.stats().nodes_encoded, encoded_after_base + 2);
  EXPECT_GT(oracle.encoder_.stats().nodes_reused, 0u);
}

TEST(IncrementalCnfEncoder, ConstantsAndInputMapping) {
  aig::Aig manager;
  sat::Solver solver;
  const Var mapped = solver.reserve_vars(2);
  aig::IncrementalCnfEncoder encoder(
      manager, [&]() { return solver.new_var(); },
      [&](const cnf::Clause& c) { solver.add_clause(c); });
  encoder.map_input(7, neg(mapped));  // input 7 is ¬v0
  const aig::Ref x = manager.input(7);
  const cnf::Lit x_lit = encoder.encode(x);
  const cnf::Lit false_lit = encoder.encode(aig::kFalseRef);
  const cnf::Lit true_lit = encoder.encode(aig::kTrueRef);
  ASSERT_EQ(solver.solve({pos(mapped)}), sat::Result::kSat);
  EXPECT_FALSE(solver.model().value(x_lit));
  EXPECT_FALSE(solver.model().value(false_lit));
  EXPECT_TRUE(solver.model().value(true_lit));
  ASSERT_EQ(solver.solve({neg(mapped)}), sat::Result::kSat);
  EXPECT_TRUE(solver.model().value(x_lit));
}

// ---------------------------------------------------------------------------
// IncrementalRefutation vs. one-shot build_refutation_cnf
// ---------------------------------------------------------------------------

sat::Result oneshot_verdict(const dqbf::DqbfFormula& formula,
                            const aig::Aig& manager,
                            const dqbf::HenkinVector& candidate) {
  const cnf::CnfFormula refutation =
      dqbf::build_refutation_cnf(formula, manager, candidate);
  sat::Solver solver;
  if (!solver.add_formula(refutation)) return sat::Result::kUnsat;
  return solver.solve();
}

/// Drive a candidate vector through random repair-like mutations and
/// assert the persistent refutation solver agrees with a from-scratch
/// re-encode at every step.
void differential_refutation_sweep(const dqbf::DqbfFormula& formula,
                                   std::uint64_t seed, int rounds) {
  aig::Aig manager;
  util::Rng rng(seed);
  const std::size_t m = formula.num_existentials();
  dqbf::HenkinVector candidate;
  candidate.functions.assign(m, aig::kFalseRef);
  dqbf::IncrementalRefutation incremental(formula, manager);
  for (int round = 0; round < rounds; ++round) {
    const sat::Result expected =
        oneshot_verdict(formula, manager, candidate);
    EXPECT_EQ(incremental.check(candidate), expected)
        << "round " << round << " seed " << seed;
    if (expected == sat::Result::kSat) {
      // The counterexample must actually falsify the substituted spec —
      // i.e. the model really is a model of the incremental encoding.
      const cnf::Assignment& model = incremental.model();
      for (std::size_t i = 0; i < m; ++i) {
        EXPECT_EQ(model.value(formula.existentials()[i].var),
                  manager.evaluate(candidate.functions[i], model))
            << "candidate output " << i << " out of sync";
      }
    }
    if (m == 0) break;
    // Mutate one candidate the way repair does: conjoin/disjoin a cube
    // over its Henkin dependencies.
    const std::size_t k = rng.next_below(m);
    const auto& deps = formula.existentials()[k].deps;
    aig::Ref cube = aig::kTrueRef;
    for (const Var x : deps) {
      if (rng.flip()) continue;
      aig::Ref in = manager.input(x);
      if (rng.flip()) in = aig::ref_not(in);
      cube = manager.and_gate(cube, in);
    }
    candidate.functions[k] =
        rng.flip() ? manager.and_gate(candidate.functions[k],
                                      aig::ref_not(cube))
                   : manager.or_gate(candidate.functions[k], cube);
  }
  // Multi-round sweeps must have exercised the cache and retirement.
  if (rounds > 2 && m > 1) {
    EXPECT_GT(incremental.stats().cones_reused, 0u);
    EXPECT_GT(incremental.stats().activations_retired, 0u);
  }
}

TEST(IncrementalRefutation, MatchesOneShotOnPaperExample) {
  differential_refutation_sweep(testutil::paper_example(), 5, 12);
  differential_refutation_sweep(testutil::paper_example(), 6, 12);
}

TEST(IncrementalRefutation, MatchesOneShotOnPlanted) {
  differential_refutation_sweep(testutil::tiny_planted(3), 31, 10);
  differential_refutation_sweep(testutil::small_planted(11), 32, 10);
}

TEST(IncrementalRefutation, EmptyMatrixCertifiesEverything) {
  dqbf::DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  aig::Aig manager;
  dqbf::IncrementalRefutation incremental(f, manager);
  dqbf::HenkinVector candidate;
  candidate.functions = {aig::kFalseRef};
  EXPECT_EQ(incremental.check(candidate), sat::Result::kUnsat);
}

// ---------------------------------------------------------------------------
// Full pipeline: incremental vs. from-scratch re-encode oracle
// ---------------------------------------------------------------------------

core::SynthesisResult run_engine(const dqbf::DqbfFormula& f, aig::Aig& manager,
                                 bool incremental, std::size_t workers,
                                 std::uint64_t seed) {
  core::Manthan3Options options;
  options.time_limit_seconds = 30.0;
  options.incremental = incremental;
  options.learn_workers = workers;
  options.seed = seed;
  return core::Manthan3(options).synthesize(f, manager);
}

struct PipelineCase {
  int family;  // 0 paper, 1 tiny planted, 2 small planted, 3 pec, 4 succinct
  std::uint64_t seed;
};

class IncrementalPipeline : public ::testing::TestWithParam<PipelineCase> {
 protected:
  dqbf::DqbfFormula instance() const {
    switch (GetParam().family) {
      case 0:
        return testutil::paper_example();
      case 1:
        return testutil::tiny_planted(GetParam().seed + 1);
      case 2:
        return testutil::small_planted(GetParam().seed + 1);
      case 3:
        return workloads::gen_pec({6, 2, 2, 2, 10, GetParam().seed + 1});
      default:
        return workloads::gen_succinct_sat({8, 3.0, GetParam().seed + 1});
    }
  }
};

TEST_P(IncrementalPipeline, MatchesFromScratchOracle) {
  const dqbf::DqbfFormula f = instance();
  for (const std::uint64_t seed : {7ull, 42ull}) {
    aig::Aig inc_manager;
    const core::SynthesisResult inc =
        run_engine(f, inc_manager, /*incremental=*/true, 1, seed);
    aig::Aig oracle_manager;
    const core::SynthesisResult oracle =
        run_engine(f, oracle_manager, /*incremental=*/false, 1, seed);
    EXPECT_EQ(inc.status, oracle.status) << "seed " << seed;
    if (inc.status == core::SynthesisStatus::kRealizable) {
      EXPECT_TRUE(testutil::is_certified(f, inc_manager, inc));
    }
    if (oracle.status == core::SynthesisStatus::kRealizable) {
      EXPECT_TRUE(testutil::is_certified(f, oracle_manager, oracle));
    }
  }
}

TEST_P(IncrementalPipeline, ParallelLearningMatchesSerialFieldForField) {
  const dqbf::DqbfFormula f = instance();
  for (const std::uint64_t seed : {11ull, 42ull}) {
    aig::Aig serial_manager;
    const core::SynthesisResult serial =
        run_engine(f, serial_manager, /*incremental=*/true, 1, seed);
    for (const std::size_t workers : {2ull, 4ull, 8ull}) {
      aig::Aig parallel_manager;
      const core::SynthesisResult parallel =
          run_engine(f, parallel_manager, /*incremental=*/true, workers,
                     seed);
      ASSERT_EQ(parallel.status, serial.status)
          << "seed " << seed << " workers " << workers;
      // Same manager construction order on both sides, so the function
      // edges must be bit-identical, not merely equivalent.
      EXPECT_EQ(parallel.vector.functions, serial.vector.functions)
          << "seed " << seed << " workers " << workers;
      EXPECT_EQ(parallel.stats.samples, serial.stats.samples);
      EXPECT_EQ(parallel.stats.learned_candidates,
                serial.stats.learned_candidates);
      EXPECT_EQ(parallel.stats.counterexamples,
                serial.stats.counterexamples);
      EXPECT_EQ(parallel.stats.repairs, serial.stats.repairs);
      EXPECT_EQ(parallel.stats.repair_checks, serial.stats.repair_checks);
      EXPECT_EQ(parallel.stats.maxsat_calls, serial.stats.maxsat_calls);
      EXPECT_EQ(parallel.stats.cones_encoded, serial.stats.cones_encoded);
      EXPECT_EQ(parallel.stats.cones_reused, serial.stats.cones_reused);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, IncrementalPipeline,
    ::testing::Values(PipelineCase{0, 0}, PipelineCase{1, 1},
                      PipelineCase{1, 2}, PipelineCase{2, 10},
                      PipelineCase{2, 20}, PipelineCase{3, 1},
                      PipelineCase{4, 1}));

TEST(IncrementalPipeline, RepairHeavyRunExercisesRetirement) {
  // XOR-with-shared defeats sampling, so repair must iterate: the
  // persistent pipeline should be reusing cached cones and retiring
  // stale guards, and every MaxSAT round retires its scope.
  const dqbf::DqbfFormula f = workloads::gen_xor_chain({1, true, 3});
  aig::Aig manager;
  const core::SynthesisResult result =
      run_engine(f, manager, /*incremental=*/true, 1, 42);
  if (result.status == core::SynthesisStatus::kRealizable) {
    EXPECT_TRUE(testutil::is_certified(f, manager, result));
  }
  EXPECT_GT(result.stats.cones_encoded, 0u);
  EXPECT_GT(result.stats.verify_vars, 0u);
  EXPECT_GT(result.stats.phi_vars, 0u);
  if (result.stats.counterexamples > 0) {
    EXPECT_GE(result.stats.activations_retired, result.stats.maxsat_calls);
  }
}

}  // namespace
}  // namespace manthan
