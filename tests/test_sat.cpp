// CDCL solver: correctness against a brute-force reference, assumptions,
// UNSAT cores, incremental use, and randomized property sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "cnf/cnf.hpp"
#include "sat/solver.hpp"
#include "util/cancel.hpp"
#include "util/rng.hpp"

namespace manthan::sat {
namespace {

using cnf::Clause;
using cnf::CnfFormula;
using cnf::Lit;
using cnf::neg;
using cnf::pos;
using cnf::Var;

/// Brute-force satisfiability over up to 24 variables.
bool brute_force_sat(const CnfFormula& f) {
  const Var n = f.num_vars();
  for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
    cnf::Assignment a(static_cast<std::size_t>(n));
    for (Var v = 0; v < n; ++v) a.set(v, ((bits >> v) & 1) != 0);
    if (f.satisfied_by(a)) return true;
  }
  return false;
}

TEST(Solver, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(Solver, SingleUnit) {
  Solver s;
  s.add_clause({pos(0)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(0));
}

TEST(Solver, ConflictingUnitsAreUnsat) {
  Solver s;
  s.add_clause({pos(0)});
  EXPECT_FALSE(s.add_clause({neg(0)}));
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, PropagationChain) {
  // 0 -> 1 -> 2 -> 3, with unit 0.
  Solver s;
  s.add_clause({pos(0)});
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(1), pos(2)});
  s.add_clause({neg(2), pos(3)});
  ASSERT_EQ(s.solve(), Result::kSat);
  for (Var v = 0; v < 4; ++v) EXPECT_TRUE(s.model().value(v));
}

TEST(Solver, PigeonholeTwoInOneIsUnsat) {
  // Two pigeons, one hole.
  Solver s;
  s.add_clause({pos(0)});  // pigeon 1 in hole
  s.add_clause({pos(1)});  // pigeon 2 in hole
  s.add_clause({neg(0), neg(1)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, XorChainSat) {
  // (a xor b), (b xor c) as CNF; satisfiable.
  Solver s;
  s.add_clause({pos(0), pos(1)});
  s.add_clause({neg(0), neg(1)});
  s.add_clause({pos(1), pos(2)});
  s.add_clause({neg(1), neg(2)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_NE(s.model().value(0), s.model().value(1));
  EXPECT_NE(s.model().value(1), s.model().value(2));
}

TEST(Solver, ModelSatisfiesFormula) {
  CnfFormula f;
  f.add_clause({pos(0), neg(1), pos(2)});
  f.add_clause({neg(0), pos(1)});
  f.add_clause({neg(2), neg(0)});
  Solver s;
  s.add_formula(f);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(f.satisfied_by(s.model()));
}

TEST(Solver, AssumptionsRestrictModels) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  ASSERT_EQ(s.solve({neg(0)}), Result::kSat);
  EXPECT_FALSE(s.model().value(0));
  EXPECT_TRUE(s.model().value(1));
}

TEST(Solver, ContradictoryAssumptionsGiveCore) {
  Solver s;
  s.ensure_vars(2);
  ASSERT_EQ(s.solve({pos(0), neg(0)}), Result::kUnsat);
  const std::vector<Lit>& core = s.core();
  EXPECT_EQ(core.size(), 2u);
  EXPECT_NE(std::find(core.begin(), core.end(), pos(0)), core.end());
  EXPECT_NE(std::find(core.begin(), core.end(), neg(0)), core.end());
}

TEST(Solver, CoreIsSubsetOfAssumptions) {
  Solver s;
  s.add_clause({neg(0), neg(1)});
  s.add_clause({neg(2), neg(3)});
  const std::vector<Lit> assumptions{pos(0), pos(1), pos(4)};
  ASSERT_EQ(s.solve(assumptions), Result::kUnsat);
  for (const Lit l : s.core()) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l),
              assumptions.end());
  }
  // pos(4) is irrelevant and must not appear.
  EXPECT_EQ(std::find(s.core().begin(), s.core().end(), pos(4)),
            s.core().end());
}

TEST(Solver, CoreIdentifiesRelevantAssumptions) {
  // unit clauses force a conflict only via assumptions 0 and 1.
  Solver s;
  s.add_clause({neg(0), pos(2)});
  s.add_clause({neg(1), neg(2)});
  ASSERT_EQ(s.solve({pos(0), pos(1), pos(3), pos(4)}), Result::kUnsat);
  std::vector<Lit> core = s.core();
  std::sort(core.begin(), core.end());
  EXPECT_EQ(core, (std::vector<Lit>{pos(0), pos(1)}));
}

TEST(Solver, UnsatWithoutAssumptionsHasEmptyCore) {
  Solver s;
  s.add_clause({pos(0)});
  s.add_clause({neg(0)});
  ASSERT_EQ(s.solve({pos(1)}), Result::kUnsat);
  EXPECT_TRUE(s.core().empty());
}

TEST(Solver, IncrementalSolvingAcrossClauses) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  ASSERT_EQ(s.solve(), Result::kSat);
  s.add_clause({neg(0)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(1));
  s.add_clause({neg(1)});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(Solver, RepeatedSolveCallsAreStable) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(s.solve(), Result::kSat);
    ASSERT_EQ(s.solve({neg(0), neg(1)}), Result::kUnsat);
  }
}

TEST(Solver, TautologicalClauseIgnored) {
  Solver s;
  s.add_clause({pos(0), neg(0)});
  s.add_clause({pos(1)});
  ASSERT_EQ(s.solve({neg(0)}), Result::kSat);
  EXPECT_FALSE(s.model().value(0));
}

TEST(Solver, DuplicateLiteralsDeduplicated) {
  Solver s;
  s.add_clause({pos(0), pos(0), pos(0)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(0));
}

TEST(Solver, FixedValueAfterRootPropagation) {
  Solver s;
  s.add_clause({pos(0)});
  s.add_clause({neg(0), pos(1)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.fixed_value(pos(0)), cnf::LBool::kTrue);
  EXPECT_EQ(s.fixed_value(neg(1)), cnf::LBool::kFalse);
}

// ---------------------------------------------------------------------------
// Property sweep: agreement with brute force on random small formulas.
// ---------------------------------------------------------------------------

struct RandomCnfParams {
  Var num_vars;
  std::size_t num_clauses;
  std::size_t width;
};

class SolverRandomAgreement
    : public ::testing::TestWithParam<RandomCnfParams> {};

CnfFormula random_cnf(const RandomCnfParams& p, util::Rng& rng) {
  CnfFormula f(p.num_vars);
  for (std::size_t c = 0; c < p.num_clauses; ++c) {
    Clause clause;
    for (std::size_t k = 0; k < p.width; ++k) {
      const Var v = static_cast<Var>(rng.next_below(
          static_cast<std::uint64_t>(p.num_vars)));
      clause.push_back(cnf::Lit(v, rng.flip()));
    }
    f.add_clause(clause);
  }
  return f;
}

TEST_P(SolverRandomAgreement, MatchesBruteForce) {
  const RandomCnfParams p = GetParam();
  util::Rng rng(0xc0ffee + p.num_vars * 131 + p.num_clauses);
  for (int round = 0; round < 40; ++round) {
    const CnfFormula f = random_cnf(p, rng);
    Solver s;
    const bool added = s.add_formula(f);
    const bool expected = brute_force_sat(f);
    if (!added) {
      EXPECT_FALSE(expected);
      continue;
    }
    const Result r = s.solve();
    EXPECT_EQ(r == Result::kSat, expected);
    if (r == Result::kSat) {
      EXPECT_TRUE(f.satisfied_by(s.model()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomCnfs, SolverRandomAgreement,
    ::testing::Values(RandomCnfParams{4, 8, 2}, RandomCnfParams{5, 15, 2},
                      RandomCnfParams{6, 20, 3}, RandomCnfParams{8, 34, 3},
                      RandomCnfParams{10, 42, 3},
                      RandomCnfParams{12, 50, 4}));

// Core validity property: the core, taken as units, must be UNSAT.
TEST(SolverProperty, CoresAreGenuinelyUnsat) {
  util::Rng rng(0xdead);
  int unsat_seen = 0;
  for (int round = 0; round < 60; ++round) {
    const CnfFormula f = random_cnf({8, 30, 3}, rng);
    Solver s;
    if (!s.add_formula(f)) continue;
    // Random assumptions over a few variables.
    std::vector<Lit> assumptions;
    for (Var v = 0; v < 4; ++v) {
      assumptions.push_back(cnf::Lit(v, rng.flip()));
    }
    if (s.solve(assumptions) != Result::kUnsat) continue;
    ++unsat_seen;
    // Re-solve a fresh solver with the core as unit clauses: must be UNSAT.
    Solver fresh;
    fresh.add_formula(f);
    bool consistent = true;
    for (const Lit l : s.core()) consistent &= fresh.add_clause({l});
    EXPECT_TRUE(!consistent || fresh.solve() == Result::kUnsat);
  }
  EXPECT_GT(unsat_seen, 0);
}

TEST(SolverStats, CountsActivity) {
  Solver s;
  // A formula that forces some search.
  util::Rng rng(99);
  const CnfFormula f = random_cnf({12, 50, 3}, rng);
  s.add_formula(f);
  s.solve();
  EXPECT_GT(s.stats().propagations, 0u);
}

TEST(SolverStats, MaxLearntsRescalesWithIncrementalClauses) {
  // Regression: the learnt budget was computed once from the problem size
  // of the *first* solve and never again, so MaxSAT-style incremental
  // clause additions ran with a budget sized for an almost-empty solver.
  Solver s;
  s.add_clause({pos(0), pos(1)});
  ASSERT_EQ(s.solve(), Result::kSat);
  const double initial = s.stats().max_learnts;
  EXPECT_GE(initial, 1000.0);
  // Grow the problem well past 3 * initial clauses between solves.
  const int extra = 6000;
  for (int i = 0; i < extra; ++i) {
    const Var base = static_cast<Var>(2 + 3 * i);
    s.add_clause({pos(base), pos(base + 1), pos(base + 2)});
  }
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_GE(s.stats().max_learnts, static_cast<double>(extra) / 3.0);
  EXPECT_GT(s.stats().max_learnts, initial);
}

TEST(SolverStats, ArenaReclaimsRemovedLearnts) {
  // A hard unsatisfiable instance drives thousands of conflicts through
  // clause learning and database reductions; removed learnt records must
  // be garbage collected, keeping the wasted share of the arena bounded
  // by the ~20% GC trigger (plus the single reduction that preceded it).
  util::Rng rng(0xfeed);
  Solver s;
  const CnfFormula f = random_cnf({140, 640, 3}, rng);
  if (!s.add_formula(f)) GTEST_SKIP() << "root-level conflict";
  const Result r = s.solve();
  EXPECT_EQ(r, Result::kUnsat);
  const SolverStats& st = s.stats();
  ASSERT_GT(st.db_reductions, 0u) << "instance too easy to exercise reduce_db";
  EXPECT_GT(st.gc_runs, 0u);
  // Post-reduction invariant: removals end with a GC check, so waste can
  // never exceed the ~20% trigger share of the arena.
  EXPECT_LE(st.wasted_bytes * 5, st.arena_bytes)
      << "wasted=" << st.wasted_bytes << " arena=" << st.arena_bytes;
  // LBD tier census was recorded by the last reduction.
  EXPECT_GT(st.tier_core + st.tier_mid + st.tier_local, 0u);
}

TEST(SolverCancel, TokenComposedIntoDeadlineStopsSolve) {
  // The CancelToken rides on the same decisions+propagations poll as the
  // wall-clock deadline: a cancelled token must stop the solve with
  // kUnknown after at most one poll interval of extra work, and leave
  // the solver reusable.
  util::Rng rng(7);
  Solver s;
  const CnfFormula f = random_cnf({60, 250, 3}, rng);
  if (!s.add_formula(f)) GTEST_SKIP() << "root-level conflict";
  util::CancelToken token;
  token.cancel();
  const util::Deadline deadline(0.0, &token);
  const std::uint64_t before = s.stats().decisions + s.stats().propagations;
  EXPECT_EQ(s.solve({}, deadline), Result::kUnknown);
  EXPECT_LT(s.stats().decisions + s.stats().propagations - before, 10000u);
  token.reset();
  const util::Deadline fresh(0.0, &token);
  EXPECT_NE(s.solve({}, fresh), Result::kUnknown);
}

TEST(SolverCancel, TokenCancelledMidEnumerationStopsSession) {
  // Cancel the token from inside the sink, mid-session: the enumeration
  // must stop with kUnknown at the next poll instead of descending
  // forever, and the models already harvested stay delivered.
  util::Rng rng(11);
  Solver s;
  const CnfFormula f = random_cnf({30, 60, 3}, rng);
  if (!s.add_formula(f)) GTEST_SKIP() << "root-level conflict";
  util::CancelToken token;
  const util::Deadline deadline(0.0, &token);
  std::size_t models = 0;
  const Result r = s.enumerate(
      [&](const cnf::Assignment& model) {
        EXPECT_TRUE(f.satisfied_by(model));
        if (++models == 3) token.cancel();
        return true;  // never stop voluntarily — only the token may
      },
      {}, &deadline);
  EXPECT_EQ(r, Result::kUnknown);
  // The poll rides the decisions+propagations counter, so a few hundred
  // cheap models can land between the cancel and the next poll — but
  // the session must stop within one poll interval, not run forever.
  EXPECT_GE(models, 3u);
  EXPECT_LT(models, 100000u);
  // The solver must come back reusable after the interrupted session.
  token.reset();
  EXPECT_NE(s.solve(), Result::kUnknown);
}

TEST(SolverCancel, TokenCancelledMidInprocessSkipsRemainingWork) {
  // A pre-cancelled token makes every pass skip its per-item work:
  // inprocess() still succeeds (any prefix of simplifications is sound)
  // but must not simplify anything, and the solver stays usable.
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({pos(0), pos(1), pos(2)});
  f.add_clause({neg(1), pos(2)});
  f.add_clause({neg(1), pos(3)});
  Solver s;
  ASSERT_TRUE(s.add_formula(f));
  util::CancelToken token;
  token.cancel();
  InprocessOptions opts;
  opts.cancel = &token;
  ASSERT_TRUE(s.inprocess(opts));
  EXPECT_EQ(s.stats().subsumed_clauses, 0u);
  EXPECT_EQ(s.stats().eliminated_vars, 0u);
  EXPECT_EQ(s.stats().vivified_literals, 0u);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(f.satisfied_by(s.model()));

  // Uncancelled, the same solver simplifies: proof the skip above came
  // from the token, not from having nothing to do.
  token.reset();
  ASSERT_TRUE(s.inprocess(opts));
  EXPECT_GT(s.stats().subsumed_clauses + s.stats().eliminated_vars, 0u);
}

TEST(Solver, ReserveVarsAllocatesContiguousBlock) {
  Solver s;
  EXPECT_EQ(s.reserve_vars(10), 0);
  EXPECT_EQ(s.num_vars(), 10);
  EXPECT_EQ(s.reserve_vars(5), 10);
  EXPECT_EQ(s.new_var(), 15);
}

TEST(Solver, ActivationClauseBindsOnlyWhileAssumed) {
  Solver s;
  const Var x = s.new_var();
  const Lit act = pos(s.new_var());
  // (x) guarded by act: free without the assumption, binding with it.
  EXPECT_TRUE(s.add_clause_activated({pos(x)}, act));
  EXPECT_EQ(s.solve({neg(x)}), Result::kSat);
  EXPECT_EQ(s.solve({act, neg(x)}), Result::kUnsat);
  EXPECT_EQ(s.solve({act}), Result::kSat);
  EXPECT_TRUE(s.model().value(pos(x)));
}

TEST(Solver, RetireFreesTheConstraintAndCountsStats) {
  Solver s;
  const Var x = s.new_var();
  const Var y = s.new_var();
  const Lit act = pos(s.new_var());
  EXPECT_TRUE(s.add_clause_activated({pos(x), pos(y)}, act));
  EXPECT_TRUE(s.add_clause_activated({pos(x), neg(y)}, act));
  EXPECT_EQ(s.solve({act, neg(x)}), Result::kUnsat);
  // At least the two guarded problem clauses; learnt clauses that
  // recorded the guard during the UNSAT solve are reclaimed too.
  const std::size_t reclaimed = s.retire(act);
  EXPECT_GE(reclaimed, 2u);
  EXPECT_EQ(s.stats().retired_clauses, reclaimed);
  EXPECT_EQ(s.stats().retired_activations, 1u);
  // Without the guard the old constraint is gone for good.
  EXPECT_EQ(s.solve({neg(x), neg(y)}), Result::kSat);
  EXPECT_GE(s.stats().vars_allocated, 3u);
}

TEST(Solver, RetireReclaimsArenaViaGc) {
  // Enough guarded ternaries to push waste past the ~20% GC trigger once
  // retired; afterwards the solver still answers correctly.
  Solver s;
  const Var base = s.reserve_vars(40);
  s.add_clause({pos(base), pos(base + 1)});  // permanent clause survives
  const Lit act = pos(s.new_var());
  for (Var v = 0; v + 2 < 40; ++v) {
    EXPECT_TRUE(s.add_clause_activated(
        {pos(base + v), pos(base + v + 1), pos(base + v + 2)}, act));
  }
  ASSERT_EQ(s.solve({act}), Result::kSat);
  const std::uint64_t arena_before = s.stats().arena_bytes;
  const std::size_t reclaimed = s.retire(act);
  EXPECT_GE(reclaimed, 30u);
  EXPECT_GE(s.stats().gc_runs, 1u);
  EXPECT_LT(s.stats().arena_bytes, arena_before);
  EXPECT_EQ(s.stats().wasted_bytes, 0u);
  EXPECT_EQ(s.solve({}), Result::kSat);
  EXPECT_EQ(s.solve({neg(base), neg(base + 1)}), Result::kUnsat);
}

TEST(Solver, RetiredGuardsDoNotPoisonLaterSolves) {
  // Interleave guarded sessions with unguarded solving: each retired
  // session must leave no semantic trace (MaxSAT round usage pattern).
  util::Rng rng(11);
  Solver s;
  const CnfFormula f = random_cnf({30, 90, 3}, rng);
  if (!s.add_formula(f)) GTEST_SKIP() << "root-level conflict";
  Solver reference;
  ASSERT_TRUE(reference.add_formula(f));
  for (int session = 0; session < 10; ++session) {
    const Lit act = pos(s.new_var());
    for (int c = 0; c < 20; ++c) {
      Clause clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(Lit(static_cast<Var>(rng.next_below(30)),
                             rng.flip()));
      }
      s.add_clause_activated(clause, act);
    }
    s.solve({act});
    s.retire(act);
    // Same random assumption triple must get the same verdict as an
    // untouched reference solver.
    std::vector<Lit> assumptions;
    for (int k = 0; k < 3; ++k) {
      assumptions.push_back(Lit(static_cast<Var>(rng.next_below(30)),
                                rng.flip()));
    }
    EXPECT_EQ(s.solve(assumptions), reference.solve(assumptions))
        << "session " << session;
  }
}

TEST(Solver, ReseedChangesSearchNotVerdict) {
  util::Rng rng(3);
  const CnfFormula f = random_cnf({40, 160, 3}, rng);
  Solver s;
  if (!s.add_formula(f)) GTEST_SKIP() << "root-level conflict";
  const Result first = s.solve();
  s.reseed(0xfeedULL);
  s.options().random_branch_freq = 0.2;
  s.options().random_polarity = true;
  EXPECT_EQ(s.solve(), first);
}

// ---------------------------------------------------------------------------
// Inter-solve inprocessing and variable remapping
// ---------------------------------------------------------------------------

TEST(SolverInprocess, SubsumptionRemovesSupersets) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  s.add_clause({pos(0), pos(1), pos(2)});
  s.add_clause({pos(0), pos(1), neg(3)});
  InprocessOptions opts;
  opts.eliminate = false;
  opts.vivify = false;
  ASSERT_TRUE(s.inprocess(opts));
  EXPECT_GE(s.stats().subsumed_clauses, 2u);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(0) || s.model().value(1));
}

TEST(SolverInprocess, SelfSubsumptionStrengthens) {
  Solver s;
  // (0 ∨ 1) resolved with (¬0 ∨ 1 ∨ 2) on var 0 gives (1 ∨ 2), which
  // subsumes the latter: strengthening removes ¬0 from it.
  s.add_clause({pos(0), pos(1)});
  s.add_clause({neg(0), pos(1), pos(2)});
  InprocessOptions opts;
  opts.eliminate = false;
  opts.vivify = false;
  ASSERT_TRUE(s.inprocess(opts));
  EXPECT_GE(s.stats().strengthened_literals, 1u);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverInprocess, EliminationExtendsModelsSoundly) {
  // Var 1 occurs 1 pos / 2 neg: a classic elimination candidate. The
  // model must still be reported over the original variables and satisfy
  // the original clauses.
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(1), pos(2)});
  f.add_clause({neg(1), pos(3)});
  f.add_clause({neg(2), neg(3)});
  Solver s;
  ASSERT_TRUE(s.add_formula(f));
  ASSERT_TRUE(s.inprocess());
  EXPECT_GE(s.stats().eliminated_vars, 1u);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(f.satisfied_by(s.model()));
}

TEST(SolverInprocess, FrozenVariablesAreNeverEliminated) {
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(1), pos(2)});
  f.add_clause({neg(1), pos(3)});
  Solver s;
  ASSERT_TRUE(s.add_formula(f));
  s.freeze_range(0, 4);
  ASSERT_TRUE(s.inprocess());
  EXPECT_EQ(s.stats().eliminated_vars, 0u);
  for (Var v = 0; v < 4; ++v) {
    EXPECT_TRUE(s.remapper().is_live(v)) << v;
  }
}

TEST(SolverInprocess, RootRefutationReportsUnsat) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  s.add_clause({pos(0), neg(1)});
  s.add_clause({neg(0), pos(1)});
  s.add_clause({neg(0), neg(1)});
  // Self-subsumption strengthens these to units and derives the empty
  // clause at the root.
  EXPECT_FALSE(s.inprocess());
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SolverInprocess, VivificationShortensImpliedClauses) {
  Solver s;
  s.add_clause({pos(0), pos(1)});
  // Assuming ¬0 propagates 1 through the clause above, so (0 ∨ 1 ∨ 2)
  // vivifies to (0 ∨ 1).
  s.add_clause({pos(0), pos(1), pos(2)});
  InprocessOptions opts;
  opts.subsume = false;
  opts.eliminate = false;
  ASSERT_TRUE(s.inprocess(opts));
  EXPECT_GE(s.stats().vivified_literals, 1u);
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SolverInprocess, GuardedClausesSurviveInprocessing) {
  Solver s;
  s.ensure_vars(2);
  const Lit act = pos(s.new_var());
  s.add_clause_activated({pos(0)}, act);
  s.add_clause_activated({pos(1)}, act);
  // A subsuming unguarded clause must not remove the guarded records.
  s.add_clause({pos(0), pos(1)});
  ASSERT_TRUE(s.inprocess());
  ASSERT_EQ(s.solve({act}), Result::kSat);
  EXPECT_TRUE(s.model().value(0));
  EXPECT_TRUE(s.model().value(1));
  // Retirement still works after the pass: without the guard only the
  // unguarded (0 ∨ 1) constrains the variables.
  s.retire({act});
  ASSERT_EQ(s.solve({neg(0)}), Result::kSat);
  EXPECT_TRUE(s.model().value(1));
}

TEST(SolverCompact, ReclaimsRetiredVariableRange) {
  Solver s;
  s.ensure_vars(4);
  s.add_clause({pos(0), pos(1)});
  // A pile of retired activation scopes leaves dead variables behind.
  std::vector<Lit> acts;
  for (int i = 0; i < 50; ++i) {
    const Lit act = pos(s.new_var());
    s.add_clause_activated({pos(2), pos(3)}, act);
    acts.push_back(act);
  }
  s.retire(acts);
  const Var before = s.num_vars();
  ASSERT_TRUE(s.inprocess());
  EXPECT_GT(s.compact(), 0u);
  // External numbering is stable: num_vars() never shrinks...
  EXPECT_EQ(s.num_vars(), before);
  EXPECT_GT(s.stats().remapped_vars, 0u);
  // ...and solving still works, with models over the full external range.
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_EQ(s.model().size(), static_cast<std::size_t>(before));
  EXPECT_TRUE(s.model().value(0) || s.model().value(1));
}

TEST(SolverCompact, FixedVariablesKeepTheirValue) {
  Solver s;
  s.ensure_vars(3);
  s.add_clause({pos(0)});
  s.add_clause({neg(0), pos(1)});
  ASSERT_TRUE(s.inprocess());
  s.compact();
  // Vars 0 and 1 are root facts; after compaction they are kFixed drops
  // whose recorded value feeds models, fixed_value(), and translation.
  EXPECT_EQ(s.fixed_value(pos(0)), cnf::LBool::kTrue);
  EXPECT_EQ(s.fixed_value(pos(1)), cnf::LBool::kTrue);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(0));
  EXPECT_TRUE(s.model().value(1));
  // Assuming against a fixed value is UNSAT with the assumption as core.
  ASSERT_EQ(s.solve({neg(0)}), Result::kUnsat);
  ASSERT_EQ(s.core().size(), 1u);
  EXPECT_EQ(s.core()[0], neg(0));
}

TEST(SolverCompact, FreeVariablesReviveOnReuse) {
  Solver s;
  s.ensure_vars(3);
  s.add_clause({pos(0), pos(1)});
  // Var 2 occurs nowhere: compaction drops it as a free variable.
  ASSERT_TRUE(s.inprocess());
  s.compact();
  EXPECT_EQ(s.remapper().drop_kind(2), Remapper::DropKind::kFree);
  // Mentioning it again revives it as a fresh internal variable.
  s.add_clause({pos(2)});
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(2));
  EXPECT_TRUE(s.remapper().is_live(2));
}

TEST(SolverCompact, EliminatedVariablesReviveWithDefinitions) {
  // Eliminate var 1 by BVE, then constrain it again: revival re-adds the
  // stored defining clauses, so the new constraint composes with the old
  // semantics instead of a fresh unconstrained variable.
  CnfFormula f(4);
  f.add_clause({pos(0), pos(1)});
  f.add_clause({neg(1), pos(2)});
  f.add_clause({neg(1), pos(3)});
  Solver s;
  ASSERT_TRUE(s.add_formula(f));
  s.freeze(0);
  s.freeze(2);
  s.freeze(3);
  ASSERT_TRUE(s.inprocess());
  ASSERT_TRUE(s.remapper().is_eliminated(1));
  s.add_clause({neg(2), neg(3)});
  // Assuming 1 itself forces revival; the re-added definitions
  // (¬1 ∨ 2), (¬1 ∨ 3) make 1 → 2 ∧ 3, conflicting with (¬2 ∨ ¬3). The
  // resolvents alone would NOT refute this — only full revival does.
  ASSERT_EQ(s.solve({pos(1)}), Result::kUnsat);
  ASSERT_EQ(s.core().size(), 1u);
  EXPECT_EQ(s.core()[0], pos(1));
  // ¬0 → 1 → 2 ∧ 3 likewise conflicts; 0 = true is the only way out.
  ASSERT_EQ(s.solve({neg(0)}), Result::kUnsat);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model().value(0));
}

TEST(SolverInprocess, RepeatedMaintenanceStaysSound) {
  // A small incremental session: rounds of new clauses, retirement, and
  // maintenance; the final verdicts must stay consistent throughout.
  Solver s;
  s.ensure_vars(6);
  s.add_clause({pos(0), pos(1), pos(2)});
  s.add_clause({neg(0), pos(3)});
  for (int round = 0; round < 10; ++round) {
    const Lit act = pos(s.new_var());
    s.add_clause_activated({pos(4), pos(5)}, act);
    ASSERT_EQ(s.solve({act}), Result::kSat);
    EXPECT_TRUE(s.model().value(4) || s.model().value(5));
    s.retire({act});
    ASSERT_TRUE(s.inprocess());
    s.compact();
  }
  EXPECT_GE(s.stats().inprocess_runs, 10u);
  ASSERT_EQ(s.solve({neg(4), neg(5)}), Result::kSat);
}

}  // namespace
}  // namespace manthan::sat
