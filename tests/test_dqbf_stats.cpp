// Instance statistics: dependency-lattice metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "dqbf/stats.hpp"
#include "workloads/workloads.hpp"

namespace manthan::dqbf {
namespace {

TEST(DqbfStats, PaperExampleMetrics) {
  // H1={x1}, H2={x1,x2}, H3={x2,x3}.
  DqbfFormula f;
  for (Var x = 0; x < 3; ++x) f.add_universal(x);
  f.add_existential(3, {0});
  f.add_existential(4, {0, 1});
  f.add_existential(5, {1, 2});
  f.matrix().add_clause({cnf::pos(0), cnf::pos(3)});
  const InstanceStats s = compute_stats(f);
  EXPECT_EQ(s.num_universals, 3u);
  EXPECT_EQ(s.num_existentials, 3u);
  EXPECT_EQ(s.common_dependency_core, 0u);  // ∩ = {}
  EXPECT_EQ(s.nonlinear_universals, 3u);
  EXPECT_EQ(s.subset_pairs, 1u);            // H1 ⊆ H2 only
  EXPECT_EQ(s.incomparable_pairs, 2u);      // (1,3) and (2,3)
  EXPECT_EQ(s.full_dependency_outputs, 0u);
  EXPECT_NEAR(s.dependency_density, (1.0 / 3 + 2.0 / 3 + 2.0 / 3) / 3,
              1e-9);
}

TEST(DqbfStats, SkolemInstanceIsFullyLinear) {
  DqbfFormula f;
  f.add_universal(0);
  f.add_universal(1);
  f.add_existential(2, {0, 1});
  f.add_existential(3, {0, 1});
  f.matrix().add_clause({cnf::pos(2), cnf::pos(3)});
  const InstanceStats s = compute_stats(f);
  EXPECT_EQ(s.common_dependency_core, 2u);
  EXPECT_EQ(s.nonlinear_universals, 0u);
  EXPECT_EQ(s.full_dependency_outputs, 2u);
  EXPECT_EQ(s.incomparable_pairs, 0u);
  EXPECT_DOUBLE_EQ(s.dependency_density, 1.0);
  // Subset pairs: both directions for equal sets.
  EXPECT_EQ(s.subset_pairs, 2u);
}

TEST(DqbfStats, NoExistentialsConvention) {
  DqbfFormula f;
  f.add_universal(0);
  f.matrix().add_clause({cnf::pos(0), cnf::neg(0)});
  const InstanceStats s = compute_stats(f);
  EXPECT_EQ(s.common_dependency_core, 1u);
  EXPECT_EQ(s.nonlinear_universals, 0u);
  EXPECT_EQ(s.dependency_density, 0.0);
}

TEST(DqbfStats, XorChainIsMaximallyIncomparable) {
  const DqbfFormula f = workloads::gen_xor_chain({2, false, 1});
  const InstanceStats s = compute_stats(f);
  // 4 existentials with pairwise incomparable windows (within and across
  // pairs).
  EXPECT_EQ(s.incomparable_pairs, 6u);
  EXPECT_EQ(s.subset_pairs, 0u);
  EXPECT_EQ(s.common_dependency_core, 0u);
}

TEST(DqbfStats, LiteralCountsAccumulate) {
  DqbfFormula f;
  f.add_universal(0);
  f.add_existential(1, {0});
  f.matrix().add_clause({cnf::pos(0), cnf::pos(1)});
  f.matrix().add_clause({cnf::neg(0), cnf::pos(1), cnf::neg(1)});
  const InstanceStats s = compute_stats(f);
  EXPECT_EQ(s.num_clauses, 2u);
  EXPECT_EQ(s.num_literals, 5u);
}

TEST(DqbfStats, RenderingIsAligned) {
  std::ostringstream os;
  print_stats_header(os);
  print_stats_row(os, "demo", compute_stats(workloads::gen_succinct_sat(
                                  {8, 3.0, 1})));
  const std::string text = os.str();
  EXPECT_NE(text.find("instance"), std::string::npos);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("nonlin"), std::string::npos);
}

}  // namespace
}  // namespace manthan::dqbf
